#!/usr/bin/env python3
"""Serving a stream of capacity updates with incremental refresh.

A monitoring loop watches link capacities drift (degradations and
restorations) and keeps routing the same traffic matrix. With the
default ``refresh="rebuild"`` policy every drift pays a full
approximator rebuild plus a cold solve. The ``refresh="incremental"``
policy instead consumes the graph's capacity **delta journal** on
sync: cut capacities are patched in place (resampling only trees whose
realized edges intersect the delta), cached flows for the same demands
are rescaled to the new capacities and used to **warm-start** the
solver, and the workspace pool survives untouched — the shape key is
epoch-independent.

Warm-started answers carry the same guarantees as cold ones: exact
conservation, the (1+eps)*alpha congestion bound, and bit-identity
across execution backends. Structural changes (add_edge) or a journal
overflow automatically fall back to the full rebuild.

Run:  python examples/streaming_updates.py

Honors ``REPRO_WORKERS`` (the CI step runs this under
``REPRO_WORKERS=2`` to exercise the sharded backends).
"""

from __future__ import annotations

import time

import numpy as np

from repro.graphs.generators import random_connected
from repro.serve import FlowServer

#: Drift stream: (cycle, multiplier) — degrade then restore.
DRIFT_CYCLES = 6
DEGRADE = 0.6
RESTORE = 1.5
TOUCH_FRACTION = 0.01


def demand_plane(n: int, num_queries: int, rng: np.random.Generator):
    plane = rng.normal(size=(num_queries, n))
    plane -= plane.mean(axis=1, keepdims=True)
    return plane


def drift(graph, rng: np.random.Generator, factor: float) -> int:
    """Apply a small capacity-only delta; returns edges touched."""
    count = max(1, int(graph.num_edges * TOUCH_FRACTION))
    edges = rng.choice(graph.num_edges, size=count, replace=False)
    for eid in edges.tolist():
        graph.set_capacity(int(eid), graph.capacity(int(eid)) * factor)
    return count


def main() -> None:
    networks = {
        policy: random_connected(96, 0.05, rng=81)
        for policy in ("rebuild", "incremental")
    }
    servers = {
        policy: FlowServer(
            network,
            epsilon=0.3,
            solver="accelerated",
            rng=82,
            refresh=policy,
        )
        for policy, network in networks.items()
    }
    n = networks["rebuild"].num_nodes
    print(f"network: n={n}, m={networks['rebuild'].num_edges}; "
          f"policies: {', '.join(servers)}")

    rng = np.random.default_rng(83)
    plane = demand_plane(n, 3, rng)
    for server in servers.values():
        server.route_batch(plane)  # warm: build + populate the cache

    # --- drift stream ----------------------------------------------
    update_rng = np.random.default_rng(84)
    totals = {policy: 0.0 for policy in servers}
    for cycle in range(DRIFT_CYCLES):
        factor = DEGRADE if cycle % 2 == 0 else RESTORE
        seed = update_rng.integers(1 << 31)
        for policy, server in servers.items():
            touched = drift(
                networks[policy], np.random.default_rng(seed), factor
            )
            t0 = time.perf_counter()
            results = server.route_batch(plane)
            totals[policy] += time.perf_counter() - t0
        kind = "degrade" if factor < 1 else "restore"
        print(f"cycle {cycle}: {kind} x{factor} on {touched} edges, "
              f"re-routed {len(results)} demands "
              f"({sum(r.iterations for r in results)} iterations "
              f"incremental)")

    # --- verdict ----------------------------------------------------
    stats = servers["incremental"].stats()
    print(f"\nincremental: {stats.incremental_refreshes} journal-scoped "
          f"refreshes, {stats.warm_starts} warm starts, "
          f"{stats.rebuilds} rebuilds")
    assert stats.incremental_refreshes == DRIFT_CYCLES
    assert stats.warm_starts > 0
    assert stats.rebuilds == 0
    rebuild_stats = servers["rebuild"].stats()
    assert rebuild_stats.rebuilds == DRIFT_CYCLES

    # Identical drift, identical demands: the two policies must agree
    # on what they routed (same guarantees), while the incremental
    # server skipped every rebuild.
    speedup = totals["rebuild"] / max(totals["incremental"], 1e-12)
    print(f"update latency: rebuild {totals['rebuild'] * 1e3:.0f} ms vs "
          f"incremental {totals['incremental'] * 1e3:.0f} ms "
          f"({speedup:.1f}x) across {DRIFT_CYCLES} cycles")

    pooled_singles, pooled_batches = servers["incremental"].pool.pooled_counts()
    print(f"workspace pool survived every epoch: "
          f"{servers['incremental'].pool.created_batches} batch workspace(s) "
          f"created for {DRIFT_CYCLES + 1} epochs "
          f"({pooled_batches} idle now)")
    assert servers["incremental"].pool.created_batches == 1

    # A structural change ends the journal's reach: the next sync
    # falls back to a full rebuild, exactly once.
    network = networks["incremental"]
    network.add_edge(0, n - 1, 5.0)
    servers["incremental"].route(plane[0])
    stats = servers["incremental"].stats()
    print(f"\nafter add_edge: rebuilds={stats.rebuilds} "
          f"(journal cannot vouch across structural mutations)")
    assert stats.rebuilds == 1


if __name__ == "__main__":
    main()
