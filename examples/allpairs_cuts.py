#!/usr/bin/env python3
"""All-pairs connectivity audit with a Gomory-Hu tree.

Computes the exact min-cut between every pair of nodes with n-1
max-flow calls, then audits the paper's congestion approximator against
all of them at once: soundness (the estimate never exceeds the true
optimal congestion) and the effective alpha (worst-case ratio).

Run:  python examples/allpairs_cuts.py
"""

from __future__ import annotations

import itertools

from repro import build_congestion_approximator
from repro.flow import gomory_hu_tree
from repro.graphs.generators import random_geometric
from repro.util.validation import st_demand


def main() -> None:
    network = random_geometric(24, rng=51)
    if not network.is_connected():
        raise SystemExit("unlucky seed: geometric graph disconnected")
    n = network.num_nodes
    print(f"network: n={n}, m={network.num_edges} (random geometric)")

    ght = gomory_hu_tree(network)
    matrix = ght.all_pairs_min_cut()
    finite = matrix[~(matrix == float("inf"))]
    print(f"\nGomory-Hu tree built with {n - 1} max-flow calls")
    print(f"  weakest pair connectivity : {finite.min():.1f}")
    print(f"  strongest pair connectivity: {finite.max():.1f}")

    weakest = min(
        itertools.combinations(range(n), 2),
        key=lambda uv: ght.min_cut_value(*uv),
    )
    print(f"  weakest pair: {weakest} "
          f"(min cut {ght.min_cut_value(*weakest):.1f})")

    approximator = build_congestion_approximator(network, rng=52)
    print(f"\nauditing the congestion approximator "
          f"({approximator.num_trees} trees) against all "
          f"{n * (n - 1) // 2} pairs:")
    worst_alpha, violations = 1.0, 0
    for u, v in itertools.combinations(range(n), 2):
        opt = 1.0 / ght.min_cut_value(u, v)
        estimate = approximator.estimate(st_demand(network, u, v))
        if estimate > opt + 1e-9:
            violations += 1
        elif estimate > 0:
            worst_alpha = max(worst_alpha, opt / estimate)
    print(f"  soundness violations : {violations} (must be 0)")
    print(f"  effective alpha      : {worst_alpha:.3f} "
          f"(descent assumed {approximator.alpha:.2f})")
    assert violations == 0


if __name__ == "__main__":
    main()
