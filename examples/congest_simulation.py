#!/usr/bin/env python3
"""The distributed story: simulate the CONGEST model directly.

Runs the message-level simulator on a low-diameter network: BFS-tree
construction, pipelined aggregation (the D + k lemma), the distributed
push-relabel baseline whose rounds blow up even at D = 3, and the
round estimate for the paper's pipeline on the same instance.

Run:  python examples/congest_simulation.py
"""

from __future__ import annotations

from repro import estimate_rounds, max_flow
from repro.congest import (
    CostModel,
    build_bfs_tree,
    distributed_push_relabel,
    pipelined_aggregate,
)
from repro.core.approximator import TreeCongestionApproximator, TreeOperator
from repro.graphs.generators import barbell
from repro.jtree import sample_virtual_tree
from repro.util.rng import as_generator, spawn


def main() -> None:
    network = barbell(10, bridge_capacity=1.0, rng=41, max_capacity=10)
    source, sink = 0, 10
    diameter = network.diameter()
    print(f"network: n={network.num_nodes}, m={network.num_edges}, "
          f"D={diameter}")

    # --- primitives, measured on the simulator ------------------------
    tree, bfs_rounds = build_bfs_tree(network, root=0)
    print(f"\nBFS tree built in {bfs_rounds} rounds "
          f"(bound: D + 2 = {diameter + 2})")

    k = 10
    values = [[1.0] * k for _ in network.nodes()]
    _, pipe_rounds = pipelined_aggregate(network, tree, values)
    print(f"pipelined {k}-aggregation: {pipe_rounds} rounds "
          f"(bound: height + k + 2 = {tree.height() + k + 2})")

    # --- the baseline the paper wants to beat ------------------------
    pr = distributed_push_relabel(network, source, sink)
    print(f"\ndistributed push-relabel: value {pr.value:.0f} in "
          f"{pr.rounds} rounds ({pr.pushes} pushes, {pr.relabels} relabels)")
    model = CostModel.for_graph(network)
    print(f"  vs D + sqrt(n) = {model.base:.1f}: "
          f"{pr.rounds / model.base:.1f}x over the paper's base term")

    # --- the paper's pipeline, with measured round accounting --------
    rng = as_generator(42)
    samples = [sample_virtual_tree(network, rng=r) for r in spawn(rng, 3)]
    approximator = TreeCongestionApproximator(
        network, [TreeOperator(s.tree) for s in samples], alpha=2.5
    )
    result = max_flow(network, source, sink, epsilon=0.5,
                      approximator=approximator)
    estimate = estimate_rounds(network, samples,
                               result.congestion_result, 0.5)
    print(f"\npaper pipeline: value {result.value:.2f}")
    print(f"  estimated rounds: {estimate.total:,.0f} "
          f"(construction {estimate.construction:,.0f} + "
          f"descent {estimate.descent:,.0f})")
    print(f"  Theorem 1.1 closed form: {estimate.theorem_bound:,.0f}")
    print(f"  trivial O(m) baseline : {estimate.trivial_bound:,.0f}")
    print("\nAt this toy scale the constants dominate; the benchmarks "
          "(benchmarks/test_bench_rounds.py) track the *growth shapes*, "
          "which is where the paper's separation shows.")


if __name__ == "__main__":
    main()
