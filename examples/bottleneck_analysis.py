#!/usr/bin/env python3
"""Capacity planning: find and fix a network bottleneck.

Uses the full toolbox: exact max flow + min cut (Dinic) to locate the
bottleneck, the approximate pipeline to confirm at scale, and a
what-if upgrade loop that re-evaluates throughput after each capacity
upgrade of the tightest cut.

Run:  python examples/bottleneck_analysis.py
"""

from __future__ import annotations

from repro import build_congestion_approximator, dinic_max_flow, max_flow
from repro.graphs.cuts import cut_edges
from repro.graphs.generators import barbell


def main() -> None:
    # Two 10-node data centers joined by a weak 2-link bridge.
    network = barbell(10, bridge_length=2, bridge_capacity=4.0, rng=31)
    source, sink = 0, 10  # one node in each clique
    print(f"network: n={network.num_nodes}, m={network.num_edges}")

    for round_index in range(3):
        exact = dinic_max_flow(network, source, sink)
        approximator = build_congestion_approximator(network, rng=32)
        approx = max_flow(network, source, sink, epsilon=0.3,
                          approximator=approximator)
        print(f"\nround {round_index}: exact throughput "
              f"{exact.value:.1f}, approximate {approx.value:.1f} "
              f"(ratio {approx.value / exact.value:.3f})")

        bottleneck = cut_edges(network, exact.min_cut_side)
        print(f"  bottleneck cut: {len(bottleneck)} links "
              f"{[network.endpoints(e) for e in bottleneck]}")

        # Upgrade: double every link in the bottleneck cut.
        for eid in bottleneck:
            network.set_capacity(eid, 2.0 * network.capacity(eid))
        print("  upgraded: doubled every bottleneck link")

    final = dinic_max_flow(network, source, sink).value
    print(f"\nfinal throughput after upgrades: {final:.1f}")


if __name__ == "__main__":
    main()
