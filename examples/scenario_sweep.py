#!/usr/bin/env python3
"""Scenario sweep: run a slice of the declarative scenario corpus.

A scenario is one point of Topology x Demand x Failure x Backend
(see ``repro.scenarios``). The runner executes each group — building
the topology, applying the failure through the write-through
``set_capacity`` epoch machinery, routing the demand plane — and
*asserts the correctness invariants* (demand conservation, congestion
soundness and guarantee, max-flow value vs exact Dinic, planted-cut
detection, cross-backend bit-identity) before reporting any numbers.

Run:  PYTHONPATH=src python examples/scenario_sweep.py
"""

from __future__ import annotations

from repro.scenarios import build_matrix, run_matrix


def main() -> None:
    # A small sweep: the planted-bottleneck topology under healthy and
    # degraded capacities, probed by a demand that straddles the cut
    # and by churning hotspots. Serial + thread backends (their flows
    # are checked bit-identical inside the runner).
    matrix = build_matrix(
        topologies=("planted_60",),
        demands=("adversarial_cut", "hotspot"),
        failures=("none", "degrade"),
        backends=("serial", "thread"),
        epsilon=0.5,
        num_queries=1,
    )
    print(f"sweep: {len(matrix)} scenarios")
    result = run_matrix(matrix, progress=lambda line: print(f"  {line}"))

    for record in result.records:
        s = record.scenario
        print(
            f"{s.topology} x {s.demand} x {s.failure} x {s.backend}: "
            f"exact={record.exact_value:g} "
            f"approx={record.maxflow_value:.4g} "
            f"congestion={record.congestion:.4g} "
            f"lower_bound={record.lower_bound:.4g} "
            f"checks={record.invariants_checked}"
        )
    print(
        f"{result.groups} groups, {len(result.records)} scenarios, "
        f"every invariant passed"
    )


if __name__ == "__main__":
    main()
