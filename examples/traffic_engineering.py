#!/usr/bin/env python3
"""Traffic engineering: route a traffic matrix with minimum congestion.

The scenario the paper's framework actually shines at: one congestion
approximator is built for the network once, then *many* demands are
routed against it (the approximator is demand-independent). We model a
city-grid backbone carrying several concurrent flows and report, per
demand, the achieved max link utilization against the certified lower
bound from the approximator's cut rows.

Run:  python examples/traffic_engineering.py
"""

from __future__ import annotations

import numpy as np

from repro import build_congestion_approximator, min_congestion_flow
from repro.graphs.generators import torus
from repro.util.validation import check_flow_conservation


def main() -> None:
    # A 8x8 torus backbone: every link has capacity 10..100.
    network = torus(8, 8, rng=21)
    n = network.num_nodes
    print(f"backbone: n={n}, m={network.num_edges} (torus)")

    approximator = build_congestion_approximator(network, rng=22)
    print(f"approximator ready: {approximator.num_trees} trees, "
          f"alpha={approximator.alpha:.2f}\n")

    # Three traffic patterns: point-to-point, hotspot fan-in, and an
    # all-to-corner gravity pattern.
    rng = np.random.default_rng(23)
    patterns: dict[str, np.ndarray] = {}

    p2p = np.zeros(n)
    p2p[0], p2p[n - 1] = 30.0, -30.0
    patterns["point-to-point (30 units)"] = p2p

    fanin = np.zeros(n)
    sources = rng.choice(np.arange(1, n), size=6, replace=False)
    fanin[sources] = 5.0
    fanin[0] = -30.0
    patterns["hotspot fan-in (6 x 5 units)"] = fanin

    gravity = rng.uniform(0.0, 2.0, size=n)
    gravity[27] = 0.0
    gravity[27] = -gravity.sum()
    patterns["gravity to node 27"] = gravity

    for name, demand in patterns.items():
        result = min_congestion_flow(
            network, demand, epsilon=0.3, approximator=approximator
        )
        check_flow_conservation(network, result.flow, demand)
        print(f"{name}")
        print(f"  max link utilization : {result.congestion:.4f}")
        print(f"  certified lower bound: {result.lower_bound:.4f}")
        print(f"  optimality gap bound : "
              f"{result.approximation_ratio_bound:.2f}x")
        print(f"  gradient steps       : {result.iterations}\n")

    print("All demands routed exactly (conservation verified).")


if __name__ == "__main__":
    main()
