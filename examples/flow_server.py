#!/usr/bin/env python3
"""Build-once / serve-many routing with a FlowServer.

A traffic-engineering controller builds the congestion approximator
once (the expensive n·log n tree-sampling step) and then answers a
stream of routing queries against it: single demands, batched demand
planes, and repeated queries that hit the result cache. When the
network changes (a capacity upgrade), the server notices the graph's
version bump, drops the now-stale cached results exactly once, and
rebuilds — subsequent queries are served against the live network.

Batched columns are bit-identical to one-shot calls, so singles and
batch columns share one cache namespace: a demand routed inside a
batch hits later as a single query.

Run:  python examples/flow_server.py
"""

from __future__ import annotations

import numpy as np

from repro.graphs.generators import random_connected
from repro.serve import FlowServer


def demand_plane(n: int, num_queries: int, rng: np.random.Generator):
    plane = rng.normal(size=(num_queries, n))
    plane -= plane.mean(axis=1, keepdims=True)
    return plane


def main() -> None:
    network = random_connected(48, 0.1, rng=71)
    print(f"network: n={network.num_nodes}, m={network.num_edges}")

    server = FlowServer(network, epsilon=0.3, solver="accelerated", rng=72)
    print(f"server up: {server.approximator.num_trees}-tree approximator, "
          f"solver={server.solver}, max_batch={server.max_batch}")

    # --- serve a mixed query stream --------------------------------
    rng = np.random.default_rng(73)
    single = demand_plane(network.num_nodes, 1, rng)[0]
    result = server.route(single)
    print(f"\nsingle query: {result.iterations} iterations, "
          f"congestion estimate {result.potential:.3f}")

    plane = demand_plane(network.num_nodes, 6, rng)
    plane[0] = single  # one column repeats the single query
    batch = server.route_batch(plane)
    print(f"batch of {len(batch)}: iterations "
          f"{[r.iterations for r in batch]}")
    assert batch[0] is result, "repeated column must hit the cache"

    st = server.route_st(0, network.num_nodes - 1, value=2.0)
    print(f"s-t query 0->{network.num_nodes - 1}: "
          f"{st.iterations} iterations")

    cache = server.cache_stats()
    print(f"cache after stream: {cache.hits} hits, {cache.misses} misses")

    # --- mutate the network ----------------------------------------
    edge = 0
    old = network.capacities()[edge]
    network.set_capacity(edge, old * 4.0)
    print(f"\ncapacity upgrade on edge {edge}: {old:.2f} -> {old * 4.0:.2f}")

    refreshed = server.route(single)
    cache = server.cache_stats()
    stats = server.stats()
    print(f"re-served on the upgraded network: "
          f"{refreshed.iterations} iterations "
          f"(was {result.iterations} pre-upgrade)")
    print(f"invalidations={cache.invalidations} (exactly one), "
          f"rebuilds={stats.rebuilds}")
    assert cache.invalidations == 1
    assert refreshed is not result, "stale epoch must never be served"

    # The refreshed result is served from the rebuilt approximator;
    # asking again is now a cache hit on the new epoch.
    again = server.route(single)
    assert again is refreshed
    print("repeat query after upgrade: cache hit on the new epoch")

    stats = server.stats()
    print(f"\nserved {stats.single_queries} singles + "
          f"{stats.batch_queries} batches "
          f"({stats.batched_columns} columns)")


if __name__ == "__main__":
    main()
