#!/usr/bin/env python3
"""Quickstart: approximate max flow on a random network.

Builds a connected random graph, constructs the paper's tree-based
congestion approximator, runs the gradient-descent max-flow pipeline,
and compares against the exact (Dinic) optimum.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_congestion_approximator, dinic_max_flow, max_flow
from repro.graphs.generators import random_connected
from repro.util.validation import check_feasible_flow, st_demand


def main() -> None:
    # 1. A workload: 50 nodes, random capacities in 1..100.
    graph = random_connected(50, extra_edge_probability=0.1, rng=7)
    source, sink = 0, 49
    print(f"graph: n={graph.num_nodes}, m={graph.num_edges}, "
          f"D={graph.diameter()}")

    # 2. The congestion approximator R: O(log n) virtual trees sampled
    #    from the recursive j-tree hierarchy (Theorem 8.10 + Lemma 3.3).
    approximator = build_congestion_approximator(graph, rng=13)
    print(f"approximator: {approximator.num_trees} trees, "
          f"{approximator.num_rows} cut rows, alpha={approximator.alpha:.2f}")

    # 3. Approximate max flow (Algorithms 1 + 2).
    result = max_flow(graph, source, sink, epsilon=0.25,
                      approximator=approximator)

    # 4. Grade against the exact optimum and verify feasibility.
    exact = dinic_max_flow(graph, source, sink).value
    check_feasible_flow(graph, result.flow,
                        st_demand(graph, source, sink, result.value))
    print(f"approximate value : {result.value:.2f}")
    print(f"exact optimum     : {exact:.2f}")
    print(f"achieved ratio    : {result.value / exact:.4f}")
    print(f"certified upper   : {result.certified_upper_bound:.2f} "
          "(from the approximator's cut rows)")
    print(f"gradient steps    : {result.congestion_result.iterations}")
    print("flow is exactly feasible and conserving — verified.")


if __name__ == "__main__":
    main()
