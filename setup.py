"""Legacy setup shim (the environment has no `wheel` package, so the
PEP 517 editable path is unavailable; `pip install -e .` uses this)."""

from setuptools import find_packages, setup

setup(
    name="repro-congest-maxflow",
    version="0.1.0",
    description=(
        "Reproduction of Ghaffari et al. (PODC'15): near-optimal "
        "distributed approximate max-flow, on an array-native graph "
        "substrate"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
