"""Legacy setup shim (the environment has no `wheel` package, so the
PEP 517 editable path is unavailable; `pip install -e .` uses this)."""

from setuptools import setup

setup()
