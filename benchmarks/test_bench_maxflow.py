"""Wall-clock benchmarks of the end-to-end pipeline components (the
operational cost table: approximator construction, one R product, one
gradient step, full max flow, exact oracle)."""

from __future__ import annotations

import numpy as np

from repro.core import build_congestion_approximator, max_flow
from repro.core.almost_route import almost_route
from repro.flow import dinic_max_flow
from repro.util.validation import st_demand


def test_bench_build_approximator(benchmark, bench_graph):
    result = benchmark(
        lambda: build_congestion_approximator(bench_graph, rng=991).num_trees
    )
    assert result >= 2


def test_bench_r_product(benchmark, bench_graph, bench_approximator):
    demand = st_demand(bench_graph, 0, 47)
    y = benchmark(lambda: bench_approximator.apply(demand))
    assert y.shape == (bench_approximator.num_rows,)


def test_bench_rt_product(benchmark, bench_graph, bench_approximator):
    rng = np.random.default_rng(992)
    y = rng.normal(size=bench_approximator.num_rows)
    pi = benchmark(lambda: bench_approximator.apply_transpose(y))
    assert pi.shape == (bench_graph.num_nodes,)


def test_bench_almost_route(benchmark, bench_graph, bench_approximator):
    demand = st_demand(bench_graph, 0, 47)
    result = benchmark.pedantic(
        lambda: almost_route(bench_graph, bench_approximator, demand, 0.6),
        rounds=3,
        iterations=1,
    )
    assert result.iterations > 0


def test_bench_full_max_flow(benchmark, bench_graph, bench_approximator):
    result = benchmark.pedantic(
        lambda: max_flow(
            bench_graph, 0, 47, epsilon=0.6, approximator=bench_approximator
        ),
        rounds=3,
        iterations=1,
    )
    exact = dinic_max_flow(bench_graph, 0, 47).value
    assert result.value >= exact / 1.6


def test_bench_exact_oracle(benchmark, bench_graph):
    value = benchmark(lambda: dinic_max_flow(bench_graph, 0, 47).value)
    assert value > 0
