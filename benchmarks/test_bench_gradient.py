"""E6 — Algorithm 2 analysis: gradient-descent iteration scaling.

The paper's bound is O(ε⁻³ α² log n) iterations. We measure iterations
against an ε sweep (expect strong growth as ε shrinks) and against the
α handed to the descent (expect growth roughly with α²; the step size
is δ/(1+4α²)).

Also measures the soft-max share of a gradient step: profiling put
``smax_and_gradient`` at ~27% of a step before the fused single-exp
pair-buffer path landed (ROADMAP item); ``test_e6_softmax_share``
records the live share and keeps it a bounded minority cost.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import _median_time

from repro.core import build_congestion_approximator
from repro.core.almost_route import (
    RouteWorkspace,
    _evaluate,
    _gradient_delta,
    almost_route,
)
from repro.core.softmax import smax_and_gradient
from repro.graphs.generators import random_connected
from repro.util.validation import st_demand


def test_e6_epsilon_scaling(benchmark):
    g = random_connected(24, 0.15, rng=951)
    approx = build_congestion_approximator(g, rng=952)
    demand = st_demand(g, 0, 23)
    print("\nE6: AlmostRoute iterations vs epsilon (alpha=%.2f)" % approx.alpha)
    iterations = {}
    for eps in (0.8, 0.4, 0.2):
        result = almost_route(g, approx, demand, eps)
        iterations[eps] = result.iterations
        print(f"    eps={eps}: iterations={result.iterations}, "
              f"converged={result.converged}")
    assert iterations[0.2] > iterations[0.8]

    benchmark(lambda: almost_route(g, approx, demand, 0.8).iterations)


def test_e6_alpha_scaling(benchmark):
    """Doubling α multiplies the per-step movement by ~1/4, so
    iterations should grow clearly (the α² factor of the analysis)."""
    g = random_connected(24, 0.15, rng=953)
    demand = st_demand(g, 0, 23)
    counts = {}
    for alpha in (1.5, 3.0, 6.0):
        approx = build_congestion_approximator(g, rng=954, alpha=alpha)
        result = almost_route(g, approx, demand, 0.5)
        counts[alpha] = result.iterations
    print("\nE6a: iterations vs alpha:", counts)
    assert counts[6.0] > counts[1.5]

    approx = build_congestion_approximator(g, rng=955, alpha=2.0)
    benchmark(lambda: almost_route(g, approx, demand, 0.5).iterations)


def test_e6_softmax_share(benchmark):
    """The ~27%-of-gradient-step claim, measured live.

    A gradient step is one ``_evaluate`` (residual, two soft-maxes,
    one R product) plus one ``_gradient_delta`` (one Rᵀ product and
    the per-edge combination); the two fused-path soft-max calls must
    stay a bounded minority of that bill.
    """
    g = random_connected(256, 0.05, rng=956)
    approx = build_congestion_approximator(g, rng=957, alpha=1.0)
    ws = RouteWorkspace(g, approx)
    caps = g.capacities()
    tails, heads = g.edge_index_arrays()
    rng = np.random.default_rng(958)
    b = rng.normal(size=g.num_nodes)
    b -= b.mean()
    ws.flow[:] = rng.normal(size=g.num_edges) * caps * 0.1

    def smax_pair():
        smax_and_gradient(ws.c1, out=ws.g1, scratch=ws.m_scratch)
        smax_and_gradient(ws.y, out=ws.g2, scratch=ws.r_scratch)

    def full_step():
        _evaluate(ws, g, approx, caps, 2.0, b, ws.flow)
        _gradient_delta(ws, approx, caps, tails, heads, 2.0)

    full_step()  # populate ws.c1 / ws.y with realistic arguments
    smax_s = _median_time(smax_pair, 200)
    step_s = _median_time(full_step, 100)
    share = smax_s / step_s
    print(
        f"\nE6s: soft-max share of a gradient step (n=256): "
        f"{share:.1%} ({smax_s * 1e6:.1f}us of {step_s * 1e6:.1f}us)"
    )
    # ~27% pre-fusion, lower after. This test runs inside the tier-1
    # sweep (pytest -x -q collects benchmarks/), so the bound only
    # guards the structural invariant — the two soft-maxes are a strict
    # subset of a step — at a margin that runner jitter cannot flake;
    # the honest share lives in the printed line.
    assert 0.0 < share < 0.9

    benchmark(smax_pair)
