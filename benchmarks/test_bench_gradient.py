"""E6 — Algorithm 2 analysis: gradient-descent iteration scaling.

The paper's bound is O(ε⁻³ α² log n) iterations. We measure iterations
against an ε sweep (expect strong growth as ε shrinks) and against the
α handed to the descent (expect growth roughly with α²; the step size
is δ/(1+4α²)).
"""

from __future__ import annotations

from repro.core import build_congestion_approximator
from repro.core.almost_route import almost_route
from repro.graphs.generators import random_connected
from repro.util.validation import st_demand


def test_e6_epsilon_scaling(benchmark):
    g = random_connected(24, 0.15, rng=951)
    approx = build_congestion_approximator(g, rng=952)
    demand = st_demand(g, 0, 23)
    print("\nE6: AlmostRoute iterations vs epsilon (alpha=%.2f)" % approx.alpha)
    iterations = {}
    for eps in (0.8, 0.4, 0.2):
        result = almost_route(g, approx, demand, eps)
        iterations[eps] = result.iterations
        print(f"    eps={eps}: iterations={result.iterations}, "
              f"converged={result.converged}")
    assert iterations[0.2] > iterations[0.8]

    benchmark(lambda: almost_route(g, approx, demand, 0.8).iterations)


def test_e6_alpha_scaling(benchmark):
    """Doubling α multiplies the per-step movement by ~1/4, so
    iterations should grow clearly (the α² factor of the analysis)."""
    g = random_connected(24, 0.15, rng=953)
    demand = st_demand(g, 0, 23)
    counts = {}
    for alpha in (1.5, 3.0, 6.0):
        approx = build_congestion_approximator(g, rng=954, alpha=alpha)
        result = almost_route(g, approx, demand, 0.5)
        counts[alpha] = result.iterations
    print("\nE6a: iterations vs alpha:", counts)
    assert counts[6.0] > counts[1.5]

    approx = build_congestion_approximator(g, rng=955, alpha=2.0)
    benchmark(lambda: almost_route(g, approx, demand, 0.5).iterations)
