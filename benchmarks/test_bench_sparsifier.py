"""E5 — Lemma 6.1: cut sparsifier size and cut preservation."""

from __future__ import annotations

import numpy as np

from repro.graphs.cuts import cut_capacity
from repro.graphs.generators import complete, erdos_renyi
from repro.sparsify import baswana_sen_spanner, sparsify


def test_e5_sparsifier_table(benchmark):
    print("\nE5: sparsifier size and cut preservation")
    for name, make in [
        ("K60", lambda: complete(60, rng=941)),
        ("K90", lambda: complete(90, rng=942)),
        ("ER(70,.5)", lambda: erdos_renyi(70, 0.5, rng=943)),
    ]:
        g = make()
        g.require_connected()
        result = sparsify(g, rng=944)
        rng = np.random.default_rng(945)
        ratios = []
        for _ in range(25):
            side = [v for v in range(g.num_nodes) if rng.random() < 0.5]
            if 0 < len(side) < g.num_nodes:
                ratios.append(
                    cut_capacity(result.graph, side) / cut_capacity(g, side)
                )
        n = g.num_nodes
        row = {
            "family": name,
            "m_in": g.num_edges,
            "m_out": result.graph.num_edges,
            "compression": round(g.num_edges / result.graph.num_edges, 2),
            "cut_ratio_min": round(min(ratios), 3),
            "cut_ratio_max": round(max(ratios), 3),
        }
        print("   ", row)
        # Õ(N) size: within a log^2 factor of N.
        assert result.graph.num_edges <= 4 * n * np.log2(n)
        # Cut preservation within a constant (paper: 1 ± o(1); constants
        # here reflect the small-n regime).
        assert 0.5 <= min(ratios) and max(ratios) <= 2.0

    g = complete(60, rng=946)
    benchmark(lambda: sparsify(g, rng=947).graph.num_edges)


def test_e5_spanner_size(benchmark):
    """The inner Baswana–Sen spanner: O(N log N) edges."""
    g = complete(80, rng=948)
    result = baswana_sen_spanner(g, rng=949)
    n = g.num_nodes
    print(f"\nE5s: spanner edges = {len(result.edge_ids)} (n log n = {n * np.log2(n):.0f})")
    assert len(result.edge_ids) <= 3 * n * np.log2(n)
    assert g.edge_subgraph(result.edge_ids).is_connected()
    benchmark(lambda: len(baswana_sen_spanner(g, rng=950).edge_ids))
