"""Shared fixtures for the benchmark/experiment harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``test_bench_*.py`` file regenerates one experiment from
EXPERIMENTS.md (the measurable form of one of the paper's claims) and
asserts its qualitative shape, while pytest-benchmark times the
representative core operation.
"""

from __future__ import annotations

import pytest

from repro.core import build_congestion_approximator
from repro.graphs.generators import grid, random_connected


@pytest.fixture(scope="session")
def bench_graph():
    """The standard benchmark instance: 48-node connected random graph."""
    return random_connected(48, 0.1, rng=901)


@pytest.fixture(scope="session")
def bench_grid():
    return grid(8, 8, rng=902)


@pytest.fixture(scope="session")
def bench_approximator(bench_graph):
    return build_congestion_approximator(bench_graph, rng=903)
