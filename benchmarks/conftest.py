"""Shared fixtures for the benchmark/experiment harness.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``test_bench_*.py`` file regenerates one experiment from
EXPERIMENTS.md (the measurable form of one of the paper's claims) and
asserts its qualitative shape, while pytest-benchmark times the
representative core operation.

After a benchmark session this conftest also emits
``BENCH_graphcore.json`` at the repo root: best-of-N timings of the
graph-substrate hot paths (BFS, contraction, tree decomposition, AKPW,
approximator build) measured on the standard generator graphs, next to
the same timings measured at the pre-CSR seed commit, so substrate
regressions show up as a ratio < 1 in one glance.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import build_congestion_approximator
from repro.core.almost_route import almost_route
from repro.graphs.generators import grid, path, random_connected, torus, weighted_variant


@pytest.fixture(scope="session")
def bench_graph():
    """The standard benchmark instance: 48-node connected random graph."""
    return random_connected(48, 0.1, rng=901)


@pytest.fixture(scope="session")
def bench_grid():
    return grid(8, 8, rng=902)


@pytest.fixture(scope="session")
def bench_approximator(bench_graph):
    return build_congestion_approximator(bench_graph, rng=903)


# ----------------------------------------------------------------------
# BENCH_graphcore.json — substrate before/after evidence
# ----------------------------------------------------------------------
#: Best-of-N seconds at the seed commit (pure-Python adjacency-list
#: substrate), measured with the same harness as `_measure_current`
#: (best-of is robust to the noisy-neighbor jitter of shared runners).
SEED_BASELINES = {
    "bfs_distances_path900": 1.4747e-04,
    "bfs_distances_grid64": 1.2269e-05,
    "connected_components_path900": 1.4970e-04,
    "contract_keep_parallel_path900": 8.4155e-04,
    "contract_merged_path900": 9.5443e-04,
    "diameter_grid64": 7.4485e-04,
    "decompose_tree_path400": 2.6393e-04,
    "decompose_tree_path900": 5.9255e-04,
    "akpw_torus81": 9.2411e-04,
    "akpw_weighted_torus64": 1.1083e-03,
    "approximator_build_n12": 1.1606e-02,
}

#: Median-of-N seconds at the PR 1 commit (array-native substrate, but
#: per-sample hierarchy recursion) for the batched-sampling rows added
#: in PR 2 — `build_congestion_approximator` at the scales the j-tree
#: recursion actually runs multi-level. Medians (not best-of) because
#: the CI regression gate compares medians.
PR1_BASELINES = {
    "approximator_build_n256": 1.41128e-01,
    "approximator_build_n1024": 5.19323e-01,
    "approximator_build_n4096": 2.434165e00,
}

#: (nodes, edge probability, generator seed, rng seed, reps) per
#: approximator benchmark row — shared with tools/bench_regression.py
#: so the CI gate measures exactly what the baseline records.
APPROXIMATOR_BENCH_CONFIG = {
    "approximator_build_n256": (256, 0.05, 940, 941, 5),
    "approximator_build_n1024": (1024, 0.012, 940, 941, 3),
    "approximator_build_n4096": (4096, 0.003, 940, 941, 3),
}

#: Median-of-N seconds at the PR 2 commit (per-tree operator loop with
#: np.add.at, allocating AlmostRoute inner loop) for the apply-path
#: rows added in PR 3 — R·b / Rᵀ·g products and one AlmostRoute solve
#: at the same instances the build rows use.
PR2_BASELINES = {
    "approximator_apply_n256": 5.5612e-05,
    "approximator_apply_transpose_n256": 6.3878e-05,
    "almost_route_n256": 5.255766e-02,
    "approximator_apply_n1024": 1.440910e-04,
    "approximator_apply_transpose_n1024": 1.5913e-04,
    "almost_route_n1024": 1.363081e-01,
}

#: nodes -> (edge probability, generator seed, build rng seed,
#: data seed, operator reps, route reps) per apply-path benchmark
#: scale — shared with tools/bench_regression.py and
#: benchmarks/test_bench_almost_route.py.
APPLY_BENCH_CONFIG = {
    256: (0.05, 940, 941, 77, 200, 7),
    1024: (0.012, 940, 941, 77, 100, 5),
}

#: nodes -> (edge probability, generator seed, build rng seed, data
#: seed, operator reps, bfs reps, hop reps, mwu reps) for the sharded-
#: execution rows: flat-serial vs sharded medians of R·b / Rᵀ·g,
#: frontier BFS, multi-source hop distances and the stacked MWU length
#: evaluation at the scale where sharding is on by default
#: (n + 2m >> SMALL_GRAPH_LIMIT).
SHARDED_BENCH_CONFIG = {4096: (0.003, 940, 941, 77, 60, 20, 5, 40)}
#: Source count for the hop_distances_sharded_n* rows and sample-row
#: count for the mwu_lengths_sharded_n* rows (the O(log n) stack the
#: batched hierarchy evaluates).
SHARDED_BENCH_HOP_SOURCES = 64
SHARDED_BENCH_MWU_SAMPLES = 12
#: The sharded rows run the documented env default (REPRO_WORKERS=2 →
#: thread pool), forced past the adaptive threshold. On a single-core
#: runner the thread pool serializes and the rows show the scheduling
#: overhead (speedup <= 1); on multi-core CI they show the win. The
#: regression gate compares like against like (sharded vs recorded
#: sharded), so the rows guard the sharded path's own trend either way.
SHARDED_BENCH_WORKERS = 2
SHARDED_BENCH_BACKEND = "thread"
#: AlmostRoute solve parameters for the almost_route_n* rows (a fixed
#: iteration budget keeps the timed workload deterministic).
APPLY_BENCH_ROUTE_EPSILON = 0.5
APPLY_BENCH_ROUTE_MAX_ITERATIONS = 200

#: name -> (nodes, query count, reps) for the serving rows: Q
#: sequential one-shot `almost_route` calls vs one stacked
#: `almost_route_batch` call on the same (serial-pinned) instance the
#: apply rows use. Like the sharded rows these are live pairs — both
#: columns measured in one session, plain solver, fixed iteration
#: budget — so the row tracks the batched kernel's own cost trend
#: (bit-identity makes the comparison pure scheduling/memory, never
#: accuracy). The headline serving speedup (accelerated solver, chunked
#: batches, ≥3x at Q=64) lives in BENCH_serving.json instead, since it
#: compares across solvers.
SERVING_BENCH_CONFIG = {
    "route_batch_q8_n1024": (1024, 8, 3),
    "route_batch_q64_n1024": (1024, 64, 3),
}
SERVING_BENCH_EPSILON = 0.5
SERVING_BENCH_MAX_ITERATIONS = 60


def _best_time(fn, reps: int) -> float:
    values = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        values.append(time.perf_counter() - start)
    return min(values)


def _median_time(fn, reps: int) -> float:
    values = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        values.append(time.perf_counter() - start)
    values.sort()
    return values[len(values) // 2]


def measure_approximator_benchmarks() -> dict[str, float]:
    """Median build_congestion_approximator wall-clock per config row
    (also invoked by tools/bench_regression.py for the CI gate)."""
    out = {}
    for name, (n, p, gseed, rseed, reps) in APPROXIMATOR_BENCH_CONFIG.items():
        g = random_connected(n, p, rng=gseed)
        out[name] = _median_time(
            lambda: build_congestion_approximator(g, rng=rseed, alpha=1.0),
            reps,
        )
    return out


def apply_bench_instance(n: int):
    """The (graph, approximator, demand, row_values) tuple every
    apply-path benchmark row is measured on.

    The approximator is pinned to serial execution: these rows measure
    the flat-vs-per-tree fusion, so a ``REPRO_WORKERS`` environment
    (e.g. the sharded CI tier-1 job) must not silently reroute the
    "flat" column onto a worker pool.
    """
    from repro.parallel import ParallelConfig

    p, gseed, rseed, dseed, _, _ = APPLY_BENCH_CONFIG[n]
    g = random_connected(n, p, rng=gseed)
    approx = build_congestion_approximator(
        g, rng=rseed, alpha=1.0, parallel=ParallelConfig()
    )
    rng = np.random.default_rng(dseed)
    demand = rng.normal(size=n)
    demand -= demand.mean()
    row_values = rng.normal(size=approx.num_rows)
    return g, approx, demand, row_values


def measure_apply_benchmarks() -> dict[str, float]:
    """Median R·b / Rᵀ·g product and AlmostRoute-solve wall-clock per
    scale (also invoked by tools/bench_regression.py for the CI gate).

    Measured on the default adaptive operator mode, i.e. the flat
    stacked pass at these scales.
    """
    out = {}
    for n, (_, _, _, _, op_reps, route_reps) in APPLY_BENCH_CONFIG.items():
        g, approx, demand, row_values = apply_bench_instance(n)
        out[f"approximator_apply_n{n}"] = _median_time(
            lambda: approx.apply(demand), op_reps
        )
        out[f"approximator_apply_transpose_n{n}"] = _median_time(
            lambda: approx.apply_transpose(row_values), op_reps
        )
        out[f"almost_route_n{n}"] = _median_time(
            lambda: almost_route(
                g,
                approx,
                demand,
                APPLY_BENCH_ROUTE_EPSILON,
                max_iterations=APPLY_BENCH_ROUTE_MAX_ITERATIONS,
            ),
            route_reps,
        )
    return out


def measure_execution_backend_benchmarks() -> dict[str, dict[str, float]]:
    """Serial vs sharded medians for the execution-backend rows.

    Returns ``name -> {"serial_s": ..., "sharded_s": ...}`` where the
    sharded medians run ``SHARDED_BENCH_WORKERS`` workers on the
    ``SHARDED_BENCH_BACKEND`` pool (also invoked by
    tools/bench_regression.py for the CI gate). Sharded results are
    bit-identical to serial by contract, so the rows measure pure
    scheduling, never accuracy.
    """
    from repro.graphs import kernels
    from repro.jtree.mwu import mwu_lengths
    from repro.parallel import ParallelConfig

    out: dict[str, dict[str, float]] = {}
    for n, (p, gseed, rseed, dseed, op_reps, bfs_reps, hop_reps, mwu_reps) in (
        SHARDED_BENCH_CONFIG.items()
    ):
        config = ParallelConfig(
            workers=SHARDED_BENCH_WORKERS,
            backend=SHARDED_BENCH_BACKEND,
            min_size=0,
        )
        serial = ParallelConfig()  # pin: immune to REPRO_WORKERS
        g = random_connected(n, p, rng=gseed)
        approx = build_congestion_approximator(g, rng=rseed, alpha=1.0)
        stacked = approx.stacked()
        rng = np.random.default_rng(dseed)
        demand = rng.normal(size=n)
        demand -= demand.mean()
        row_values = rng.normal(size=approx.num_rows)
        row_out = np.empty(approx.num_rows)
        node_out = np.empty(n)
        csr = g.csr()
        out[f"approximator_apply_sharded_n{n}"] = {
            "serial_s": _median_time(
                lambda: stacked.apply(demand, out=row_out, parallel=serial),
                op_reps,
            ),
            "sharded_s": _median_time(
                lambda: stacked.apply(demand, out=row_out, parallel=config),
                op_reps,
            ),
        }
        out[f"approximator_apply_transpose_sharded_n{n}"] = {
            "serial_s": _median_time(
                lambda: stacked.apply_transpose(
                    row_values, out=node_out, parallel=serial
                ),
                op_reps,
            ),
            "sharded_s": _median_time(
                lambda: stacked.apply_transpose(
                    row_values, out=node_out, parallel=config
                ),
                op_reps,
            ),
        }
        out[f"bfs_levels_sharded_n{n}"] = {
            "serial_s": _median_time(
                lambda: kernels.bfs_levels(csr, 0, parallel=serial), bfs_reps
            ),
            "sharded_s": _median_time(
                lambda: kernels.bfs_levels(csr, 0, parallel=config), bfs_reps
            ),
        }
        sources = np.arange(
            0, n, max(1, n // SHARDED_BENCH_HOP_SOURCES), dtype=np.int64
        )[:SHARDED_BENCH_HOP_SOURCES]
        out[f"hop_distances_sharded_n{n}"] = {
            "serial_s": _median_time(
                lambda: kernels.multi_source_hop_distances(
                    csr, sources, parallel=serial
                ),
                hop_reps,
            ),
            "sharded_s": _median_time(
                lambda: kernels.multi_source_hop_distances(
                    csr, sources, parallel=config
                ),
                hop_reps,
            ),
        }
        caps = g.capacities()
        stack = np.random.default_rng(dseed + 1).uniform(
            0.0, 60.0, size=(SHARDED_BENCH_MWU_SAMPLES, g.num_edges)
        )
        out[f"mwu_lengths_sharded_n{n}"] = {
            "serial_s": _median_time(
                lambda: mwu_lengths(stack, caps, parallel=serial), mwu_reps
            ),
            "sharded_s": _median_time(
                lambda: mwu_lengths(stack, caps, parallel=config), mwu_reps
            ),
        }
    return out


def measure_serving_benchmarks() -> dict[str, dict[str, float]]:
    """Sequential vs batched medians for the multi-demand routing rows.

    Returns ``name -> {"sequential_s": ..., "batched_s": ...}`` where
    sequential is Q one-shot ``almost_route`` calls and batched is one
    ``almost_route_batch`` call over the same ``(Q, n)`` demand plane
    (also invoked by tools/bench_regression.py for the CI gate). Both
    run the plain solver with a fixed iteration budget on the
    serial-pinned apply-bench instance, so the pair isolates the
    stacked kernel's per-column cost from solver and scheduling
    choices.
    """
    from repro.core.almost_route import almost_route_batch

    out: dict[str, dict[str, float]] = {}
    instances: dict[int, tuple] = {}
    for name, (n, num_queries, reps) in SERVING_BENCH_CONFIG.items():
        if n not in instances:
            instances[n] = apply_bench_instance(n)
        g, approx, _, _ = instances[n]
        _, _, _, dseed, _, _ = APPLY_BENCH_CONFIG[n]
        rng = np.random.default_rng(dseed)
        plane = rng.normal(size=(num_queries, n))
        plane -= plane.mean(axis=1, keepdims=True)

        def run_sequential():
            for q in range(num_queries):
                almost_route(
                    g,
                    approx,
                    plane[q],
                    SERVING_BENCH_EPSILON,
                    max_iterations=SERVING_BENCH_MAX_ITERATIONS,
                )

        out[name] = {
            "sequential_s": _median_time(run_sequential, reps),
            "batched_s": _median_time(
                lambda: almost_route_batch(
                    g,
                    approx,
                    plane,
                    SERVING_BENCH_EPSILON,
                    max_iterations=SERVING_BENCH_MAX_ITERATIONS,
                ),
                reps,
            ),
        }
    return out


def _measure_current() -> dict[str, float]:
    from repro.cluster import decompose_tree
    from repro.graphs.trees import bfs_tree
    from repro.lsst import akpw_spanning_tree

    p900 = path(900, rng=975)
    tree400 = bfs_tree(path(400, rng=974), root=0)
    tree900 = bfs_tree(p900, root=0)
    g8 = grid(8, 8, rng=902)
    t99 = torus(9, 9, rng=921)
    gw = weighted_variant(torus(8, 8, rng=923), spread=10_000.0, rng=924)
    weighted_lengths = 1.0 / gw.capacities()
    g12 = random_connected(12, 0.3, rng=931)
    labels = [v % 30 for v in range(p900.num_nodes)]
    return {
        "bfs_distances_path900": _best_time(lambda: p900.bfs_distances(0), 30),
        "bfs_distances_grid64": _best_time(lambda: g8.bfs_distances(0), 30),
        "connected_components_path900": _best_time(
            p900.connected_components, 30
        ),
        "contract_keep_parallel_path900": _best_time(
            lambda: p900.contract(labels, keep_parallel=True), 20
        ),
        "contract_merged_path900": _best_time(
            lambda: p900.contract(labels, keep_parallel=False), 20
        ),
        "diameter_grid64": _best_time(g8.diameter, 5),
        "decompose_tree_path400": _best_time(
            lambda: decompose_tree(tree400, rng=0).num_components, 30
        ),
        "decompose_tree_path900": _best_time(
            lambda: decompose_tree(tree900, rng=1).max_depth, 30
        ),
        "akpw_torus81": _best_time(
            lambda: akpw_spanning_tree(t99, rng=0), 40
        ),
        "akpw_weighted_torus64": _best_time(
            lambda: akpw_spanning_tree(gw, lengths=weighted_lengths, rng=1), 40
        ),
        "approximator_build_n12": _best_time(
            lambda: build_congestion_approximator(
                g12, num_trees=5, rng=935, alpha=1.0
            ),
            5,
        ),
    }


def pytest_sessionfinish(session, exitstatus):
    """Emit BENCH_graphcore.json after a green benchmark session.

    Opt-in via ``BENCH_GRAPHCORE_WRITE=1``: the measurement pass costs
    ~10 s (it includes the n=4096 approximator builds) and rewrites a
    checked-in file, which a casual ``pytest benchmarks -k ...`` run —
    or the CI regression gate's own baseline — must not pay or clobber
    as a side effect.
    """
    if exitstatus != 0:
        return
    if os.environ.get("BENCH_GRAPHCORE_WRITE") != "1":
        return
    try:
        current = _measure_current()
    except Exception:  # measurement must never fail the session
        return
    try:
        approx = measure_approximator_benchmarks()
    except Exception:
        approx = {}
    try:
        apply_rows = measure_apply_benchmarks()
    except Exception:
        apply_rows = {}
    try:
        backend_rows = measure_execution_backend_benchmarks()
    except Exception:
        backend_rows = {}
    try:
        serving_rows = measure_serving_benchmarks()
    except Exception:
        serving_rows = {}
    metrics = {
        name: {
            "before_s": SEED_BASELINES[name],
            "after_s": current[name],
            "speedup": round(SEED_BASELINES[name] / current[name], 2),
        }
        for name in SEED_BASELINES
    }
    for name, measured in approx.items():
        metrics[name] = {
            "before_s": PR1_BASELINES[name],
            "after_s": measured,
            "speedup": round(PR1_BASELINES[name] / measured, 2),
        }
    for name, measured in apply_rows.items():
        metrics[name] = {
            "before_s": PR2_BASELINES[name],
            "after_s": measured,
            "speedup": round(PR2_BASELINES[name] / measured, 2),
        }
    for name, pair in backend_rows.items():
        # before = serial median, after = sharded median, both from
        # this session: the row is the live serial-vs-sharded ratio.
        metrics[name] = {
            "before_s": pair["serial_s"],
            "after_s": pair["sharded_s"],
            "speedup": round(pair["serial_s"] / pair["sharded_s"], 2),
        }
    for name, pair in serving_rows.items():
        # before = Q sequential one-shot solves, after = one stacked
        # batch, both from this session: the live batching ratio.
        metrics[name] = {
            "before_s": pair["sequential_s"],
            "after_s": pair["batched_s"],
            "speedup": round(pair["sequential_s"] / pair["batched_s"], 2),
        }
    report = {
        "description": (
            "Graph-substrate hot-path timings (seconds). bfs/contract/"
            "decompose/akpw rows: best-of-N, seed commit (pure-Python "
            "adjacency lists) vs current. approximator_build_n{256,1024,"
            "4096} rows: median-of-N, PR 1 (per-sample hierarchy "
            "recursion) vs current (batched level-synchronous sampling "
            "+ persistent quotient CSR + int32 indices). "
            "approximator_apply*/almost_route rows: median-of-N, PR 2 "
            "(per-tree operator loop with np.add.at, allocating "
            "AlmostRoute inner loop) vs current (flat stacked operator "
            "+ workspace-buffered AlmostRoute). *_sharded_n4096 rows: "
            "median-of-N serial vs sharded (REPRO_WORKERS=2, thread "
            "pool) execution of the same kernel, measured in one "
            "session — bit-identical outputs by contract, so the ratio "
            "is pure scheduling (>= 1 on multi-core hosts, <= 1 where "
            "one core serializes the pool; the CI gate tracks the "
            "sharded column against itself, not against serial). "
            "route_batch_q{8,64}_n1024 rows: median-of-N, Q sequential "
            "one-shot plain almost_route solves vs one stacked "
            "almost_route_batch call over the same (Q, n) plane, fixed "
            "60-iteration budget, serial-pinned — per-column "
            "bit-identical by contract, so the ratio is the stacked "
            "kernel's per-column cost trend (the gate tracks the "
            "batched column against itself; the cross-solver serving "
            "speedup is recorded in BENCH_serving.json)."
        ),
        "metrics": metrics,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_graphcore.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
