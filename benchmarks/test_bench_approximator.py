"""E4 — Theorem 8.10 + Lemma 3.3: congestion-approximator quality.

Regenerates the α-quality table: for random and s-t demands, the ratio
opt(b) / ‖Rb‖∞ (≥ 1 by soundness, ≤ α by the sampling argument). Also
compares the three constructions (paper hierarchy, flat Räcke MWU,
naive BFS+MST) — the ablation of DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.core import build_congestion_approximator
from repro.graphs.cuts import sparsest_cut_brute_force
from repro.graphs.generators import random_connected
from repro.util.validation import st_demand


def _quality_ratios(graph, approx, rng, trials=12):
    """opt / estimate over random demands (brute-force opt)."""
    ratios = []
    for _ in range(trials):
        demand = rng.normal(size=graph.num_nodes)
        demand -= demand.mean()
        _, opt = sparsest_cut_brute_force(graph, demand)
        estimate = approx.estimate(demand)
        if estimate > 0:
            ratios.append(opt / estimate)
    return np.asarray(ratios)


def test_e4_quality_table(benchmark):
    g = random_connected(12, 0.3, rng=931)
    rng = np.random.default_rng(932)
    print("\nE4: opt(b)/|Rb|_inf by construction method (n=12, brute-force opt)")
    results = {}
    for method in ("hierarchy", "mwu", "bfs"):
        approx = build_congestion_approximator(
            g, num_trees=5, rng=933, method=method, alpha=1.0
        )
        ratios = _quality_ratios(g, approx, np.random.default_rng(934))
        results[method] = ratios
        print(
            f"    {method:>9}: mean={ratios.mean():.3f} "
            f"max={ratios.max():.3f} (soundness: min={ratios.min():.3f})"
        )
        # Soundness: estimate never exceeds opt.
        assert ratios.min() >= 1.0 - 1e-9
        # Quality: alpha stays modest at this scale.
        assert ratios.max() < 25.0

    benchmark(
        lambda: build_congestion_approximator(
            g, num_trees=5, rng=935, alpha=1.0
        ).num_rows
    )


def test_e4_st_demand_quality(benchmark, bench_graph, bench_approximator):
    """s-t demands: opt = 1/maxflow exactly; measure the ratio on the
    standard benchmark instance."""
    from repro.flow import dinic_max_flow

    worst = 1.0
    for s, t in [(0, 47), (3, 31), (9, 20)]:
        demand = st_demand(bench_graph, s, t)
        opt = 1.0 / dinic_max_flow(bench_graph, s, t).value
        estimate = bench_approximator.estimate(demand)
        worst = max(worst, opt / estimate)
        assert estimate <= opt + 1e-12
    print(f"\nE4st: worst opt/estimate on s-t demands = {worst:.3f}")
    assert worst <= bench_approximator.alpha * 1.05

    demand = st_demand(bench_graph, 0, 47)
    benchmark(lambda: bench_approximator.estimate(demand))


def test_e4_more_trees_weakly_better(benchmark):
    """Lemma 3.3: more samples can only help the upper bound."""
    g = random_connected(12, 0.3, rng=936)
    rng = np.random.default_rng(937)
    few = build_congestion_approximator(g, num_trees=2, rng=938, alpha=1.0)
    many = build_congestion_approximator(g, num_trees=10, rng=938, alpha=1.0)
    ratios_few = _quality_ratios(g, few, rng)
    ratios_many = _quality_ratios(g, many, np.random.default_rng(937))
    print(
        f"\nE4trees: max ratio 2 trees={ratios_few.max():.3f}, "
        f"10 trees={ratios_many.max():.3f}"
    )
    assert ratios_many.max() <= ratios_few.max() * 1.25
    benchmark(lambda: many.estimate(st_demand(g, 0, 11)))
