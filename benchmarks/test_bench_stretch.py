"""E3 — Theorem 3.1: average stretch of AKPW spanning trees.

Regenerates the stretch-vs-n series: the claim is expected stretch
2^O(√(log n log log n)), i.e. subpolynomial — the measured average
stretch must grow far slower than n (we assert slower than √n across a
quadrupling of n), on both unweighted and weighted instances.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.generators import torus, weighted_variant
from repro.lsst import akpw_spanning_tree, summarize_stretch


def _average_stretch(graph, seeds, lengths=None):
    values = []
    for seed in seeds:
        tree = akpw_spanning_tree(graph, lengths=lengths, rng=seed).tree
        values.append(summarize_stretch(graph, tree, lengths)["average"])
    return float(np.mean(values))


def test_e3_stretch_scaling_table(benchmark):
    print("\nE3: average stretch vs n (tori)")
    rows = []
    for side in (6, 9, 12):
        g = torus(side, side, rng=921)
        stretch = _average_stretch(g, range(3))
        rows.append({"n": g.num_nodes, "avg_stretch": round(stretch, 2)})
        print("   ", rows[-1])
    # Subpolynomial shape: quadrupling n (36 -> 144) grows stretch by
    # far less than sqrt(4) = 2 would if stretch ~ sqrt(n).
    small, large = rows[0]["avg_stretch"], rows[-1]["avg_stretch"]
    n_ratio = rows[-1]["n"] / rows[0]["n"]
    assert large / small < n_ratio ** 0.5

    g = torus(9, 9, rng=922)
    benchmark(lambda: akpw_spanning_tree(g, rng=0).tree.num_nodes)


def test_e3_weighted_stretch(benchmark):
    """Weighted lengths (the Madry-construction regime): stretch stays
    bounded when capacities (and thus lengths) spread over 4 orders of
    magnitude."""
    g = weighted_variant(torus(8, 8, rng=923), spread=10_000.0, rng=924)
    lengths = 1.0 / g.capacities()
    stretch = _average_stretch(g, range(3), lengths=lengths)
    print(f"\nE3w: weighted average stretch = {stretch:.2f}")
    assert stretch < 40.0
    benchmark(
        lambda: akpw_spanning_tree(g, lengths=lengths, rng=1).iterations
    )
