"""Ablation benches for the design choices DESIGN.md calls out:

* accelerated (footnote 3) vs plain gradient descent;
* approximator construction method (hierarchy / MWU / naive), graded
  against exact all-pairs min cuts from a Gomory–Hu tree;
* sparsified vs unsparsified cores in the hierarchy.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core import build_congestion_approximator
from repro.core.accelerated import accelerated_almost_route
from repro.core.almost_route import almost_route
from repro.flow import gomory_hu_tree
from repro.graphs.generators import complete, random_connected
from repro.jtree import HierarchyParams, sample_virtual_tree
from repro.util.validation import st_demand


def test_ablation_accelerated_descent(benchmark):
    """Footnote 3: momentum should cut iterations at tight epsilon."""
    g = random_connected(26, 0.15, rng=1001)
    approx = build_congestion_approximator(g, rng=1002)
    demand = st_demand(g, 0, 25)
    print("\nAblation: plain vs accelerated AlmostRoute iterations")
    for eps in (0.4, 0.2):
        plain = almost_route(g, approx, demand, eps)
        fast = accelerated_almost_route(g, approx, demand, eps)
        print(
            f"    eps={eps}: plain={plain.iterations} "
            f"accelerated={fast.iterations} "
            f"speedup={plain.iterations / max(fast.iterations, 1):.2f}x"
        )
        assert fast.converged
        assert fast.iterations <= plain.iterations * 1.1
    benchmark(lambda: accelerated_almost_route(g, approx, demand, 0.4).iterations)


def test_ablation_approximator_methods_exhaustive(benchmark):
    """Grade each construction against exact all-pairs min cuts."""
    g = random_connected(16, 0.25, rng=1003)
    ght = gomory_hu_tree(g)
    print("\nAblation: worst opt/estimate over ALL s-t pairs (n=16)")
    worst_by_method = {}
    for method in ("hierarchy", "mwu", "bfs"):
        approx = build_congestion_approximator(
            g, num_trees=5, rng=1004, method=method, alpha=1.0
        )
        worst = 1.0
        for u, v in itertools.combinations(range(16), 2):
            opt = 1.0 / ght.min_cut_value(u, v)
            estimate = approx.estimate(st_demand(g, u, v))
            assert estimate <= opt + 1e-9  # soundness for every method
            worst = max(worst, opt / estimate)
        worst_by_method[method] = worst
        print(f"    {method:>9}: worst alpha = {worst:.3f}")
    # The paper's construction should be competitive with the flat MWU.
    assert worst_by_method["hierarchy"] <= worst_by_method["bfs"] * 1.5
    benchmark(
        lambda: build_congestion_approximator(
            g, num_trees=5, rng=1005, alpha=1.0
        ).num_trees
    )


def test_ablation_core_sparsification(benchmark):
    """Sparsifying cores (the paper's Lemma 6.1 step) changes work, not
    soundness: both variants produce sound virtual trees; sparsified
    cores touch fewer edges per level on dense inputs."""
    g = complete(40, rng=1006)
    params_on = HierarchyParams(sparsify_cores=True)
    params_off = HierarchyParams(sparsify_cores=False)
    with_s = sample_virtual_tree(g, rng=1007, params=params_on)
    without = sample_virtual_tree(g, rng=1007, params=params_off)
    print(
        f"\nAblation: sparsified cores -> sparsifier_rounds="
        f"{with_s.sparsifier_rounds}; unsparsified -> "
        f"{without.sparsifier_rounds}"
    )
    assert with_s.sparsifier_rounds >= 1
    assert without.sparsifier_rounds == 0
    # Both are valid spanning trees with positive cut capacities.
    for vt in (with_s, without):
        children = [v for v in range(40) if vt.tree.parent[v] >= 0]
        assert all(vt.tree.capacity[v] > 0 for v in children)
    benchmark(
        lambda: sample_virtual_tree(g, rng=1008, params=params_on).levels
    )


def test_ablation_distributed_components(benchmark):
    """Measured rounds of the three genuinely distributed subroutines
    against their charged bounds (extends E9 to the heavy pieces)."""
    from repro.congest import (
        distributed_spanning_tree,
        distributed_tree_flow,
    )
    from repro.graphs.trees import bfs_tree

    g = random_connected(24, 0.15, rng=1009)
    mst_run = distributed_spanning_tree(g, maximize=True)
    tree = bfs_tree(g, root=0)
    flow_run = distributed_tree_flow(g, tree)
    print(
        f"\nDistributed components on n=24: Boruvka MST "
        f"{mst_run.rounds} rounds ({mst_run.phases} phases); "
        f"Lemma 8.1 tree flow {flow_run.rounds} rounds "
        f"(tree height {tree.height()})"
    )
    assert mst_run.phases <= 24 .bit_length() + 1
    assert flow_run.rounds <= 6 * (tree.height() + 2)
    benchmark(lambda: distributed_tree_flow(g, tree).rounds)
