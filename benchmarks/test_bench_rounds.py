"""E1 — Theorem 1.1: round complexity vs baselines.

Regenerates the headline comparison: estimated CONGEST rounds of the
paper's pipeline (per-lemma charges driven by measured operation
counts) against (a) measured distributed push-relabel rounds and (b)
the trivial O(m) collect-everything bound, on a family of constant-
diameter barbells where the separation is starkest.
"""

from __future__ import annotations

from repro.congest import CostModel, distributed_push_relabel
from repro.core import estimate_rounds, max_flow
from repro.core.approximator import TreeCongestionApproximator, TreeOperator
from repro.graphs.generators import barbell
from repro.jtree import sample_virtual_tree
from repro.util.rng import as_generator, spawn


def _pipeline_rounds(graph, source, sink, epsilon=0.5, seed=904):
    rng = as_generator(seed)
    samples = [sample_virtual_tree(graph, rng=r) for r in spawn(rng, 3)]
    approx = TreeCongestionApproximator(
        graph, [TreeOperator(s.tree) for s in samples], alpha=2.5
    )
    result = max_flow(graph, source, sink, epsilon=epsilon, approximator=approx)
    return estimate_rounds(
        graph, samples, result.congestion_result, epsilon
    )


def test_e1_round_complexity_table(benchmark):
    """Prints the E1 table and asserts the scaling shape: push-relabel
    rounds grow ~n at constant D while the paper's (D + √n) base grows
    ~√n; the trivial bound grows with m."""
    rows = []
    for k in (6, 10, 14):
        g = barbell(k, bridge_capacity=1.0, rng=905, max_capacity=10)
        pr = distributed_push_relabel(g, 0, k)
        model = CostModel.for_graph(g)
        est = _pipeline_rounds(g, 0, k)
        rows.append(
            {
                "n": g.num_nodes,
                "m": g.num_edges,
                "D": g.diameter(),
                "push_relabel_rounds": pr.rounds,
                "trivial_rounds": model.trivial_upper_bound(g.num_edges),
                "base_D_sqrt_n": round(model.base, 1),
                "pipeline_estimate": round(est.total, 0),
                "theorem_bound": round(model.theorem_1_1_bound(0.5), 0),
            }
        )
    print("\nE1: rounds vs baselines (constant-diameter barbells)")
    for row in rows:
        print("   ", row)
    # Shape assertions: PR grows at least ~linearly in n, base ~sqrt n.
    n_growth = rows[-1]["n"] / rows[0]["n"]
    pr_growth = rows[-1]["push_relabel_rounds"] / rows[0]["push_relabel_rounds"]
    base_growth = rows[-1]["base_D_sqrt_n"] / rows[0]["base_D_sqrt_n"]
    assert pr_growth > base_growth
    assert pr_growth > 0.6 * n_growth

    # Benchmark the measured-baseline run on the middle instance.
    g = barbell(10, bridge_capacity=1.0, rng=905, max_capacity=10)
    benchmark(lambda: distributed_push_relabel(g, 0, 10).rounds)


def test_e1_trivial_bound_dominates_base(benchmark, bench_graph):
    """On any dense-enough instance, m exceeds D + √n — the paper's
    point that collecting the topology is wasteful."""
    model = CostModel.for_graph(bench_graph)
    assert model.trivial_upper_bound(bench_graph.num_edges) > model.base
    benchmark(lambda: CostModel.for_graph(bench_graph).base)
