"""E8 — Lemma 8.2: random tree decomposition bounds."""

from __future__ import annotations

import math

import numpy as np

from repro.cluster import decompose_tree
from repro.graphs.generators import caterpillar, path, random_connected
from repro.graphs.trees import bfs_tree


def test_e8_component_and_depth_bounds(benchmark):
    print("\nE8: tree decomposition (Lemma 8.2) — components ~ sqrt(n), depth ~ sqrt(n) log n")
    for name, make in [
        ("path400", lambda: path(400, rng=971)),
        ("caterpillar", lambda: caterpillar(120, 2, rng=972)),
        ("random300", lambda: random_connected(300, 0.01, rng=973)),
    ]:
        g = make()
        tree = bfs_tree(g, root=0)
        comps, depths = [], []
        for seed in range(5):
            deco = decompose_tree(tree, rng=seed)
            comps.append(deco.num_components)
            depths.append(deco.max_depth)
        n = g.num_nodes
        row = {
            "family": name,
            "n": n,
            "tree_height": tree.height(),
            "mean_components": round(float(np.mean(comps)), 1),
            "sqrt_n": round(math.sqrt(n), 1),
            "mean_max_depth": round(float(np.mean(depths)), 1),
            "bound": round(math.sqrt(n) * math.log(n), 1),
        }
        print("   ", row)
        assert np.mean(comps) < 4 * math.sqrt(n)
        assert np.mean(depths) < 3 * math.sqrt(n) * math.log(n)

    g = path(400, rng=974)
    tree = bfs_tree(g, root=0)
    benchmark(lambda: decompose_tree(tree, rng=0).num_components)


def test_e8_depth_much_below_tree_height(benchmark):
    """The point of the lemma: a depth-n tree becomes depth-Õ(√n)."""
    g = path(900, rng=975)
    tree = bfs_tree(g, root=0)
    depths = [decompose_tree(tree, rng=s).max_depth for s in range(5)]
    print(f"\nE8d: height {tree.height()} -> mean decomposed depth {np.mean(depths):.0f}")
    assert np.mean(depths) < tree.height() / 3
    benchmark(lambda: decompose_tree(tree, rng=1).max_depth)
