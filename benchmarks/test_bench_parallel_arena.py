"""Bench-session accounting for the process pool's persistent arena.

The ``*_sharded_n4096`` rows in BENCH_graphcore.json track the sharded
kernels' wall-clock; this module tracks the *orchestration* invariant
behind them: across an entire level-synchronous BFS run the process
backend must export each invariant CSR array into shared memory **at
most once** (PR 4 exported once per level). A regression here wouldn't
change a single output bit — only quietly re-introduce the per-level
export tax the arena exists to delete — so it is asserted directly on
the arena's counters rather than inferred from timings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import kernels
from repro.graphs.generators import random_connected
from repro.parallel import ParallelConfig, get_pool, shutdown_pools
from repro.parallel.pool import _fork_available

pytestmark = pytest.mark.skipif(
    not _fork_available(), reason="process backend requires fork"
)


def test_arena_exports_each_invariant_array_at_most_once_per_bfs_run():
    graph = random_connected(512, 0.02, rng=960)
    csr = graph.csr()
    config = ParallelConfig(workers=2, backend="process", min_size=0)
    shutdown_pools()
    pool = get_pool(config)
    try:
        serial = kernels.bfs_levels(csr, 0)
        sharded = kernels.bfs_levels(csr, 0, parallel=config)
        assert np.array_equal(serial, sharded)
        assert int(serial.max()) >= 2  # the run really was multi-level
        # indptr / neighbor / edge_id: one export each, full stop.
        assert pool._arena.export_count <= 3
        assert pool._arena.reuse_count > 0
        # Subsequent runs in the same session stay at zero new exports.
        kernels.bfs_levels(csr, 0, parallel=config)
        assert pool._arena.export_count <= 3
    finally:
        shutdown_pools()
