"""E7 — Lemma 8.5 / Figures 1 & 5: j-tree structure.

Regenerates the structural table: portal counts versus the 4j bound,
core shrinkage across hierarchy levels, and the embedding-soundness
check (the sampled virtual tree's cuts never beat the graph's optimum).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.generators import grid, random_connected
from repro.jtree import (
    HierarchyParams,
    madry_jtree_step,
    sample_virtual_tree,
)


def test_e7_portal_bound_table(benchmark):
    print("\nE7: portals vs the 4j bound (Lemma 8.5, topj policy)")
    g = random_connected(60, 0.08, rng=961)
    for j in (2, 4, 8):
        step = madry_jtree_step(g, None, j=j, rng=962, removal_policy="topj")
        portals = len(step.skeleton.portals)
        f_size = len(step.removed_edges)
        print(
            f"    j={j}: |F|={f_size}, portals={portals}, bound 4j={4 * j}, "
            f"components={step.num_components}"
        )
        assert f_size <= j
        # Lemma 8.5: |P| < 4|F| (+1 for the degenerate F=empty portal).
        assert portals <= 4 * max(f_size, 1) + 1
    benchmark(
        lambda: madry_jtree_step(
            g, None, j=4, rng=963, removal_policy="topj"
        ).num_components
    )


def test_e7_core_shrinkage(benchmark):
    """Cluster counts along the hierarchy shrink geometrically (the
    "topj" policy forces Θ(j)-size cores so the recursion is genuinely
    multi-level, cf. §8.2)."""
    g = grid(9, 9, rng=964)
    params = HierarchyParams(
        beta=2, final_threshold=4, trees_per_level=2, removal_policy="topj"
    )
    vt = sample_virtual_tree(g, rng=965, params=params)
    print(f"\nE7h: cluster counts per level = {vt.cluster_counts}")
    counts = vt.cluster_counts
    assert counts[-1] == 1
    assert vt.levels >= 2
    assert all(b < a for a, b in zip(counts, counts[1:]))
    benchmark(
        lambda: sample_virtual_tree(g, rng=966, params=params).levels
    )


def test_e7_forest_plus_core_covers_graph(benchmark):
    """Every cluster is either a portal root or hangs off one; every
    core edge crosses components (the j-tree shape of Figure 1)."""
    g = random_connected(50, 0.1, rng=967)
    step = madry_jtree_step(g, None, j=5, rng=968, removal_policy="topj")
    roots = [c for c in range(50) if step.forest_parent[c] < 0]
    assert len(roots) == step.num_components
    for ce in step.core_edges:
        assert ce.component_u != ce.component_v
    print(
        f"\nE7f: components={step.num_components}, "
        f"core_edges={len(step.core_edges)}, "
        f"path_edges(D)={sum(1 for ce in step.core_edges if ce.is_path_edge)}"
    )
    benchmark(
        lambda: len(
            madry_jtree_step(
                g, None, j=5, rng=969, removal_policy="topj"
            ).core_edges
        )
    )
