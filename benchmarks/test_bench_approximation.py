"""E2 — Theorem 1.1 quality: flow value vs exact optimum across ε.

Regenerates the approximation-ratio table: value(ε) / maxflow for an ε
sweep on several graph families. The paper claims (1+ε)-approximation;
we assert the achieved ratio improves (weakly) as ε tightens and never
exceeds 1 (feasibility gives a one-sided guarantee).
"""

from __future__ import annotations

import pytest

from repro.core import build_congestion_approximator, max_flow
from repro.flow import dinic_max_flow
from repro.graphs.generators import grid, random_connected, random_regular_expander


FAMILIES = [
    ("random", lambda: random_connected(36, 0.12, rng=911), 0, 35),
    ("grid", lambda: grid(6, 6, rng=912), 0, 35),
    ("expander", lambda: random_regular_expander(36, rng=913), 0, 35),
]


def test_e2_quality_table(benchmark):
    print("\nE2: value / maxflow per family and epsilon")
    worst = 1.0
    for name, make, s, t in FAMILIES:
        g = make()
        exact = dinic_max_flow(g, s, t).value
        approx = build_congestion_approximator(g, rng=914)
        row = {"family": name, "exact": round(exact, 1)}
        for eps in (0.8, 0.4, 0.2):
            value = max_flow(g, s, t, epsilon=eps, approximator=approx).value
            ratio = value / exact
            row[f"eps={eps}"] = round(ratio, 4)
            worst = min(worst, ratio)
            assert ratio <= 1.0 + 1e-9  # feasibility: never above optimum
        print("   ", row)
    # The paper's claim at these scales: comfortably within 1+eps for
    # the tightest eps; allow measured slack.
    assert worst >= 0.6

    g = FAMILIES[0][1]()
    approx = build_congestion_approximator(g, rng=915)
    benchmark(
        lambda: max_flow(g, 0, 35, epsilon=0.5, approximator=approx).value
    )


def test_e2_epsilon_monotonicity(benchmark):
    """Tighter ε must not produce a (much) worse flow."""
    g = random_connected(30, 0.15, rng=916)
    exact = dinic_max_flow(g, 0, 29).value
    approx = build_congestion_approximator(g, rng=917)
    loose = max_flow(g, 0, 29, epsilon=0.8, approximator=approx).value
    tight = max_flow(g, 0, 29, epsilon=0.2, approximator=approx).value
    assert tight >= loose * 0.95
    assert tight >= exact / 1.3
    benchmark(lambda: max_flow(g, 0, 29, epsilon=0.8, approximator=approx).value)
