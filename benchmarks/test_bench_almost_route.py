"""E7 — apply-path benchmarks: flat stacked operator vs per-tree loop.

ISSUE 3's tentpole: R·b and Rᵀ·g are the inner loop of the Sherman
descent, so fusing the per-tree blocks into one stacked pass must make
the *products* (not just the approximator build) faster, and the win
must survive end-to-end in ``almost_route``. The rows recorded in
``BENCH_graphcore.json`` (``approximator_apply*``, ``almost_route_n*``)
are medians of exactly the measurements below; the CI gate
(``tools/bench_regression.py``) re-measures them against the checked-in
baselines.

A note on expectations: the issue targeted ≥3× for Rᵀ·g at n=1024 on
the premise that ``np.add.at`` is notoriously slow. On NumPy ≥ 2.x
``ufunc.at`` uses fast indexed loops, so the per-tree path's cost is
mostly per-tree Python/dispatch overhead rather than the scatter
itself; the measured flat-vs-per-tree ratio is therefore ~3× at n=256
(overhead-dominated) and ~1.7–2× at n=1024 (bandwidth-dominated, the
shared segmented-cumsum + scatter floor). The assertions below use
conservative thresholds so CI-runner noise cannot flake them; the
honest medians live in the JSON rows.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import (
    APPLY_BENCH_CONFIG,
    APPLY_BENCH_ROUTE_EPSILON,
    APPLY_BENCH_ROUTE_MAX_ITERATIONS,
    apply_bench_instance,
    _median_time,
)
from repro.core.almost_route import almost_route


def _mode_medians(approx, fn, reps):
    out = {}
    for mode in ("per_tree", "flat"):
        approx.operator_mode = mode
        fn()  # warm (builds the stacked operator on first flat call)
        out[mode] = _median_time(fn, reps)
    approx.operator_mode = "adaptive"
    return out


def test_e7_apply_products(benchmark):
    print("\nE7: R·b / Rᵀ·g medians, per-tree vs flat stacked")
    for n in APPLY_BENCH_CONFIG:
        _, _, _, _, op_reps, _ = APPLY_BENCH_CONFIG[n]
        g, approx, demand, row_values = apply_bench_instance(n)
        apply_t = _mode_medians(approx, lambda: approx.apply(demand), op_reps)
        transpose_t = _mode_medians(
            approx, lambda: approx.apply_transpose(row_values), op_reps
        )
        print(
            f"    n={n}: apply {apply_t['per_tree']:.3e}s -> "
            f"{apply_t['flat']:.3e}s ({apply_t['per_tree'] / apply_t['flat']:.2f}x), "
            f"transpose {transpose_t['per_tree']:.3e}s -> "
            f"{transpose_t['flat']:.3e}s "
            f"({transpose_t['per_tree'] / transpose_t['flat']:.2f}x)"
        )
        # The flat pass must beat the per-tree np.add.at path outright;
        # thresholds are conservative vs the recorded medians (see
        # module docstring) so shared-runner jitter cannot flake CI.
        assert apply_t["flat"] * 1.3 < apply_t["per_tree"]
        assert transpose_t["flat"] * 1.3 < transpose_t["per_tree"]
        # And both paths must agree bit-for-bit while we are here.
        approx.operator_mode = "per_tree"
        reference = approx.apply_transpose(row_values)
        approx.operator_mode = "flat"
        assert np.array_equal(reference, approx.apply_transpose(row_values))
        approx.operator_mode = "adaptive"

    _, approx256, demand256, _ = apply_bench_instance(256)
    benchmark(lambda: approx256.apply(demand256))


def test_e7_almost_route_end_to_end(benchmark):
    print("\nE7b: almost_route medians, per-tree vs flat stacked")
    for n in APPLY_BENCH_CONFIG:
        _, _, _, _, _, route_reps = APPLY_BENCH_CONFIG[n]
        g, approx, demand, _ = apply_bench_instance(n)

        def solve():
            return almost_route(
                g,
                approx,
                demand,
                APPLY_BENCH_ROUTE_EPSILON,
                max_iterations=APPLY_BENCH_ROUTE_MAX_ITERATIONS,
            )

        medians = _mode_medians(approx, solve, route_reps)
        ratio = medians["per_tree"] / medians["flat"]
        print(
            f"    n={n}: {medians['per_tree']:.3e}s -> "
            f"{medians['flat']:.3e}s ({ratio:.2f}x)"
        )
        # End-to-end must not regress vs the per-tree path. The real
        # margin is ~1.4-2.1x (BENCH rows); the 1.15 slack here only
        # absorbs shared-runner jitter so tier-1's -x cannot flake.
        assert medians["flat"] < medians["per_tree"] * 1.15
        # Identical iterates regardless of path (end-to-end golden).
        approx.operator_mode = "per_tree"
        reference = solve()
        approx.operator_mode = "flat"
        flat = solve()
        approx.operator_mode = "adaptive"
        assert reference.iterations == flat.iterations
        assert np.array_equal(reference.flow, flat.flow)

    g, approx, demand, _ = apply_bench_instance(256)
    benchmark(
        lambda: almost_route(
            g,
            approx,
            demand,
            APPLY_BENCH_ROUTE_EPSILON,
            max_iterations=50,
        ).iterations
    )
