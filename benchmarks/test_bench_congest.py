"""E9 — Lemma 5.1 and the communication primitives: measured rounds on
the message-level CONGEST simulator versus the charged bounds."""

from __future__ import annotations

from repro.congest import (
    CostModel,
    broadcast,
    build_bfs_tree,
    convergecast_sum,
    pipelined_aggregate,
)
from repro.graphs.generators import grid, path, random_connected


def test_e9_primitive_round_table(benchmark):
    print("\nE9: measured primitive rounds vs charged bounds")
    for name, make in [
        ("path30", lambda: path(30, rng=981)),
        ("grid7x7", lambda: grid(7, 7, rng=982)),
        ("random40", lambda: random_connected(40, 0.12, rng=983)),
    ]:
        g = make()
        model = CostModel.for_graph(g)
        tree, bfs_rounds = build_bfs_tree(g, root=0)
        _, bc_rounds = broadcast(g, tree, 1)
        _, cc_rounds = convergecast_sum(g, tree, [1.0] * g.num_nodes)
        k = 12
        _, pipe_rounds = pipelined_aggregate(
            g, tree, [[1.0] * k for _ in g.nodes()]
        )
        row = {
            "family": name,
            "D": g.diameter(),
            "bfs": bfs_rounds,
            "bfs_bound": model.diameter + 2,
            "broadcast": bc_rounds,
            "pipelined_k12": pipe_rounds,
            "pipelined_bound": tree.height() + k + 2,
        }
        print("   ", row)
        assert bfs_rounds <= model.diameter + 2
        assert bc_rounds <= tree.height() + 2
        assert cc_rounds <= tree.height() + 2
        assert pipe_rounds <= tree.height() + k + 2

    g = grid(7, 7, rng=984)
    benchmark(lambda: build_bfs_tree(g, root=0)[1])


def test_e9_pipelining_gain(benchmark):
    """Lemma 5.1's point: k aggregations cost D + k, not k·D."""
    g = path(40, rng=985)
    tree, _ = build_bfs_tree(g, root=0)
    k = 30
    values = [[1.0] * k for _ in g.nodes()]
    _, rounds = pipelined_aggregate(g, tree, values)
    sequential_cost = k * tree.height()
    print(f"\nE9p: pipelined {rounds} rounds vs sequential ~{sequential_cost}")
    assert rounds < sequential_cost / 4
    benchmark(lambda: pipelined_aggregate(g, tree, values)[1])
