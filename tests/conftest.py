"""Shared fixtures.

Heavier artifacts (approximators, virtual-tree samples) are session
scoped so the whole suite builds them once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_congestion_approximator
from repro.graphs.generators import (
    barbell,
    grid,
    random_connected,
    random_regular_expander,
)


@pytest.fixture(scope="session")
def small_graph():
    """A 24-node connected random graph with varied capacities."""
    return random_connected(24, 0.15, rng=101)


@pytest.fixture(scope="session")
def medium_graph():
    """A 60-node connected random graph."""
    return random_connected(60, 0.08, rng=202)


@pytest.fixture(scope="session")
def grid_graph():
    """An 8x8 grid (high diameter, planar)."""
    return grid(8, 8, rng=303)


@pytest.fixture(scope="session")
def expander_graph():
    """A 50-node degree-6 expander (low diameter)."""
    return random_regular_expander(50, degree=6, rng=404)


@pytest.fixture(scope="session")
def barbell_graph():
    """Two 8-cliques joined by a capacity-2 bridge (sharp min cut)."""
    return barbell(8, bridge_capacity=2.0, rng=505)


@pytest.fixture(scope="session")
def small_approximator(small_graph):
    return build_congestion_approximator(small_graph, rng=99)


@pytest.fixture(scope="session")
def grid_approximator(grid_graph):
    return build_congestion_approximator(grid_graph, rng=98)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)
