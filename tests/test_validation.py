"""Unit tests for flow/demand validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import InvalidDemandError, InvalidFlowError
from repro.graphs.graph import Graph
from repro.util.validation import (
    check_demand,
    check_feasible_flow,
    check_flow_capacity,
    check_flow_conservation,
    flow_value,
    max_congestion,
    st_demand,
)


@pytest.fixture()
def path3():
    return Graph(3, [(0, 1, 2.0), (1, 2, 2.0)])


class TestDemand:
    def test_valid_demand_passes(self, path3):
        b = check_demand(path3, [1.0, 0.0, -1.0])
        assert b.dtype == float

    def test_wrong_length_rejected(self, path3):
        with pytest.raises(InvalidDemandError):
            check_demand(path3, [1.0, -1.0])

    def test_nonzero_sum_rejected(self, path3):
        with pytest.raises(InvalidDemandError):
            check_demand(path3, [1.0, 0.0, 0.0])

    def test_nan_rejected(self, path3):
        with pytest.raises(InvalidDemandError):
            check_demand(path3, [np.nan, 0.0, 0.0])

    def test_st_demand_layout(self, path3):
        b = st_demand(path3, 0, 2, 3.0)
        np.testing.assert_allclose(b, [3.0, 0.0, -3.0])

    def test_st_demand_same_node_rejected(self, path3):
        with pytest.raises(InvalidDemandError):
            st_demand(path3, 1, 1)

    def test_st_demand_out_of_range(self, path3):
        with pytest.raises(InvalidDemandError):
            st_demand(path3, 0, 7)


class TestFlowChecks:
    def test_conserving_flow_passes(self, path3):
        # route 1 unit 0 -> 2.
        check_flow_conservation(path3, [1.0, 1.0], [1.0, 0.0, -1.0])

    def test_violating_flow_rejected(self, path3):
        with pytest.raises(InvalidFlowError):
            check_flow_conservation(path3, [1.0, 0.0], [1.0, 0.0, -1.0])

    def test_capacity_ok(self, path3):
        check_flow_capacity(path3, [2.0, -2.0])

    def test_capacity_violation_rejected(self, path3):
        with pytest.raises(InvalidFlowError):
            check_flow_capacity(path3, [2.5, 0.0])

    def test_capacity_negative_direction_counts(self, path3):
        with pytest.raises(InvalidFlowError):
            check_flow_capacity(path3, [-2.5, 0.0])

    def test_feasible_combined(self, path3):
        check_feasible_flow(path3, [1.0, 1.0], [1.0, 0.0, -1.0])

    def test_flow_value(self, path3):
        assert flow_value(path3, [1.5, 1.5], 0, 2) == pytest.approx(1.5)

    def test_max_congestion(self, path3):
        assert max_congestion(path3, [1.0, -2.0]) == pytest.approx(1.0)

    def test_max_congestion_zero_flow(self, path3):
        assert max_congestion(path3, [0.0, 0.0]) == 0.0
