"""Unit tests for cut utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.cuts import (
    cut_capacity,
    cut_congestion_lower_bound,
    cut_demand,
    cut_edges,
    enumerate_cut_capacities,
    sparsest_cut_brute_force,
)
from repro.graphs.graph import Graph


def square() -> Graph:
    return Graph(
        4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 0, 4.0)]
    )


class TestCutBasics:
    def test_cut_capacity(self):
        assert cut_capacity(square(), [0]) == pytest.approx(5.0)

    def test_cut_capacity_symmetric(self):
        g = square()
        assert cut_capacity(g, [0, 1]) == cut_capacity(g, [2, 3])

    def test_cut_edges(self):
        assert sorted(cut_edges(square(), [0, 1])) == [1, 3]

    def test_empty_side_rejected(self):
        with pytest.raises(GraphError):
            cut_capacity(square(), [])

    def test_full_side_rejected(self):
        with pytest.raises(GraphError):
            cut_capacity(square(), [0, 1, 2, 3])

    def test_invalid_node_rejected(self):
        with pytest.raises(GraphError):
            cut_capacity(square(), [9])

    def test_cut_demand_absolute_value(self):
        assert cut_demand([3.0, -1.0, -2.0, 0.0], [1, 2]) == pytest.approx(3.0)

    def test_congestion_lower_bound(self):
        g = square()
        b = [1.0, 0.0, -1.0, 0.0]
        # Cut {0}: crossing demand 1, capacity 5.
        assert cut_congestion_lower_bound(g, b, [0]) == pytest.approx(0.2)


class TestEnumeration:
    def test_enumeration_count(self):
        cuts = enumerate_cut_capacities(square())
        assert len(cuts) == 2 ** 3 - 1

    def test_enumeration_guard(self):
        g = Graph(25, [(i, i + 1, 1.0) for i in range(24)])
        with pytest.raises(GraphError):
            enumerate_cut_capacities(g)

    def test_sparsest_cut_matches_maxflow(self):
        # For an s-t demand, the most congested cut's congestion equals
        # value / maxflow (max-flow min-cut).
        from repro.flow import dinic_max_flow
        from repro.graphs.generators import random_connected

        g = random_connected(10, 0.3, rng=17)
        b = np.zeros(10)
        b[0], b[9] = 1.0, -1.0
        _, congestion = sparsest_cut_brute_force(g, b)
        exact = dinic_max_flow(g, 0, 9).value
        assert congestion == pytest.approx(1.0 / exact)

    def test_sparsest_cut_side_contains_demand_separator(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 100.0)])
        side, congestion = sparsest_cut_brute_force(g, [1.0, 0.0, -1.0])
        # The bottleneck is the capacity-1 edge.
        assert congestion == pytest.approx(1.0)
        assert side in ({frozenset({0})}, {frozenset({0, 1})}) or side in (
            frozenset({0}),
            frozenset({0, 1}),
        )

    def test_zero_demand_zero_congestion(self):
        _, congestion = sparsest_cut_brute_force(square(), [0.0] * 4)
        assert congestion == 0.0
