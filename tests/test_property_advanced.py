"""Second property-based batch: invariants of the j-tree machinery,
the approximator operators, and the distributed primitives."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.approximator import TreeOperator
from repro.graphs.generators import random_connected
from repro.graphs.trees import RootedTree, bfs_tree, induced_cut_capacities
from repro.jtree.madry import madry_jtree_step, select_load_classes
from repro.jtree.skeleton import build_skeleton

COMMON = dict(
    deadline=None,
    max_examples=20,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def graphs_and_seeds(draw, max_nodes: int = 16):
    n = draw(st.integers(min_value=4, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=5_000))
    return random_connected(n, 0.25, rng=seed), seed


# ---------------------------------------------------------------------------
# j-tree invariants
# ---------------------------------------------------------------------------


@given(graphs_and_seeds(), st.integers(min_value=1, max_value=5))
@settings(**COMMON)
def test_madry_step_structural_invariants(case, j):
    graph, seed = case
    step = madry_jtree_step(
        graph, None, j=j, rng=seed + 1, removal_policy="topj"
    )
    n = graph.num_nodes
    # (1) component_of is a total assignment with num_components parts.
    assert len(set(step.component_of)) == step.num_components
    # (2) forest parents stay inside components and point toward the
    # unique portal (acyclicity via depth walk).
    for v in range(n):
        p = step.forest_parent[v]
        if p >= 0:
            assert step.component_of[p] == step.component_of[v]
        hops, node = 0, v
        while step.forest_parent[node] >= 0 and hops <= n:
            node = step.forest_parent[node]
            hops += 1
        assert hops <= n
    # (3) every core edge crosses components and has positive capacity.
    for ce in step.core_edges:
        assert ce.component_u != ce.component_v
        assert ce.capacity > 0
    # (4) |F| respects j (topj caps at j).
    assert len(step.removed_edges) <= j + graph.num_nodes  # extra_removals none


@given(
    st.lists(
        st.floats(min_value=0.1, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=20,
    ),
    st.integers(min_value=1, max_value=8),
)
@settings(**COMMON)
def test_select_load_classes_never_exceeds_j(loads, j):
    rload = np.array([0.0] + loads)
    children = list(range(1, len(loads) + 1))
    removed = select_load_classes(rload, children, j)
    assert len(removed) <= j
    # Removed edges always have strictly higher loads than the max kept
    # class boundary — i.e. removal is a prefix of the sorted order.
    if removed:
        kept = [c for c in children if c not in removed]
        if kept:
            assert min(rload[c] for c in removed) >= max(
                rload[c] for c in kept
            ) / 2.0 - 1e-9


@given(graphs_and_seeds())
@settings(**COMMON)
def test_skeleton_components_have_single_portal(case):
    graph, seed = case
    tree = bfs_tree(graph, root=0)
    children = [v for v in range(graph.num_nodes) if tree.parent[v] >= 0]
    rng = np.random.default_rng(seed)
    removed = [c for c in children if rng.random() < 0.3]
    forest = [
        (v, tree.parent[v], float(rng.integers(1, 10)))
        for v in children
        if v not in removed
    ]
    primary = set()
    for v in removed:
        primary.add(v)
        primary.add(tree.parent[v])
    result = build_skeleton(graph.num_nodes, forest, primary)
    portals = result.portals
    for comp in range(len(result.component_portal)):
        members = [
            v
            for v in range(graph.num_nodes)
            if result.component[v] == comp
        ]
        inside = [v for v in members if v in portals]
        assert len(inside) <= 1


# ---------------------------------------------------------------------------
# Approximator operator invariants
# ---------------------------------------------------------------------------


@given(graphs_and_seeds())
@settings(**COMMON)
def test_tree_operator_adjoint_identity(case):
    graph, seed = case
    tree = bfs_tree(graph, root=0)
    op = TreeOperator(
        RootedTree(tree.parent, induced_cut_capacities(graph, tree))
    )
    rng = np.random.default_rng(seed)
    b = rng.normal(size=graph.num_nodes)
    y = rng.normal(size=op.num_rows)
    lhs = float(op.apply(b) @ y)
    rhs = float(b @ op.apply_transpose(y))
    assert abs(lhs - rhs) <= 1e-8 * max(1.0, abs(lhs))


@given(graphs_and_seeds())
@settings(**COMMON)
def test_tree_operator_rows_are_scaled_subtree_indicators(case):
    """R's rows are exactly (subtree indicator)/cut-capacity."""
    graph, seed = case
    tree = bfs_tree(graph, root=0)
    cuts = induced_cut_capacities(graph, tree)
    op = TreeOperator(RootedTree(tree.parent, cuts))
    # Apply to a point mass at a random node: the result picks out the
    # rows of all subtrees containing it.
    rng = np.random.default_rng(seed)
    node = int(rng.integers(0, graph.num_nodes))
    b = np.zeros(graph.num_nodes)
    b[node] = 1.0
    values = op.apply(b)
    ancestors = set()
    walk = node
    while walk >= 0:
        ancestors.add(walk)
        walk = tree.parent[walk]
    for row_index, v in enumerate(op.row_nodes):
        expected = (1.0 / cuts[v]) if v in ancestors else 0.0
        assert abs(values[row_index] - expected) <= 1e-12


# ---------------------------------------------------------------------------
# Distributed primitives vs centralized results
# ---------------------------------------------------------------------------


@given(graphs_and_seeds(max_nodes=12))
@settings(deadline=None, max_examples=8,
          suppress_health_check=[HealthCheck.too_slow])
def test_distributed_tree_flow_matches_centralized(case):
    from repro.congest import distributed_tree_flow

    graph, _ = case
    tree = bfs_tree(graph, root=0)
    run = distributed_tree_flow(graph, tree)
    central = induced_cut_capacities(graph, tree)
    children = [v for v in range(graph.num_nodes) if tree.parent[v] >= 0]
    np.testing.assert_allclose(
        run.cut_capacity[children], central[children], rtol=1e-9
    )


@given(graphs_and_seeds(max_nodes=12))
@settings(deadline=None, max_examples=8,
          suppress_health_check=[HealthCheck.too_slow])
def test_distributed_boruvka_matches_kruskal(case):
    from repro.congest import distributed_spanning_tree
    from repro.flow.mst import minimum_spanning_tree

    graph, _ = case
    run = distributed_spanning_tree(graph, maximize=False)
    tree = minimum_spanning_tree(graph)
    kruskal = sum(
        tree.capacity[v]
        for v in range(graph.num_nodes)
        if tree.parent[v] >= 0
    )
    assert abs(run.total_weight - kruskal) <= 1e-9 * max(1.0, kruskal)
