"""Smoke tests: every shipped example and tool must run cleanly."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=REPO,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_experiment_tool_quick():
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "run_experiments.py"), "--quick"],
        capture_output=True,
        text=True,
        timeout=900,
        cwd=REPO,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in ("E1:", "E2:", "E3:", "E4:", "E5:", "E6:"):
        assert marker in result.stdout
