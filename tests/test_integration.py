"""Cross-module integration tests: the full pipelines the paper
composes, exercised end to end."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterGraph
from repro.core import (
    build_congestion_approximator,
    estimate_rounds,
    max_flow,
    min_congestion_flow,
)
from repro.congest import CostModel, distributed_push_relabel
from repro.flow import dinic_max_flow
from repro.graphs.generators import (
    grid,
    random_connected,
    random_regular_expander,
    weighted_variant,
)
from repro.jtree import HierarchyParams, sample_virtual_tree
from repro.util.rng import as_generator, spawn
from repro.util.validation import check_feasible_flow, st_demand


class TestApproximateVsExactVsDistributed:
    """Three independent computations of the same max flow."""

    def test_three_way_agreement(self):
        g = random_connected(18, 0.2, rng=131)
        exact = dinic_max_flow(g, 0, 17).value
        distributed = distributed_push_relabel(g, 0, 17).value
        approx = max_flow(
            g,
            0,
            17,
            epsilon=0.3,
            approximator=build_congestion_approximator(g, rng=132),
        ).value
        assert distributed == pytest.approx(exact, rel=1e-6)
        assert exact / 1.4 <= approx <= exact * (1 + 1e-9)


class TestHierarchyFeedsApproximatorFeedsDescent:
    """Theorem 8.10 sampling -> Lemma 3.3 stack -> Algorithm 1/2."""

    def test_full_paper_pipeline(self):
        g = grid(6, 6, rng=133)
        rng = as_generator(134)
        params = HierarchyParams(beta=3, trees_per_level=2)
        samples = [
            sample_virtual_tree(g, rng=r, params=params)
            for r in spawn(rng, 4)
        ]
        from repro.core.approximator import (
            TreeCongestionApproximator,
            TreeOperator,
            estimate_alpha_st,
        )

        approx = TreeCongestionApproximator(
            g, [TreeOperator(s.tree) for s in samples], alpha=1.0
        )
        approx.alpha = estimate_alpha_st(g, approx, rng=rng)
        result = max_flow(g, 0, 35, epsilon=0.4, approximator=approx)
        exact = dinic_max_flow(g, 0, 35).value
        assert result.value >= exact / 1.5
        est = estimate_rounds(g, samples, result.congestion_result, 0.4)
        assert est.total > 0
        # The trivial O(m) bound must exceed the base (D + sqrt n) term,
        # and the estimate must itemize construction and descent.
        assert est.breakdown["gradient_step"] > 0

    def test_cluster_graph_invariants_along_hierarchy(self):
        """Re-run the hierarchy level by level, validating Definition
        5.1 at every step (the paper's invariants 1-4 of Section 4)."""
        g = random_connected(40, 0.1, rng=135)
        cg = ClusterGraph.trivial(g)
        cg.validate()
        from repro.jtree.mwu import build_jtree_distribution
        from repro.graphs.graph import Graph

        rng = as_generator(136)
        for _ in range(3):
            if cg.num_clusters <= 4:
                break
            j = max(1, cg.num_clusters // 8)
            dist = build_jtree_distribution(cg.quotient, j, 2, rng=rng)
            step = dist.sample(rng)
            new_quotient = Graph(step.num_components)
            new_origin = []
            for ce in step.core_edges:
                new_quotient.add_edge(
                    ce.component_u, ce.component_v, ce.capacity
                )
                new_origin.append(cg.edge_origin[ce.quotient_edge])
            cg = cg.merge_along_forest(
                step.forest_parent,
                step.forest_edge,
                new_quotient,
                new_origin,
                step.component_of,
            )
            cg.validate()  # Definition 5.1 holds at every level


class TestWeightedCapacities:
    """Footnote 1: large capacity ratios (log C factor)."""

    def test_high_spread_capacities(self):
        base = grid(5, 5, rng=137)
        g = weighted_variant(base, spread=10_000.0, rng=138)
        approx = build_congestion_approximator(g, rng=139)
        result = max_flow(g, 0, 24, epsilon=0.5, approximator=approx)
        exact = dinic_max_flow(g, 0, 24).value
        assert result.value >= exact / 2.0
        check_feasible_flow(
            g, result.flow, st_demand(g, 0, 24, result.value)
        )


class TestMultiDemandReuse:
    """One approximator, many demands (the intended usage pattern)."""

    def test_reuse_across_terminal_pairs(self):
        g = random_regular_expander(30, rng=140)
        approx = build_congestion_approximator(g, rng=141)
        for s, t in [(0, 29), (5, 20), (11, 3)]:
            result = max_flow(g, s, t, epsilon=0.5, approximator=approx)
            exact = dinic_max_flow(g, s, t).value
            assert result.value >= exact / 1.6

    def test_multi_source_demand(self):
        g = random_connected(24, 0.15, rng=142)
        approx = build_congestion_approximator(g, rng=143)
        demand = np.zeros(24)
        demand[[0, 1, 2]] = 2.0
        demand[[21, 22, 23]] = -2.0
        result = min_congestion_flow(
            g, demand, epsilon=0.4, approximator=approx
        )
        from repro.util.validation import check_flow_conservation

        check_flow_conservation(g, result.flow, demand)
        assert result.congestion >= result.lower_bound - 1e-9


class TestRoundComplexityShape:
    """E1's qualitative claim on a small sweep."""

    def test_estimate_grows_slower_than_push_relabel(self):
        ns, ours, theirs = [], [], []
        for k in (6, 10, 14):
            from repro.graphs.generators import barbell

            g = barbell(k, bridge_capacity=1.0, rng=144, max_capacity=10)
            ns.append(g.num_nodes)
            theirs.append(distributed_push_relabel(g, 0, k).rounds)
            model = CostModel.for_graph(g)
            ours.append(model.base)
        # Push-relabel rounds grow ~n; the (D + sqrt n) base grows ~sqrt n.
        pr_growth = theirs[-1] / theirs[0]
        base_growth = ours[-1] / ours[0]
        assert pr_growth > base_growth
