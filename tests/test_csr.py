"""Golden tests for the array-native substrate.

Pins the vectorized CSR kernels to pure-Python reference
implementations (the legacy adjacency-list algorithms) on random
multigraphs with parallel edges, and pins the Graph-level cache
contract: ``capacities()`` / ``edge_index_arrays()`` / ``csr()`` are
cached views invalidated by structural mutation, written through by
``set_capacity``.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import pytest

import repro.graphs.graph as graph_mod
from repro.graphs import kernels
from repro.graphs.csr import build_csr
from repro.graphs.graph import Graph
from repro.lsst.split_graph import split_graph


def random_multigraph(seed: int, max_nodes: int = 40) -> Graph:
    """Random multigraph with parallel edges (possibly disconnected)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, max_nodes))
    g = Graph(n)
    m = int(rng.integers(1, 4 * n))
    for _ in range(m):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v:
            continue
        g.add_edge(u, v, float(rng.uniform(0.1, 10.0)))
        if rng.random() < 0.2:  # parallel duplicate
            g.add_edge(u, v, float(rng.uniform(0.1, 10.0)))
    if g.num_edges == 0:
        g.add_edge(0, 1, 1.0)
    return g


# ----------------------------------------------------------------------
# Pure-Python references (the legacy adjacency-list algorithms)
# ----------------------------------------------------------------------
def reference_adjacency(g: Graph) -> list[list[tuple[int, int]]]:
    adj: list[list[tuple[int, int]]] = [[] for _ in range(g.num_nodes)]
    for e in g.edges():
        adj[e.u].append((e.v, e.id))
        adj[e.v].append((e.u, e.id))
    return adj


def reference_bfs(g: Graph, source: int) -> list[int]:
    adj = reference_adjacency(g)
    dist = [-1] * g.num_nodes
    dist[source] = 0
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor, _ in adj[node]:
            if dist[neighbor] < 0:
                dist[neighbor] = dist[node] + 1
                queue.append(neighbor)
    return dist


def reference_bfs_parents(
    g: Graph, root: int
) -> tuple[list[int], list[int], list[int]]:
    adj = reference_adjacency(g)
    dist = [-1] * g.num_nodes
    parent = [-2] * g.num_nodes
    parent_edge = [-1] * g.num_nodes
    dist[root] = 0
    parent[root] = -1
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for neighbor, eid in adj[node]:
            if dist[neighbor] < 0:
                dist[neighbor] = dist[node] + 1
                parent[neighbor] = node
                parent_edge[neighbor] = eid
                queue.append(neighbor)
    return dist, parent, parent_edge


def reference_components(g: Graph) -> list[list[int]]:
    adj = reference_adjacency(g)
    seen = [False] * g.num_nodes
    components = []
    for start in range(g.num_nodes):
        if seen[start]:
            continue
        component = [start]
        seen[start] = True
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor, _ in adj[node]:
                if not seen[neighbor]:
                    seen[neighbor] = True
                    component.append(neighbor)
                    queue.append(neighbor)
        components.append(component)
    return components


def reference_contract(g: Graph, labels, keep_parallel):
    compact: dict[int, int] = {}
    node_map = []
    for v in range(g.num_nodes):
        if labels[v] not in compact:
            compact[labels[v]] = len(compact)
        node_map.append(compact[labels[v]])
    edges = []
    origin = []
    if keep_parallel:
        for e in g.edges():
            cu, cv = node_map[e.u], node_map[e.v]
            if cu != cv:
                edges.append((cu, cv, e.capacity))
                origin.append(e.id)
    else:
        merged: dict[tuple[int, int], int] = {}
        for e in g.edges():
            cu, cv = node_map[e.u], node_map[e.v]
            if cu == cv:
                continue
            key = (min(cu, cv), max(cu, cv))
            if key in merged:
                j = merged[key]
                edges[j] = (edges[j][0], edges[j][1], edges[j][2] + e.capacity)
            else:
                merged[key] = len(edges)
                edges.append((key[0], key[1], e.capacity))
                origin.append(e.id)
    return len(compact), edges, origin


# ----------------------------------------------------------------------
# CSR structure
# ----------------------------------------------------------------------
class TestCSRStructure:
    def test_rows_in_edge_insertion_order(self):
        for seed in range(10):
            g = random_multigraph(seed)
            csr = g.csr()
            for v in range(g.num_nodes):
                nbrs, eids = csr.row(v)
                assert list(zip(nbrs.tolist(), eids.tolist())) == [
                    (nbr, eid) for nbr, eid in reference_adjacency(g)[v]
                ]
                assert sorted(eids.tolist()) == eids.tolist()

    def test_degrees_match(self):
        g = random_multigraph(3)
        degrees = g.csr().degrees()
        for v in range(g.num_nodes):
            assert degrees[v] == len(reference_adjacency(g)[v]) == g.degree(v)

    def test_arrays_read_only(self):
        csr = random_multigraph(0).csr()
        for arr in (csr.indptr, csr.neighbor, csr.edge_id):
            with pytest.raises(ValueError):
                arr[0] = 0

    def test_num_accessors(self):
        g = random_multigraph(1)
        csr = g.csr()
        assert csr.num_nodes == g.num_nodes
        assert csr.num_edges == g.num_edges


# ----------------------------------------------------------------------
# Kernel golden equivalence (vectorized path, bypassing the adaptive
# dispatch, against the pure-Python references)
# ----------------------------------------------------------------------
class TestKernelGoldenEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_bfs_levels_match_reference(self, seed):
        g = random_multigraph(seed)
        for source in (0, g.num_nodes - 1):
            assert (
                kernels.bfs_levels(g.csr(), source).tolist()
                == reference_bfs(g, source)
            )

    @pytest.mark.parametrize("seed", range(25))
    def test_bfs_parents_match_reference_exactly(self, seed):
        """Same parents and edges, not just same distances — the kernel
        reproduces the FIFO claim order including tie-breaking."""
        g = random_multigraph(seed)
        dist, parent, pedge = kernels.bfs_parents(g.csr(), 0)
        r_dist, r_parent, r_pedge = reference_bfs_parents(g, 0)
        assert dist.tolist() == r_dist
        assert parent.tolist() == r_parent
        assert pedge.tolist() == r_pedge

    @pytest.mark.parametrize("seed", range(25))
    def test_connected_components_match_reference(self, seed):
        """Component order and within-component discovery order match."""
        g = random_multigraph(seed)
        assert kernels.connected_components(g.csr()) == reference_components(g)

    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("keep_parallel", [True, False])
    def test_contract_matches_reference(self, seed, keep_parallel):
        g = random_multigraph(seed)
        rng = np.random.default_rng(seed)
        labels = rng.integers(-5, 8, size=g.num_nodes).tolist()
        quotient, origin = g.contract(labels, keep_parallel=keep_parallel)
        k, ref_edges, ref_origin = reference_contract(g, labels, keep_parallel)
        assert quotient.num_nodes == k
        assert origin == ref_origin
        got = [
            (e.u, e.v, pytest.approx(e.capacity)) for e in quotient.edges()
        ]
        assert got == [(u, v, pytest.approx(c)) for u, v, c in ref_edges]

    @pytest.mark.parametrize("seed", range(8))
    def test_all_pairs_distances_match_per_source_bfs(self, seed):
        g = random_multigraph(seed, max_nodes=20)
        matrix = kernels.all_pairs_hop_distances(g.csr())
        for source in range(g.num_nodes):
            assert matrix[source].tolist() == reference_bfs(g, source)

    def test_diameter_matches_reference(self):
        for seed in range(8):
            g = random_multigraph(seed)
            if not g.is_connected():
                continue
            expected = max(max(reference_bfs(g, s)) for s in range(g.num_nodes))
            assert g.diameter() == expected

    def test_compact_labels_first_occurrence_order(self):
        node_map, k = kernels.compact_labels([7, -3, 7, 9, -3])
        assert node_map.tolist() == [0, 1, 0, 2, 1]
        assert k == 3


# ----------------------------------------------------------------------
# Adaptive paths agree (Python small-instance path vs NumPy path)
# ----------------------------------------------------------------------
class TestAdaptivePathsAgree:
    @pytest.mark.parametrize("seed", range(10))
    def test_graph_traversals_agree_across_paths(self, seed, monkeypatch):
        g = random_multigraph(seed)
        small_bfs = g.bfs_distances(0)
        small_cc = g.connected_components()
        small_conn = g.is_connected()
        monkeypatch.setattr(graph_mod, "SMALL_GRAPH_LIMIT", 0)
        g2 = random_multigraph(seed)
        assert g2.bfs_distances(0) == small_bfs
        assert g2.connected_components() == small_cc
        assert g2.is_connected() == small_conn

    @pytest.mark.parametrize("seed", range(10))
    def test_split_graph_agrees_across_paths(self, seed, monkeypatch):
        g = random_multigraph(seed)
        small = split_graph(g, 3, rng=np.random.default_rng(seed))
        monkeypatch.setattr(graph_mod, "SMALL_GRAPH_LIMIT", 0)
        g2 = random_multigraph(seed)
        large = split_graph(g2, 3, rng=np.random.default_rng(seed))
        assert small == large

    @pytest.mark.parametrize("seed", range(10))
    def test_contract_agrees_across_tiny_threshold(self, seed, monkeypatch):
        g = random_multigraph(seed)
        labels = [v % 3 for v in range(g.num_nodes)]
        tiny_q, tiny_o = g.contract(labels, keep_parallel=False)
        monkeypatch.setattr(graph_mod, "TINY_GRAPH_LIMIT", 0)
        g2 = random_multigraph(seed)
        np_q, np_o = g2.contract(labels, keep_parallel=False)
        assert tiny_o == np_o
        assert [
            (e.u, e.v, pytest.approx(e.capacity)) for e in tiny_q.edges()
        ] == [(e.u, e.v, pytest.approx(e.capacity)) for e in np_q.edges()]


# ----------------------------------------------------------------------
# Cache contract
# ----------------------------------------------------------------------
class TestCacheInvalidation:
    def test_capacities_cached_and_read_only(self):
        g = random_multigraph(0)
        caps = g.capacities()
        assert g.capacities() is caps  # cached, no per-call allocation
        with pytest.raises(ValueError):
            caps[0] = 5.0

    def test_edge_index_arrays_cached_and_read_only(self):
        g = random_multigraph(0)
        tails, heads = g.edge_index_arrays()
        again = g.edge_index_arrays()
        assert again[0] is tails and again[1] is heads
        with pytest.raises(ValueError):
            tails[0] = 0

    def test_set_capacity_writes_through_cached_view(self):
        g = random_multigraph(0)
        caps = g.capacities()
        g.set_capacity(0, 123.5)
        assert caps[0] == 123.5  # view of the live buffer

    def test_add_edge_invalidates_caches(self):
        g = random_multigraph(0)
        caps = g.capacities()
        tails, _ = g.edge_index_arrays()
        csr = g.csr()
        old_m = g.num_edges
        g.add_edge(0, 1, 2.5)
        assert len(g.capacities()) == old_m + 1
        assert g.capacities() is not caps
        assert g.edge_index_arrays()[0] is not tails
        assert g.csr() is not csr
        assert (1, old_m) in g.neighbors(0)
        assert g.capacity(old_m) == 2.5

    def test_add_edge_invalidates_connectivity_cache(self):
        g = Graph(3, [(0, 1, 1.0)])
        assert not g.is_connected()
        g.add_edge(1, 2, 1.0)
        assert g.is_connected()

    def test_csr_cached_between_structural_mutations(self):
        g = random_multigraph(0)
        assert g.csr() is g.csr()
        g.set_capacity(0, 9.0)  # non-structural: cache survives
        assert g.csr() is g.csr()

    def test_excess_uses_current_arrays_after_mutation(self):
        g = Graph(3, [(0, 1, 1.0)])
        g.excess(np.array([1.0]))
        g.add_edge(1, 2, 1.0)
        excess = g.excess(np.array([1.0, 1.0]))
        np.testing.assert_allclose(excess, [-1.0, 0.0, 1.0])


def _assert_caches_match_fresh(quotient: Graph):
    """CSR / adjacency / connectivity of ``quotient`` (possibly seeded
    or stale-if-buggy) must agree with a freshly built twin graph."""
    fresh = Graph.from_edge_arrays(
        quotient.num_nodes,
        quotient.edge_index_arrays()[0].tolist(),
        quotient.edge_index_arrays()[1].tolist(),
        quotient.capacities().tolist(),
    )
    np.testing.assert_array_equal(quotient.csr().indptr, fresh.csr().indptr)
    np.testing.assert_array_equal(
        quotient.csr().neighbor, fresh.csr().neighbor
    )
    np.testing.assert_array_equal(quotient.csr().edge_id, fresh.csr().edge_id)
    assert quotient.adjacency_lists() == fresh.adjacency_lists()
    assert quotient.is_connected() == fresh.is_connected()
    assert quotient.connected_components() == fresh.connected_components()


class TestQuotientCacheSeeding:
    """Regression: `contract` pre-seeds the quotient's CSR / adjacency /
    connectivity caches; every seeded cache must be dropped by a
    post-contraction structural mutation and must never disagree with a
    freshly built graph."""

    def _contract(self, seed, monkeypatch=None, tiny=False):
        g = random_multigraph(seed, max_nodes=30)
        if monkeypatch is not None:
            # Force the desired dispatch path regardless of size.
            limit = 10**9 if tiny else 0
            monkeypatch.setattr(graph_mod, "TINY_GRAPH_LIMIT", limit)
        labels = [v % 4 for v in range(g.num_nodes)]
        quotient, _ = g.contract(labels)
        return g, quotient

    @pytest.mark.parametrize("seed", range(6))
    def test_scaled_contract_seeds_csr(self, seed, monkeypatch):
        _, quotient = self._contract(seed, monkeypatch, tiny=False)
        assert quotient._csr_cache is not None  # emitted by contraction
        for arr in (quotient.csr().neighbor, quotient.csr().edge_id):
            with pytest.raises(ValueError):
                arr[:1] = 0  # seeded arrays keep the read-only contract
        _assert_caches_match_fresh(quotient)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("tiny", [True, False])
    def test_add_edge_after_contract_drops_seeded_caches(
        self, seed, tiny, monkeypatch
    ):
        _, quotient = self._contract(seed, monkeypatch, tiny=tiny)
        if quotient.num_nodes < 2:
            return
        quotient.csr()
        quotient.adjacency_lists()
        quotient.is_connected()
        quotient.add_edge(0, quotient.num_nodes - 1, 2.5)
        _assert_caches_match_fresh(quotient)
        assert (quotient.num_nodes - 1, quotient.num_edges - 1) in (
            quotient.neighbors(0)
        )

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("tiny", [True, False])
    def test_set_capacity_after_contract_writes_through(
        self, seed, tiny, monkeypatch
    ):
        _, quotient = self._contract(seed, monkeypatch, tiny=tiny)
        if quotient.num_edges == 0:
            return
        caps = quotient.capacities()
        csr_before = quotient.csr()
        quotient.set_capacity(0, 42.5)
        assert caps[0] == 42.5  # cached view sees the write
        assert quotient.csr() is csr_before  # non-structural: seed survives
        _assert_caches_match_fresh(quotient)

    def test_connectivity_seed_only_propagates_true(self):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        assert not g.is_connected()
        # Contracting a *disconnected* graph may connect it: the verdict
        # must not be inherited.
        quotient, _ = g.contract([0, 1, 0, 1])
        assert quotient.is_connected()

    def test_connected_verdict_propagates_through_contract(self):
        g = random_multigraph(3)
        g.is_connected()
        quotient, _ = g.contract([v % 3 for v in range(g.num_nodes)])
        _assert_caches_match_fresh(quotient)

    def test_copy_shares_immutable_caches_safely(self):
        g = random_multigraph(2)
        csr = g.csr()
        twin = g.copy()
        assert twin.csr() is csr  # structure identical, arrays immutable
        twin.add_edge(0, 1, 1.0)
        assert g.csr() is csr  # the original's cache is untouched
        _assert_caches_match_fresh(twin)


class TestInt32Substrate:
    def test_edge_arrays_are_int32(self):
        g = random_multigraph(0)
        tails, heads = g.edge_index_arrays()
        assert tails.dtype == np.int32 and heads.dtype == np.int32
        csr = g.csr()
        assert csr.neighbor.dtype == np.int32
        assert csr.edge_id.dtype == np.int32

    def test_contract_emits_int32(self):
        g = random_multigraph(1)
        quotient, _ = g.contract([v % 3 for v in range(g.num_nodes)])
        tails, heads = quotient.edge_index_arrays()
        assert tails.dtype == np.int32 and heads.dtype == np.int32

    def test_node_count_overflow_guarded(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError, match="int32"):
            Graph(2**31)
