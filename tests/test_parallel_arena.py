"""Persistent shared-memory arena: export-once accounting, (id, version)
staleness keying, segment lifecycle, and teardown hygiene.

The arena (``repro/parallel/arena.py``) is the process pool's cross-call
export cache: read-only ndarray arguments are copied into POSIX shared
memory once per array lifetime and the segment is reused across ``map``
calls — level-synchronous BFS pays one CSR export per *run* instead of
one per level. These tests pin the cache's three hazards:

* **accounting** — each invariant array is exported exactly once across
  a multi-level run (and re-used thereafter);
* **staleness** — mutating a :class:`~repro.graphs.graph.Graph` between
  ``map`` calls (``add_edge`` structural, ``set_capacity`` write-through)
  must never serve pre-mutation bytes (the ``(id, version)`` key);
* **lifecycle** — segments are unlinked on array GC, pool shutdown, and
  interpreter exit, with no ``resource_tracker`` warnings (subprocess
  regression for the atexit-ordering leak).
"""

from __future__ import annotations

import gc
import os
import subprocess
import sys
import textwrap
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.graphs import kernels
from repro.graphs.graph import Graph
from repro.jtree.mwu import mwu_lengths
from repro.parallel import (
    ParallelConfig,
    SharedArena,
    array_version,
    get_pool,
    shutdown_pools,
    tag_array_version,
)
from repro.parallel import arena as arena_module
from repro.parallel.pool import _fork_available

from parallel_harness import assert_arrays_identical, make_graph

pytestmark = pytest.mark.skipif(
    not _fork_available(), reason="process backend requires fork"
)


def _process_config(workers: int = 2) -> ParallelConfig:
    return ParallelConfig(workers=workers, backend="process", min_size=0)


@pytest.fixture()
def process_pool():
    """A fresh process pool (empty arena), drained afterwards."""
    shutdown_pools()
    pool = get_pool(_process_config())
    yield pool
    shutdown_pools()


def _array_sum(arr: np.ndarray) -> float:
    """Top-level worker: the shared-memory bytes the worker actually
    sees (stale-segment bugs surface as a wrong sum)."""
    return float(np.asarray(arr).sum())


# ----------------------------------------------------------------------
# Export-once accounting (acceptance: instrumentation test)
# ----------------------------------------------------------------------
class TestExportAccounting:
    def test_csr_arrays_export_once_across_bfs_levels(self, process_pool):
        """A multi-level sharded ``bfs_levels`` run exports the three
        invariant CSR arrays exactly once — before the arena it paid
        one export round per level."""
        graph = make_graph("grid", 101)
        csr = graph.csr()
        config = _process_config()
        serial = kernels.bfs_levels(csr, 0)
        assert int(serial.max()) >= 4  # genuinely multi-level
        sharded = kernels.bfs_levels(csr, 0, parallel=config)
        assert_arrays_identical("bfs_levels", serial, sharded)
        arena = process_pool._arena
        # indptr + neighbor + edge_id, one segment each; the mutable
        # dist / frontier arrays go through the per-call transient path
        # and never enter the arena.
        assert arena.export_count == 3
        assert len(arena) == 3
        assert arena.reuse_count > 0

    def test_repeat_runs_and_kernels_share_the_segments(self, process_pool):
        graph = make_graph("grid", 101)
        csr = graph.csr()
        config = _process_config()
        kernels.bfs_levels(csr, 0, parallel=config)
        arena = process_pool._arena
        assert arena.export_count == 3
        # Second BFS run, then a parent BFS, then multi-source hop
        # distances: all consume the same three CSR arrays and none may
        # export again.
        kernels.bfs_levels(csr, 0, parallel=config)
        kernels.bfs_parents(csr, root=1, parallel=config)
        sources = np.arange(0, graph.num_nodes, 7, dtype=np.int64)
        a = kernels.multi_source_hop_distances(csr, sources)
        b = kernels.multi_source_hop_distances(csr, sources, parallel=config)
        assert_arrays_identical("hop_distances", a, b)
        assert arena.export_count == 3

    def test_writeable_arrays_never_enter_the_arena(self, process_pool):
        buf = np.arange(64, dtype=np.float64)
        assert process_pool.map(_array_sum, [(buf,)]) == [float(buf.sum())]
        assert process_pool._arena.export_count == 0
        # In-place mutation is honored on the very next call (the
        # transient per-map export the arena deliberately leaves alone).
        buf[0] = 1000.0
        assert process_pool.map(_array_sum, [(buf,)]) == [float(buf.sum())]


# ----------------------------------------------------------------------
# Staleness: (id, version) keying (satellite regression tests)
# ----------------------------------------------------------------------
class TestStaleness:
    def test_add_edge_between_maps_is_not_stale(self, process_pool):
        """Mirror of ``tests/test_csr.py``'s cache-staleness pattern:
        a structural mutation between sharded runs must re-derive and
        re-export, never serve the pre-mutation CSR segment."""
        graph = make_graph("random", 101)
        config = _process_config()
        kernels.bfs_levels(graph.csr(), 0, parallel=config)
        exports_before = process_pool._arena.export_count
        assert exports_before == 3
        graph.add_edge(0, graph.num_nodes - 1, 2.0)
        fresh_serial = kernels.bfs_levels(graph.csr(), 0)
        sharded = kernels.bfs_levels(graph.csr(), 0, parallel=config)
        assert_arrays_identical("post-mutation bfs", fresh_serial, sharded)
        # The rebuilt CSR arrays are new exports; the stale trio was
        # evicted when the old arrays were collected.
        assert process_pool._arena.export_count == exports_before + 3

    def test_set_capacity_bumps_the_version_and_reexports(
        self, process_pool
    ):
        """``set_capacity`` writes through the cached read-only
        ``capacities()`` view without replacing the object — exactly
        the case ``id``-only keying would serve stale bytes for."""
        graph = Graph(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])
        caps = graph.capacities()
        assert process_pool.map(_array_sum, [(caps,)]) == [7.0]
        assert process_pool._arena.export_count == 1
        graph.set_capacity(0, 10.0)
        assert graph.capacities() is caps  # same object, new bytes
        assert process_pool.map(_array_sum, [(caps,)]) == [16.0]
        assert process_pool._arena.export_count == 2
        # Unchanged afterwards: the re-export is cached again.
        assert process_pool.map(_array_sum, [(caps,)]) == [16.0]
        assert process_pool._arena.export_count == 2

    def test_version_tag_roundtrip(self):
        array = np.arange(5)
        assert array_version(array) == 0
        tag_array_version(array, 7)
        assert array_version(array) == 7
        tag_array_version(array, 8)
        assert array_version(array) == 8

    def test_version_registry_drops_collected_arrays(self):
        before = len(arena_module._versions)
        array = np.arange(5)
        tag_array_version(array, 1)
        assert len(arena_module._versions) == before + 1
        del array
        gc.collect()
        assert len(arena_module._versions) == before

    def test_graph_views_carry_the_invalidation_counter(self):
        graph = Graph(3, [(0, 1, 1.0), (1, 2, 2.0)])
        caps = graph.capacities()
        v0 = array_version(caps)
        assert v0 > 0
        graph.set_capacity(0, 5.0)
        assert array_version(caps) > v0
        tails, heads = graph.edge_index_arrays()
        assert array_version(tails) > 0
        assert array_version(heads) > 0

    def test_outstanding_old_capacity_view_is_retagged(self, process_pool):
        """A capacities() view from an *earlier* invalidation epoch can
        still alias the live buffer (no regrow in between); a later
        ``set_capacity`` must advance its tag too, or the arena serves
        the pre-write bytes through the old view."""
        graph = Graph(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])
        caps = graph.capacities()
        assert process_pool.map(_array_sum, [(caps,)]) == [7.0]
        graph.add_edge(1, 2, 8.0)  # drops the cached view, keeps `caps`
        graph.set_capacity(0, 10.0)  # writes through the shared buffer
        assert caps[0] == 10.0  # the old view sees the write...
        assert process_pool.map(_array_sum, [(caps,)]) == [16.0]  # ...and so must workers

    def test_version_bump_mid_map_serves_one_snapshot(self):
        """A version bump *between two exports of the same map call*
        (a mutator racing the payload preparation) must not unlink the
        segment already referenced by the call's payload: the call is
        served one consistent snapshot and the next call re-exports."""
        arena = SharedArena()
        array = np.full(4, 2.0)
        array.setflags(write=False)
        arena.begin_map()
        ref = arena.export(array)
        tag_array_version(array, 99)  # the racing mutation
        assert arena.export(array) is ref  # same call: snapshot held
        assert arena.export_count == 1 and arena.reuse_count == 1
        arena.begin_map()
        fresh = arena.export(array)  # next call: stale entry evicted
        assert fresh.name != ref.name
        assert arena.export_count == 2
        arena.release()

    def test_shm_exhaustion_evicts_and_retries(self, monkeypatch):
        """ENOSPC on segment creation (tiny /dev/shm) drops every
        segment outside the current call's working set and retries."""
        arena = SharedArena()
        old = np.arange(64, dtype=np.float64)
        old.setflags(write=False)
        arena.begin_map()
        arena.export(old)
        real_export = arena_module.export_segment
        failures = [1]

        def flaky_export(array):
            if failures:
                failures.pop()
                raise OSError(28, "No space left on device")
            return real_export(array)

        monkeypatch.setattr(arena_module, "export_segment", flaky_export)
        new = np.arange(64, dtype=np.float64) + 1
        new.setflags(write=False)
        arena.begin_map()
        ref = arena.export(new)  # first attempt fails, retry succeeds
        assert ref.shape == (64,)
        assert len(arena) == 1  # `old` was drained to make room
        arena.release()


# ----------------------------------------------------------------------
# Segment lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_array_gc_unlinks_the_segment(self):
        from multiprocessing import shared_memory

        arena = SharedArena()
        array = np.arange(256, dtype=np.float64)
        array.setflags(write=False)
        ref = arena.export(array)
        assert arena.export(array) is ref  # cached
        assert arena.export_count == 1 and arena.reuse_count == 1
        name = ref.name
        del array
        gc.collect()
        assert len(arena) == 0
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_shutdown_unlinks_every_segment(self, process_pool):
        from multiprocessing import shared_memory

        graph = make_graph("grid", 202)
        kernels.bfs_levels(graph.csr(), 0, parallel=_process_config())
        names = process_pool._arena.segment_names()
        assert len(names) == 3
        shutdown_pools()
        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_release_is_idempotent(self):
        arena = SharedArena()
        array = np.arange(16, dtype=np.float64)
        array.setflags(write=False)
        arena.export(array)
        arena.release()
        arena.release()  # second release (and the GC finalizer later)
        assert len(arena) == 0


# ----------------------------------------------------------------------
# Residency budget (LRU eviction keeps /dev/shm bounded)
# ----------------------------------------------------------------------
class TestByteBudget:
    @staticmethod
    def _frozen(n: int, fill: float) -> np.ndarray:
        array = np.full(n, fill, dtype=np.float64)
        array.setflags(write=False)
        return array

    def test_lru_eviction_bounds_residency(self):
        # Room for three 100-element float64 arrays, not four.
        arena = SharedArena(max_bytes=3 * 800)
        arrays = [self._frozen(100, float(i)) for i in range(5)]
        for array in arrays:
            arena.begin_map()
            arena.export(array)
        assert arena.total_bytes <= arena.max_bytes
        assert len(arena) == 3
        # The survivors are the most recently used; the evicted ones
        # simply re-export on next touch (correctness never depends on
        # residency).
        live = set(arena.segment_names())
        arena.begin_map()
        ref0 = arena.export(arrays[0])
        assert ref0.name not in live  # was evicted, fresh segment
        assert arena.export_count == 6

    def test_current_map_working_set_is_never_evicted(self):
        # Budget below a single map call's working set: the cap goes
        # soft instead of evicting refs already in the outgoing
        # payload.
        arena = SharedArena(max_bytes=800)
        arena.begin_map()
        first = self._frozen(100, 1.0)
        second = self._frozen(100, 2.0)
        ref_a = arena.export(first)
        arena.export(second)
        assert len(arena) == 2  # over budget, same tick — both kept
        assert arena.total_bytes == 1600
        # Same-call reuse still serves the original segment.
        assert arena.export(first) is ref_a

    def test_budget_disabled_with_none(self):
        arena = SharedArena(max_bytes=None)
        arrays = [self._frozen(100, float(i)) for i in range(4)]
        for array in arrays:
            arena.begin_map()
            arena.export(array)
        assert len(arena) == 4
        arena.release()


# ----------------------------------------------------------------------
# Concurrency: maps racing mutations must serialize, not crash
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_concurrent_maps_with_version_bumps_do_not_crash(
        self, process_pool
    ):
        """Threads hammer ``map`` on one shared capacities view while
        another thread bumps its version via ``set_capacity``: every
        map must see a *consistent* segment (the whole-call lock keeps
        a version-mismatch eviction from unlinking a segment an
        in-flight map is about to attach)."""
        graph = Graph(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])
        caps = graph.capacities()
        stop = threading.Event()

        def mutate():
            i = 0
            while not stop.is_set():
                graph.set_capacity(0, 1.0 + (i % 5))
                i += 1

        mutator = threading.Thread(target=mutate)
        mutator.start()
        try:
            with ThreadPoolExecutor(max_workers=4) as executor:
                # Multi-task payloads matter: the same view is exported
                # once per task, so a version bump landing between two
                # exports of one call exercises the snapshot rule.
                futures = [
                    executor.submit(
                        process_pool.map, _array_sum, [(caps,), (caps,)]
                    )
                    for _ in range(24)
                ]
                results = [future.result() for future in futures]
        finally:
            stop.set()
            mutator.join()
        for pair in results:
            # Each result is the sum under *some* capacity version:
            # base 2 + 4 plus a first-edge value in {1..5} — and both
            # tasks of a call see the same snapshot.
            assert 7.0 <= pair[0] <= 11.0
            assert pair[0] == pair[1]


# ----------------------------------------------------------------------
# Interpreter-exit hygiene (satellite: subprocess regression)
# ----------------------------------------------------------------------
class TestTeardownHygiene:
    def test_interpreter_exit_leaves_no_tracker_warnings(self):
        """Exit with live arena segments and *no* explicit shutdown:
        the finalize-owned unlink handlers must run at exit, so the
        resource tracker sees neither leaked segments nor phantom
        unregisters (the KeyError it warns about)."""
        script = textwrap.dedent(
            """
            from repro.graphs import kernels
            from repro.graphs.generators import grid
            from repro.parallel import ParallelConfig

            config = ParallelConfig(workers=2, backend="process", min_size=0)
            graph = grid(9, 9, rng=902)
            dist = kernels.bfs_levels(graph.csr(), 0, parallel=config)
            assert int(dist.max()) >= 4
            print("RUN-OK")
            # fall off the end: atexit owns pool + segment teardown
            """
        )
        repo_root = Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        src = str(repo_root / "src")
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=repo_root,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "RUN-OK" in proc.stdout
        for needle in ("resource_tracker", "leaked", "KeyError", "Traceback"):
            assert needle not in proc.stderr, proc.stderr


# ----------------------------------------------------------------------
# End-to-end: stacked MWU lengths ride the arena too
# ----------------------------------------------------------------------
def test_mwu_capacities_ride_the_arena(process_pool):
    graph = make_graph("random", 303)
    caps = graph.capacities()
    config = _process_config()
    rng = np.random.default_rng(303)
    stack = rng.uniform(0.0, 60.0, size=(8, graph.num_edges))
    serial = mwu_lengths(stack, caps)
    assert_arrays_identical(
        "mwu_lengths", serial, mwu_lengths(stack, caps, parallel=config)
    )
    exports = process_pool._arena.export_count
    assert exports >= 1  # the read-only capacities view persists
    mwu_lengths(stack, caps, parallel=config)
    assert process_pool._arena.export_count == exports


def test_mwu_default_threshold_spares_small_stacks(process_pool):
    """Under the *default* min_size a small stacked evaluation (the
    elementwise exp is ~a millisecond even at n=4096 scales) must not
    pay pool dispatch: the elementwise work divisor keeps it serial."""
    graph = make_graph("random", 101)
    caps = graph.capacities()
    stack = np.random.default_rng(1).uniform(
        0.0, 60.0, size=(9, graph.num_edges)
    )
    config = ParallelConfig(workers=2, backend="process")  # default min_size
    result = mwu_lengths(stack, caps, parallel=config)
    assert_arrays_identical("mwu_lengths[default]", mwu_lengths(stack, caps), result)
    assert process_pool._arena.export_count == 0  # never dispatched
