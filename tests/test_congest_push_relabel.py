"""Tests for distributed push-relabel: correctness vs the exact oracle
and the superlinear round behaviour the paper cites as motivation."""

from __future__ import annotations

import pytest

from repro.congest import distributed_push_relabel
from repro.errors import GraphError
from repro.flow import dinic_max_flow
from repro.graphs.generators import (
    barbell,
    grid,
    path,
    push_relabel_hard_instance,
    random_connected,
)
from repro.graphs.graph import Graph
from repro.util.validation import check_feasible_flow, st_demand


class TestCorrectness:
    def test_single_edge(self):
        g = Graph(2, [(0, 1, 5.0)])
        run = distributed_push_relabel(g, 0, 1)
        assert run.value == pytest.approx(5.0)

    def test_path_bottleneck(self):
        g = Graph(4, [(0, 1, 9.0), (1, 2, 2.0), (2, 3, 9.0)])
        run = distributed_push_relabel(g, 0, 3)
        assert run.value == pytest.approx(2.0)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_dinic_on_random_graphs(self, seed):
        g = random_connected(14, 0.25, rng=seed)
        run = distributed_push_relabel(g, 0, 13)
        exact = dinic_max_flow(g, 0, 13).value
        assert run.value == pytest.approx(exact, rel=1e-6)

    def test_matches_dinic_on_grid(self):
        g = grid(4, 4, rng=9)
        run = distributed_push_relabel(g, 0, 15)
        assert run.value == pytest.approx(
            dinic_max_flow(g, 0, 15).value, rel=1e-6
        )

    def test_matches_dinic_on_barbell(self):
        g = barbell(5, bridge_capacity=3.0, rng=9)
        run = distributed_push_relabel(g, 0, 5)
        assert run.value == pytest.approx(3.0)

    def test_flow_is_feasible(self):
        g = random_connected(12, 0.3, rng=17)
        run = distributed_push_relabel(g, 0, 11)
        check_feasible_flow(g, run.flow, st_demand(g, 0, 11, run.value))

    def test_same_terminals_rejected(self):
        g = Graph(2, [(0, 1, 1.0)])
        with pytest.raises(GraphError):
            distributed_push_relabel(g, 1, 1)


class TestRoundBehaviour:
    """The superlinear-in-(D + √n) scaling of §1.2 (Experiment E1/E10).

    Push-relabel's rounds grow ~linearly in n even on constant-diameter
    graphs (excess must climb heights ~n to return to the source), so
    rounds / (D + √n) diverges — the gap the paper's algorithm closes.
    """

    def test_rounds_linear_in_n_at_constant_diameter(self):
        rounds = []
        for k in (6, 10, 14):
            g = barbell(k, bridge_capacity=1.0, rng=1, max_capacity=10)
            assert g.diameter() == 3
            run = distributed_push_relabel(g, 0, k)
            assert run.value == pytest.approx(1.0)
            rounds.append((g.num_nodes, run.rounds))
        # Rounds grow at least linearly with n while D stays 3.
        (n0, r0), _, (n2, r2) = rounds
        assert r2 - r0 >= 0.8 * (n2 - n0)
        # And far exceed D + sqrt(n).
        assert r2 > 3 * (3 + n2 ** 0.5)

    def test_rounds_grow_on_hard_path_instances(self):
        rounds = []
        for levels in (8, 16, 32):
            g = push_relabel_hard_instance(levels)
            run = distributed_push_relabel(g, 0, levels)
            assert run.value == pytest.approx(1.0)
            rounds.append(run.rounds)
        assert rounds[1] > 1.5 * rounds[0]
        assert rounds[2] > 1.5 * rounds[1]

    def test_rounds_far_exceed_diameter_on_paths(self):
        g = path(24, rng=1, max_capacity=10)
        run = distributed_push_relabel(g, 0, 23)
        assert run.rounds > 2 * g.num_nodes

    def test_operation_counters_populated(self):
        g = random_connected(10, 0.3, rng=2)
        run = distributed_push_relabel(g, 0, 9)
        assert run.pushes > 0
        assert run.relabels >= 0
