"""Unit tests for the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import generators as gen


class TestBasicShapes:
    def test_path_edge_count(self):
        g = gen.path(10, rng=1)
        assert g.num_nodes == 10
        assert g.num_edges == 9
        assert g.diameter() == 9

    def test_cycle_edge_count(self):
        g = gen.cycle(8, rng=1)
        assert g.num_edges == 8
        assert g.diameter() == 4

    def test_cycle_minimum_size(self):
        with pytest.raises(GraphError):
            gen.cycle(2)

    def test_complete_edge_count(self):
        g = gen.complete(7, rng=1)
        assert g.num_edges == 21
        assert g.diameter() == 1

    def test_star_shape(self):
        g = gen.star(6, rng=1)
        assert g.num_nodes == 7
        assert g.degree(0) == 6
        assert g.diameter() == 2

    def test_grid_shape(self):
        g = gen.grid(3, 4, rng=1)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.is_connected()

    def test_grid_uniform_capacity(self):
        g = gen.grid(3, 3, uniform_capacity=5.0)
        assert all(e.capacity == 5.0 for e in g.edges())

    def test_torus_is_regular(self):
        g = gen.torus(4, 5, rng=1)
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_torus_minimum_size(self):
        with pytest.raises(GraphError):
            gen.torus(2, 5)

    def test_hypercube(self):
        g = gen.hypercube(4, rng=1)
        assert g.num_nodes == 16
        assert all(g.degree(v) == 4 for v in g.nodes())
        assert g.diameter() == 4


class TestRandomFamilies:
    def test_erdos_renyi_reproducible(self):
        a = gen.erdos_renyi(20, 0.3, rng=42)
        b = gen.erdos_renyi(20, 0.3, rng=42)
        assert a.num_edges == b.num_edges

    def test_erdos_renyi_p_zero_empty(self):
        assert gen.erdos_renyi(10, 0.0, rng=1).num_edges == 0

    def test_erdos_renyi_p_one_complete(self):
        g = gen.erdos_renyi(10, 1.0, rng=1)
        assert g.num_edges == 45

    def test_random_connected_is_connected(self):
        for seed in range(5):
            assert gen.random_connected(30, 0.02, rng=seed).is_connected()

    def test_random_connected_minimum_edges(self):
        g = gen.random_connected(15, 0.0, rng=3)
        assert g.num_edges == 14  # exactly a spanning tree

    def test_expander_connected_low_diameter(self):
        g = gen.random_regular_expander(64, degree=6, rng=5)
        assert g.is_connected()
        assert g.diameter() <= 6

    def test_expander_odd_degree_rejected(self):
        with pytest.raises(GraphError):
            gen.random_regular_expander(10, degree=3)

    def test_random_geometric_default_radius_connects(self):
        # Above-threshold default radius should usually connect.
        connected = sum(
            gen.random_geometric(40, rng=seed).is_connected()
            for seed in range(5)
        )
        assert connected >= 3

    def test_capacities_are_positive_integers(self):
        g = gen.random_connected(20, 0.1, rng=9, max_capacity=50)
        for e in g.edges():
            assert e.capacity == int(e.capacity)
            assert 1 <= e.capacity <= 50


class TestStructuredInstances:
    def test_barbell_bridge_is_min_cut(self):
        g = gen.barbell(6, bridge_capacity=1.5, rng=2)
        from repro.flow import dinic_max_flow

        assert dinic_max_flow(g, 0, 6).value == pytest.approx(1.5)

    def test_barbell_long_bridge(self):
        g = gen.barbell(4, bridge_length=5, bridge_capacity=1.0, rng=2)
        assert g.is_connected()
        assert g.num_nodes == 8 + 4

    def test_caterpillar_is_tree(self):
        g = gen.caterpillar(5, 3, rng=1)
        assert g.num_edges == g.num_nodes - 1
        assert g.is_connected()

    def test_weighted_variant_preserves_topology(self):
        g = gen.grid(4, 4, rng=1)
        w = gen.weighted_variant(g, spread=1000.0, rng=2)
        assert w.num_edges == g.num_edges
        assert all(
            w.endpoints(e) == g.endpoints(e) for e in range(g.num_edges)
        )

    def test_weighted_variant_spread_validated(self):
        g = gen.grid(3, 3, rng=1)
        with pytest.raises(GraphError):
            gen.weighted_variant(g, spread=0.5)

    def test_push_relabel_hard_instance_value(self):
        g = gen.push_relabel_hard_instance(10)
        from repro.flow import dinic_max_flow

        assert dinic_max_flow(g, 0, 10).value == pytest.approx(1.0)

    def test_push_relabel_hard_instance_validates(self):
        with pytest.raises(GraphError):
            gen.push_relabel_hard_instance(1)

    def test_generator_accepts_generator_object(self):
        rng = np.random.default_rng(0)
        g = gen.random_connected(10, 0.1, rng=rng)
        assert g.is_connected()


# ---------------------------------------------------------------------------
# Scenario-corpus topology families (PR 9): property-based contracts.
# ---------------------------------------------------------------------------
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.flow import dinic_max_flow
from repro.graphs.csr import INDEX_DTYPE, WIDE_DTYPE

_PROPERTY_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _assert_dtype_contract(graph):
    tails, heads = graph.edge_index_arrays()
    assert tails.dtype == INDEX_DTYPE
    assert heads.dtype == INDEX_DTYPE
    assert graph.capacities().dtype == np.float64


class TestPowerLawProperties:
    @_PROPERTY_SETTINGS
    @given(
        n=st.integers(min_value=8, max_value=120),
        seed=st.integers(min_value=0, max_value=10_000),
        exponent=st.floats(min_value=2.1, max_value=3.5),
    )
    def test_connected_with_dtype_contract(self, n, seed, exponent):
        g = gen.power_law(n, exponent=exponent, rng=seed)
        assert g.num_nodes == n
        assert g.is_connected()
        assert np.all(g.capacities() > 0)
        _assert_dtype_contract(g)

    @_PROPERTY_SETTINGS
    @given(
        n=st.integers(min_value=8, max_value=80),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_seed_determinism(self, n, seed):
        first = gen.power_law(n, rng=seed)
        second = gen.power_law(n, rng=seed)
        fu, fv = first.edge_index_arrays()
        su, sv = second.edge_index_arrays()
        assert np.array_equal(fu, su)
        assert np.array_equal(fv, sv)
        assert np.array_equal(first.capacities(), second.capacities())

    def test_min_degree_is_respected(self):
        g = gen.power_law(60, min_degree=2, rng=3)
        degrees = [g.degree(v) for v in g.nodes()]
        # Stub pairing can drop self-loops/duplicates, but the floor
        # may dip by at most those removals; the bulk must hold it.
        assert np.median(degrees) >= 2

    def test_exponent_validation(self):
        with pytest.raises(GraphError):
            gen.power_law(10, exponent=1.0)


class TestRoadNetworkProperties:
    @_PROPERTY_SETTINGS
    @given(
        rows=st.integers(min_value=3, max_value=12),
        cols=st.integers(min_value=3, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
        delete=st.floats(min_value=0.0, max_value=0.4),
    )
    def test_connected_with_dtype_contract(self, rows, cols, seed, delete):
        g = gen.road_network(rows, cols, delete_fraction=delete, rng=seed)
        assert g.num_nodes == rows * cols
        assert g.is_connected()
        _assert_dtype_contract(g)

    @_PROPERTY_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_seed_determinism(self, seed):
        first = gen.road_network(8, 8, rng=seed)
        second = gen.road_network(8, 8, rng=seed)
        fu, fv = first.edge_index_arrays()
        su, sv = second.edge_index_arrays()
        assert np.array_equal(fu, su)
        assert np.array_equal(fv, sv)
        assert np.array_equal(first.capacities(), second.capacities())

    def test_shortcuts_added_and_edges_deleted(self):
        base = gen.grid(10, 10, rng=0)
        g = gen.road_network(10, 10, delete_fraction=0.3, shortcuts=5, rng=1)
        # Deletions remove grid edges; shortcuts add long-range ones.
        tails, heads = g.edge_index_arrays()
        span = np.abs(tails.astype(np.int64) - heads.astype(np.int64))
        assert np.any((span != 1) & (span != 10))  # a long-range edge
        assert g.num_edges < base.num_edges + 5


class TestPlantedBottleneckProperties:
    @_PROPERTY_SETTINGS
    @given(
        side=st.integers(min_value=6, max_value=24),
        bridges=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_min_cut_equals_planted_value(self, side, bridges, seed):
        planted = gen.planted_bottleneck(
            side, bridge_edges=bridges, bridge_capacity=1.5, rng=seed
        )
        g = planted.graph
        assert g.is_connected()
        assert planted.cut_capacity == bridges * 1.5
        s = int(np.flatnonzero(planted.left)[0])
        t = int(np.flatnonzero(~planted.left)[0])
        exact = dinic_max_flow(g, s, t)
        assert exact.value == pytest.approx(planted.cut_capacity, rel=1e-9)

    @_PROPERTY_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_seed_determinism_and_metadata(self, seed):
        first = gen.planted_bottleneck(12, rng=seed)
        second = gen.planted_bottleneck(12, rng=seed)
        fu, fv = first.graph.edge_index_arrays()
        su, sv = second.graph.edge_index_arrays()
        assert np.array_equal(fu, su)
        assert np.array_equal(fv, sv)
        assert np.array_equal(
            first.graph.capacities(), second.graph.capacities()
        )
        assert np.array_equal(first.bridge_edges, second.bridge_edges)
        assert first.bridge_edges.dtype == WIDE_DTYPE
        assert first.left.dtype == np.bool_
        assert first.left.sum() == 12
        _assert_dtype_contract(first.graph)

    def test_bridge_edges_cross_the_partition(self):
        planted = gen.planted_bottleneck(10, bridge_edges=3, rng=5)
        tails, heads = planted.graph.edge_index_arrays()
        for eid in planted.bridge_edges.tolist():
            assert planted.left[tails[eid]] != planted.left[heads[eid]]

    def test_live_cut_capacity_tracks_mutation(self):
        planted = gen.planted_bottleneck(10, bridge_edges=2, rng=5)
        before = planted.live_cut_capacity()
        eid = int(planted.bridge_edges[0])
        original = float(planted.graph.capacities()[eid])
        planted.graph.set_capacity(eid, 0.5)
        after = planted.live_cut_capacity()
        assert after == pytest.approx(before - original + 0.5, rel=1e-9)
