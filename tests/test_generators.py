"""Unit tests for the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs import generators as gen


class TestBasicShapes:
    def test_path_edge_count(self):
        g = gen.path(10, rng=1)
        assert g.num_nodes == 10
        assert g.num_edges == 9
        assert g.diameter() == 9

    def test_cycle_edge_count(self):
        g = gen.cycle(8, rng=1)
        assert g.num_edges == 8
        assert g.diameter() == 4

    def test_cycle_minimum_size(self):
        with pytest.raises(GraphError):
            gen.cycle(2)

    def test_complete_edge_count(self):
        g = gen.complete(7, rng=1)
        assert g.num_edges == 21
        assert g.diameter() == 1

    def test_star_shape(self):
        g = gen.star(6, rng=1)
        assert g.num_nodes == 7
        assert g.degree(0) == 6
        assert g.diameter() == 2

    def test_grid_shape(self):
        g = gen.grid(3, 4, rng=1)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical
        assert g.is_connected()

    def test_grid_uniform_capacity(self):
        g = gen.grid(3, 3, uniform_capacity=5.0)
        assert all(e.capacity == 5.0 for e in g.edges())

    def test_torus_is_regular(self):
        g = gen.torus(4, 5, rng=1)
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_torus_minimum_size(self):
        with pytest.raises(GraphError):
            gen.torus(2, 5)

    def test_hypercube(self):
        g = gen.hypercube(4, rng=1)
        assert g.num_nodes == 16
        assert all(g.degree(v) == 4 for v in g.nodes())
        assert g.diameter() == 4


class TestRandomFamilies:
    def test_erdos_renyi_reproducible(self):
        a = gen.erdos_renyi(20, 0.3, rng=42)
        b = gen.erdos_renyi(20, 0.3, rng=42)
        assert a.num_edges == b.num_edges

    def test_erdos_renyi_p_zero_empty(self):
        assert gen.erdos_renyi(10, 0.0, rng=1).num_edges == 0

    def test_erdos_renyi_p_one_complete(self):
        g = gen.erdos_renyi(10, 1.0, rng=1)
        assert g.num_edges == 45

    def test_random_connected_is_connected(self):
        for seed in range(5):
            assert gen.random_connected(30, 0.02, rng=seed).is_connected()

    def test_random_connected_minimum_edges(self):
        g = gen.random_connected(15, 0.0, rng=3)
        assert g.num_edges == 14  # exactly a spanning tree

    def test_expander_connected_low_diameter(self):
        g = gen.random_regular_expander(64, degree=6, rng=5)
        assert g.is_connected()
        assert g.diameter() <= 6

    def test_expander_odd_degree_rejected(self):
        with pytest.raises(GraphError):
            gen.random_regular_expander(10, degree=3)

    def test_random_geometric_default_radius_connects(self):
        # Above-threshold default radius should usually connect.
        connected = sum(
            gen.random_geometric(40, rng=seed).is_connected()
            for seed in range(5)
        )
        assert connected >= 3

    def test_capacities_are_positive_integers(self):
        g = gen.random_connected(20, 0.1, rng=9, max_capacity=50)
        for e in g.edges():
            assert e.capacity == int(e.capacity)
            assert 1 <= e.capacity <= 50


class TestStructuredInstances:
    def test_barbell_bridge_is_min_cut(self):
        g = gen.barbell(6, bridge_capacity=1.5, rng=2)
        from repro.flow import dinic_max_flow

        assert dinic_max_flow(g, 0, 6).value == pytest.approx(1.5)

    def test_barbell_long_bridge(self):
        g = gen.barbell(4, bridge_length=5, bridge_capacity=1.0, rng=2)
        assert g.is_connected()
        assert g.num_nodes == 8 + 4

    def test_caterpillar_is_tree(self):
        g = gen.caterpillar(5, 3, rng=1)
        assert g.num_edges == g.num_nodes - 1
        assert g.is_connected()

    def test_weighted_variant_preserves_topology(self):
        g = gen.grid(4, 4, rng=1)
        w = gen.weighted_variant(g, spread=1000.0, rng=2)
        assert w.num_edges == g.num_edges
        assert all(
            w.endpoints(e) == g.endpoints(e) for e in range(g.num_edges)
        )

    def test_weighted_variant_spread_validated(self):
        g = gen.grid(3, 3, rng=1)
        with pytest.raises(GraphError):
            gen.weighted_variant(g, spread=0.5)

    def test_push_relabel_hard_instance_value(self):
        g = gen.push_relabel_hard_instance(10)
        from repro.flow import dinic_max_flow

        assert dinic_max_flow(g, 0, 10).value == pytest.approx(1.0)

    def test_push_relabel_hard_instance_validates(self):
        with pytest.raises(GraphError):
            gen.push_relabel_hard_instance(1)

    def test_generator_accepts_generator_object(self):
        rng = np.random.default_rng(0)
        g = gen.random_connected(10, 0.1, rng=rng)
        assert g.is_connected()
