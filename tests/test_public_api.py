"""Release-quality checks on the public API surface.

Everything advertised in ``__all__`` must exist, be importable from the
documented location, and carry a docstring; the README's core snippet
must work verbatim.
"""

from __future__ import annotations

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.graphs",
    "repro.congest",
    "repro.flow",
    "repro.lsst",
    "repro.sparsify",
    "repro.cluster",
    "repro.jtree",
    "repro.core",
    "repro.parallel",
    "repro.util",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_exist(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} missing __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, (
        f"{module_name} exports without docstrings: {undocumented}"
    )


def test_version_present():
    import repro

    assert repro.__version__


def test_readme_snippet_runs():
    from repro import build_congestion_approximator, dinic_max_flow, max_flow
    from repro.graphs.generators import random_connected

    graph = random_connected(50, extra_edge_probability=0.1, rng=7)
    approximator = build_congestion_approximator(graph, rng=13)
    result = max_flow(
        graph, source=0, sink=49, epsilon=0.25, approximator=approximator
    )
    exact = dinic_max_flow(graph, 0, 49).value
    assert result.value / exact > 0.9
    assert result.certified_upper_bound >= exact - 1e-9


def test_errors_module_hierarchy():
    from repro import errors

    for name in (
        "GraphError",
        "DisconnectedGraphError",
        "InvalidDemandError",
        "InvalidFlowError",
        "CongestModelError",
        "MessageTooLargeError",
        "RoundLimitExceededError",
        "ConvergenceError",
        "TreeError",
    ):
        exc = getattr(errors, name)
        assert issubclass(exc, errors.ReproError)
