"""Scenario corpus tests: grammar, demand models, failures, runner
invariants, the mutation test proving the invariants have teeth, and
the scenario x fault-injection interaction contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.approximator import (
    TreeCongestionApproximator,
    build_congestion_approximator,
)
from repro.errors import (
    InvariantViolation,
    PoolFailureError,
    ReproError,
    ScenarioError,
)
from repro.faults import FaultPlan, set_fault_plan, use_faults
from repro.graphs.csr import WIDE_DTYPE
from repro.parallel import (
    RecoveryPolicy,
    shutdown_pools,
    use_recovery,
)
from repro.parallel.pool import _fork_available
from repro.scenarios import (
    BACKENDS,
    DEMANDS,
    FAILURES,
    TOPOLOGIES,
    Scenario,
    backend_config,
    build_matrix,
    quick_matrix,
    resolve_demand,
    resolve_failure,
    resolve_topology,
    run_matrix,
    scenario_seed,
)
from repro.scenarios.corpus import BENCH_SUBSET
from repro.scenarios.demand import SATURATION, generate_demands
from repro.scenarios.failures import (
    DEGRADE_FACTOR,
    DELETED_CAPACITY,
    apply_failure,
)
from repro.scenarios.report import bench_rows, scenario_report
from repro.util.validation import check_demand_batch

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)

#: Fast supervision for the fault-interaction tests.
FAST = RecoveryPolicy(timeout=10.0, retries=2, backoff=0.0)


@pytest.fixture(autouse=True)
def _clean_slate():
    set_fault_plan(None)
    shutdown_pools()
    yield
    set_fault_plan(None)
    shutdown_pools()


def _planted_instance(seed: int = 77):
    return resolve_topology("planted_60").build(seed)


def _torus_instance(seed: int = 77):
    return resolve_topology("torus_9x9").build(seed)


# ----------------------------------------------------------------------
# Grammar / registries
# ----------------------------------------------------------------------
class TestGrammar:
    def test_registries_are_populated(self):
        assert {"torus_9x9", "power_law_96", "road_12x12", "planted_60"} <= (
            set(TOPOLOGIES)
        )
        assert {"gravity", "hotspot", "adversarial_cut"} <= set(DEMANDS)
        assert {"none", "degrade", "delete"} <= set(FAILURES)

    @pytest.mark.parametrize(
        "resolver", [resolve_topology, resolve_demand, resolve_failure]
    )
    def test_unknown_axis_name_is_typed(self, resolver):
        with pytest.raises(ScenarioError) as excinfo:
            resolver("no_such_axis")
        assert "no_such_axis" in str(excinfo.value)
        assert isinstance(excinfo.value, ReproError)

    def test_unknown_backend_is_typed(self):
        with pytest.raises(ScenarioError):
            backend_config("gpu")
        with pytest.raises(ScenarioError):
            build_matrix(
                ["torus_9x9"], ["gravity"], ["none"], ["gpu"]
            )

    def test_matrix_skips_incompatible_pairs(self):
        matrix = build_matrix(
            ["torus_9x9", "planted_60"],
            ["gravity", "adversarial_cut"],
            ["none"],
            ["serial"],
        )
        names = {s.name for s in matrix}
        assert "planted_60__adversarial_cut__none__serial" in names
        assert not any(
            s.topology == "torus_9x9" and s.demand == "adversarial_cut"
            for s in matrix
        )

    def test_explicit_incompatible_scenario_raises(self):
        scenario = Scenario(
            topology="torus_9x9",
            demand="adversarial_cut",
            failure="none",
            backend="serial",
        )
        with pytest.raises(ScenarioError):
            run_matrix([scenario])

    def test_duplicate_backend_in_group_rejected(self):
        scenario = Scenario(
            topology="torus_9x9",
            demand="gravity",
            failure="none",
            backend="serial",
        )
        with pytest.raises(ScenarioError):
            run_matrix([scenario, scenario])

    def test_scenario_seed_is_stable_and_name_sensitive(self):
        a = scenario_seed(9090, "topology", "torus_9x9")
        assert a == scenario_seed(9090, "topology", "torus_9x9")
        assert a != scenario_seed(9090, "topology", "planted_60")
        assert a != scenario_seed(9091, "topology", "torus_9x9")

    def test_quick_matrix_covers_every_axis_and_bench_subset(self):
        matrix = quick_matrix()
        names = {s.name for s in matrix}
        assert set(BENCH_SUBSET) <= names
        assert {s.backend for s in matrix} == set(BACKENDS)
        assert {s.demand for s in matrix} == {
            "gravity",
            "hotspot",
            "adversarial_cut",
        }
        assert {s.failure for s in matrix} == {"none", "degrade", "restore"}


# ----------------------------------------------------------------------
# Demand models
# ----------------------------------------------------------------------
class TestDemandModels:
    @pytest.mark.parametrize("name", ["gravity", "hotspot"])
    def test_plane_is_valid_and_zero_sum(self, name):
        instance = _torus_instance()
        plane = generate_demands(instance, resolve_demand(name), 3, 42)
        assert plane.shape == (3, instance.graph.num_nodes)
        check_demand_batch(instance.graph, plane)
        assert np.allclose(plane.sum(axis=1), 0.0, atol=1e-9)

    def test_adversarial_plane_is_valid_on_planted(self):
        instance = _planted_instance()
        plane = generate_demands(
            instance, resolve_demand("adversarial_cut"), 2, 42
        )
        check_demand_batch(instance.graph, plane)

    @pytest.mark.parametrize(
        "name", ["gravity", "hotspot", "adversarial_cut"]
    )
    def test_seed_determinism(self, name):
        instance = _planted_instance()
        spec = resolve_demand(name)
        first = generate_demands(instance, spec, 2, 42)
        second = generate_demands(instance, spec, 2, 42)
        other = generate_demands(instance, spec, 2, 43)
        assert np.array_equal(first, second)
        assert not np.array_equal(first, other)

    def test_hotspot_moves_between_queries(self):
        instance = _torus_instance()
        plane = generate_demands(instance, resolve_demand("hotspot"), 4, 7)
        hubs = {int(np.argmax(row)) for row in plane}
        assert len(hubs) > 1

    def test_adversarial_saturates_planted_cut(self):
        # The demand crossing left -> right equals SATURATION x the
        # planted cut's capacity, so any feasible routing pushes
        # SATURATION x capacity through the bridge: opt >= SATURATION.
        instance = _planted_instance()
        planted = instance.planted
        plane = generate_demands(
            instance, resolve_demand("adversarial_cut"), 2, 42
        )
        crossing = plane[:, planted.left].sum(axis=1)
        expected = SATURATION * planted.live_cut_capacity()
        assert np.allclose(crossing, expected, rtol=1e-9)

    def test_adversarial_requires_planted(self):
        with pytest.raises(ScenarioError):
            generate_demands(
                _torus_instance(), resolve_demand("adversarial_cut"), 1, 42
            )


# ----------------------------------------------------------------------
# Failure models + epoch machinery
# ----------------------------------------------------------------------
class TestFailureModels:
    def test_none_is_identity(self):
        instance = _torus_instance()
        caps = instance.graph.capacities().copy()
        report = apply_failure(instance, resolve_failure("none"), 5)
        assert report.version_delta == 0
        assert report.edge_ids.shape == (0,)
        assert np.array_equal(instance.graph.capacities(), caps)

    def test_delete_floors_and_advances_epochs(self):
        instance = _torus_instance()
        version = instance.graph._version
        report = apply_failure(instance, resolve_failure("delete"), 5)
        touched = report.edge_ids
        assert touched.dtype == WIDE_DTYPE
        assert touched.shape[0] >= 1
        # One epoch per write-through set_capacity call.
        assert report.version_delta == touched.shape[0]
        assert instance.graph._version == version + touched.shape[0]
        caps = instance.graph.capacities()
        assert np.all(caps[touched] == DELETED_CAPACITY)
        assert instance.graph.is_connected()

    def test_degrade_scales_capacities(self):
        instance = _torus_instance()
        before = instance.graph.capacities().copy()
        report = apply_failure(instance, resolve_failure("degrade"), 5)
        caps = instance.graph.capacities()
        touched = report.edge_ids
        assert np.allclose(caps[touched], before[touched] * DEGRADE_FACTOR)
        untouched = np.setdiff1d(
            np.arange(instance.graph.num_edges), touched
        )
        assert np.array_equal(caps[untouched], before[untouched])

    def test_failures_spare_the_planted_bridge(self):
        instance = _planted_instance()
        planted = instance.planted
        before = planted.live_cut_capacity()
        for name in ("delete", "degrade"):
            report = apply_failure(instance, resolve_failure(name), 5)
            assert not set(report.edge_ids.tolist()) & set(
                planted.bridge_edges.tolist()
            )
        assert planted.live_cut_capacity() == before

    def test_failures_are_deterministic_under_seed(self):
        first = apply_failure(
            _torus_instance(), resolve_failure("delete"), 5
        )
        second = apply_failure(
            _torus_instance(), resolve_failure("delete"), 5
        )
        assert np.array_equal(first.edge_ids, second.edge_ids)


# ----------------------------------------------------------------------
# Runner + invariants
# ----------------------------------------------------------------------
def _small_group(backends=("serial", "thread"), demand="adversarial_cut",
                 failure="none", num_queries=1):
    return [
        Scenario(
            topology="planted_60",
            demand=demand,
            failure=failure,
            backend=backend,
            epsilon=0.5,
            num_queries=num_queries,
            seed=77,
        )
        for backend in backends
    ]


class TestRunner:
    def test_group_passes_and_records(self):
        result = run_matrix(_small_group())
        assert result.groups == 1
        assert len(result.records) == 2
        by_backend = {r.scenario.backend: r for r in result.records}
        serial, thread = by_backend["serial"], by_backend["thread"]
        # Deterministic columns coincide across backends of a group.
        assert serial.congestion == thread.congestion
        assert serial.lower_bound == thread.lower_bound
        assert serial.maxflow_value == thread.maxflow_value
        assert serial.exact_value == thread.exact_value
        # The planted cut is found exactly by the exact oracle.
        planted = _planted_instance()
        assert serial.exact_value == planted.planted.cut_capacity
        assert serial.invariants_checked >= 5
        assert thread.invariants_checked > serial.invariants_checked

    def test_adversarial_congestion_reaches_saturation(self):
        result = run_matrix(_small_group(backends=("serial",)))
        record = result.records[0]
        assert record.congestion >= SATURATION / 1.01
        assert record.lower_bound >= SATURATION / record.alpha / 1.01

    def test_failure_group_accounts_epochs(self):
        result = run_matrix(
            _small_group(backends=("serial",), failure="degrade")
        )
        record = result.records[0]
        assert record.failed_edges >= 1
        assert record.version_delta == record.failed_edges

    def test_report_is_deterministic_and_timing_free(self):
        scenarios = _small_group(backends=("serial",))
        first = scenario_report(run_matrix(scenarios), "t")
        second = scenario_report(run_matrix(scenarios), "t")
        assert first == second
        assert "planted_60" in first
        assert "seconds" not in first.lower()

    def test_bench_rows_filter_on_the_subset_names(self):
        # Scenario names omit the seed, so this adversarial group
        # shares its name with a BENCH_SUBSET row and produces a
        # metric; the hotspot group is outside the subset and none.
        subset_run = run_matrix(_small_group(backends=("serial",)))
        rows = bench_rows(subset_run)
        assert list(rows) == [
            "scenario_route__planted_60__adversarial_cut__none__serial"
        ]
        assert all(seconds > 0 for seconds in rows.values())
        other_run = run_matrix(
            _small_group(backends=("serial",), demand="hotspot")
        )
        assert bench_rows(other_run) == {}


# ----------------------------------------------------------------------
# Mutation tests: a deliberately broken approximator must be caught.
# ----------------------------------------------------------------------
def _sabotaged(scale: float):
    def factory(graph, seed) -> TreeCongestionApproximator:
        approx = build_congestion_approximator(graph, rng=seed)
        for op in approx.operators:
            op.row_inv_capacity = op.row_inv_capacity * scale
        approx._stacked = None  # rebuild the fused operator from the
        # sabotaged rows (alpha estimation caches it pre-sabotage)
        return approx

    return factory


class TestMutation:
    def test_inflated_rows_are_caught(self):
        # x100 rows claim impossibly strong cuts: the certified upper
        # bound drops below the exact optimum (or the soundness check
        # sees lower_bound > congestion) and an invariant fires.
        with pytest.raises(InvariantViolation):
            run_matrix(
                _small_group(backends=("serial",)),
                build_approximator=_sabotaged(100.0),
            )

    def test_deflated_rows_are_caught(self):
        # /100 rows miss the planted bottleneck: the congestion
        # guarantee (or planted-detection) invariant fires.
        with pytest.raises(InvariantViolation):
            run_matrix(
                _small_group(backends=("serial",)),
                build_approximator=_sabotaged(0.01),
            )

    def test_healthy_approximator_passes_the_same_group(self):
        # Control: the identical group passes with the real factory,
        # so the mutation failures above are the sabotage, not the
        # scenario.
        result = run_matrix(_small_group(backends=("serial",)))
        assert result.records[0].invariants_checked >= 5


# ----------------------------------------------------------------------
# Scenario x fault-injection interaction: recovered-bit-identical or
# typed ReproError, never a hang (extends the tests/test_faults.py
# contract to the scenario runner).
# ----------------------------------------------------------------------
@needs_fork
class TestFaultInteraction:
    def _process_group(self):
        return _small_group(backends=("serial", "process"))

    def test_worker_exit_recovers_bit_identically(self):
        # The runner itself asserts process flows == serial flows bit
        # for bit; if the respawn-and-reexecute recovery were not
        # invisible, the backend-identity invariant would fire here.
        plan = FaultPlan(["pool.worker:exit@2"])
        with use_faults(plan), use_recovery(
            RecoveryPolicy(timeout=1.0, retries=2, backoff=0.0)
        ):
            result = run_matrix(self._process_group())
        assert plan.fired()["pool.worker"] == 1
        assert len(result.records) == 2

    def test_arena_enospc_recovers_bit_identically(self):
        plan = FaultPlan(["arena.export:enospc@1"])
        with use_faults(plan), use_recovery(FAST):
            result = run_matrix(self._process_group())
        assert plan.fired()["arena.export"] == 1
        assert len(result.records) == 2

    def test_persistent_fault_surfaces_typed_never_hangs(self):
        plan = FaultPlan(["pool.worker*inf"])
        with use_faults(plan), use_recovery(FAST):
            with pytest.raises(PoolFailureError):
                run_matrix(self._process_group())
