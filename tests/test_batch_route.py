"""Golden equivalence: batched multi-demand routing vs one-shot calls.

The serving tentpole's contract is *bit-identity per column*: for any
demand plane, :func:`almost_route_batch` (and its accelerated variant)
must return, in column q, exactly the flow/residual/counters the
one-shot call on demand q returns — same ufunc sequence, same fold
order, same masked freezing of converged columns — under every
execution config (serial, sharded thread, sharded process). These
tests pin that contract across the standard sweep matrix, plus the
batched kernel substrate (``Graph.excess_batch``,
``check_demand_batch``) and the workspace ``ensure`` raise contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from parallel_harness import (
    assert_arrays_identical,
    build_test_approximator,
    forced,
    make_graph,
)
from repro.core import (
    BatchRouteWorkspace,
    accelerated_almost_route,
    accelerated_almost_route_batch,
    almost_route,
    almost_route_batch,
)
from repro.errors import ConvergenceError, GraphError, InvalidDemandError
from repro.graphs.generators import random_connected
from repro.util.validation import check_demand_batch, st_demand


@pytest.fixture(scope="module")
def medium():
    g = make_graph("random", 101)
    return g, build_test_approximator(g, 101)


def _demand_plane(graph, seed, num_queries, zero_row=None):
    """A (Q, n) plane of mean-subtracted random demands; optionally one
    all-zero row to exercise the inactive-query path."""
    rng = np.random.default_rng(seed)
    plane = rng.normal(size=(num_queries, graph.num_nodes))
    plane -= plane.mean(axis=1, keepdims=True)
    if zero_row is not None:
        plane[zero_row] = 0.0
    return plane


def _assert_columns_identical(graph, approx, plane, eps, batch, singles):
    assert batch.num_queries == len(singles)
    for q, single in enumerate(singles):
        assert_arrays_identical(f"flow[{q}]", single.flow, batch.flows[q])
        assert_arrays_identical(
            f"residual[{q}]", single.residual, batch.residuals[q]
        )
        assert single.iterations == int(batch.iterations[q])
        assert single.scalings == int(batch.scalings[q])
        assert single.potential == float(batch.potentials[q])
        assert single.delta == float(batch.deltas[q])
        assert single.converged == bool(batch.converged[q])
        extracted = batch.query(q)
        assert_arrays_identical(f"query({q}).flow", single.flow, extracted.flow)
        assert extracted.iterations == single.iterations


# ----------------------------------------------------------------------
# Column-wise bit-identity, plain solver
# ----------------------------------------------------------------------
class TestPlainBatchGolden:
    def test_mixed_batch_matches_one_shot(self, medium):
        """Random + s-t + zero demands in one batch: every column equals
        its one-shot call, including the inactive zero column."""
        g, approx = medium
        plane = _demand_plane(g, 7, 6, zero_row=3)
        plane[1] = st_demand(g, 0, g.num_nodes - 1)
        eps = 0.4
        singles = [almost_route(g, approx, plane[q], eps) for q in range(6)]
        batch = almost_route_batch(g, approx, plane, eps)
        _assert_columns_identical(g, approx, plane, eps, batch, singles)

    def test_singleton_batch(self, medium):
        """Q=1 is the degenerate batch: exactly the one-shot call."""
        g, approx = medium
        plane = _demand_plane(g, 11, 1)
        single = almost_route(g, approx, plane[0], 0.5)
        batch = almost_route_batch(g, approx, plane, 0.5)
        _assert_columns_identical(g, approx, plane, 0.5, batch, [single])

    def test_empty_batch(self, medium):
        g, approx = medium
        batch = almost_route_batch(
            g, approx, np.zeros((0, g.num_nodes)), 0.5
        )
        assert batch.num_queries == 0
        assert batch.flows.shape == (0, g.num_edges)
        assert batch.converged.shape == (0,)

    def test_all_zero_batch(self, medium):
        """Every query inactive: zero flows, demands echoed back."""
        g, approx = medium
        plane = np.zeros((3, g.num_nodes))
        batch = almost_route_batch(g, approx, plane, 0.5)
        assert not batch.flows.any()
        assert batch.converged.all()
        assert (batch.iterations == 0).all()
        assert_arrays_identical("residuals", plane, batch.residuals)

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backend_sweep(self, medium, workers, backend):
        """The acceptance matrix: batched == one-shot, bit for bit,
        across workers ∈ {1, 2} × {serial, thread, process}."""
        g, approx = medium
        plane = _demand_plane(g, 13, 4, zero_row=2)
        eps = 0.4
        config = forced(workers, backend)
        singles = [
            almost_route(g, approx, plane[q], eps, parallel=config)
            for q in range(4)
        ]
        batch = almost_route_batch(g, approx, plane, eps, parallel=config)
        _assert_columns_identical(g, approx, plane, eps, batch, singles)
        # Cross-config: sharded batch == serial batch too.
        serial = almost_route_batch(g, approx, plane, eps)
        assert_arrays_identical("flows[serial-vs-config]", serial.flows, batch.flows)

    def test_budget_and_raise(self, medium):
        """A tiny budget leaves columns unconverged; raise_on_budget
        surfaces it, and the partial iterate still matches one-shot."""
        g, approx = medium
        plane = _demand_plane(g, 17, 3)
        singles = [
            almost_route(g, approx, plane[q], 0.4, max_iterations=5)
            for q in range(3)
        ]
        batch = almost_route_batch(g, approx, plane, 0.4, max_iterations=5)
        _assert_columns_identical(g, approx, plane, 0.4, batch, singles)
        assert not batch.converged.any()
        with pytest.raises(ConvergenceError):
            almost_route_batch(
                g, approx, plane, 0.4, max_iterations=5, raise_on_budget=True
            )


# ----------------------------------------------------------------------
# Column-wise bit-identity, accelerated solver
# ----------------------------------------------------------------------
class TestAcceleratedBatchGolden:
    def test_mixed_batch_matches_one_shot(self, medium):
        g, approx = medium
        plane = _demand_plane(g, 19, 5, zero_row=4)
        eps = 0.4
        singles = [
            accelerated_almost_route(g, approx, plane[q], eps)
            for q in range(5)
        ]
        batch = accelerated_almost_route_batch(g, approx, plane, eps)
        _assert_columns_identical(g, approx, plane, eps, batch, singles)

    @pytest.mark.parametrize("workers", [1, 2])
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_backend_sweep(self, medium, workers, backend):
        g, approx = medium
        plane = _demand_plane(g, 23, 3)
        eps = 0.4
        config = forced(workers, backend)
        singles = [
            accelerated_almost_route(g, approx, plane[q], eps, parallel=config)
            for q in range(3)
        ]
        batch = accelerated_almost_route_batch(
            g, approx, plane, eps, parallel=config
        )
        _assert_columns_identical(g, approx, plane, eps, batch, singles)

    def test_ragged_convergence_freezes_columns(self, medium):
        """Queries converging at very different iteration counts: the
        frozen columns' flows must not drift after convergence."""
        g, approx = medium
        plane = _demand_plane(g, 29, 4)
        plane[0] *= 1e-3  # converges fast
        plane[0] -= plane[0].mean()
        eps = 0.4
        singles = [
            accelerated_almost_route(g, approx, plane[q], eps)
            for q in range(4)
        ]
        batch = accelerated_almost_route_batch(g, approx, plane, eps)
        assert len(set(int(i) for i in batch.iterations)) > 1
        _assert_columns_identical(g, approx, plane, eps, batch, singles)


# ----------------------------------------------------------------------
# Batch workspace: reuse purity and the ensure raise contract
# ----------------------------------------------------------------------
class TestBatchWorkspace:
    def test_workspace_reuse_is_pure(self, medium):
        """One batch workspace across calls == fresh workspaces."""
        g, approx = medium
        ws = BatchRouteWorkspace(g, approx, 3)
        p1 = _demand_plane(g, 31, 3)
        p2 = _demand_plane(g, 37, 3, zero_row=1)
        for plane in (p1, p2):
            reused = almost_route_batch(g, approx, plane, 0.4, workspace=ws)
            fresh = almost_route_batch(g, approx, plane, 0.4)
            assert_arrays_identical("flows", fresh.flows, reused.flows)
            assert_arrays_identical(
                "iterations", fresh.iterations, reused.iterations
            )

    def test_ensure_mismatch_raises(self, medium):
        g, approx = medium
        ws = BatchRouteWorkspace(g, approx, 3)
        with pytest.raises(GraphError, match="shape mismatch"):
            BatchRouteWorkspace.ensure(ws, g, approx, 4)
        other = random_connected(12, 0.4, rng=315)
        other_approx = build_test_approximator(other, 316)
        with pytest.raises(GraphError, match="shape mismatch"):
            BatchRouteWorkspace.ensure(ws, other, other_approx, 3)
        assert BatchRouteWorkspace.ensure(ws, g, approx, 3) is ws
        built = BatchRouteWorkspace.ensure(None, g, approx, 2)
        assert built.shape_key == (
            2, g.num_edges, g.num_nodes, approx.num_rows
        )

    def test_zero_queries_rejected(self, medium):
        g, approx = medium
        with pytest.raises(GraphError):
            BatchRouteWorkspace(g, approx, 0)


# ----------------------------------------------------------------------
# Batched kernel substrate
# ----------------------------------------------------------------------
class TestExcessBatch:
    def test_rows_match_single_excess(self, medium):
        g, approx = medium
        rng = np.random.default_rng(41)
        plane = rng.normal(size=(5, g.num_edges))
        batch = g.excess_batch(plane)
        for q in range(5):
            assert_arrays_identical(
                f"excess[{q}]", g.excess(plane[q]), batch[q]
            )

    def test_out_parameter(self, medium):
        g, approx = medium
        rng = np.random.default_rng(43)
        plane = rng.normal(size=(3, g.num_edges))
        out = np.empty((3, g.num_nodes))
        assert g.excess_batch(plane, out=out) is out
        assert_arrays_identical("excess_batch[out]", g.excess_batch(plane), out)

    def test_shape_errors(self, medium):
        g, approx = medium
        with pytest.raises(GraphError):
            g.excess_batch(np.zeros(g.num_edges))  # 1-D
        with pytest.raises(GraphError):
            g.excess_batch(np.zeros((2, g.num_edges + 1)))


class TestCheckDemandBatch:
    def test_valid_plane_passes(self, medium):
        g, approx = medium
        plane = _demand_plane(g, 47, 3)
        out = check_demand_batch(g, plane)
        assert out.shape == plane.shape

    def test_wrong_shape(self, medium):
        g, approx = medium
        with pytest.raises(InvalidDemandError):
            check_demand_batch(g, np.zeros(g.num_nodes))
        with pytest.raises(InvalidDemandError):
            check_demand_batch(g, np.zeros((2, g.num_nodes + 1)))

    def test_nonzero_sum_names_query(self, medium):
        g, approx = medium
        plane = _demand_plane(g, 53, 3)
        plane[1, 0] += 5.0
        with pytest.raises(InvalidDemandError, match="demand 1"):
            check_demand_batch(g, plane)

    def test_nonfinite_names_query(self, medium):
        g, approx = medium
        plane = _demand_plane(g, 59, 3)
        plane[2, 1] = float("nan")
        with pytest.raises(InvalidDemandError, match="demand 2"):
            check_demand_batch(g, plane)
