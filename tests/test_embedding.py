"""Tests for the embedding diagnostics (Definition 8.1 empirically)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TreeError
from repro.graphs.generators import grid, random_connected
from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree, bfs_tree, induced_cut_capacities
from repro.jtree import embedding_report, sample_virtual_tree


class TestEmbeddingReport:
    def test_virtual_congestion_is_one_for_hierarchy_trees(self):
        """G 1-embeds into its virtual trees: with induced-cut
        capacities the embedding load equals the capacity exactly."""
        g = random_connected(30, 0.12, rng=411)
        vt = sample_virtual_tree(g, rng=412)
        report = embedding_report(g, vt.tree)
        children = [v for v in range(30) if vt.tree.parent[v] >= 0]
        np.testing.assert_allclose(
            report.virtual_congestion[children], 1.0, rtol=1e-9
        )

    def test_physical_rload_at_least_one(self):
        """A tree edge's induced cut contains the edge itself, so the
        physical load is at least the edge's own capacity."""
        g = grid(5, 5, rng=413)
        tree = bfs_tree(g, root=0)
        tree = RootedTree(tree.parent, induced_cut_capacities(g, tree))
        report = embedding_report(g, tree)
        children = [v for v in range(25) if tree.parent[v] >= 0]
        assert all(report.physical_rload[v] >= 1.0 - 1e-9 for v in children)

    def test_summary_statistics_consistent(self):
        g = random_connected(25, 0.15, rng=414)
        vt = sample_virtual_tree(g, rng=415)
        report = embedding_report(g, vt.tree)
        assert report.max_physical_rload >= report.mean_physical_rload
        assert report.max_physical_rload >= 1.0

    def test_non_graph_edge_rejected(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        fake = RootedTree([-1, 0, 0], [0.0, 1.0, 1.0])
        with pytest.raises(TreeError):
            embedding_report(g, fake)

    def test_size_mismatch_rejected(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        with pytest.raises(TreeError):
            embedding_report(g, RootedTree([-1, 0]))

    def test_star_center_tree(self):
        """On a star, every subtree cut is a single leaf edge: loads
        equal capacities, physical rload exactly 1."""
        from repro.graphs.generators import star

        g = star(6, rng=416)
        tree = bfs_tree(g, root=0)
        tree = RootedTree(tree.parent, induced_cut_capacities(g, tree))
        report = embedding_report(g, tree)
        children = [v for v in range(7) if tree.parent[v] >= 0]
        np.testing.assert_allclose(
            report.physical_rload[children], 1.0, rtol=1e-9
        )
