"""Unit tests for rooted trees and tree routing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TreeError
from repro.graphs.graph import Graph
from repro.graphs.trees import (
    RootedTree,
    average_stretch,
    bfs_tree,
    induced_cut_capacities,
    spanning_tree_from_edges,
    tree_route_demand,
)


def path_tree(n: int) -> RootedTree:
    """0 <- 1 <- 2 ... rooted at 0."""
    return RootedTree([-1] + list(range(n - 1)), capacity=[1.0] * n)


def star_tree(n_leaves: int) -> RootedTree:
    return RootedTree([-1] + [0] * n_leaves, capacity=[1.0] * (n_leaves + 1))


class TestStructure:
    def test_root_identified(self):
        t = path_tree(4)
        assert t.root == 0

    def test_two_roots_rejected(self):
        with pytest.raises(TreeError):
            RootedTree([-1, -1, 0])

    def test_no_root_rejected(self):
        with pytest.raises(TreeError):
            RootedTree([1, 0])

    def test_cycle_rejected(self):
        with pytest.raises(TreeError):
            RootedTree([-1, 2, 1])

    def test_out_of_range_parent_rejected(self):
        with pytest.raises(TreeError):
            RootedTree([-1, 5])

    def test_capacity_length_validated(self):
        with pytest.raises(TreeError):
            RootedTree([-1, 0], capacity=[1.0])

    def test_depth_and_height(self):
        t = path_tree(5)
        assert t.depth(0) == 0
        assert t.depth(4) == 4
        assert t.height() == 4

    def test_topological_order_root_first(self):
        t = star_tree(3)
        order = t.topological_order()
        assert order[0] == 0
        assert sorted(order) == [0, 1, 2, 3]

    def test_children(self):
        t = star_tree(3)
        assert t.children()[0] == [1, 2, 3]

    def test_path_to_root(self):
        t = path_tree(4)
        assert t.path_to_root(3) == [3, 2, 1, 0]

    def test_lca_on_path(self):
        t = path_tree(6)
        assert t.lca(5, 2) == 2

    def test_lca_on_star(self):
        t = star_tree(4)
        assert t.lca(1, 3) == 0
        assert t.lca(2, 2) == 2

    def test_path_length_hops(self):
        t = star_tree(4)
        assert t.path_length(1, 2) == 2.0

    def test_path_length_weighted(self):
        t = path_tree(4)
        lengths = [0.0, 10.0, 20.0, 30.0]
        assert t.path_length(3, 1, lengths) == pytest.approx(50.0)


class TestAggregations:
    def test_subtree_sums_path(self):
        t = path_tree(4)
        sums = t.subtree_sums([1.0, 1.0, 1.0, 1.0])
        np.testing.assert_allclose(sums, [4.0, 3.0, 2.0, 1.0])

    def test_subtree_sums_star(self):
        t = star_tree(3)
        sums = t.subtree_sums([10.0, 1.0, 2.0, 3.0])
        np.testing.assert_allclose(sums, [16.0, 1.0, 2.0, 3.0])

    def test_subtree_sums_shape_checked(self):
        with pytest.raises(TreeError):
            star_tree(3).subtree_sums([1.0])

    def test_prefix_sums_from_root(self):
        t = path_tree(4)
        prices = [0.0, 1.0, 2.0, 4.0]
        np.testing.assert_allclose(
            t.prefix_sums_from_root(prices), [0.0, 1.0, 3.0, 7.0]
        )

    def test_edge_flows_route_demand(self):
        t = path_tree(3)
        flows = t.edge_flows_for_demand([-2.0, 0.0, 2.0])
        # node 2 sends 2 toward the root.
        np.testing.assert_allclose(flows, [0.0, 2.0, 2.0])

    def test_congestion_for_demand(self):
        t = RootedTree([-1, 0, 1], capacity=[0.0, 4.0, 1.0])
        cong = t.congestion_for_demand([-2.0, 0.0, 2.0])
        np.testing.assert_allclose(cong, [0.0, 0.5, 2.0])

    def test_as_graph_round_trip(self):
        t = star_tree(3)
        g = t.as_graph()
        assert g.num_edges == 3
        assert g.is_connected()


class TestConstruction:
    def test_bfs_tree_depths_match_distances(self, small_graph):
        t = bfs_tree(small_graph, root=0)
        dist = small_graph.bfs_distances(0)
        assert all(t.depth(v) == dist[v] for v in small_graph.nodes())

    def test_spanning_tree_from_edges(self):
        g = Graph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)])
        t = spanning_tree_from_edges(g, [0, 1, 2])
        assert t.root == 0
        assert t.parent[3] == 2

    def test_spanning_tree_wrong_count_rejected(self):
        g = Graph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        with pytest.raises(TreeError):
            spanning_tree_from_edges(g, [0, 1])

    def test_spanning_tree_not_spanning_rejected(self):
        g = Graph(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0)])
        with pytest.raises(TreeError):
            spanning_tree_from_edges(g, [0, 1, 2])  # leaves node 3 out


class TestInducedCuts:
    def test_path_graph_cuts(self):
        g = Graph(3, [(0, 1, 5.0), (1, 2, 7.0)])
        t = spanning_tree_from_edges(g, [0, 1])
        cuts = induced_cut_capacities(g, t)
        # subtree {1,2} cut = edge 0-1 (5); subtree {2} cut = edge 1-2 (7)
        assert cuts[1] == pytest.approx(5.0)
        assert cuts[2] == pytest.approx(7.0)

    def test_cycle_cut_counts_both_edges(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
        t = spanning_tree_from_edges(g, [0, 1])
        cuts = induced_cut_capacities(g, t)
        assert cuts[1] == pytest.approx(2.0)  # {1,2} vs {0}: edges 0-1, 0-2
        assert cuts[2] == pytest.approx(2.0)  # {2} vs rest: edges 1-2, 0-2

    def test_matches_brute_force(self, small_graph):
        from repro.graphs.cuts import cut_capacity

        t = bfs_tree(small_graph, root=0)
        cuts = induced_cut_capacities(small_graph, t)
        children = t.children()
        # Check a handful of subtrees against direct cut computation.
        for v in range(1, min(10, small_graph.num_nodes)):
            members = [v]
            stack = [v]
            while stack:
                node = stack.pop()
                for ch in children[node]:
                    members.append(ch)
                    stack.append(ch)
            assert cuts[v] == pytest.approx(
                cut_capacity(small_graph, members)
            )

    def test_node_count_mismatch_rejected(self, small_graph):
        with pytest.raises(TreeError):
            induced_cut_capacities(small_graph, path_tree(3))


class TestTreeRouting:
    def test_route_exactly_meets_demand(self, small_graph):
        t = bfs_tree(small_graph, root=0)
        rng = np.random.default_rng(5)
        demand = rng.normal(size=small_graph.num_nodes)
        demand -= demand.mean()
        flow = tree_route_demand(small_graph, t, demand)
        residual = demand + small_graph.excess(flow)
        np.testing.assert_allclose(residual, 0.0, atol=1e-9)

    def test_route_uses_only_tree_edges(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
        t = spanning_tree_from_edges(g, [0, 1])
        flow = tree_route_demand(g, t, [1.0, 0.0, -1.0])
        assert flow[2] == 0.0  # non-tree edge unused

    def test_route_missing_edge_raises(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        fake = RootedTree([-1, 0, 0])  # edge (2, 0) is not a graph edge
        with pytest.raises(TreeError):
            tree_route_demand(g, fake, [1.0, 0.0, -1.0])


class TestStretchHelpers:
    def test_average_stretch_of_tree_is_one(self):
        g = Graph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        t = spanning_tree_from_edges(g, [0, 1, 2])
        assert average_stretch(g, t) == pytest.approx(1.0)

    def test_average_stretch_cycle(self):
        g = Graph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 1.0)])
        t = spanning_tree_from_edges(g, [0, 1, 2])
        # three tree edges stretch 1, chord stretches 3 => (1+1+1+3)/4
        assert average_stretch(g, t) == pytest.approx(1.5)
