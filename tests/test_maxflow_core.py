"""End-to-end tests for Algorithm 1: min-congestion routing and
(1+ε)-approximate max flow, graded against the Dinic oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_congestion_approximator, max_flow, min_congestion_flow
from repro.errors import InvalidDemandError
from repro.flow import dinic_max_flow
from repro.graphs.generators import (
    barbell,
    grid,
    random_connected,
)
from repro.graphs.graph import Graph
from repro.util.validation import (
    check_feasible_flow,
    check_flow_conservation,
    st_demand,
)


class TestMinCongestionFlow:
    def test_routes_demand_exactly(self, small_graph, small_approximator):
        rng = np.random.default_rng(1)
        demand = rng.normal(size=small_graph.num_nodes)
        demand -= demand.mean()
        result = min_congestion_flow(
            small_graph, demand, epsilon=0.5, approximator=small_approximator
        )
        check_flow_conservation(small_graph, result.flow, demand)

    def test_congestion_respects_lower_bound(self, small_graph, small_approximator):
        demand = st_demand(small_graph, 0, 10, 5.0)
        result = min_congestion_flow(
            small_graph, demand, epsilon=0.5, approximator=small_approximator
        )
        assert result.congestion >= result.lower_bound - 1e-9
        assert result.approximation_ratio_bound >= 1.0

    def test_congestion_near_lower_bound(self, small_graph, small_approximator):
        demand = st_demand(small_graph, 0, 10, 1.0)
        result = min_congestion_flow(
            small_graph, demand, epsilon=0.25, approximator=small_approximator
        )
        # opt is within [lower, α·lower]; the descent should land well
        # inside that window.
        assert result.congestion <= small_approximator.alpha * result.lower_bound * 1.5

    def test_zero_demand_zero_flow(self, small_graph, small_approximator):
        result = min_congestion_flow(
            small_graph,
            np.zeros(small_graph.num_nodes),
            approximator=small_approximator,
        )
        np.testing.assert_allclose(result.flow, 0.0)
        assert result.congestion == 0.0

    def test_demand_validation(self, small_graph, small_approximator):
        with pytest.raises(InvalidDemandError):
            min_congestion_flow(
                small_graph,
                np.ones(small_graph.num_nodes),
                approximator=small_approximator,
            )

    def test_stats_populated(self, small_graph, small_approximator):
        demand = st_demand(small_graph, 0, 10, 1.0)
        result = min_congestion_flow(
            small_graph, demand, epsilon=0.5, approximator=small_approximator
        )
        assert result.iterations > 0
        assert result.almost_route_calls >= 1
        assert result.converged


class TestMaxFlow:
    def test_value_within_epsilon_of_optimal(self, small_graph, small_approximator):
        exact = dinic_max_flow(small_graph, 0, 12).value
        result = max_flow(
            small_graph, 0, 12, epsilon=0.25, approximator=small_approximator
        )
        assert result.value >= exact / 1.35
        assert result.value <= exact + 1e-6

    def test_flow_is_exactly_feasible(self, small_graph, small_approximator):
        result = max_flow(
            small_graph, 0, 12, epsilon=0.5, approximator=small_approximator
        )
        check_feasible_flow(
            small_graph,
            result.flow,
            st_demand(small_graph, 0, 12, result.value),
        )

    def test_certified_upper_bound_valid(self, small_graph, small_approximator):
        exact = dinic_max_flow(small_graph, 0, 12).value
        result = max_flow(
            small_graph, 0, 12, epsilon=0.5, approximator=small_approximator
        )
        assert result.certified_upper_bound >= exact - 1e-6

    def test_barbell_finds_bottleneck(self, barbell_graph):
        approx = build_congestion_approximator(barbell_graph, rng=5)
        result = max_flow(barbell_graph, 0, 8, epsilon=0.3, approximator=approx)
        assert result.value == pytest.approx(2.0, rel=0.3)
        assert result.value <= 2.0 + 1e-6

    def test_grid_quality(self, grid_graph, grid_approximator):
        exact = dinic_max_flow(grid_graph, 0, 63).value
        result = max_flow(
            grid_graph, 0, 63, epsilon=0.5, approximator=grid_approximator
        )
        assert result.value >= exact / 1.5

    def test_same_terminals_rejected(self, small_graph, small_approximator):
        with pytest.raises(InvalidDemandError):
            max_flow(small_graph, 3, 3, approximator=small_approximator)

    def test_two_node_graph(self):
        g = Graph(2, [(0, 1, 5.0)])
        approx = build_congestion_approximator(g, num_trees=2, rng=7)
        result = max_flow(g, 0, 1, epsilon=0.3, approximator=approx)
        assert result.value == pytest.approx(5.0, rel=0.05)

    def test_value_never_exceeds_exact(self):
        """Feasibility implies value ≤ maxflow — always."""
        for seed in range(3):
            g = random_connected(14, 0.25, rng=seed)
            approx = build_congestion_approximator(g, rng=seed + 50)
            result = max_flow(g, 0, 13, epsilon=0.5, approximator=approx)
            exact = dinic_max_flow(g, 0, 13).value
            assert result.value <= exact * (1 + 1e-9)

    def test_smaller_epsilon_no_worse(self, small_graph, small_approximator):
        loose = max_flow(
            small_graph, 0, 12, epsilon=0.8, approximator=small_approximator
        )
        tight = max_flow(
            small_graph, 0, 12, epsilon=0.2, approximator=small_approximator
        )
        assert tight.value >= loose.value * 0.95


class TestEndToEndFamilies:
    """Quality matrix across generator families (Experiment E2 slice)."""

    @pytest.mark.parametrize(
        "make,s,t",
        [
            (lambda: grid(6, 6, rng=61), 0, 35),
            (lambda: barbell(6, bridge_capacity=4.0, rng=62), 0, 6),
            (lambda: random_connected(30, 0.12, rng=63), 0, 29),
        ],
        ids=["grid", "barbell", "random"],
    )
    def test_family_quality(self, make, s, t):
        g = make()
        approx = build_congestion_approximator(g, rng=64)
        result = max_flow(g, s, t, epsilon=0.4, approximator=approx)
        exact = dinic_max_flow(g, s, t).value
        assert result.value >= exact / 1.5
        check_feasible_flow(g, result.flow, st_demand(g, s, t, result.value))
