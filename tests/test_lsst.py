"""Tests for SplitGraph, Partition, and AKPW low-stretch trees (§7)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.generators import (
    cycle,
    grid,
    path,
    random_connected,
    torus,
)
from repro.graphs.graph import Graph
from repro.lsst import (
    akpw_spanning_tree,
    default_class_base,
    partition,
    split_graph,
    stretch_per_edge,
    summarize_stretch,
    tree_edge_lengths,
)


class TestSplitGraph:
    def test_every_node_clustered(self):
        g = random_connected(40, 0.1, rng=1)
        result = split_graph(g, 4, rng=2)
        assert all(c >= 0 for c in result.cluster)

    def test_radius_bound_respected(self):
        g = grid(8, 8, rng=1)
        for rho in (1, 3, 6):
            result = split_graph(g, rho, rng=3)
            assert result.radius <= rho

    def test_clusters_internally_connected_via_parents(self):
        g = random_connected(30, 0.12, rng=4)
        result = split_graph(g, 3, rng=5)
        for v in range(g.num_nodes):
            # Walking parents reaches the cluster source.
            node, hops = v, 0
            while result.parent[node] >= 0 and hops <= g.num_nodes:
                node = result.parent[node]
                hops += 1
            assert node == result.cluster[v]

    def test_larger_radius_fewer_cut_edges(self):
        g = grid(10, 10, rng=1)
        small = np.mean(
            [len(split_graph(g, 1, rng=s).cut_edges) for s in range(5)]
        )
        large = np.mean(
            [len(split_graph(g, 8, rng=s).cut_edges) for s in range(5)]
        )
        assert large < small

    def test_active_edges_restriction(self):
        # With only one allowed edge, other nodes become singletons.
        g = path(5, rng=1)
        result = split_graph(g, 3, rng=1, active_edges=[0])
        assert result.cluster[0] == result.cluster[1] or (
            result.cluster[0] != result.cluster[2]
        )
        # Edge 2-3 is not traversable, so 3 is never in 0/1/2's cluster
        # via that route... at minimum every node got a cluster.
        assert all(c >= 0 for c in result.cluster)

    def test_phases_positive(self):
        g = cycle(12, rng=1)
        assert split_graph(g, 2, rng=1).phases > 0


class TestPartition:
    def test_accepts_single_class(self):
        g = random_connected(30, 0.1, rng=6)
        result = partition(g, [1] * g.num_edges, 1, 4, rng=7)
        assert all(c >= 0 for c in result.split.cluster)
        assert len(result.cut_fraction_per_class) == 1

    def test_ignores_inactive_classes(self):
        g = path(6, rng=1)
        classes = [1, 2, 1, 2, 1]
        result = partition(g, classes, active_classes=1, target_radius=2, rng=8)
        # class-2 edges are not traversable; still everyone clustered.
        assert all(c >= 0 for c in result.split.cluster)

    def test_cut_fractions_within_unit_interval(self):
        g = grid(6, 6, rng=2)
        result = partition(g, [1] * g.num_edges, 1, 3, rng=9)
        assert all(0.0 <= f <= 1.0 for f in result.cut_fraction_per_class)

    def test_phases_accumulate_over_restarts(self):
        g = random_connected(25, 0.15, rng=10)
        result = partition(g, [1] * g.num_edges, 1, 2, rng=11)
        assert result.phases >= result.split.phases if result.restarts == 0 else True
        assert result.phases > 0


class TestAkpw:
    def test_produces_spanning_tree(self):
        g = random_connected(50, 0.08, rng=12)
        result = akpw_spanning_tree(g, rng=13)
        assert result.tree.num_nodes == 50
        pairs = {(min(e.u, e.v), max(e.u, e.v)) for e in g.edges()}
        for v in range(50):
            p = result.tree.parent[v]
            if p >= 0:
                assert (min(v, p), max(v, p)) in pairs

    def test_single_node_graph(self):
        result = akpw_spanning_tree(Graph(1), rng=1)
        assert result.tree.num_nodes == 1

    def test_two_node_graph(self):
        g = Graph(2, [(0, 1, 5.0)])
        result = akpw_spanning_tree(g, rng=1)
        assert result.tree.parent[1] == 0 or result.tree.parent[0] == 1

    def test_disconnected_rejected(self):
        g = Graph(3, [(0, 1, 1.0)])
        from repro.errors import DisconnectedGraphError

        with pytest.raises(DisconnectedGraphError):
            akpw_spanning_tree(g, rng=1)

    def test_bad_lengths_rejected(self):
        g = Graph(2, [(0, 1, 1.0)])
        with pytest.raises(GraphError):
            akpw_spanning_tree(g, lengths=[-1.0], rng=1)
        with pytest.raises(GraphError):
            akpw_spanning_tree(g, lengths=[1.0, 2.0], rng=1)

    def test_bad_class_base_rejected(self):
        g = Graph(2, [(0, 1, 1.0)])
        with pytest.raises(GraphError):
            akpw_spanning_tree(g, class_base=1.0, rng=1)

    def test_tree_of_a_tree_is_itself(self):
        g = path(20, rng=1)
        result = akpw_spanning_tree(g, rng=14)
        stretches = stretch_per_edge(g, result.tree)
        np.testing.assert_allclose(stretches, 1.0)

    def test_average_stretch_moderate_on_grid(self):
        g = grid(9, 9, rng=3)
        values = []
        for seed in range(3):
            result = akpw_spanning_tree(g, rng=seed)
            values.append(summarize_stretch(g, result.tree)["average"])
        # Theorem 3.1's bound at this scale is a small constant factor;
        # empirically AKPW stays below ~12 on a 9x9 grid.
        assert np.mean(values) < 12.0

    def test_weighted_lengths_respected(self):
        # Make one cycle edge enormously long; the tree should avoid it,
        # giving it high stretch but all others stretch 1.
        g = cycle(10, rng=1)
        lengths = np.ones(10)
        lengths[3] = 1e6
        result = akpw_spanning_tree(g, lengths=lengths, rng=15)
        stretches = stretch_per_edge(g, result.tree, lengths)
        others = [stretches[e] for e in range(10) if e != 3]
        assert max(others) == pytest.approx(1.0)

    def test_multigraph_supported(self):
        g = Graph(3, [(0, 1, 1.0), (0, 1, 2.0), (1, 2, 1.0), (0, 2, 1.0)])
        result = akpw_spanning_tree(g, rng=16)
        assert result.tree.num_nodes == 3

    def test_roots_at_requested_node(self):
        g = random_connected(20, 0.15, rng=17)
        result = akpw_spanning_tree(g, rng=18, root=7)
        assert result.tree.root == 7

    def test_default_class_base_grows_slowly(self):
        assert default_class_base(100) >= 4.0
        # Subpolynomial: the exponent base-n shrinks as n grows.
        exp_small = math.log(default_class_base(10**3), 10**3)
        exp_large = math.log(default_class_base(10**6), 10**6)
        assert exp_large < exp_small

    def test_expected_stretch_scaling_shape(self):
        # E3's qualitative claim: average stretch grows far slower than
        # any polynomial — compare n=36 vs n=144 on tori.
        small_values = [
            summarize_stretch(
                torus(6, 6, rng=1), akpw_spanning_tree(torus(6, 6, rng=1), rng=s).tree
            )["average"]
            for s in range(3)
        ]
        big_values = [
            summarize_stretch(
                torus(12, 12, rng=1),
                akpw_spanning_tree(torus(12, 12, rng=1), rng=s).tree,
            )["average"]
            for s in range(3)
        ]
        # Quadrupling n should much less than quadruple the stretch.
        assert np.mean(big_values) < 4.0 * np.mean(small_values)


class TestStretchHelpers:
    def test_tree_edge_lengths_pick_min_parallel(self):
        g = Graph(2, [(0, 1, 1.0), (0, 1, 1.0)])
        result = akpw_spanning_tree(g, lengths=[5.0, 2.0], rng=1)
        lengths = tree_edge_lengths(g, result.tree, [5.0, 2.0])
        child = 1 if result.tree.parent[1] == 0 else 0
        assert lengths[child] == pytest.approx(2.0)

    def test_non_graph_tree_edge_rejected(self):
        from repro.errors import TreeError
        from repro.graphs.trees import RootedTree

        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        fake = RootedTree([-1, 0, 0])
        with pytest.raises(TreeError):
            tree_edge_lengths(g, fake)

    def test_summary_keys(self):
        g = grid(4, 4, rng=1)
        result = akpw_spanning_tree(g, rng=2)
        summary = summarize_stretch(g, result.tree)
        assert set(summary) == {"average", "max", "capacity_weighted"}
        assert summary["max"] >= summary["average"] >= 1.0
