"""Tests for the distributed Lemma 8.1 tree-flow aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import distributed_tree_flow
from repro.graphs.generators import (
    caterpillar,
    grid,
    path,
    random_connected,
    star,
)
from repro.graphs.graph import Graph
from repro.graphs.trees import bfs_tree, induced_cut_capacities


@pytest.mark.parametrize(
    "make",
    [
        lambda: random_connected(18, 0.2, rng=1),
        lambda: grid(4, 5, rng=2),
        lambda: path(10, rng=3),
        lambda: star(8, rng=4),
        lambda: caterpillar(6, 2, rng=5),
    ],
    ids=["random", "grid", "path", "star", "caterpillar"],
)
def test_matches_centralized(make):
    g = make()
    tree = bfs_tree(g, root=0)
    run = distributed_tree_flow(g, tree)
    central = induced_cut_capacities(g, tree)
    children = [v for v in range(g.num_nodes) if tree.parent[v] >= 0]
    np.testing.assert_allclose(
        run.cut_capacity[children], central[children], rtol=1e-9
    )


def test_rounds_linear_in_depth():
    """Lemma 8.1: O(d) rounds for a depth-d tree."""
    g = path(30, rng=6)
    tree = bfs_tree(g, root=0)
    run = distributed_tree_flow(g, tree)
    assert run.rounds <= 6 * (tree.height() + 2)


def test_shallow_tree_fast():
    g = star(12, rng=7)
    tree = bfs_tree(g, root=0)
    run = distributed_tree_flow(g, tree)
    assert run.rounds <= 20


def test_parallel_edges_counted():
    g = Graph(3, [(0, 1, 2.0), (0, 1, 3.0), (1, 2, 4.0)])
    tree = bfs_tree(g, root=0)
    run = distributed_tree_flow(g, tree)
    central = induced_cut_capacities(g, tree)
    np.testing.assert_allclose(run.cut_capacity[1:], central[1:])


def test_triangle_with_chord():
    g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
    tree = bfs_tree(g, root=0)
    run = distributed_tree_flow(g, tree)
    central = induced_cut_capacities(g, tree)
    np.testing.assert_allclose(run.cut_capacity[1:], central[1:])
