"""Tests for the symmetric soft-max (paper §9.1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import GraphError
from repro.core.softmax import (
    smax,
    smax_and_gradient,
    smax_and_gradient_batch,
    smax_gradient,
)


class TestValue:
    def test_zero_vector(self):
        # smax(0) = log(2k).
        assert smax(np.zeros(5)) == pytest.approx(math.log(10))

    def test_upper_bounds_infinity_norm(self):
        rng = np.random.default_rng(1)
        y = rng.normal(size=20) * 3
        assert smax(y) >= np.abs(y).max()

    def test_infinity_norm_plus_log_bound(self):
        rng = np.random.default_rng(2)
        y = rng.normal(size=20) * 3
        assert smax(y) <= np.abs(y).max() + math.log(2 * 20)

    def test_symmetry(self):
        y = np.array([1.0, -2.0, 3.0])
        assert smax(y) == pytest.approx(smax(-y))

    def test_no_overflow_on_huge_arguments(self):
        y = np.array([1000.0, -999.0])
        value = smax(y)
        assert np.isfinite(value)
        assert value == pytest.approx(1000.0, abs=1.0)

    def test_empty_vector(self):
        assert smax(np.zeros(0)) == float("-inf")


class TestGradient:
    def test_gradient_l1_bounded_by_one(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            y = rng.normal(size=15) * 5
            g = smax_gradient(y)
            assert np.abs(g).sum() <= 1.0 + 1e-12

    def test_gradient_sign_matches_argument(self):
        y = np.array([2.0, -3.0, 0.0])
        g = smax_gradient(y)
        assert g[0] > 0
        assert g[1] < 0
        assert g[2] == pytest.approx(0.0)

    def test_finite_difference(self):
        rng = np.random.default_rng(4)
        y = rng.normal(size=8)
        g = smax_gradient(y)
        h = 1e-6
        for i in range(8):
            bump = y.copy()
            bump[i] += h
            numeric = (smax(bump) - smax(y)) / h
            assert g[i] == pytest.approx(numeric, abs=1e-4)

    def test_gradient_concentrates_on_max(self):
        y = np.array([10.0, 1.0, 1.0])
        g = smax_gradient(y)
        assert g[0] > 0.99

    def test_combined_matches_separate(self):
        y = np.array([1.0, 2.0, -1.5])
        value, grad = smax_and_gradient(y)
        assert value == pytest.approx(smax(y))
        np.testing.assert_allclose(grad, smax_gradient(y))

    def test_no_overflow_gradient(self):
        g = smax_gradient(np.array([800.0, -800.0, 0.0]))
        assert np.all(np.isfinite(g))


class TestFusedExp:
    """The single-``np.exp`` pair-buffer path is golden bit-identical
    to the split two-exp path and to the pre-fusion implementation."""

    @staticmethod
    def _legacy_reference(y: np.ndarray) -> tuple[float, np.ndarray]:
        """The exact pre-fusion computation (two exp calls, same
        summation fold), replicated as the golden oracle."""
        m = float(np.abs(y).max())
        pos = np.exp(y - m)
        neg = np.exp(-y - m)
        total = pos.sum() + neg.sum()
        return m + float(np.log(total)), (pos - neg) / total

    @pytest.mark.parametrize("k", [1, 2, 17, 256, 1023])
    def test_all_paths_bit_identical(self, k):
        rng = np.random.default_rng(k)
        y = rng.normal(size=k) * 40.0
        golden_value, golden_grad = self._legacy_reference(y)

        value_fused, grad_fused = smax_and_gradient(y)
        out = np.empty(k)
        pair = np.empty(2 * k)
        value_pair, grad_pair = smax_and_gradient(y, out=out, scratch=pair)
        split_out = np.empty(k)
        split_scratch = np.empty(k)
        value_split, grad_split = smax_and_gradient(
            y, out=split_out, scratch=split_scratch
        )

        assert value_fused == golden_value == value_pair == value_split
        assert grad_pair is out
        assert grad_split is split_out
        assert np.array_equal(golden_grad, grad_fused)
        assert np.array_equal(golden_grad, grad_pair)
        assert np.array_equal(golden_grad, grad_split)

    def test_pair_buffer_is_allocation_site(self):
        """With out= and a pair scratch the gradient lands in out and
        the exponentials in the caller's buffer (no hidden copies)."""
        y = np.linspace(-3.0, 3.0, 8)
        out = np.empty(8)
        pair = np.empty(16)
        _, grad = smax_and_gradient(y, out=out, scratch=pair)
        assert grad is out
        m = np.abs(y).max()
        assert np.array_equal(pair[:8], np.exp(y - m))
        assert np.array_equal(pair[8:], np.exp(-y - m))

    def test_pair_scratch_rejects_alias(self):
        base = np.zeros(16)
        y = base[:8]
        with pytest.raises(GraphError):
            smax_and_gradient(y, scratch=base)


class TestBatchPlane:
    """The ``(Q, k)`` plane form is golden bit-identical per row to the
    1-D fused path (the contract the batched AlmostRoute loop rides
    on)."""

    @pytest.mark.parametrize("shape", [(1, 1), (1, 64), (7, 33), (16, 256)])
    def test_rows_bit_identical_to_1d(self, shape):
        rng = np.random.default_rng(shape[0] * 1000 + shape[1])
        y = rng.normal(size=shape) * 40.0
        values, grads = smax_and_gradient_batch(y)
        for q in range(shape[0]):
            value_1d, grad_1d = smax_and_gradient(y[q])
            assert float(values[q]) == value_1d
            assert np.array_equal(grad_1d, grads[q])

    def test_rows_match_legacy_reference(self):
        rng = np.random.default_rng(99)
        y = rng.normal(size=(5, 31)) * 30.0
        values, grads = smax_and_gradient_batch(y)
        for q in range(5):
            golden_value, golden_grad = TestFusedExp._legacy_reference(y[q])
            assert float(values[q]) == golden_value
            assert np.array_equal(golden_grad, grads[q])

    def test_buffered_call_is_identical_and_in_place(self):
        rng = np.random.default_rng(100)
        y = rng.normal(size=(4, 12)) * 20.0
        plain_values, plain_grads = smax_and_gradient_batch(y)
        out = np.empty((4, 12))
        scratch = np.empty((4, 24))
        values_out = np.empty(4)
        values, grads = smax_and_gradient_batch(
            y, out=out, scratch=scratch, values_out=values_out
        )
        assert grads is out
        assert values is values_out
        assert np.array_equal(plain_values, values)
        assert np.array_equal(plain_grads, grads)

    def test_rejects_1d_input(self):
        with pytest.raises(GraphError):
            smax_and_gradient_batch(np.zeros(8))

    def test_rejects_wrong_scratch_shape(self):
        with pytest.raises(GraphError):
            smax_and_gradient_batch(np.zeros((3, 8)), scratch=np.empty((3, 8)))

    def test_rejects_alias(self):
        base = np.zeros((2, 16))
        y = base[:, :8]
        with pytest.raises(GraphError):
            smax_and_gradient_batch(y, scratch=base)

    def test_zero_width_plane(self):
        values, grads = smax_and_gradient_batch(np.zeros((3, 0)))
        assert np.all(values == float("-inf"))
        assert grads.shape == (3, 0)
