"""Property-based tests (hypothesis) on the library's core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.softmax import smax, smax_gradient
from repro.flow import dinic_max_flow, edmonds_karp_max_flow
from repro.graphs.cuts import cut_capacity
from repro.graphs.generators import random_connected
from repro.graphs.graph import Graph
from repro.graphs.trees import (
    bfs_tree,
    induced_cut_capacities,
    tree_route_demand,
)
from repro.util.validation import check_feasible_flow, st_demand

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def connected_graphs(draw, max_nodes: int = 14):
    """A connected random graph with integer capacities."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    extra = draw(st.floats(min_value=0.0, max_value=0.4))
    return random_connected(n, extra, rng=seed)


@st.composite
def graph_with_demand(draw, max_nodes: int = 12):
    graph = draw(connected_graphs(max_nodes))
    n = graph.num_nodes
    values = draw(
        st.lists(
            st.floats(
                min_value=-10, max_value=10, allow_nan=False, allow_infinity=False
            ),
            min_size=n,
            max_size=n,
        )
    )
    demand = np.asarray(values)
    demand -= demand.mean()
    return graph, demand


COMMON = dict(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Flow oracle invariants
# ---------------------------------------------------------------------------


@given(connected_graphs())
@settings(**COMMON)
def test_dinic_flow_always_feasible(graph):
    result = dinic_max_flow(graph, 0, graph.num_nodes - 1)
    check_feasible_flow(
        graph, result.flow, st_demand(graph, 0, graph.num_nodes - 1, result.value)
    )


@given(connected_graphs())
@settings(**COMMON)
def test_oracles_agree(graph):
    t = graph.num_nodes - 1
    a = dinic_max_flow(graph, 0, t).value
    b = edmonds_karp_max_flow(graph, 0, t).value
    assert abs(a - b) <= 1e-6 * max(1.0, a)


@given(connected_graphs())
@settings(**COMMON)
def test_min_cut_certifies_value(graph):
    t = graph.num_nodes - 1
    result = dinic_max_flow(graph, 0, t)
    np.testing.assert_allclose(
        cut_capacity(graph, result.min_cut_side), result.value, rtol=1e-9
    )


# ---------------------------------------------------------------------------
# Tree invariants
# ---------------------------------------------------------------------------


@given(graph_with_demand())
@settings(**COMMON)
def test_tree_routing_meets_demand_exactly(case):
    graph, demand = case
    tree = bfs_tree(graph, root=0)
    flow = tree_route_demand(graph, tree, demand)
    residual = demand + graph.excess(flow)
    np.testing.assert_allclose(residual, 0.0, atol=1e-8)


@given(connected_graphs())
@settings(**COMMON)
def test_induced_cut_capacities_positive_and_bounded(graph):
    tree = bfs_tree(graph, root=0)
    cuts = induced_cut_capacities(graph, tree)
    total = graph.total_capacity()
    for v in range(graph.num_nodes):
        if tree.parent[v] >= 0:
            assert 0 < cuts[v] <= total + 1e-9


@given(graph_with_demand())
@settings(**COMMON)
def test_subtree_congestion_is_lower_bound_of_any_routing(case):
    """Tree rows never overestimate: routing the demand on the graph
    (via the tree itself!) has congestion >= the row estimate."""
    graph, demand = case
    tree = bfs_tree(graph, root=0)
    cuts = induced_cut_capacities(graph, tree)
    rows = np.abs(tree.subtree_sums(demand))
    rows[tree.root] = 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        estimate = np.where(cuts > 0, rows / cuts, 0.0)
    flow = tree_route_demand(graph, tree, demand)
    congestion = float(np.abs(flow / graph.capacities()).max(initial=0.0))
    assert np.nanmax(estimate, initial=0.0) <= congestion + 1e-8


# ---------------------------------------------------------------------------
# Graph structure invariants
# ---------------------------------------------------------------------------


@given(graph_with_demand())
@settings(**COMMON)
def test_excess_always_sums_to_zero(case):
    graph, _ = case
    rng = np.random.default_rng(0)
    flow = rng.normal(size=graph.num_edges)
    assert abs(graph.excess(flow).sum()) < 1e-9 * max(1, graph.num_edges)


@given(connected_graphs(), st.integers(min_value=0, max_value=10_000))
@settings(**COMMON)
def test_contraction_preserves_total_cross_capacity(graph, seed):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 3, graph.num_nodes).tolist()
    quotient, origin = graph.contract(labels)
    merged, _ = graph.contract(labels, keep_parallel=False)
    np.testing.assert_allclose(
        quotient.total_capacity(), merged.total_capacity(), rtol=1e-9
    )
    assert len(origin) == quotient.num_edges


# ---------------------------------------------------------------------------
# Soft-max invariants
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
@settings(**COMMON)
def test_smax_sandwiches_infinity_norm(values):
    y = np.asarray(values)
    value = smax(y)
    assert value >= np.abs(y).max() - 1e-9
    assert value <= np.abs(y).max() + np.log(2 * len(values)) + 1e-9


@given(
    st.lists(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
@settings(**COMMON)
def test_smax_gradient_l1_at_most_one(values):
    g = smax_gradient(np.asarray(values))
    assert np.abs(g).sum() <= 1.0 + 1e-9
