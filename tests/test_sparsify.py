"""Tests for spanners, cut sparsifiers, and edge orientation (§6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.cuts import cut_capacity
from repro.graphs.generators import (
    complete,
    erdos_renyi,
    grid,
    random_connected,
)
from repro.graphs.graph import Graph
from repro.sparsify import (
    baswana_sen_spanner,
    orient_edges,
    sparsification_target,
    sparsify,
)


class TestSpanner:
    def test_spanner_preserves_connectivity(self):
        g = complete(40, rng=1)
        result = baswana_sen_spanner(g, rng=2)
        assert g.edge_subgraph(result.edge_ids).is_connected()

    def test_spanner_is_sparse_on_dense_graphs(self):
        g = complete(60, rng=3)
        result = baswana_sen_spanner(g, rng=4)
        n = g.num_nodes
        assert len(result.edge_ids) < 4 * n * np.log2(n)

    def test_spanner_of_tree_is_whole_tree(self):
        from repro.graphs.generators import path

        g = path(15, rng=1)
        result = baswana_sen_spanner(g, rng=5)
        assert sorted(result.edge_ids) == list(range(14))

    def test_spanner_stretch_bounded(self):
        # O(log n) stretch w.r.t. lengths 1/cap; verify hop stretch on a
        # moderate instance stays small.
        g = erdos_renyi(40, 0.3, rng=6)
        g.require_connected()
        result = baswana_sen_spanner(g, lengths=np.ones(g.num_edges), rng=7)
        sub = g.edge_subgraph(result.edge_ids)
        worst = 0
        for e in list(g.edges())[:80]:
            dist = sub.bfs_distances(e.u)[e.v]
            worst = max(worst, dist)
        assert worst <= 2 * int(np.ceil(np.log2(40))) + 1

    def test_deterministic_under_seed(self):
        g = complete(20, rng=8)
        a = baswana_sen_spanner(g, rng=9).edge_ids
        b = baswana_sen_spanner(g, rng=9).edge_ids
        assert a == b

    def test_levels_parameter(self):
        g = complete(20, rng=8)
        result = baswana_sen_spanner(g, rng=9, levels=2)
        assert result.levels == 2


class TestSparsifier:
    def test_target_edge_count_reached(self):
        g = complete(70, rng=10)
        result = sparsify(g, rng=11)
        assert result.graph.num_edges < g.num_edges
        assert result.graph.num_edges <= sparsification_target(70, 0.5) * 1.5

    def test_preserves_connectivity(self):
        g = complete(50, rng=12)
        result = sparsify(g, rng=13)
        assert result.graph.is_connected()

    def test_cuts_preserved_within_constant(self):
        g = complete(60, rng=14)
        result = sparsify(g, rng=15)
        rng = np.random.default_rng(0)
        for _ in range(20):
            side = [v for v in range(60) if rng.random() < 0.5]
            if not side or len(side) == 60:
                continue
            ratio = cut_capacity(result.graph, side) / cut_capacity(g, side)
            assert 0.5 < ratio < 2.0

    def test_edge_origin_maps_to_real_edges(self):
        g = complete(40, rng=16)
        result = sparsify(g, rng=17)
        for j, e in enumerate(result.graph.edges()):
            orig = g.edge(result.edge_origin[j])
            assert {orig.u, orig.v} == {e.u, e.v}

    def test_sparse_input_returned_unchanged(self):
        g = grid(6, 6, rng=18)
        result = sparsify(g, rng=19)
        assert result.rounds == 0
        assert result.graph.num_edges == g.num_edges

    def test_invalid_epsilon_rejected(self):
        from repro.errors import GraphError

        g = grid(3, 3, rng=1)
        with pytest.raises(GraphError):
            sparsify(g, epsilon=0.0)

    def test_explicit_target(self):
        g = complete(50, rng=20)
        result = sparsify(g, rng=21, target_edges=300)
        assert result.graph.num_edges <= 1.6 * 300
        assert result.rounds >= 1


class TestOrientation:
    def test_all_edges_oriented(self):
        g = random_connected(30, 0.2, rng=22)
        forward = orient_edges(g)
        assert len(forward) == g.num_edges

    def test_out_degree_bounded(self):
        g = erdos_renyi(40, 0.4, rng=23)
        forward = orient_edges(g)
        out_degree = [0] * g.num_nodes
        for e in g.edges():
            out_degree[e.u if forward[e.id] else e.v] += 1
        average = 2 * g.num_edges / g.num_nodes
        assert max(out_degree) <= 2 * average + 1

    def test_star_center_low_outdegree(self):
        from repro.graphs.generators import star

        g = star(20, rng=24)
        forward = orient_edges(g)
        center_out = sum(
            1 for e in g.edges() if (e.u == 0) == forward[e.id]
        )
        # average degree ~2; the center must not own many edges.
        assert center_out <= 8

    def test_empty_graph(self):
        assert orient_edges(Graph(3)) == []

    def test_single_edge(self):
        g = Graph(2, [(0, 1, 1.0)])
        assert len(orient_edges(g)) == 1
