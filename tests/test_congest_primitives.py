"""Round-bound tests for the CONGEST primitives (Experiment E9).

These verify the quantitative claims the cost model leans on:
BFS ≤ ecc + O(1), broadcast/convergecast ≤ height + O(1), pipelined
k-aggregation ≤ height + k + O(1) (Lemma 5.1's pipelining), flood-max
leader election within the diameter bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.congest import (
    broadcast,
    build_bfs_tree,
    convergecast_sum,
    elect_leader,
    pipelined_aggregate,
)
from repro.graphs.generators import (
    cycle,
    grid,
    path,
    random_connected,
    star,
)


class TestBFS:
    @pytest.mark.parametrize("n", [2, 5, 12])
    def test_path_bfs_rounds(self, n):
        g = path(n, rng=1)
        tree, rounds = build_bfs_tree(g, root=0)
        assert rounds <= g.eccentricity(0) + 2

    def test_bfs_depths_are_distances(self):
        g = random_connected(25, 0.15, rng=3)
        tree, _ = build_bfs_tree(g, root=4)
        dist = g.bfs_distances(4)
        assert all(tree.depth(v) == dist[v] for v in g.nodes())

    def test_bfs_root_choice(self):
        g = grid(4, 4, rng=1)
        tree, _ = build_bfs_tree(g, root=7)
        assert tree.root == 7

    def test_bfs_on_star_two_rounds(self):
        g = star(10, rng=1)
        _, rounds = build_bfs_tree(g, root=0)
        assert rounds <= 3

    def test_bfs_tree_edges_are_graph_edges(self):
        g = random_connected(20, 0.2, rng=5)
        tree, _ = build_bfs_tree(g, root=0)
        pairs = {(min(e.u, e.v), max(e.u, e.v)) for e in g.edges()}
        for v in g.nodes():
            p = tree.parent[v]
            if p >= 0:
                assert (min(v, p), max(v, p)) in pairs


class TestBroadcastConvergecast:
    def test_broadcast_reaches_everyone(self):
        g = random_connected(20, 0.1, rng=7)
        tree, _ = build_bfs_tree(g, root=0)
        values, rounds = broadcast(g, tree, ("token", 99))
        assert all(v == ("token", 99) for v in values)
        assert rounds <= tree.height() + 2

    def test_convergecast_sums(self):
        g = grid(4, 5, rng=2)
        tree, _ = build_bfs_tree(g, root=0)
        values = [float(v) for v in g.nodes()]
        total, rounds = convergecast_sum(g, tree, values)
        assert total == pytest.approx(sum(values))
        assert rounds <= tree.height() + 2

    def test_convergecast_on_path_linear_rounds(self):
        g = path(10, rng=1)
        tree, _ = build_bfs_tree(g, root=0)
        _, rounds = convergecast_sum(g, tree, [1.0] * 10)
        assert tree.height() <= rounds <= tree.height() + 2


class TestPipelining:
    """Lemma 5.1: k independent aggregations in height + k + O(1)."""

    @pytest.mark.parametrize("k", [1, 4, 16])
    def test_pipelined_rounds_bound(self, k):
        g = path(12, rng=1)
        tree, _ = build_bfs_tree(g, root=0)
        values = [[float(v * i) for i in range(k)] for v in g.nodes()]
        sums, rounds = pipelined_aggregate(g, tree, values)
        assert rounds <= tree.height() + k + 2
        expected = [sum(v * i for v in g.nodes()) for i in range(k)]
        np.testing.assert_allclose(sums, expected)

    def test_pipelining_beats_sequential(self):
        # height + k  <<  k * height for deep trees and many items.
        g = path(30, rng=1)
        tree, _ = build_bfs_tree(g, root=0)
        k = 20
        values = [[1.0] * k for _ in g.nodes()]
        _, rounds = pipelined_aggregate(g, tree, values)
        sequential = k * tree.height()
        assert rounds < sequential / 2

    def test_pipelined_on_random_graph(self):
        g = random_connected(24, 0.15, rng=11)
        tree, _ = build_bfs_tree(g, root=0)
        k = 8
        values = [[float(i == v % k) for i in range(k)] for v in g.nodes()]
        sums, rounds = pipelined_aggregate(g, tree, values)
        assert rounds <= tree.height() + k + 2
        assert sum(sums) == pytest.approx(g.num_nodes)


class TestLeaderElection:
    def test_leader_is_max_id(self):
        g = random_connected(15, 0.2, rng=13)
        leader, _ = elect_leader(g)
        assert leader == 14

    def test_rounds_bounded_by_diameter_budget(self):
        g = cycle(12, rng=1)
        leader, rounds = elect_leader(g, diameter_bound=6)
        assert leader == 11
        assert rounds <= 6 + 2

    def test_star_elects_fast(self):
        g = star(8, rng=1)
        leader, rounds = elect_leader(g, diameter_bound=2)
        assert leader == 8
        assert rounds <= 4
