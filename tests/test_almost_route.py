"""Tests for AlmostRoute (Algorithm 2) including a finite-difference
verification of the potential gradient (paper Eqs. (3)–(4))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.almost_route import almost_route
from repro.core.approximator import build_congestion_approximator
from repro.core.softmax import smax
from repro.errors import ConvergenceError, GraphError
from repro.graphs.generators import random_connected
from repro.util.validation import st_demand


@pytest.fixture(scope="module")
def setup():
    g = random_connected(16, 0.25, rng=111)
    approx = build_congestion_approximator(g, rng=112)
    return g, approx


def potential(graph, approx, flow, demand):
    residual = demand + graph.excess(flow)
    phi1 = smax(flow / graph.capacities())
    phi2 = smax(2.0 * approx.alpha * approx.apply(residual))
    return phi1 + phi2


class TestGradient:
    def test_gradient_matches_finite_differences(self, setup):
        """The π-based gradient equals the numeric gradient of φ."""
        g, approx = setup
        rng = np.random.default_rng(1)
        flow = rng.normal(size=g.num_edges) * 0.3
        demand = st_demand(g, 0, 15, 2.0)
        caps = g.capacities()
        tails, heads = g.edge_index_arrays()

        from repro.core.softmax import smax_and_gradient

        residual = demand + g.excess(flow)
        _, g1 = smax_and_gradient(flow / caps)
        y = 2.0 * approx.alpha * approx.apply(residual)
        _, g2 = smax_and_gradient(y)
        pi = approx.apply_transpose(g2)
        grad = g1 / caps + 2.0 * approx.alpha * (pi[heads] - pi[tails])

        h = 1e-6
        base = potential(g, approx, flow, demand)
        for eid in range(0, g.num_edges, max(1, g.num_edges // 10)):
            bump = flow.copy()
            bump[eid] += h
            numeric = (potential(g, approx, bump, demand) - base) / h
            assert grad[eid] == pytest.approx(numeric, abs=5e-4)


class TestAlmostRoute:
    def test_zero_demand_returns_zero_flow(self, setup):
        g, approx = setup
        result = almost_route(g, approx, np.zeros(g.num_nodes), 0.5)
        assert result.converged
        np.testing.assert_allclose(result.flow, 0.0)

    def test_routes_most_of_the_demand(self, setup):
        g, approx = setup
        demand = st_demand(g, 0, 15, 1.0)
        result = almost_route(g, approx, demand, 0.3)
        assert result.converged
        # Residual much smaller than the demand.
        assert np.abs(result.residual).max() < 0.5

    def test_residual_consistency(self, setup):
        g, approx = setup
        demand = st_demand(g, 0, 15, 1.0)
        result = almost_route(g, approx, demand, 0.5)
        np.testing.assert_allclose(
            result.residual, demand + g.excess(result.flow), atol=1e-9
        )

    def test_congestion_near_optimal(self, setup):
        """Routed congestion ≤ (1 + ~ε) opt after rescaling to exact
        feasibility via Algorithm 1's machinery is tested in
        test_maxflow_core; here we check the raw descent respects the
        approximator's lower bound within a modest factor."""
        g, approx = setup
        demand = st_demand(g, 0, 15, 1.0)
        result = almost_route(g, approx, demand, 0.2)
        lower = approx.estimate(demand)
        routed_fraction = 1.0 - np.abs(result.residual).max()
        congestion = float(np.abs(result.flow / g.capacities()).max())
        assert congestion <= 3.0 * approx.alpha * lower + 1e-9
        assert routed_fraction > 0.5

    def test_invalid_epsilon_rejected(self, setup):
        g, approx = setup
        with pytest.raises(GraphError):
            almost_route(g, approx, st_demand(g, 0, 15), epsilon=0.0)

    def test_budget_exhaustion_flagged(self, setup):
        g, approx = setup
        demand = st_demand(g, 0, 15, 1.0)
        result = almost_route(g, approx, demand, 0.2, max_iterations=3)
        assert not result.converged

    def test_budget_exhaustion_raises_when_asked(self, setup):
        g, approx = setup
        demand = st_demand(g, 0, 15, 1.0)
        with pytest.raises(ConvergenceError):
            almost_route(
                g, approx, demand, 0.2, max_iterations=3, raise_on_budget=True
            )

    def test_iterations_increase_with_accuracy(self, setup):
        g, approx = setup
        demand = st_demand(g, 0, 15, 1.0)
        loose = almost_route(g, approx, demand, 0.9)
        tight = almost_route(g, approx, demand, 0.25)
        assert tight.iterations >= loose.iterations

    def test_scalings_reported(self, setup):
        g, approx = setup
        demand = st_demand(g, 0, 15, 1.0)
        result = almost_route(g, approx, demand, 0.5)
        assert result.scalings >= 0
        assert result.potential > 0
