"""Failure-injection tests: degenerate and hostile inputs across the
whole public API must fail loudly with typed errors (or handle the
degeneracy correctly), never silently corrupt results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    build_congestion_approximator,
    max_flow,
    min_congestion_flow,
)
from repro.errors import (
    DisconnectedGraphError,
    GraphError,
    InvalidDemandError,
    ReproError,
)
from repro.flow import dinic_max_flow, gomory_hu_tree
from repro.graphs.generators import random_connected
from repro.graphs.graph import Graph
from repro.jtree import sample_virtual_tree
from repro.lsst import akpw_spanning_tree
from repro.sparsify import sparsify
from repro.util.validation import st_demand


@pytest.fixture(scope="module")
def disconnected():
    return Graph(6, [(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0), (4, 5, 1.0)])


class TestDisconnectedInputs:
    def test_approximator_rejects(self, disconnected):
        with pytest.raises(DisconnectedGraphError):
            build_congestion_approximator(disconnected, rng=1)

    def test_max_flow_rejects(self, disconnected):
        with pytest.raises(DisconnectedGraphError):
            max_flow(disconnected, 0, 5, rng=1)

    def test_virtual_tree_rejects(self, disconnected):
        with pytest.raises(DisconnectedGraphError):
            sample_virtual_tree(disconnected, rng=1)

    def test_lsst_rejects(self, disconnected):
        with pytest.raises(DisconnectedGraphError):
            akpw_spanning_tree(disconnected, rng=1)

    def test_gomory_hu_rejects(self, disconnected):
        with pytest.raises(DisconnectedGraphError):
            gomory_hu_tree(disconnected)

    def test_exact_oracle_tolerates_cross_component_terminals(
        self, disconnected
    ):
        # Dinic is the one API that meaningfully answers: flow is 0.
        assert dinic_max_flow(disconnected, 0, 5).value == 0.0

    def test_all_errors_are_repro_errors(self, disconnected):
        with pytest.raises(ReproError):
            build_congestion_approximator(disconnected, rng=1)


class TestDegenerateDemands:
    def test_huge_capacities(self):
        g = Graph(3, [(0, 1, 1e12), (1, 2, 1e12), (0, 2, 1e-3)])
        approx = build_congestion_approximator(g, num_trees=2, rng=2)
        result = max_flow(g, 0, 2, epsilon=0.5, approximator=approx)
        exact = dinic_max_flow(g, 0, 2).value
        assert result.value >= exact / 2.0
        assert result.value <= exact * (1 + 1e-9)

    def test_extreme_capacity_ratio_demand(self):
        g = Graph(4, [(0, 1, 1e9), (1, 2, 1.0), (2, 3, 1e9)])
        approx = build_congestion_approximator(g, num_trees=2, rng=3)
        result = max_flow(g, 0, 3, epsilon=0.5, approximator=approx)
        assert result.value == pytest.approx(1.0, rel=0.3)

    def test_demand_on_wrong_sized_vector(self, small_graph):
        approx = build_congestion_approximator(small_graph, num_trees=2, rng=4)
        with pytest.raises(InvalidDemandError):
            min_congestion_flow(
                small_graph, np.zeros(3), approximator=approx
            )

    def test_nan_demand_rejected(self, small_graph, small_approximator):
        demand = np.zeros(small_graph.num_nodes)
        demand[0] = np.nan
        with pytest.raises(InvalidDemandError):
            min_congestion_flow(
                small_graph, demand, approximator=small_approximator
            )

    def test_tiny_epsilon_still_terminates(self, small_graph, small_approximator):
        # Pathologically tight epsilon with a small iteration budget:
        # must return un-converged rather than hang.
        from repro.core.almost_route import almost_route

        result = almost_route(
            small_graph,
            small_approximator,
            st_demand(small_graph, 0, 5),
            epsilon=0.01,
            max_iterations=50,
        )
        assert not result.converged
        assert result.iterations == 50


class TestHostileGraphShapes:
    def test_single_node_flows(self):
        g = Graph(1)
        with pytest.raises(ReproError):
            max_flow(g, 0, 0, rng=1)

    def test_two_node_multigraph(self):
        g = Graph(2, [(0, 1, 1.0)] * 5)
        approx = build_congestion_approximator(g, num_trees=2, rng=5)
        result = max_flow(g, 0, 1, epsilon=0.4, approximator=approx)
        assert result.value == pytest.approx(5.0, rel=0.1)

    def test_sparsifier_on_tree_is_identity(self):
        from repro.graphs.generators import path

        g = path(20, rng=6)
        result = sparsify(g, rng=7)
        assert result.graph.num_edges == g.num_edges

    def test_deep_path_hierarchy(self):
        from repro.graphs.generators import path

        g = path(60, rng=8)
        vt = sample_virtual_tree(g, rng=9)
        # Spanning tree of a path IS the path.
        assert vt.tree.num_nodes == 60

    def test_heavy_parallel_edges(self):
        g = Graph(3, [(0, 1, 1.0)] * 10 + [(1, 2, 100.0)])
        vt = sample_virtual_tree(g, rng=10)
        child_of_pair = None
        for v in range(3):
            p = vt.tree.parent[v]
            if p >= 0 and {v, p} == {0, 1}:
                child_of_pair = v
        assert child_of_pair is not None
        # The 0-1 cut capacity must count all 10 parallel edges.
        assert vt.tree.capacity[child_of_pair] == pytest.approx(10.0)


class TestBudgetExhaustion:
    def test_round_limit_typed_error(self):
        from repro.congest import CongestNetwork
        from repro.errors import RoundLimitExceededError

        class Forever:
            def init(self, ctx):
                pass

            def on_round(self, ctx, inbox):
                return False

        g = random_connected(6, 0.3, rng=11)
        with pytest.raises(RoundLimitExceededError):
            CongestNetwork(g).run(lambda v: Forever(), max_rounds=3)

    def test_unconverged_flow_still_exact_conservation(
        self, small_graph, small_approximator
    ):
        """Even when the descent is cut off early, Algorithm 1's tree
        fix-up must deliver an exactly conserving flow."""
        demand = st_demand(small_graph, 0, 5, 2.0)
        result = min_congestion_flow(
            small_graph,
            demand,
            epsilon=0.3,
            approximator=small_approximator,
            max_iterations=5,
        )
        from repro.util.validation import check_flow_conservation

        check_flow_conservation(small_graph, result.flow, demand)
        assert not result.converged
