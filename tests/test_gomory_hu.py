"""Tests for Gomory–Hu trees, including the exhaustive approximator
soundness check they enable."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core import build_congestion_approximator
from repro.errors import GraphError
from repro.flow import dinic_max_flow, gomory_hu_tree
from repro.graphs.generators import barbell, grid, random_connected
from repro.graphs.graph import Graph
from repro.util.validation import st_demand


class TestConstruction:
    def test_two_nodes(self):
        g = Graph(2, [(0, 1, 7.0)])
        ght = gomory_hu_tree(g)
        assert ght.min_cut_value(0, 1) == pytest.approx(7.0)

    def test_path_graph(self):
        g = Graph(4, [(0, 1, 5.0), (1, 2, 2.0), (2, 3, 8.0)])
        ght = gomory_hu_tree(g)
        assert ght.min_cut_value(0, 3) == pytest.approx(2.0)
        assert ght.min_cut_value(0, 1) == pytest.approx(5.0)
        assert ght.min_cut_value(2, 3) == pytest.approx(8.0)

    @pytest.mark.parametrize("seed", range(6))
    def test_all_pairs_match_dinic(self, seed):
        g = random_connected(10, 0.3, rng=seed)
        ght = gomory_hu_tree(g)
        for u, v in itertools.combinations(range(10), 2):
            exact = dinic_max_flow(g, u, v).value
            assert ght.min_cut_value(u, v) == pytest.approx(exact, rel=1e-9)

    def test_grid_all_pairs(self):
        g = grid(3, 4, rng=11)
        ght = gomory_hu_tree(g)
        for u, v in itertools.combinations(range(12), 2):
            exact = dinic_max_flow(g, u, v).value
            assert ght.min_cut_value(u, v) == pytest.approx(exact, rel=1e-9)

    def test_barbell_bridge_dominates(self):
        g = barbell(5, bridge_capacity=1.5, rng=12)
        ght = gomory_hu_tree(g)
        # Every cross-clique pair has min cut 1.5.
        for u in range(5):
            for v in range(5, 10):
                assert ght.min_cut_value(u, v) == pytest.approx(1.5)

    def test_same_node_rejected(self):
        g = Graph(2, [(0, 1, 1.0)])
        ght = gomory_hu_tree(g)
        with pytest.raises(GraphError):
            ght.min_cut_value(1, 1)

    def test_disconnected_rejected(self):
        from repro.errors import DisconnectedGraphError

        g = Graph(3, [(0, 1, 1.0)])
        with pytest.raises(DisconnectedGraphError):
            gomory_hu_tree(g)

    def test_all_pairs_matrix_symmetry(self):
        g = random_connected(8, 0.4, rng=13)
        matrix = gomory_hu_tree(g).all_pairs_min_cut()
        assert np.all(matrix == matrix.T)
        assert np.all(np.isinf(np.diag(matrix)))


class TestApproximatorSoundnessExhaustive:
    """Soundness of R against *every* s-t pair via the GH tree."""

    def test_estimate_below_opt_for_all_pairs(self):
        g = random_connected(14, 0.25, rng=14)
        approx = build_congestion_approximator(g, rng=15)
        ght = gomory_hu_tree(g)
        worst_alpha = 1.0
        for u, v in itertools.combinations(range(14), 2):
            opt = 1.0 / ght.min_cut_value(u, v)
            estimate = approx.estimate(st_demand(g, u, v))
            assert estimate <= opt + 1e-9  # soundness, every pair
            if estimate > 0:
                worst_alpha = max(worst_alpha, opt / estimate)
        # And the estimated alpha covers the true worst case (with its
        # x2 safety factor it should, on sampled trials it may not —
        # assert the all-pairs alpha is at most a small multiple).
        assert worst_alpha <= 4.0 * approx.alpha
