"""Golden equivalence: flat stacked operator vs per-tree blocks.

The contract (ISSUE 3, matching the PR 1 adaptive-path convention) is
*exact* float equality on the shared evaluation order: the flat fused
pass of :class:`StackedTreeOperator` must reproduce the per-tree
``TreeOperator`` loop bit for bit — same row order, same accumulation
folds — for ``apply``, ``apply_transpose`` and ``estimate``, and hence
AlmostRoute must return identical results on either path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    RouteWorkspace,
    StackedTreeOperator,
    TreeCongestionApproximator,
    accelerated_almost_route,
    almost_route,
    build_congestion_approximator,
    estimate_alpha_st,
    min_congestion_flow,
    smax_and_gradient,
)
from repro.core.approximator import TreeOperator
from repro.errors import GraphError
from repro.graphs.generators import grid, random_connected
from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree
from repro.util.validation import st_demand


def _modes(approx, fn):
    approx.operator_mode = "per_tree"
    per_tree = fn()
    approx.operator_mode = "flat"
    flat = fn()
    approx.operator_mode = "adaptive"
    return per_tree, flat


@pytest.fixture(scope="module")
def medium():
    g = random_connected(80, 0.08, rng=301)
    return g, build_congestion_approximator(g, rng=302)


class TestGoldenEquivalence:
    def test_apply_random_demands(self, medium):
        g, approx = medium
        rng = np.random.default_rng(303)
        for _ in range(10):
            b = rng.normal(size=g.num_nodes)
            b -= b.mean()
            per_tree, flat = _modes(approx, lambda: approx.apply(b))
            assert np.array_equal(per_tree, flat)

    def test_apply_transpose_random_rows(self, medium):
        g, approx = medium
        rng = np.random.default_rng(304)
        for _ in range(10):
            y = rng.normal(size=approx.num_rows)
            per_tree, flat = _modes(approx, lambda: approx.apply_transpose(y))
            assert np.array_equal(per_tree, flat)

    def test_estimate_identical(self, medium):
        g, approx = medium
        rng = np.random.default_rng(305)
        for _ in range(5):
            b = rng.normal(size=g.num_nodes)
            b -= b.mean()
            per_tree, flat = _modes(approx, lambda: approx.estimate(b))
            assert per_tree == flat

    def test_zero_demand(self, medium):
        g, approx = medium
        zero = np.zeros(g.num_nodes)
        per_tree, flat = _modes(approx, lambda: approx.apply(zero))
        assert np.array_equal(per_tree, flat)
        assert not flat.any()
        per_tree, flat = _modes(approx, lambda: approx.estimate(zero))
        assert per_tree == flat == 0.0

    def test_grid_graph_stack(self):
        g = grid(9, 9, rng=306)
        approx = build_congestion_approximator(g, rng=307, method="mwu")
        rng = np.random.default_rng(308)
        b = rng.normal(size=g.num_nodes)
        b -= b.mean()
        y = rng.normal(size=approx.num_rows)
        assert np.array_equal(*_modes(approx, lambda: approx.apply(b)))
        assert np.array_equal(
            *_modes(approx, lambda: approx.apply_transpose(y))
        )

    def test_single_node_trees(self):
        """Trees with no rows at all: empty products, zero potentials."""
        g = Graph(1)
        trees = [RootedTree([-1], capacity=[0.0]) for _ in range(3)]
        approx = TreeCongestionApproximator(
            graph=g,
            operators=[TreeOperator(t) for t in trees],
            alpha=1.0,
        )
        assert approx.num_rows == 0
        for mode in ("per_tree", "flat"):
            approx.operator_mode = mode
            assert approx.apply(np.zeros(1)).shape == (0,)
            out = approx.apply_transpose(np.zeros(0))
            assert np.array_equal(out, np.zeros(1))
            assert approx.estimate(np.zeros(1)) == 0.0

    def test_multi_tree_stack_row_order(self, medium):
        """The flat row order is the per-tree concatenation order."""
        g, approx = medium
        b = st_demand(g, 0, g.num_nodes - 1)
        blocks = [op.apply(b) for op in approx.operators]
        flat = approx.stacked().apply(b)
        assert np.array_equal(np.concatenate(blocks), flat)

    def test_mismatched_tree_rejected(self, medium):
        g, approx = medium
        alien = TreeOperator(RootedTree([-1, 0], capacity=[0.0, 1.0]))
        with pytest.raises(GraphError):
            StackedTreeOperator(approx.operators + [alien], g.num_nodes)

    def test_unknown_mode_rejected(self, medium):
        _, approx = medium
        approx.operator_mode = "magic"
        try:
            with pytest.raises(GraphError):
                approx.apply(np.zeros(approx.graph.num_nodes))
        finally:
            approx.operator_mode = "adaptive"

    def test_adaptive_dispatch_follows_tiny(self, medium):
        g, approx = medium
        assert not g.is_tiny()
        assert approx._use_flat()
        tiny = random_connected(8, 0.5, rng=309)
        tiny_approx = build_congestion_approximator(
            tiny, num_trees=2, rng=310
        )
        assert tiny.is_tiny()
        assert not tiny_approx._use_flat()


class TestOutBuffers:
    def test_apply_out_buffer(self, medium):
        g, approx = medium
        b = st_demand(g, 1, 5)
        expected = approx.apply(b)
        out = np.empty(approx.num_rows)
        result = approx.apply(b, out=out)
        assert result is out
        assert np.array_equal(result, expected)

    def test_apply_transpose_out_buffer(self, medium):
        g, approx = medium
        rng = np.random.default_rng(311)
        y = rng.normal(size=approx.num_rows)
        expected = approx.apply_transpose(y)
        out = np.empty(g.num_nodes)
        result = approx.apply_transpose(y, out=out)
        assert result is out
        assert np.array_equal(result, expected)

    def test_repeated_calls_reuse_scratch(self, medium):
        """Scratch reuse must not leak state between calls."""
        g, approx = medium
        stacked = approx.stacked()
        rng = np.random.default_rng(312)
        b1 = rng.normal(size=g.num_nodes)
        b1 -= b1.mean()
        first = stacked.apply(b1).copy()
        b2 = rng.normal(size=g.num_nodes)
        b2 -= b2.mean()
        stacked.apply(b2)
        assert np.array_equal(stacked.apply(b1), first)

    def test_apply_rejects_short_demand(self, medium):
        """The clip-mode gather must not silently wrap a short vector."""
        g, approx = medium
        short = np.zeros(g.num_nodes - 5)
        with pytest.raises(GraphError):
            approx.stacked().apply(short)
        with pytest.raises(GraphError):
            approx.stacked().apply_transpose(np.zeros(approx.num_rows - 3))

    def test_smax_rejects_aliased_buffers(self):
        y = np.linspace(-2.0, 2.0, 16)
        with pytest.raises(GraphError):
            smax_and_gradient(y, out=y)
        with pytest.raises(GraphError):
            smax_and_gradient(y, scratch=y[::2])

    def test_smax_and_gradient_buffered_identical(self):
        rng = np.random.default_rng(313)
        y = rng.normal(size=257) * 30.0
        value, gradient = smax_and_gradient(y)
        out = np.empty_like(y)
        scratch = np.empty_like(y)
        value_buf, gradient_buf = smax_and_gradient(y, out=out, scratch=scratch)
        assert value == value_buf
        assert gradient_buf is out
        assert np.array_equal(gradient, gradient_buf)

    def test_excess_matches_legacy_scatter(self, medium):
        g, _ = medium
        rng = np.random.default_rng(314)
        flow = rng.normal(size=g.num_edges)
        tails, heads = g.edge_index_arrays()
        reference = np.zeros(g.num_nodes)
        np.add.at(reference, heads, flow)
        np.subtract.at(reference, tails, flow)
        assert np.array_equal(reference, g.excess(flow))
        out = np.empty(g.num_nodes)
        assert np.array_equal(reference, g.excess(flow, out=out))


class TestEndToEndIdentity:
    def test_almost_route_identical_paths(self, medium):
        g, approx = medium
        demand = st_demand(g, 0, g.num_nodes - 1)
        per_tree, flat = _modes(
            approx, lambda: almost_route(g, approx, demand, 0.4)
        )
        assert per_tree.iterations == flat.iterations
        assert per_tree.scalings == flat.scalings
        assert per_tree.potential == flat.potential
        assert per_tree.delta == flat.delta
        assert np.array_equal(per_tree.flow, flat.flow)
        assert np.array_equal(per_tree.residual, flat.residual)

    def test_accelerated_identical_paths(self, medium):
        g, approx = medium
        demand = st_demand(g, 2, 11)
        per_tree, flat = _modes(
            approx, lambda: accelerated_almost_route(g, approx, demand, 0.4)
        )
        assert per_tree.iterations == flat.iterations
        assert np.array_equal(per_tree.flow, flat.flow)

    def test_workspace_reuse_is_pure(self, medium):
        """One workspace across calls == fresh workspaces per call."""
        g, approx = medium
        ws = RouteWorkspace(g, approx)
        d1 = st_demand(g, 0, 9)
        d2 = st_demand(g, 3, 40)
        shared = [
            almost_route(g, approx, d, 0.4, workspace=ws) for d in (d1, d2)
        ]
        fresh = [almost_route(g, approx, d, 0.4) for d in (d1, d2)]
        for a, b in zip(shared, fresh):
            assert np.array_equal(a.flow, b.flow)
            assert a.iterations == b.iterations

    def test_workspace_mismatch_raises(self, medium):
        """A workspace sized for a different (graph, approximator) pair
        is an error, not a silent rebuild: the caller handed over
        buffers it expects to keep reusing (regression for the old
        silent-replace behaviour)."""
        g, approx = medium
        other = random_connected(12, 0.4, rng=315)
        other_approx = build_congestion_approximator(
            other, num_trees=2, rng=316
        )
        stale = RouteWorkspace(other, other_approx)
        with pytest.raises(GraphError, match="shape mismatch") as exc:
            RouteWorkspace.ensure(stale, g, approx)
        # The message names both the expected and the actual sizes.
        assert str(stale.shape_key) in str(exc.value)
        key = (g.num_edges, g.num_nodes, approx.num_rows)
        assert str(key) in str(exc.value)
        with pytest.raises(GraphError):
            almost_route(g, approx, st_demand(g, 0, 5), 0.4, workspace=stale)
        built = RouteWorkspace.ensure(None, g, approx)
        assert built.shape_key == key
        assert RouteWorkspace.ensure(built, g, approx) is built

    def test_min_congestion_flow_workspace_param(self, medium):
        g, approx = medium
        demand = st_demand(g, 0, 7)
        ws = RouteWorkspace(g, approx)
        with_ws = min_congestion_flow(
            g, demand, epsilon=0.4, approximator=approx, workspace=ws
        )
        without = min_congestion_flow(
            g, demand, epsilon=0.4, approximator=approx
        )
        assert np.array_equal(with_ws.flow, without.flow)


class TestAlphaEstimateGuard:
    def test_zero_maxflow_pair_skipped(self, medium, monkeypatch):
        """A degenerate s-t pair (zero max flow) must be skipped, not
        crash with ZeroDivisionError."""
        g, approx = medium

        class _Zero:
            value = 0.0

        import repro.flow.dinic as dinic_module

        monkeypatch.setattr(
            dinic_module, "dinic_max_flow", lambda *a, **k: _Zero()
        )
        alpha = estimate_alpha_st(g, approx, rng=317, trials=3)
        assert alpha == 2.0  # nothing learned: worst=1 times safety


class TestBatchedOperator:
    """The multi-RHS ``(Q, ·)`` paths of the stacked operator are
    golden bit-identical per row to the 1-D paths (and hence,
    transitively, to the per-tree reference), serial and sharded."""

    def _planes(self, g, approx, num_queries, seed):
        rng = np.random.default_rng(seed)
        demands = rng.normal(size=(num_queries, g.num_nodes))
        demands -= demands.mean(axis=1, keepdims=True)
        rows = rng.normal(size=(num_queries, approx.num_rows))
        return demands, rows

    def test_apply_batch_rows_match_1d(self, medium):
        g, approx = medium
        demands, _ = self._planes(g, approx, 6, 401)
        plane = approx.apply_batch(demands)
        assert plane.shape == (6, approx.num_rows)
        for q in range(6):
            assert np.array_equal(approx.apply(demands[q]), plane[q])

    def test_apply_transpose_batch_rows_match_1d(self, medium):
        g, approx = medium
        _, rows = self._planes(g, approx, 6, 402)
        plane = approx.apply_transpose_batch(rows)
        assert plane.shape == (6, g.num_nodes)
        for q in range(6):
            assert np.array_equal(approx.apply_transpose(rows[q]), plane[q])

    def test_estimate_batch_rows_match_1d(self, medium):
        g, approx = medium
        demands, _ = self._planes(g, approx, 5, 403)
        demands[2] = 0.0  # zero row: estimate must be exactly 0.0
        norms = approx.estimate_batch(demands)
        for q in range(5):
            assert float(norms[q]) == approx.estimate(demands[q])

    def test_out_buffers(self, medium):
        g, approx = medium
        demands, rows = self._planes(g, approx, 4, 404)
        out_rows = np.empty((4, approx.num_rows))
        assert approx.apply_batch(demands, out=out_rows) is out_rows
        assert np.array_equal(approx.apply_batch(demands), out_rows)
        out_pots = np.empty((4, g.num_nodes))
        assert approx.apply_transpose_batch(rows, out=out_pots) is out_pots
        assert np.array_equal(approx.apply_transpose_batch(rows), out_pots)

    def test_sharded_batch_identical(self, medium):
        """Sharded batched products == serial batched products, bit for
        bit, across shard counts and backends (same contract as the
        1-D sharded paths)."""
        from repro.parallel import ParallelConfig

        g, approx = medium
        stacked = approx.stacked()
        demands, rows = self._planes(g, approx, 5, 405)
        serial_apply = stacked.apply_batch(demands).copy()
        serial_transpose = stacked.apply_transpose_batch(rows).copy()
        serial_estimate = stacked.estimate_batch(demands).copy()
        for workers in (2, 3):
            for backend in ("serial", "thread"):
                config = ParallelConfig(
                    workers=workers, backend=backend, min_size=0
                )
                assert np.array_equal(
                    serial_apply,
                    stacked.apply_batch(demands, parallel=config),
                )
                assert np.array_equal(
                    serial_transpose,
                    stacked.apply_transpose_batch(rows, parallel=config),
                )
                assert np.array_equal(
                    serial_estimate,
                    stacked.estimate_batch(demands, parallel=config),
                )

    def test_batch_scratch_reuse_is_pure(self, medium):
        """The cached per-Q scratch planes must not leak state."""
        g, approx = medium
        stacked = approx.stacked()
        demands, rows = self._planes(g, approx, 3, 406)
        first = stacked.apply_batch(demands).copy()
        other = demands[::-1].copy()
        stacked.apply_batch(other)
        assert np.array_equal(stacked.apply_batch(demands), first)
        first_t = stacked.apply_transpose_batch(rows).copy()
        stacked.apply_transpose_batch(rows[::-1].copy())
        assert np.array_equal(stacked.apply_transpose_batch(rows), first_t)

    def test_shape_errors(self, medium):
        g, approx = medium
        stacked = approx.stacked()
        with pytest.raises(GraphError):
            stacked.apply_batch(np.zeros(g.num_nodes))  # 1-D
        with pytest.raises(GraphError):
            stacked.apply_batch(np.zeros((2, g.num_nodes + 1)))
        with pytest.raises(GraphError):
            stacked.apply_transpose_batch(np.zeros((2, approx.num_rows - 1)))

    def test_empty_batch(self, medium):
        g, approx = medium
        stacked = approx.stacked()
        assert stacked.apply_batch(np.zeros((0, g.num_nodes))).shape == (
            0,
            approx.num_rows,
        )
        assert stacked.apply_transpose_batch(
            np.zeros((0, approx.num_rows))
        ).shape == (0, g.num_nodes)
