"""Tests for distributed Borůvka spanning trees."""

from __future__ import annotations

import pytest

from repro.congest import distributed_spanning_tree
from repro.flow.mst import maximum_spanning_tree, minimum_spanning_tree
from repro.graphs.generators import cycle, grid, path, random_connected
from repro.graphs.graph import Graph
from repro.graphs.trees import spanning_tree_from_edges


def _kruskal_weight(graph, maximize):
    tree = (
        maximum_spanning_tree(graph) if maximize else minimum_spanning_tree(graph)
    )
    return sum(
        tree.capacity[v] for v in range(graph.num_nodes) if tree.parent[v] >= 0
    )


class TestBoruvka:
    def test_single_edge(self):
        g = Graph(2, [(0, 1, 5.0)])
        run = distributed_spanning_tree(g)
        assert run.tree_edges == [0]
        assert run.total_weight == 5.0

    @pytest.mark.parametrize("seed", range(4))
    def test_min_matches_kruskal(self, seed):
        g = random_connected(16, 0.25, rng=seed)
        run = distributed_spanning_tree(g, maximize=False)
        assert run.total_weight == pytest.approx(_kruskal_weight(g, False))

    @pytest.mark.parametrize("seed", range(3))
    def test_max_matches_kruskal(self, seed):
        g = random_connected(14, 0.3, rng=seed + 40)
        run = distributed_spanning_tree(g, maximize=True)
        assert run.total_weight == pytest.approx(_kruskal_weight(g, True))

    def test_result_spans(self):
        g = grid(4, 5, rng=51)
        run = distributed_spanning_tree(g)
        spanning_tree_from_edges(g, run.tree_edges)  # raises if invalid

    def test_cycle_drops_heaviest_for_min(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 100.0)])
        run = distributed_spanning_tree(g, maximize=False)
        assert 2 not in run.tree_edges

    def test_cycle_keeps_heaviest_for_max(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 100.0)])
        run = distributed_spanning_tree(g, maximize=True)
        assert 2 in run.tree_edges

    def test_phases_logarithmic(self):
        g = path(16, rng=52)
        run = distributed_spanning_tree(g)
        # Borůvka needs ceil(log2 n) + 1 scheduled phases.
        assert run.phases <= 16 .bit_length() + 1

    def test_parallel_edges_pick_best(self):
        g = Graph(2, [(0, 1, 5.0), (0, 1, 2.0)])
        run = distributed_spanning_tree(g, maximize=False)
        assert run.tree_edges == [1]
        run = distributed_spanning_tree(g, maximize=True)
        assert run.tree_edges == [0]

    def test_rounds_reported(self):
        g = cycle(10, rng=53)
        run = distributed_spanning_tree(g)
        assert run.rounds > 0
