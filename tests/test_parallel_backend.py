"""Cross-shard equivalence suite for the sharded execution backend.

Sweeps the harness's seed × generator × shard-count × backend matrix
(``tests/parallel_harness.py``) over every sharded kernel — frontier
BFS, CSR build, contraction, the stacked operator's products — and
end-to-end ``max_flow`` / ``max_flow_binary_search``, asserting **bit
identity** with the serial paths plus cache-state invariants after
sharded runs. Also covers the ShardPlan / ParallelConfig / pool
machinery itself, including the fork + shared-memory process backend.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.almost_route import RouteWorkspace, almost_route
from repro.core.binary_search import max_flow_binary_search
from repro.core.maxflow import max_flow, min_congestion_flow
from repro.errors import GraphError
from repro.graphs import kernels
from repro.graphs.generators import random_connected
from repro.graphs.graph import SMALL_GRAPH_LIMIT
from repro.parallel import (
    BfsShardState,
    ParallelConfig,
    ShardPlan,
    default_config,
    get_pool,
    set_default_config,
    shutdown_pools,
    use_config,
)
from repro.parallel import pool as pool_module
from repro.parallel.config import DEFAULT_MIN_SIZE

from parallel_harness import (
    BACKENDS,
    GENERATORS,
    SEEDS,
    SHARD_COUNTS,
    assert_arrays_identical,
    assert_bfs_equivalent,
    assert_cache_invariants,
    assert_contract_equivalent,
    assert_csr_build_equivalent,
    assert_hop_distances_equivalent,
    assert_mwu_lengths_equivalent,
    assert_operator_equivalent,
    build_test_approximator,
    forced,
    make_graph,
)


@pytest.fixture(scope="module", autouse=True)
def _drain_pools():
    """Leave no worker pools behind for the rest of the suite."""
    yield
    shutdown_pools()


# ----------------------------------------------------------------------
# ShardPlan
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_even_partitions_exactly(self):
        plan = ShardPlan.even(10, 3)
        assert plan.ranges() == [(0, 3), (3, 6), (6, 10)]
        assert plan.total == 10

    def test_even_clamps_to_total(self):
        assert ShardPlan.even(2, 8).num_shards == 2
        assert ShardPlan.even(0, 4).num_shards == 0

    def test_balanced_splits_by_weight(self):
        # One heavy item up front: the first shard should be just it.
        weights = np.array([100, 1, 1, 1, 1, 1])
        plan = ShardPlan.balanced(weights, 2)
        assert plan.ranges()[0] == (0, 1)
        assert plan.ranges()[-1][1] == 6

    def test_balanced_zero_weights_fall_back_to_even(self):
        plan = ShardPlan.balanced(np.zeros(8), 2)
        assert plan.ranges() == [(0, 4), (4, 8)]

    def test_ranges_cover_and_are_disjoint(self):
        rng = np.random.default_rng(9)
        for _ in range(20):
            weights = rng.integers(0, 50, size=int(rng.integers(1, 40)))
            shards = int(rng.integers(1, 8))
            plan = ShardPlan.balanced(weights, shards)
            ranges = plan.ranges()
            assert ranges[0][0] == 0 and ranges[-1][1] == len(weights)
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo
            assert all(lo < hi for lo, hi in ranges)

    def test_for_frontier_balances_degree_mass(self):
        graph = make_graph("random", 101)
        indptr = graph.csr().indptr
        frontier = np.arange(graph.num_nodes, dtype=np.int64)
        plan = ShardPlan.for_frontier(indptr, frontier, 3)
        masses = [
            float((indptr[frontier[lo:hi] + 1] - indptr[frontier[lo:hi]]).sum())
            for lo, hi in plan.ranges()
        ]
        assert max(masses) <= 2.0 * (sum(masses) / len(masses)) + max(
            np.diff(indptr)
        )


# ----------------------------------------------------------------------
# BfsShardState (tentpole: persistent per-level frontier shards)
# ----------------------------------------------------------------------
class TestBfsShardState:
    @staticmethod
    def _indptr_from_degrees(degrees) -> np.ndarray:
        return np.concatenate(
            ([0], np.cumsum(np.asarray(degrees, dtype=np.int64)))
        )

    def test_reuses_boundaries_while_mass_stays_balanced(self):
        indptr = self._indptr_from_degrees([4] * 64)
        frontier = np.arange(64, dtype=np.int64)
        state = BfsShardState(4)
        first = state.plan(indptr, frontier)
        assert (state.rebalances, state.reuses) == (1, 0)
        again = state.plan(indptr, frontier)
        assert (state.rebalances, state.reuses) == (1, 1)
        assert np.array_equal(first.bounds, again.bounds)
        # A differently-sized but still-uniform frontier reuses the
        # rescaled fractions too.
        rescaled = state.plan(indptr, np.arange(32, dtype=np.int64))
        assert state.reuses == 2
        assert rescaled.total == 32

    def test_rebalances_when_mass_shifts(self):
        state = BfsShardState(2, rebalance_ratio=1.5)
        uniform = self._indptr_from_degrees([4] * 32)
        frontier = np.arange(32, dtype=np.int64)
        state.plan(uniform, frontier)
        # Same frontier, but now one node carries almost all the mass:
        # the even split's first shard has ~32x the mean.
        skewed = self._indptr_from_degrees([400] + [1] * 31)
        plan = state.plan(skewed, frontier)
        assert state.rebalances == 2
        # The fresh degree-balanced plan isolates the heavy node.
        assert plan.ranges()[0] == (0, 1)

    def test_plans_cover_and_stay_contiguous(self):
        rng = np.random.default_rng(7)
        state = BfsShardState(3)
        indptr = self._indptr_from_degrees(rng.integers(1, 9, size=200))
        for size in (200, 50, 3, 1, 120):
            frontier = np.arange(size, dtype=np.int64)
            ranges = state.plan(indptr, frontier).ranges()
            assert ranges[0][0] == 0 and ranges[-1][1] == size
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo

    def test_clamped_plan_does_not_pin_future_levels(self):
        state = BfsShardState(4)
        indptr = self._indptr_from_degrees([2] * 64)
        assert state.plan(indptr, np.arange(2, dtype=np.int64)).num_shards == 2
        # The next full-width frontier gets the full shard count back.
        assert state.plan(indptr, np.arange(64, dtype=np.int64)).num_shards == 4


# ----------------------------------------------------------------------
# ParallelConfig
# ----------------------------------------------------------------------
class TestParallelConfig:
    def test_default_is_serial(self):
        config = ParallelConfig()
        assert config.workers == 1
        assert not config.should_shard(1 << 30)

    def test_min_size_matches_substrate_threshold(self):
        assert DEFAULT_MIN_SIZE == SMALL_GRAPH_LIMIT

    def test_should_shard_thresholds(self):
        config = ParallelConfig(workers=2, backend="thread", min_size=100)
        assert config.should_shard(100)
        assert not config.should_shard(99)

    def test_rejects_bad_backend_and_workers(self):
        with pytest.raises(GraphError):
            ParallelConfig(workers=2, backend="gpu")
        with pytest.raises(GraphError):
            ParallelConfig(workers=0)

    def test_from_env(self):
        assert ParallelConfig.from_env({}) == ParallelConfig()
        assert ParallelConfig.from_env({"REPRO_WORKERS": "1"}).workers == 1
        config = ParallelConfig.from_env({"REPRO_WORKERS": "4"})
        assert config.workers == 4 and config.backend == "thread"
        config = ParallelConfig.from_env(
            {"REPRO_WORKERS": "2", "REPRO_BACKEND": "serial"}
        )
        assert config.backend == "serial"
        with pytest.raises(GraphError):
            ParallelConfig.from_env({"REPRO_WORKERS": "many"})

    def test_from_env_rejects_garbage(self):
        """Satellite: REPRO_* garbage fails loudly at resolution time
        (a GraphError naming the variable), never silently-serial and
        never a deep ValueError."""
        for env in (
            {"REPRO_WORKERS": "abc"},
            {"REPRO_WORKERS": "0"},
            {"REPRO_WORKERS": "-3"},
            {"REPRO_WORKERS": "2", "REPRO_BACKEND": "gpu"},
            {"REPRO_BACKEND": "gpu"},  # garbage even at serial workers
            {"REPRO_WORKERS": "1", "REPRO_BACKEND": "processes"},
        ):
            with pytest.raises(GraphError):
                ParallelConfig.from_env(env)
        with pytest.raises(GraphError, match="REPRO_WORKERS"):
            ParallelConfig.from_env({"REPRO_WORKERS": "0"})
        with pytest.raises(GraphError, match="REPRO_BACKEND"):
            ParallelConfig.from_env({"REPRO_BACKEND": "gpu"})

    def test_from_env_accepts_case_insensitive_backend(self):
        config = ParallelConfig.from_env(
            {"REPRO_WORKERS": "2", "REPRO_BACKEND": " Thread "}
        )
        assert config.backend == "thread"

    def test_use_config_scopes_the_default(self):
        baseline = default_config()
        override = forced(3, "serial")
        with use_config(override):
            assert default_config() is override
        assert default_config() is baseline

    def test_set_default_config_returns_previous(self):
        baseline = default_config()
        try:
            previous = set_default_config(forced(2))
            assert previous is baseline
        finally:
            set_default_config(baseline)


# ----------------------------------------------------------------------
# Kernel equivalence sweep (tentpole matrix)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(GENERATORS))
class TestKernelEquivalence:
    def test_bfs_and_csr_sweep(self, name, seed):
        graph = make_graph(name, seed)
        for workers in SHARD_COUNTS:
            for backend in BACKENDS:
                config = forced(workers, backend)
                assert_bfs_equivalent(graph, config)
                assert_csr_build_equivalent(graph, config)

    def test_contract_sweep(self, name, seed):
        graph = make_graph(name, seed)
        for workers in SHARD_COUNTS:
            assert_contract_equivalent(graph, forced(workers, "serial"))
        assert_contract_equivalent(graph, forced(2, "thread"))

    def test_hop_distances_and_mwu_lengths_sweep(self, name, seed):
        """The PR 5 kernels join the matrix: multi-source hop distances
        (source-block shards) and the stacked MWU length evaluation
        (sample-row shards), workers ∈ {1, 2, 4} per backend."""
        graph = make_graph(name, seed)
        for workers in (1, 2, 4):
            for backend in BACKENDS:
                config = forced(workers, backend)
                assert_hop_distances_equivalent(graph, config)
                assert_mwu_lengths_equivalent(graph, config, seed)


# ----------------------------------------------------------------------
# Stacked-operator equivalence sweep (tentpole matrix)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_operator_equivalence_sweep(name, seed):
    graph = make_graph(name, seed)
    approximator = build_test_approximator(graph, seed)
    for workers in SHARD_COUNTS:
        for backend in BACKENDS:
            assert_operator_equivalent(
                graph, approximator, forced(workers, backend), seed
            )
    # Oversubscribed plans clamp to the tree count and stay exact.
    assert_operator_equivalent(
        graph, approximator, forced(64, "serial"), seed
    )


def test_operator_adaptive_threshold_respected():
    """Below min_size the sharded entry points take the serial path
    (no pools touched); forcing min_size=0 takes the sharded path."""
    graph = make_graph("random", 101)
    approximator = build_test_approximator(graph, 101)
    stacked = approximator.stacked()
    demand = np.zeros(graph.num_nodes)
    demand[0], demand[-1] = 1.0, -1.0
    lazy = ParallelConfig(workers=4, backend="serial", min_size=1 << 30)
    stacked.apply(demand, parallel=lazy)
    assert stacked._shard_cache == {}
    stacked.apply(demand, parallel=forced(4))
    assert list(stacked._shard_cache) == [4]


# ----------------------------------------------------------------------
# End-to-end parity (satellite: randomized-seed parity suite)
# ----------------------------------------------------------------------
class TestEndToEndParity:
    WORKER_SWEEP = (1, 2, 4)

    @pytest.mark.parametrize("seed", [101, 202])
    def test_max_flow_parity(self, seed):
        graph = random_connected(48, 0.1, rng=seed)
        approximator = build_test_approximator(graph, seed)
        baseline = max_flow(
            graph, 0, graph.num_nodes - 1, approximator=approximator, rng=seed
        )
        for workers in self.WORKER_SWEEP:
            for backend in ("serial", "thread"):
                result = max_flow(
                    graph,
                    0,
                    graph.num_nodes - 1,
                    approximator=approximator,
                    rng=seed,
                    parallel=forced(workers, backend),
                )
                assert result.value == baseline.value
                assert_arrays_identical(
                    f"max_flow.flow[w={workers},{backend}]",
                    baseline.flow,
                    result.flow,
                )
                assert (
                    result.congestion_result.congestion
                    == baseline.congestion_result.congestion
                )
                assert (
                    result.congestion_result.lower_bound
                    == baseline.congestion_result.lower_bound
                )
        assert_cache_invariants(graph)

    def test_max_flow_binary_search_parity(self):
        seed = 303
        graph = random_connected(40, 0.12, rng=seed)
        approximator = build_test_approximator(graph, seed)
        baseline = max_flow_binary_search(
            graph, 0, 7, approximator=approximator, rng=seed, epsilon=0.5
        )
        for workers in self.WORKER_SWEEP:
            result = max_flow_binary_search(
                graph,
                0,
                7,
                approximator=approximator,
                rng=seed,
                epsilon=0.5,
                parallel=forced(workers, "thread"),
            )
            assert result.value == baseline.value
            assert result.search_steps == baseline.search_steps
            assert result.bracket == baseline.bracket
            assert_arrays_identical(
                f"binary_search.flow[w={workers}]", baseline.flow, result.flow
            )

    def test_fully_sharded_construction_parity(self):
        """REPRO_WORKERS-style global config: *everything* — hierarchy
        sampling, CSR builds, BFS, products — runs sharded and still
        reproduces the serial run bit for bit."""
        graph = random_connected(48, 0.1, rng=404)
        baseline = max_flow(graph, 1, 17, rng=404)
        sharded_graph = random_connected(48, 0.1, rng=404)
        with use_config(forced(2, "thread")):
            sharded = max_flow(sharded_graph, 1, 17, rng=404)
        assert sharded.value == baseline.value
        assert_arrays_identical("global.flow", baseline.flow, sharded.flow)
        assert (
            sharded.congestion_result.iterations
            == baseline.congestion_result.iterations
        )

    def test_min_congestion_flow_parity(self):
        graph = random_connected(48, 0.1, rng=505)
        approximator = build_test_approximator(graph, 505)
        rng = np.random.default_rng(506)
        demand = rng.normal(size=graph.num_nodes)
        demand -= demand.mean()
        baseline = min_congestion_flow(
            graph, demand, approximator=approximator, rng=505
        )
        for workers in (2, 4):
            result = min_congestion_flow(
                graph,
                demand,
                approximator=approximator,
                rng=505,
                parallel=forced(workers, "thread"),
            )
            assert_arrays_identical(
                f"min_congestion.flow[w={workers}]", baseline.flow, result.flow
            )
            assert result.congestion == baseline.congestion
            assert result.iterations == baseline.iterations


# ----------------------------------------------------------------------
# Workspace reuse (satellite: regression test)
# ----------------------------------------------------------------------
class TestRouteWorkspaceReuse:
    def test_two_max_flows_on_one_workspace_match_fresh(self):
        """Reusing one RouteWorkspace across max_flow calls with
        *different* demands must not leak state (stale soft-max
        scratch, flow buffers) into the second result."""
        graph = random_connected(48, 0.1, rng=606)
        approximator = build_test_approximator(graph, 606)
        workspace = RouteWorkspace(graph, approximator)
        max_flow(graph, 0, 9, approximator=approximator, workspace=workspace)
        reused = max_flow(
            graph, 3, 21, approximator=approximator, workspace=workspace
        )
        fresh = max_flow(graph, 3, 21, approximator=approximator)
        assert reused.value == fresh.value
        assert_arrays_identical("workspace.flow", fresh.flow, reused.flow)
        assert (
            reused.congestion_result.congestion
            == fresh.congestion_result.congestion
        )
        assert (
            reused.congestion_result.iterations
            == fresh.congestion_result.iterations
        )

    def test_almost_route_workspace_reuse_matches_fresh(self):
        graph = random_connected(48, 0.1, rng=707)
        approximator = build_test_approximator(graph, 707)
        workspace = RouteWorkspace(graph, approximator)
        demands = []
        rng = np.random.default_rng(708)
        for _ in range(2):
            demand = rng.normal(size=graph.num_nodes)
            demand -= demand.mean()
            demands.append(demand)
        almost_route(graph, approximator, demands[0], 0.5, workspace=workspace)
        reused = almost_route(
            graph, approximator, demands[1], 0.5, workspace=workspace
        )
        fresh = almost_route(graph, approximator, demands[1], 0.5)
        assert reused.iterations == fresh.iterations
        assert reused.potential == fresh.potential
        assert_arrays_identical("route.flow", fresh.flow, reused.flow)
        assert_arrays_identical("route.residual", fresh.residual, reused.residual)


# ----------------------------------------------------------------------
# Process backend (fork + shared-memory views)
# ----------------------------------------------------------------------
class TestProcessBackend:
    def test_kernels_and_operator_match_serial(self):
        graph = make_graph("random", 101)
        config = forced(2, "process")
        assert_bfs_equivalent(graph, config)
        assert_csr_build_equivalent(graph, config)
        approximator = build_test_approximator(graph, 101)
        assert_operator_equivalent(graph, approximator, config, 101)

    def test_new_kernels_process_sweep(self):
        """Hop distances + stacked MWU lengths at workers ∈ {1, 2, 4}
        on the fork + shared-memory backend (acceptance matrix)."""
        graph = make_graph("random", 101)
        for workers in (1, 2, 4):
            config = forced(workers, "process")
            assert_hop_distances_equivalent(graph, config)
            assert_mwu_lengths_equivalent(graph, config, 101)


# ----------------------------------------------------------------------
# Fork-unavailable platforms (satellite: degrade, never crash)
# ----------------------------------------------------------------------
class TestForkFallback:
    @pytest.mark.parametrize("fork_available", [True, False])
    def test_process_backend_degrades_without_fork(
        self, fork_available, monkeypatch
    ):
        shutdown_pools()
        monkeypatch.setattr(
            pool_module, "_fork_available", lambda: fork_available
        )
        monkeypatch.setattr(pool_module, "_FORK_WARNING", [False])
        config = forced(2, "process")
        try:
            if fork_available:
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    pool = get_pool(config)
                assert isinstance(pool, pool_module.ProcessPool)
            else:
                with pytest.warns(RuntimeWarning, match="fork"):
                    pool = get_pool(config)
                assert isinstance(pool, pool_module.ThreadPool)
                # One-time warning: repeated requests stay silent and
                # serve the same degraded pool.
                with warnings.catch_warnings():
                    warnings.simplefilter("error")
                    assert get_pool(config) is pool
                # The degraded pool still satisfies the bit-identity
                # contract end to end.
                graph = make_graph("random", 101)
                assert_bfs_equivalent(graph, config)
                assert_hop_distances_equivalent(graph, config)
        finally:
            shutdown_pools()

    def test_degraded_process_request_shares_the_thread_pool(
        self, monkeypatch
    ):
        shutdown_pools()
        monkeypatch.setattr(pool_module, "_fork_available", lambda: False)
        monkeypatch.setattr(pool_module, "_FORK_WARNING", [True])  # silent
        try:
            degraded = get_pool(forced(2, "process"))
            assert get_pool(forced(2, "thread")) is degraded
        finally:
            shutdown_pools()

    def test_reset_fork_warning_rearms_the_one_time_warning(
        self, monkeypatch
    ):
        """Regression: the warn-once global used to be resettable only
        by monkeypatching the module-level list, leaking state between
        callers. ``reset_fork_warning`` is the supported reset."""
        shutdown_pools()
        monkeypatch.setattr(pool_module, "_fork_available", lambda: False)
        pool_module.reset_fork_warning()
        try:
            with pytest.warns(RuntimeWarning, match="fork"):
                get_pool(forced(2, "process"))
            # Warned once: repeated degraded requests stay silent...
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                get_pool(forced(2, "process"))
            # ...until the explicit reset re-arms the warning.
            pool_module.reset_fork_warning()
            with pytest.warns(RuntimeWarning, match="fork"):
                get_pool(forced(2, "process"))
        finally:
            pool_module.reset_fork_warning()
            shutdown_pools()
