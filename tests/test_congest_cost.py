"""Unit tests for the round-cost model and its calibration against the
simulator's measured primitive costs."""

from __future__ import annotations

import pytest

from repro.congest import (
    CostModel,
    build_bfs_tree,
    pipelined_aggregate,
)
from repro.congest.cost import RoundLedger
from repro.errors import GraphError
from repro.graphs.generators import grid, path, random_connected


class TestLedger:
    def test_charge_accumulates(self):
        ledger = RoundLedger()
        ledger.charge("a", 5)
        ledger.charge("a", 7)
        ledger.charge("b", 1)
        assert ledger.total == 13
        assert ledger.by_label() == {"a": 12.0, "b": 1.0}


class TestCostModel:
    def test_requires_two_nodes(self):
        with pytest.raises(GraphError):
            CostModel(1, 0)

    def test_base_term(self):
        model = CostModel(100, 7)
        assert model.base == pytest.approx(7 + 10.0)

    def test_for_graph_uses_exact_diameter(self):
        g = path(9, rng=1)
        model = CostModel.for_graph(g)
        assert model.diameter == 8

    def test_bfs_charge(self):
        model = CostModel(100, 7)
        assert model.bfs_tree() == 8
        assert model.ledger.total == 8

    def test_broadcast_pipelines(self):
        model = CostModel(100, 7)
        assert model.broadcast(items=20) == 27

    def test_cluster_graph_round_matches_lemma(self):
        model = CostModel(400, 5)
        # Lemma 5.1: t simulated rounds cost t * (D + sqrt(n)).
        assert model.cluster_graph_round(3) == pytest.approx(3 * 25.0)

    def test_subpolynomial_factor_is_subpolynomial(self):
        # 2^sqrt(log n loglog n) grows slower than any n^c, c>0: check
        # the ratio to n^0.5 shrinks as n grows.
        small = CostModel(2**10, 1)
        large = CostModel(2**20, 1)
        ratio_small = small.subpolynomial_factor() / 2**5
        ratio_large = large.subpolynomial_factor() / 2**10
        assert ratio_large < ratio_small

    def test_theorem_bound_epsilon_scaling(self):
        model = CostModel(1000, 10)
        assert model.theorem_1_1_bound(0.1) == pytest.approx(
            model.theorem_1_1_bound(0.2) * 8, rel=1e-9
        )

    def test_trivial_bound(self):
        model = CostModel(100, 7)
        assert model.trivial_upper_bound(500) == 514


class TestCalibration:
    """The model's primitive constants must dominate measured costs."""

    def test_bfs_charge_covers_measured(self):
        g = random_connected(30, 0.1, rng=3)
        model = CostModel.for_graph(g)
        _, rounds = build_bfs_tree(g, root=0)
        assert rounds <= model.bfs_tree() + 1

    def test_pipelined_charge_covers_measured(self):
        g = grid(5, 6, rng=2)
        model = CostModel.for_graph(g)
        tree, _ = build_bfs_tree(g, root=0)
        k = 10
        values = [[1.0] * k for _ in g.nodes()]
        _, rounds = pipelined_aggregate(g, tree, values)
        assert rounds <= model.convergecast(items=k) + 2
