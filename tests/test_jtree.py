"""Tests for the j-tree machinery: skeleton/portals, Madry steps, the
MWU distribution, and the recursive hierarchy (§§4, 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graphs.cuts import sparsest_cut_brute_force
from repro.graphs.generators import (
    grid,
    path,
    random_connected,
    random_regular_expander,
)
from repro.graphs.graph import Graph
from repro.jtree import (
    HierarchyParams,
    build_jtree_distribution,
    build_skeleton,
    madry_jtree_step,
    sample_jtree_step,
    sample_virtual_tree,
    sample_virtual_trees,
    select_load_classes,
)
from repro.util.rng import as_generator, spawn


class TestSkeleton:
    def test_no_portals_single_component(self):
        # A path forest with no F edges: one component, canonical portal.
        edges = [(i, i + 1, 1.0) for i in range(4)]
        result = build_skeleton(5, edges, set())
        assert len(result.component_portal) == 1

    def test_two_portals_on_path_get_separated(self):
        # Path 0-1-2-3-4; portals {0, 4}: min-cap edge deleted.
        edges = [(0, 1, 5.0), (1, 2, 1.0), (2, 3, 5.0), (3, 4, 5.0)]
        result = build_skeleton(5, edges, {0, 4})
        assert len(result.deleted_path_edges) == 1
        assert result.deleted_path_edges[0][:2] == (1, 2)
        assert result.component[0] != result.component[4]

    def test_each_component_has_one_portal(self):
        edges = [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 4.0),
                 (2, 5, 1.0), (5, 6, 2.0)]
        result = build_skeleton(7, edges, {0, 4, 6})
        portals = result.portals
        for comp in range(len(result.component_portal)):
            members = [v for v in range(7) if result.component[v] == comp]
            inside = [v for v in members if v in portals]
            assert len(inside) <= 1

    def test_degree_gt2_skeleton_node_becomes_secondary_portal(self):
        # Star of three paths meeting at node 0 with leaf portals: node
        # 0 has skeleton degree 3 -> secondary portal.
        edges = [(0, 1, 1.0), (1, 2, 1.0), (0, 3, 1.0), (3, 4, 1.0),
                 (0, 5, 1.0), (5, 6, 1.0)]
        result = build_skeleton(7, edges, {2, 4, 6})
        assert 0 in result.secondary_portals

    def test_dangling_trees_stay_with_their_component(self):
        # Path 0-1-2 with portal {0, 2} and a dangling leaf 3 off 1.
        edges = [(0, 1, 2.0), (1, 2, 1.0), (1, 3, 9.0)]
        result = build_skeleton(4, edges, {0, 2})
        # edge (1,2) (min cap on the 0..2 path) is deleted; 3 hangs off 1.
        assert result.component[3] == result.component[1]

    def test_portal_count_lemma_8_5(self):
        # |P| < 4 |F|: build a random forest scenario.
        g = random_connected(40, 0.1, rng=41)
        from repro.graphs.trees import bfs_tree

        tree = bfs_tree(g, root=0)
        removed = [5, 11, 17]
        forest = [
            (v, tree.parent[v], 1.0)
            for v in range(40)
            if tree.parent[v] >= 0 and v not in removed
        ]
        primary = set()
        for v in removed:
            primary.add(v)
            primary.add(tree.parent[v])
        result = build_skeleton(40, forest, primary)
        assert len(result.portals) < 4 * max(len(removed), 1) + 1


class TestSelectLoadClasses:
    def test_empty_children(self):
        assert select_load_classes(np.zeros(3), [], 5) == []

    def test_removal_bounded_by_j(self):
        rload = np.array([0, 100, 50, 25, 12, 6, 3, 1], dtype=float)
        children = list(range(1, 8))
        removed = select_load_classes(rload, children, j=3)
        assert len(removed) <= 3

    def test_top_class_big_means_no_removal(self):
        rload = np.array([0] + [10.0] * 9)
        removed = select_load_classes(rload, list(range(1, 10)), j=4)
        assert removed == []

    def test_removed_edges_have_highest_load(self):
        # j large enough that the singleton top class is below quota:
        # the rule removes it and keeps the big low-load class.
        rload = np.array([0, 1000.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        children = list(range(1, 8))
        removed = select_load_classes(rload, children, j=7)
        assert removed == [1]

    def test_singleton_top_class_kept_when_quota_is_one(self):
        # With tiny j the quota is 1, so the first nonempty class is
        # accepted as i0 and nothing above it exists to remove.
        rload = np.array([0, 1000.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0])
        children = list(range(1, 8))
        assert select_load_classes(rload, children, j=3) == []


class TestMadryStep:
    def test_step_on_grid(self):
        g = grid(6, 6, rng=51)
        step = madry_jtree_step(g, None, j=4, rng=52)
        n = g.num_nodes
        assert len(step.component_of) == n
        assert step.num_components >= 1
        # Forest parents stay within components.
        for v in range(n):
            p = step.forest_parent[v]
            if p >= 0:
                assert step.component_of[p] == step.component_of[v]

    def test_forest_edges_are_quotient_edges(self):
        g = random_connected(30, 0.12, rng=53)
        step = madry_jtree_step(g, None, j=3, rng=54)
        for v in range(30):
            if step.forest_parent[v] >= 0:
                eid = step.forest_edge[v]
                u, w = g.endpoints(eid)
                assert {u, w} == {v, step.forest_parent[v]}

    def test_core_edges_cross_components(self):
        g = random_connected(30, 0.12, rng=55)
        step = madry_jtree_step(g, None, j=3, rng=56)
        for ce in step.core_edges:
            assert ce.component_u != ce.component_v

    def test_core_edge_capacities_positive(self):
        g = random_connected(30, 0.15, rng=57)
        step = madry_jtree_step(g, None, j=4, rng=58)
        assert all(ce.capacity > 0 for ce in step.core_edges)

    def test_rload_at_least_one_on_tree_edges(self):
        # rload = cut capacity / edge capacity >= 1 (the edge itself
        # crosses its own induced cut).
        g = random_connected(25, 0.15, rng=59)
        step = madry_jtree_step(g, None, j=3, rng=60)
        for v in range(25):
            if step.tree.parent[v] >= 0:
                assert step.rload[v] >= 1.0 - 1e-9

    def test_too_small_graph_rejected(self):
        with pytest.raises(GraphError):
            madry_jtree_step(Graph(1), None, j=1, rng=1)

    def test_extra_removals_forced_into_f(self):
        g = path(10, rng=1)
        step = madry_jtree_step(g, None, j=2, rng=61, extra_removals=[5])
        assert 5 in step.removed_edges


class TestMwuDistribution:
    def test_weights_normalized(self):
        g = random_connected(25, 0.15, rng=62)
        dist = build_jtree_distribution(g, j=3, num_trees=4, rng=63)
        assert dist.weights.sum() == pytest.approx(1.0)
        assert len(dist.steps) >= 1

    def test_sampling_returns_member(self):
        g = random_connected(25, 0.15, rng=64)
        dist = build_jtree_distribution(g, j=3, num_trees=3, rng=65)
        step = dist.sample(rng=66)
        assert step in dist.steps

    def test_potentials_grow_on_loaded_edges(self):
        g = random_connected(25, 0.15, rng=67)
        dist = build_jtree_distribution(g, j=3, num_trees=4, rng=68)
        assert dist.potentials.max() > 0

    def test_invalid_num_trees(self):
        g = random_connected(10, 0.3, rng=69)
        with pytest.raises(GraphError):
            build_jtree_distribution(g, j=2, num_trees=0, rng=70)


class TestHierarchy:
    def test_virtual_tree_spans_with_graph_edges(self):
        g = random_connected(60, 0.08, rng=71)
        vt = sample_virtual_tree(g, rng=72)
        pairs = {(min(e.u, e.v), max(e.u, e.v)) for e in g.edges()}
        for v in range(60):
            p = vt.tree.parent[v]
            if p >= 0:
                assert (min(v, p), max(v, p)) in pairs

    def test_capacities_are_induced_cut_capacities(self):
        from repro.graphs.cuts import cut_capacity

        g = random_connected(20, 0.2, rng=73)
        vt = sample_virtual_tree(g, rng=74)
        children = vt.tree.children()
        for v in range(1, 12):
            if vt.tree.parent[v] < 0:
                continue
            members, stack = [v], [v]
            while stack:
                node = stack.pop()
                for ch in children[node]:
                    members.append(ch)
                    stack.append(ch)
            assert vt.tree.capacity[v] == pytest.approx(
                cut_capacity(g, members)
            )

    def test_cluster_counts_decrease(self):
        g = random_connected(80, 0.06, rng=75)
        vt = sample_virtual_tree(
            g, rng=76, params=HierarchyParams(beta=2, final_threshold=4)
        )
        counts = vt.cluster_counts
        assert counts[0] == 80
        assert counts[-1] == 1
        assert all(a > b for a, b in zip(counts, counts[1:]))

    def test_single_node_graph(self):
        vt = sample_virtual_tree(Graph(1), rng=1)
        assert vt.tree.num_nodes == 1

    def test_two_node_graph(self):
        g = Graph(2, [(0, 1, 7.0)])
        vt = sample_virtual_tree(g, rng=2)
        child = 1 if vt.tree.parent[1] == 0 else 0
        assert vt.tree.capacity[child] == pytest.approx(7.0)

    def test_disconnected_rejected(self):
        from repro.errors import DisconnectedGraphError

        g = Graph(3, [(0, 1, 1.0)])
        with pytest.raises(DisconnectedGraphError):
            sample_virtual_tree(g, rng=1)

    def test_congestion_estimate_never_exceeds_opt(self):
        """The unconditional soundness property (Lemma 3.3 lower side)."""
        g = random_connected(11, 0.3, rng=77)
        vt = sample_virtual_tree(g, rng=78)
        rng = np.random.default_rng(79)
        for _ in range(15):
            demand = rng.normal(size=11)
            demand -= demand.mean()
            estimate = float(vt.tree.congestion_for_demand(demand).max())
            _, opt = sparsest_cut_brute_force(g, demand)
            assert estimate <= opt + 1e-9

    def test_topj_policy_gives_multilevel_recursion(self):
        g = random_connected(100, 0.05, rng=82)
        params = HierarchyParams(
            beta=2, final_threshold=5, removal_policy="topj"
        )
        vt = sample_virtual_tree(g, rng=83, params=params)
        assert vt.levels >= 2
        # Still a sound spanning tree of G.
        pairs = {(min(e.u, e.v), max(e.u, e.v)) for e in g.edges()}
        for v in range(100):
            p = vt.tree.parent[v]
            if p >= 0:
                assert (min(v, p), max(v, p)) in pairs

    def test_unknown_removal_policy_rejected(self):
        g = random_connected(10, 0.3, rng=84)
        with pytest.raises(GraphError):
            madry_jtree_step(g, None, j=2, rng=85, removal_policy="bogus")

    def test_phases_and_levels_reported(self):
        g = random_regular_expander(48, rng=80)
        vt = sample_virtual_tree(g, rng=81)
        assert vt.phases > 0
        assert vt.levels >= 0
        assert len(vt.cluster_counts) >= 2


class TestHierarchyParams:
    def test_beta_floored_at_two(self):
        assert HierarchyParams(beta=0.5).resolved_beta(100) == 2.0
        assert HierarchyParams(beta=-3.0).resolved_beta(100) == 2.0
        assert HierarchyParams(beta=8.0).resolved_beta(100) == 8.0

    def test_default_beta_follows_paper_formula(self):
        import math

        n = 1024
        expected = 2.0 ** (math.log2(n) ** 0.75)
        assert HierarchyParams().resolved_beta(n) == pytest.approx(expected)

    def test_final_threshold_resolution(self):
        # Explicit values are floored at 2; the default is max(3, isqrt).
        assert HierarchyParams(final_threshold=0).resolved_threshold(100) == 2
        assert HierarchyParams(final_threshold=7).resolved_threshold(100) == 7
        assert HierarchyParams().resolved_threshold(100) == 10
        assert HierarchyParams().resolved_threshold(4) == 3

    def test_max_levels_exhaustion_raises(self):
        # Forcing deep recursion but allowing one level must fail loudly
        # (GraphError) instead of looping or silently collapsing a huge
        # remaining core.
        g = random_connected(100, 0.05, rng=82)
        params = HierarchyParams(
            beta=2, final_threshold=5, removal_policy="topj", max_levels=1
        )
        with pytest.raises(GraphError, match="max_levels"):
            sample_virtual_tree(g, rng=83, params=params)

    def test_topj_deep_recursion_on_small_graph(self):
        g = random_connected(30, 0.15, rng=86)
        params = HierarchyParams(
            beta=2, final_threshold=3, removal_policy="topj"
        )
        vt = sample_virtual_tree(g, rng=87, params=params)
        assert vt.levels >= 2
        assert vt.cluster_counts[0] == 30
        pairs = {(min(e.u, e.v), max(e.u, e.v)) for e in g.edges()}
        for v in range(30):
            p = vt.tree.parent[v]
            if p >= 0:
                assert (min(v, p), max(v, p)) in pairs


class TestBatchedSampling:
    """Golden equivalence of the batched level-synchronous sampler, the
    sequential reference path, and the legacy per-tree loop — all three
    must be draw-for-draw identical for a fixed seed (the RNG-stream
    pinning of the batched MWU path)."""

    def _assert_same(self, a, b):
        assert a.tree.parent == b.tree.parent
        np.testing.assert_array_equal(a.tree.capacity, b.tree.capacity)
        assert a.levels == b.levels
        assert a.cluster_counts == b.cluster_counts
        assert a.phases == b.phases
        assert a.sparsifier_rounds == b.sparsifier_rounds

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batched_matches_sequential_and_legacy_loop(self, seed):
        g = random_connected(70, 0.08, rng=100 + seed)
        batched = sample_virtual_trees(g, 5, rng=seed, batched=True)
        sequential = sample_virtual_trees(g, 5, rng=seed, batched=False)
        legacy = [
            sample_virtual_tree(g, rng=child)
            for child in spawn(as_generator(seed), 5)
        ]
        assert len(batched) == len(sequential) == len(legacy) == 5
        for a, b, c in zip(batched, sequential, legacy):
            self._assert_same(a, b)
            self._assert_same(a, c)

    def test_batched_matches_with_deep_recursion_params(self):
        g = random_connected(90, 0.06, rng=110)
        params = HierarchyParams(
            beta=2, final_threshold=4, removal_policy="topj"
        )
        batched = sample_virtual_trees(g, 4, rng=9, params=params)
        sequential = sample_virtual_trees(
            g, 4, rng=9, params=params, batched=False
        )
        for a, b in zip(batched, sequential):
            self._assert_same(a, b)
        assert any(vt.levels >= 2 for vt in batched)

    def test_batched_matches_with_sparsification(self):
        # Dense enough that the level-0 core is above the sparsifier
        # target, so the per-sample cores diverge immediately and the
        # stacked-lengths grouping degenerates to singletons.
        g = random_connected(64, 0.6, rng=111)
        batched = sample_virtual_trees(g, 4, rng=10)
        sequential = sample_virtual_trees(g, 4, rng=10, batched=False)
        assert any(vt.sparsifier_rounds > 0 for vt in batched)
        for a, b in zip(batched, sequential):
            self._assert_same(a, b)

    def test_sample_jtree_step_matches_distribution_sample(self):
        # The lazily finished sampled step equals building the full
        # distribution and sampling from it, draw for draw.
        g = random_connected(40, 0.12, rng=112)
        full_rng = np.random.default_rng(33)
        lazy_rng = np.random.default_rng(33)
        dist = build_jtree_distribution(g, j=3, num_trees=4, rng=full_rng)
        chosen = dist.sample(full_rng)
        lazy = sample_jtree_step(g, j=3, num_trees=4, rng=lazy_rng)
        assert lazy.step.forest_parent == chosen.forest_parent
        assert lazy.step.forest_edge == chosen.forest_edge
        assert lazy.step.component_of == chosen.component_of
        assert lazy.step.num_components == chosen.num_components
        assert lazy.step.core_edges == chosen.core_edges
        assert lazy.phases == sum(s.phases for s in dist.steps)

    def test_empty_and_single_node_requests(self):
        assert sample_virtual_trees(Graph(1), 0, rng=1) == []
        trees = sample_virtual_trees(Graph(1), 3, rng=1)
        assert len(trees) == 3
        assert all(vt.tree.num_nodes == 1 for vt in trees)
