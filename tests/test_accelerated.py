"""Tests for the accelerated AlmostRoute (paper footnote 3) and the
binary-search max-flow formulation (§3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    accelerated_almost_route,
    build_congestion_approximator,
    max_flow,
    max_flow_binary_search,
)
from repro.core.almost_route import almost_route
from repro.errors import GraphError, InvalidDemandError
from repro.flow import dinic_max_flow
from repro.graphs.generators import grid, random_connected
from repro.util.validation import check_feasible_flow, st_demand


@pytest.fixture(scope="module")
def setup():
    g = random_connected(20, 0.2, rng=401)
    approx = build_congestion_approximator(g, rng=402)
    return g, approx


class TestAccelerated:
    def test_routes_demand(self, setup):
        g, approx = setup
        demand = st_demand(g, 0, 19)
        result = accelerated_almost_route(g, approx, demand, 0.4)
        assert result.converged
        assert np.abs(result.residual).max() < 0.5

    def test_zero_demand(self, setup):
        g, approx = setup
        result = accelerated_almost_route(
            g, approx, np.zeros(g.num_nodes), 0.5
        )
        np.testing.assert_allclose(result.flow, 0.0)

    def test_fewer_iterations_than_plain(self, setup):
        """The footnote-3 speedup: momentum should not be slower, and
        is usually meaningfully faster at tight epsilon."""
        g, approx = setup
        demand = st_demand(g, 0, 19)
        plain = almost_route(g, approx, demand, 0.2)
        fast = accelerated_almost_route(g, approx, demand, 0.2)
        assert fast.converged
        assert fast.iterations <= plain.iterations * 1.1

    def test_residual_consistency(self, setup):
        g, approx = setup
        demand = st_demand(g, 0, 19, 3.0)
        result = accelerated_almost_route(g, approx, demand, 0.5)
        np.testing.assert_allclose(
            result.residual, demand + g.excess(result.flow), atol=1e-9
        )

    def test_invalid_epsilon(self, setup):
        g, approx = setup
        with pytest.raises(GraphError):
            accelerated_almost_route(g, approx, st_demand(g, 0, 19), 2.0)

    def test_budget_flagged(self, setup):
        g, approx = setup
        result = accelerated_almost_route(
            g, approx, st_demand(g, 0, 19), 0.2, max_iterations=2
        )
        assert not result.converged


class TestBinarySearch:
    def test_agrees_with_scaling_method(self, setup):
        g, approx = setup
        scaling = max_flow(g, 0, 19, epsilon=0.4, approximator=approx)
        search = max_flow_binary_search(
            g, 0, 19, epsilon=0.4, approximator=approx
        )
        assert search.value == pytest.approx(scaling.value, rel=0.15)

    def test_flow_feasible(self, setup):
        g, approx = setup
        result = max_flow_binary_search(
            g, 0, 19, epsilon=0.5, approximator=approx
        )
        check_feasible_flow(
            g, result.flow, st_demand(g, 0, 19, result.value), tol=1e-6
        )

    def test_value_below_exact(self, setup):
        g, approx = setup
        result = max_flow_binary_search(
            g, 0, 19, epsilon=0.4, approximator=approx
        )
        exact = dinic_max_flow(g, 0, 19).value
        assert result.value <= exact * (1 + 1e-6)
        assert result.value >= exact / 1.6

    def test_bracket_contains_value(self, setup):
        g, approx = setup
        result = max_flow_binary_search(
            g, 0, 19, epsilon=0.5, approximator=approx
        )
        low, high = result.bracket
        assert low <= high
        assert result.search_steps >= 1

    def test_grid_instance(self):
        g = grid(5, 5, rng=403)
        approx = build_congestion_approximator(g, rng=404)
        result = max_flow_binary_search(g, 0, 24, epsilon=0.5, approximator=approx)
        exact = dinic_max_flow(g, 0, 24).value
        assert result.value >= exact / 1.7

    def test_same_terminals_rejected(self, setup):
        g, approx = setup
        with pytest.raises(InvalidDemandError):
            max_flow_binary_search(g, 4, 4, approximator=approx)
