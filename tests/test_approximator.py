"""Tests for the tree congestion approximator R (§§3, 9.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.approximator import (
    TreeCongestionApproximator,
    TreeOperator,
    build_congestion_approximator,
    estimate_alpha_st,
    racke_sample_trees,
)
from repro.errors import GraphError
from repro.flow import dinic_max_flow
from repro.graphs.cuts import sparsest_cut_brute_force
from repro.graphs.generators import grid, random_connected
from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree, bfs_tree, induced_cut_capacities
from repro.util.validation import st_demand


class TestTreeOperator:
    def _operator(self, graph) -> TreeOperator:
        t = bfs_tree(graph, root=0)
        return TreeOperator(
            RootedTree(t.parent, induced_cut_capacities(graph, t))
        )

    def test_row_count(self, small_graph):
        op = self._operator(small_graph)
        assert op.num_rows == small_graph.num_nodes - 1

    def test_subtree_sums_match_naive(self, small_graph):
        op = self._operator(small_graph)
        rng = np.random.default_rng(1)
        values = rng.normal(size=small_graph.num_nodes)
        fast = op.subtree_sums(values)
        slow_all = op.tree.subtree_sums(values)
        np.testing.assert_allclose(fast, slow_all[op.row_nodes])

    def test_apply_is_signed_congestion(self):
        g = Graph(3, [(0, 1, 2.0), (1, 2, 4.0)])
        t = RootedTree([-1, 0, 1], induced_cut_capacities(g, RootedTree([-1, 0, 1])))
        op = TreeOperator(t)
        y = op.apply(np.array([1.0, 0.0, -1.0]))
        # rows ordered by child node: node1 (subtree {1,2} sum -1, cut 2),
        # node2 (subtree {2} sum -1, cut 4).
        np.testing.assert_allclose(y, [-0.5, -0.25])

    def test_transpose_is_adjoint(self, small_graph):
        """<R b, y> == <b, Rᵀ y> — the defining identity."""
        op = self._operator(small_graph)
        rng = np.random.default_rng(2)
        b = rng.normal(size=small_graph.num_nodes)
        y = rng.normal(size=op.num_rows)
        lhs = float(op.apply(b) @ y)
        rhs = float(b @ op.apply_transpose(y))
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_zero_capacity_cut_rejected(self):
        t = RootedTree([-1, 0], capacity=[0.0, 0.0])
        with pytest.raises(GraphError):
            TreeOperator(t)


class TestApproximator:
    def test_apply_concatenates_blocks(self, small_graph, small_approximator):
        b = st_demand(small_graph, 0, 5)
        y = small_approximator.apply(b)
        assert y.shape == (small_approximator.num_rows,)
        assert small_approximator.num_rows == small_approximator.num_trees * (
            small_graph.num_nodes - 1
        )

    def test_adjoint_identity_full(self, small_graph, small_approximator):
        rng = np.random.default_rng(3)
        b = rng.normal(size=small_graph.num_nodes)
        y = rng.normal(size=small_approximator.num_rows)
        lhs = float(small_approximator.apply(b) @ y)
        rhs = float(b @ small_approximator.apply_transpose(y))
        assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_estimate_zero_for_zero_demand(self, small_graph, small_approximator):
        assert small_approximator.estimate(np.zeros(small_graph.num_nodes)) == 0.0

    def test_lower_bound_soundness_brute_force(self):
        """‖Rb‖∞ ≤ opt(b) for every demand — the unconditional half of
        the congestion-approximator property."""
        g = random_connected(10, 0.35, rng=91)
        approx = build_congestion_approximator(g, rng=92)
        rng = np.random.default_rng(93)
        for _ in range(15):
            b = rng.normal(size=10)
            b -= b.mean()
            _, opt = sparsest_cut_brute_force(g, b)
            assert approx.estimate(b) <= opt + 1e-9

    def test_upper_bound_alpha_on_st_demands(self):
        """opt(b) ≤ α‖Rb‖∞ for s-t demands with the estimated α."""
        g = random_connected(16, 0.25, rng=94)
        approx = build_congestion_approximator(g, rng=95)
        for s, t in [(0, 15), (3, 9), (7, 12)]:
            b = st_demand(g, s, t)
            opt = 1.0 / dinic_max_flow(g, s, t).value
            assert opt <= approx.alpha * approx.estimate(b) * 1.05

    def test_methods_produce_trees(self, small_graph):
        for method, expected_min in [("hierarchy", 2), ("mwu", 2), ("bfs", 2)]:
            approx = build_congestion_approximator(
                small_graph, num_trees=3, rng=96, method=method
            )
            assert approx.num_trees >= expected_min
            assert approx.method == method

    def test_unknown_method_rejected(self, small_graph):
        with pytest.raises(GraphError):
            build_congestion_approximator(small_graph, method="magic")

    def test_explicit_alpha_respected(self, small_graph):
        approx = build_congestion_approximator(
            small_graph, num_trees=2, rng=97, alpha=7.5
        )
        assert approx.alpha == 7.5

    def test_racke_trees_are_spanning(self, small_graph):
        trees = racke_sample_trees(small_graph, 3, rng=98)
        assert len(trees) == 3
        for t in trees:
            assert t.num_nodes == small_graph.num_nodes

    def test_alpha_estimate_at_least_safety(self, small_graph, small_approximator):
        alpha = estimate_alpha_st(
            small_graph, small_approximator, rng=99, trials=4
        )
        assert alpha >= 2.0  # safety factor times >= 1

    def test_grid_approximator_quality(self, grid_graph, grid_approximator):
        """On the grid, α should be modest (single-digit)."""
        assert grid_approximator.alpha < 20.0
