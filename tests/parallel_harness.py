"""Reusable cross-shard equivalence harness.

The sharded execution backend's whole contract is *bit-identity*: for
any seed, any generator, any shard count and any pool backend, every
sharded kernel must return exactly the arrays the serial kernel
returns — same values, same dtype-compatible contents, same
tie-breaking — and must leave the graph's derived caches in the same
(valid, read-only) state. This module packages that contract as
assertion helpers plus the standard seed × generator × shard-count
sweep matrix, so any test file (unit-level kernels, the stacked
operator, end-to-end max-flow parity) can sweep the same grid.

Used by ``tests/test_parallel_backend.py``; importable by future
benchmarks and stress suites.
"""

from __future__ import annotations

import numpy as np

from repro.core.approximator import build_congestion_approximator
from repro.graphs import kernels
from repro.graphs.csr import INDEX_DTYPE, build_csr
from repro.graphs.generators import grid, random_connected, torus
from repro.graphs.graph import Graph
from repro.jtree.mwu import mwu_lengths
from repro.parallel import ParallelConfig, use_config

#: The standard sweep axes. Shard counts deliberately include a value
#: above the tree count of small approximators (plans clamp) and a
#: non-power-of-two.
SEEDS = (101, 202, 303)
SHARD_COUNTS = (2, 3, 4)
BACKENDS = ("serial", "thread")

#: name -> graph factory. Sizes chosen so every instance is beyond
#: TINY_GRAPH_LIMIT (the operators take the flat path) while the whole
#: matrix stays fast; ``min_size=0`` configs force sharding regardless.
GENERATORS = {
    "random": lambda seed: random_connected(72, 0.08, rng=seed),
    "grid": lambda seed: grid(9, 9, rng=seed),
    "torus": lambda seed: torus(8, 8, rng=seed),
}


def forced(workers: int, backend: str = "serial") -> ParallelConfig:
    """A config that shards regardless of instance size."""
    return ParallelConfig(workers=workers, backend=backend, min_size=0)


def sweep_cases():
    """The full (seed, generator-name, shard-count, backend) matrix."""
    return [
        (seed, name, workers, backend)
        for seed in SEEDS
        for name in GENERATORS
        for workers in SHARD_COUNTS
        for backend in BACKENDS
    ]


def make_graph(name: str, seed: int) -> Graph:
    return GENERATORS[name](seed)


# ----------------------------------------------------------------------
# Exact-equality helpers
# ----------------------------------------------------------------------
def assert_arrays_identical(label: str, expected, actual) -> None:
    """Exact (bitwise-value) array equality with a readable label."""
    expected = np.asarray(expected)
    actual = np.asarray(actual)
    assert expected.shape == actual.shape, (
        f"{label}: shape {actual.shape} != {expected.shape}"
    )
    assert np.array_equal(expected, actual), (
        f"{label}: arrays differ at "
        f"{np.flatnonzero(expected != actual)[:8].tolist()}"
    )


def assert_recovery_invisible(pool, fn, tasks, label: str = "map") -> None:
    """Supervised recovery's whole contract: a map that survived injected
    faults returns exactly what a fault-free serial evaluation returns —
    same order, same values, bit for bit. Shards are pure functions of
    their arguments, so a retried shard is indistinguishable from a
    first-try shard; any visible difference means recovery leaked."""
    expected = [fn(*task) for task in tasks]
    got = pool.map(fn, tasks)
    assert len(got) == len(expected), (
        f"{label}: {len(got)} results for {len(expected)} tasks"
    )
    for i, (want, have) in enumerate(zip(expected, got)):
        assert_arrays_identical(f"{label}[shard {i}]", want, have)


def assert_cache_invariants(graph: Graph) -> None:
    """The derived-cache contract after any (sharded) run.

    * the cached CSR is stable (same object on re-query) and all three
      arrays are read-only, correctly sized and typed;
    * ``indptr`` is monotone and consistent with the incidence count;
    * the capacity / endpoint views are read-only and alias-stable.
    """
    csr = graph.csr()
    assert csr is graph.csr(), "CSR cache must be stable across queries"
    assert len(csr.indptr) == graph.num_nodes + 1
    assert len(csr.neighbor) == 2 * graph.num_edges
    assert len(csr.edge_id) == 2 * graph.num_edges
    for arr in (csr.indptr, csr.neighbor, csr.edge_id):
        assert not arr.flags.writeable, "CSR arrays must be read-only"
    assert csr.neighbor.dtype == INDEX_DTYPE
    assert csr.edge_id.dtype == INDEX_DTYPE
    assert int(csr.indptr[0]) == 0
    assert int(csr.indptr[-1]) == 2 * graph.num_edges
    assert np.all(np.diff(csr.indptr) >= 0), "indptr must be monotone"
    caps = graph.capacities()
    assert not caps.flags.writeable
    assert caps is graph.capacities()
    tails, heads = graph.edge_index_arrays()
    assert not tails.flags.writeable and not heads.flags.writeable


# ----------------------------------------------------------------------
# Kernel-level equivalence
# ----------------------------------------------------------------------
def assert_bfs_equivalent(graph: Graph, config: ParallelConfig) -> None:
    """Sharded BFS (levels, parents, masked levels) == serial, exactly."""
    csr = graph.csr()
    serial_levels = kernels.bfs_levels(csr, 0)
    assert_arrays_identical(
        "bfs_levels", serial_levels, kernels.bfs_levels(csr, 0, parallel=config)
    )
    sources = np.array([0, graph.num_nodes // 2], dtype=np.int64)
    mask = np.zeros(graph.num_edges, dtype=bool)
    mask[::2] = True
    assert_arrays_identical(
        "bfs_levels[masked multi-source]",
        kernels.bfs_levels(csr, sources, allowed_edges=mask),
        kernels.bfs_levels(csr, sources, allowed_edges=mask, parallel=config),
    )
    serial_tree = kernels.bfs_parents(csr, root=1)
    sharded_tree = kernels.bfs_parents(csr, root=1, parallel=config)
    for part, expected, actual in zip(
        ("dist", "parent", "parent_edge"), serial_tree, sharded_tree
    ):
        assert_arrays_identical(f"bfs_parents.{part}", expected, actual)
    assert_cache_invariants(graph)


def assert_hop_distances_equivalent(
    graph: Graph, config: ParallelConfig
) -> None:
    """Sharded multi-source lockstep BFS == serial, row for row."""
    csr = graph.csr()
    step = max(1, graph.num_nodes // 12)
    sources = np.arange(0, graph.num_nodes, step, dtype=np.int64)
    assert_arrays_identical(
        "multi_source_hop_distances",
        kernels.multi_source_hop_distances(csr, sources),
        kernels.multi_source_hop_distances(csr, sources, parallel=config),
    )
    # Duplicates and unordered sources keep the per-row independence
    # argument honest (blocks must not interact).
    mixed = np.array(
        [graph.num_nodes - 1, 0, graph.num_nodes // 2, 0], dtype=np.int64
    )
    assert_arrays_identical(
        "multi_source_hop_distances[mixed]",
        kernels.multi_source_hop_distances(csr, mixed),
        kernels.multi_source_hop_distances(csr, mixed, parallel=config),
    )
    assert_cache_invariants(graph)


def assert_mwu_lengths_equivalent(
    graph: Graph, config: ParallelConfig, seed: int
) -> None:
    """Sharded stacked MWU length evaluation == serial, bit for bit."""
    caps = graph.capacities()
    rng = np.random.default_rng(seed)
    # Potentials straddling MAX_EXPONENT exercise the clamp branch.
    stack = rng.uniform(0.0, 60.0, size=(9, graph.num_edges))
    serial = mwu_lengths(stack, caps)
    assert_arrays_identical(
        "mwu_lengths[stacked]",
        serial,
        mwu_lengths(stack, caps, parallel=config),
    )
    # Stacked rows must equal the single-vector evaluation per row
    # (the batched-hierarchy contract the sharding must preserve).
    for row in (0, len(stack) - 1):
        assert_arrays_identical(
            f"mwu_lengths[row {row}]",
            mwu_lengths(stack[row], caps),
            serial[row],
        )
    single = rng.uniform(0.0, 50.0, size=graph.num_edges)
    assert_arrays_identical(
        "mwu_lengths[single]",
        mwu_lengths(single, caps),
        mwu_lengths(single, caps, parallel=config),
    )


def assert_csr_build_equivalent(graph: Graph, config: ParallelConfig) -> None:
    """Sharded CSR build == serial build, array for array."""
    tails, heads = graph.edge_index_arrays()
    serial = build_csr(graph.num_nodes, tails, heads)
    sharded = build_csr(graph.num_nodes, tails, heads, parallel=config)
    assert_arrays_identical("csr.indptr", serial.indptr, sharded.indptr)
    assert_arrays_identical("csr.neighbor", serial.neighbor, sharded.neighbor)
    assert_arrays_identical("csr.edge_id", serial.edge_id, sharded.edge_id)
    for arr in (sharded.indptr, sharded.neighbor, sharded.edge_id):
        assert not arr.flags.writeable


def assert_contract_equivalent(graph: Graph, config: ParallelConfig) -> None:
    """Contraction under a sharded default config == serial contraction,
    including the pre-seeded quotient CSR cache state."""
    labels = [v % max(4, graph.num_nodes // 6) for v in range(graph.num_nodes)]
    for keep_parallel in (True, False):
        serial_q, serial_origin = graph.contract(labels, keep_parallel)
        with use_config(config):
            sharded_q, sharded_origin = graph.contract(labels, keep_parallel)
        assert serial_origin == sharded_origin
        assert serial_q.num_nodes == sharded_q.num_nodes
        for name, a, b in (
            ("tails", *(x.edge_index_arrays()[0] for x in (serial_q, sharded_q))),
            ("heads", *(x.edge_index_arrays()[1] for x in (serial_q, sharded_q))),
            ("caps", serial_q.capacities(), sharded_q.capacities()),
        ):
            assert_arrays_identical(f"contract.{name}", a, b)
        assert_arrays_identical(
            "contract.csr.neighbor",
            serial_q.csr().neighbor,
            sharded_q.csr().neighbor,
        )
        assert_cache_invariants(sharded_q)


# ----------------------------------------------------------------------
# Operator-level equivalence
# ----------------------------------------------------------------------
def build_test_approximator(graph: Graph, seed: int):
    """A deterministic approximator for operator sweeps (fixed alpha so
    no Dinic randomness enters the matrix)."""
    return build_congestion_approximator(graph, rng=seed, alpha=2.0)


def assert_operator_equivalent(
    graph: Graph, approximator, config: ParallelConfig, seed: int
) -> None:
    """Sharded R·b / Rᵀ·g / estimate == serial, bit for bit."""
    stacked = approximator.stacked()
    rng = np.random.default_rng(seed)
    demand = rng.normal(size=graph.num_nodes)
    demand -= demand.mean()
    rows = rng.normal(size=stacked.num_rows)

    serial_apply = stacked.apply(demand).copy()
    serial_transpose = stacked.apply_transpose(rows).copy()
    serial_estimate = stacked.estimate(demand)

    assert_arrays_identical(
        "stacked.apply", serial_apply, stacked.apply(demand, parallel=config)
    )
    out = np.empty(stacked.num_rows)
    assert stacked.apply(demand, out=out, parallel=config) is out
    assert_arrays_identical("stacked.apply[out]", serial_apply, out)
    assert_arrays_identical(
        "stacked.apply_transpose",
        serial_transpose,
        stacked.apply_transpose(rows, parallel=config),
    )
    assert stacked.estimate(demand, parallel=config) == serial_estimate

    # The per-tree reference path must agree too (transitively pins the
    # sharded path to the original per-tree operator semantics).
    per_tree = approximator.with_parallel(None)
    per_tree.operator_mode = "per_tree"
    assert_arrays_identical(
        "per_tree.apply", serial_apply, per_tree.apply(demand)
    )

    # Shard-plan bookkeeping: every cached plan partitions the trees
    # and the rows exactly once.
    for shards in stacked._shard_cache.values():
        assert shards[0].t0 == 0 and shards[-1].t1 == stacked.num_trees
        assert shards[0].r0 == 0 and shards[-1].r1 == stacked.num_rows
        for left, right in zip(shards, shards[1:]):
            assert left.t1 == right.t0 and left.r1 == right.r0
