"""Unit tests for the CONGEST simulator core."""

from __future__ import annotations

import pytest

from repro.congest.model import (
    CongestNetwork,
    Message,
    NodeContext,
    message_words,
)
from repro.errors import (
    CongestModelError,
    MessageTooLargeError,
    RoundLimitExceededError,
)
from repro.graphs.generators import cycle, path
from repro.graphs.graph import Graph


class TestMessageWords:
    def test_scalar_is_one_word(self):
        assert message_words(5) == 1
        assert message_words(3.14) == 1
        assert message_words(True) == 1
        assert message_words(None) == 1

    def test_tuple_sums(self):
        assert message_words((1, 2.0, None)) == 3

    def test_string_packs_into_words(self):
        assert message_words("ab") == 1
        assert message_words("x" * 17) == 3

    def test_dict_counts_keys_and_values(self):
        assert message_words({"a": 1}) == 2

    def test_unsupported_type_rejected(self):
        with pytest.raises(CongestModelError):
            message_words(object())


class _Silent:
    """Node that terminates immediately without sending."""

    def init(self, ctx):
        pass

    def on_round(self, ctx, inbox):
        return True


class _PingOnce:
    """Node 0 pings all neighbors in round 1; everyone records inbox."""

    def __init__(self, node: int):
        self.node = node
        self.received: list[Message] = []
        self._round = 0

    def init(self, ctx):
        pass

    def on_round(self, ctx, inbox):
        self.received.extend(inbox)
        self._round += 1
        if self.node == 0 and self._round == 1:
            ctx.send_to_all_neighbors(("ping", 1))
        return self._round >= 2


class TestNetworkBasics:
    def test_disconnected_topology_rejected(self):
        g = Graph(3, [(0, 1, 1.0)])
        from repro.errors import DisconnectedGraphError

        with pytest.raises(DisconnectedGraphError):
            CongestNetwork(g)

    def test_silent_algorithm_one_round(self):
        net = CongestNetwork(path(4, rng=1))
        result = net.run(lambda v: _Silent())
        assert result.rounds == 1
        assert result.messages_sent == 0

    def test_ping_delivery_next_round(self):
        net = CongestNetwork(path(3, rng=1))
        result = net.run(lambda v: _PingOnce(v))
        # Node 1 (neighbor of 0) received the ping, node 2 did not.
        assert len(result.states[1].received) == 1
        assert result.states[1].received[0].sender == 0
        assert len(result.states[2].received) == 0

    def test_round_limit_enforced(self):
        class Forever:
            def init(self, ctx):
                pass

            def on_round(self, ctx, inbox):
                return False

        net = CongestNetwork(path(3, rng=1))
        with pytest.raises(RoundLimitExceededError):
            net.run(lambda v: Forever(), max_rounds=5)

    def test_message_budget_enforced(self):
        class Chatty:
            def init(self, ctx):
                pass

            def on_round(self, ctx, inbox):
                ctx.send(ctx.incident[0][1], tuple(range(50)))
                return True

        net = CongestNetwork(path(3, rng=1))
        with pytest.raises(MessageTooLargeError):
            net.run(lambda v: Chatty())

    def test_double_send_same_edge_rejected(self):
        class DoubleSender:
            def init(self, ctx):
                pass

            def on_round(self, ctx, inbox):
                edge = ctx.incident[0][1]
                ctx.send(edge, 1)
                ctx.send(edge, 2)
                return True

        net = CongestNetwork(path(2, rng=1))
        with pytest.raises(CongestModelError):
            net.run(lambda v: DoubleSender())

    def test_send_on_foreign_edge_rejected(self):
        class Spoofer:
            def __init__(self, node):
                self.node = node

            def init(self, ctx):
                pass

            def on_round(self, ctx, inbox):
                if self.node == 0:
                    ctx.send(1, "hi")  # edge 1 joins nodes 1 and 2
                return True

        net = CongestNetwork(path(3, rng=1))
        with pytest.raises(CongestModelError):
            net.run(lambda v: Spoofer(v))

    def test_context_exposes_local_view_only(self):
        g = cycle(5, rng=1)
        net = CongestNetwork(g)
        ctx = NodeContext(net, 2)
        assert ctx.node == 2
        assert ctx.num_nodes == 5
        assert len(ctx.incident) == 2

    def test_messages_in_flight_prevent_termination(self):
        # A node that sends and immediately claims done: the run must
        # still deliver the message before ending.
        class SendAndQuit:
            def __init__(self, node):
                self.node = node
                self.got = False

            def init(self, ctx):
                pass

            def on_round(self, ctx, inbox):
                self.got = self.got or bool(inbox)
                if self.node == 0 and not getattr(self, "_sent", False):
                    ctx.send_to_all_neighbors("bye")
                    self._sent = True
                return True

        net = CongestNetwork(path(2, rng=1))
        result = net.run(lambda v: SendAndQuit(v))
        assert result.states[1].got
        assert result.rounds >= 2
