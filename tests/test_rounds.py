"""Tests for the end-to-end round estimation (Theorem 1.1 shape)."""

from __future__ import annotations

import pytest

from repro.core import (
    build_congestion_approximator,
    estimate_rounds,
    max_flow,
)
from repro.core.approximator import TreeCongestionApproximator, TreeOperator
from repro.graphs.generators import random_connected
from repro.jtree import sample_virtual_tree
from repro.util.rng import as_generator, spawn


@pytest.fixture(scope="module")
def pipeline_run():
    g = random_connected(36, 0.12, rng=121)
    rng = as_generator(122)
    samples = [sample_virtual_tree(g, rng=r) for r in spawn(rng, 3)]
    approx = TreeCongestionApproximator(
        g, [TreeOperator(s.tree) for s in samples], alpha=2.5
    )
    result = max_flow(g, 0, 35, epsilon=0.5, approximator=approx)
    return g, samples, result


class TestEstimate:
    def test_total_is_sum_of_parts(self, pipeline_run):
        g, samples, result = pipeline_run
        est = estimate_rounds(g, samples, result.congestion_result, 0.5)
        assert est.total == pytest.approx(est.construction + est.descent)

    def test_breakdown_covers_all_stages(self, pipeline_run):
        g, samples, result = pipeline_run
        est = estimate_rounds(g, samples, result.congestion_result, 0.5)
        for label in (
            "bfs_tree",
            "low_stretch_spanning_tree",
            "tree_flow_aggregation",
            "skeleton",
            "gradient_step",
            "mst_residual_routing",
        ):
            assert label in est.breakdown

    def test_descent_scales_with_iterations(self, pipeline_run):
        g, samples, result = pipeline_run
        est = estimate_rounds(g, samples, result.congestion_result, 0.5)
        assert est.descent > 0
        per_iter = est.breakdown["gradient_step"] / max(
            result.congestion_result.iterations, 1
        )
        assert per_iter > 0

    def test_reference_bounds_present(self, pipeline_run):
        g, samples, result = pipeline_run
        est = estimate_rounds(g, samples, result.congestion_result, 0.5)
        assert est.theorem_bound > 0
        assert est.trivial_bound >= g.num_edges

    def test_diameter_override(self, pipeline_run):
        g, samples, result = pipeline_run
        a = estimate_rounds(g, samples, result.congestion_result, 0.5)
        b = estimate_rounds(
            g, samples, result.congestion_result, 0.5, diameter=g.diameter()
        )
        assert a.total == pytest.approx(b.total)
