"""Chaos suite: deterministic fault injection + supervised recovery.

The fault framework's contract, pinned here site by site:

* every injected failure ends in either a **bit-identical recovered
  result** or a **typed** :class:`~repro.errors.ReproError` — never a
  hang (every armed map runs under a timeout), never a partial write,
  never a silent wrong answer;
* recovery is *invisible*: shards are pure functions of their
  arguments, so the only observable of a fired fault is the plan's
  ``fired()`` counter and the owning layer's stats;
* the ``REPRO_FAULTS`` grammar is strictly validated — a typo raises
  :class:`~repro.errors.FaultSpecError` instead of silently running
  fault-free;
* :class:`~repro.faults.InjectedFault` is deliberately **not** a
  ``ReproError``: it models an unexpected crash, and an escaped raw
  instance is a recovery bug by definition.

CI's ``chaos`` job runs this file under ``REPRO_WORKERS=2`` and then
sweeps ``REPRO_FAULTS`` over the ordinary equivalence suites (recovery
is only real if tests that never heard of faults stay green).
"""

from __future__ import annotations

import numpy as np
import pytest

from parallel_harness import (
    assert_arrays_identical,
    assert_recovery_invisible,
    forced,
)
from repro.errors import (
    ArenaError,
    DeadlineExceededError,
    FaultSpecError,
    GraphError,
    PoolFailureError,
    ReproError,
    ServingError,
)
from repro.faults import (
    FAULT_POINTS,
    SITES,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_plan,
    faults_active,
    parse_fault_specs,
    plan_from_env,
    set_fault_plan,
    use_faults,
)
from repro.faults.plan import UNLIMITED
from repro.graphs.generators import random_connected
from repro.parallel import (
    ParallelConfig,
    RecoveryPolicy,
    shutdown_pools,
    use_recovery,
)
from repro.parallel.arena import SharedArena
from repro.parallel.pool import _fork_available, get_pool
from repro.serve import FlowServer
from repro.util.validation import st_demand

EPS = 0.4

#: Fast supervision for injected-fault tests: tight-but-safe timeout,
#: two retry waves, no backoff sleep.
FAST = RecoveryPolicy(timeout=10.0, retries=2, backoff=0.0)

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="fork start method unavailable"
)


@pytest.fixture(autouse=True)
def _clean_slate():
    """Disarm any environment plan and reset pool state/stats per test."""
    set_fault_plan(None)
    shutdown_pools()
    yield
    set_fault_plan(None)
    shutdown_pools()


def _square(block: np.ndarray) -> np.ndarray:
    return block * block


def _raise_graph_error(block: np.ndarray) -> np.ndarray:
    raise GraphError("deterministic library error from a shard")


def _tasks(seed: int, count: int = 4):
    """Fresh read-only arrays each call — the arena export cache is
    keyed by array identity, so reusing arrays across scenarios would
    let a cached segment absorb the injection before it fires."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        block = rng.normal(size=256)
        block.flags.writeable = False
        out.append((block,))
    return out


def _pool(backend: str):
    return get_pool(ParallelConfig(workers=2, backend=backend, min_size=0))


# ----------------------------------------------------------------------
# Spec grammar + validation
# ----------------------------------------------------------------------
class TestSpecGrammar:
    def test_defaults(self):
        spec = FaultSpec.parse("pool.worker")
        assert spec.site == "pool.worker"
        assert spec.kind == SITES["pool.worker"][0] == "raise"
        assert spec.at == 1 and spec.count == 1

    def test_full_clause(self):
        spec = FaultSpec.parse("pool.worker:hang@3*2")
        assert (spec.site, spec.kind, spec.at, spec.count) == (
            "pool.worker",
            "hang",
            3,
            2,
        )
        assert [spec.covers(v) for v in range(1, 6)] == [
            False,
            False,
            True,
            True,
            False,
        ]

    def test_unlimited(self):
        spec = FaultSpec.parse("serve.miss:raise@2*inf")
        assert spec.count == UNLIMITED
        assert not spec.covers(1)
        assert spec.covers(2) and spec.covers(10_000)

    def test_comma_separated_list(self):
        specs = parse_fault_specs(
            " pool.dispatch@1 , arena.export:enospc*2 ,, "
        )
        assert [s.site for s in specs] == ["pool.dispatch", "arena.export"]
        assert specs[1].count == 2

    @pytest.mark.parametrize(
        ("clause", "fragment"),
        [
            ("pool.wrker", "pool.worker"),  # typo'd site: names valid sites
            ("pool.worker:explode", "raise"),  # unknown kind: names kinds
            ("arena.export:enoent", "enospc"),  # kind from another site
            ("pool.worker@0", "1-based"),  # visits are 1-based
            ("pool.worker*0", "count"),  # count must be >= 1 or inf
            ("pool.worker@@2", "malformed"),  # broken syntax
            ("POOL.WORKER", "malformed"),  # grammar is lowercase, strictly
        ],
    )
    def test_garbage_raises_typed_error(self, clause, fragment):
        # The message must name the valid vocabulary so a typo is
        # self-diagnosing from the traceback alone.
        with pytest.raises(FaultSpecError) as excinfo:
            FaultSpec.parse(clause)
        assert fragment in str(excinfo.value)

    def test_fault_spec_error_is_repro_error(self):
        assert issubclass(FaultSpecError, ReproError)

    def test_injected_fault_is_not_repro_error(self):
        # The deliberate asymmetry the whole suite leans on: injected
        # crashes are *unexpected* failures that recovery must absorb
        # or translate; a typed ReproError is a deliberate surfacing.
        assert not issubclass(InjectedFault, ReproError)

    def test_plan_from_env(self):
        assert plan_from_env({}) is None
        assert plan_from_env({"REPRO_FAULTS": "   "}) is None
        plan = plan_from_env({"REPRO_FAULTS": "pool.worker:exit@2"})
        assert plan is not None
        assert plan.specs[0].kind == "exit" and plan.specs[0].at == 2
        with pytest.raises(FaultSpecError):
            plan_from_env({"REPRO_FAULTS": "pool.worker:exit@oops"})


# ----------------------------------------------------------------------
# Plan semantics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_explicit_schedule_counts_visits_and_firings(self):
        plan = FaultPlan(["pool.dispatch@2"])
        assert plan.maybe_fire("pool.dispatch") is None
        action = plan.maybe_fire("pool.dispatch")
        assert action is not None and action.kind == "raise"
        assert plan.maybe_fire("pool.dispatch") is None
        assert plan.visits()["pool.dispatch"] == 3
        assert plan.fired()["pool.dispatch"] == 1

    def test_unknown_site_rejected_at_fire_time(self):
        plan = FaultPlan()
        with pytest.raises(FaultSpecError):
            plan.maybe_fire("pool.nonsense")

    def test_seeded_schedule_is_deterministic_per_site(self):
        def pattern(seed):
            plan = FaultPlan(seed=seed, rate=0.5, sites=("pool.dispatch",))
            return [
                plan.maybe_fire("pool.dispatch") is not None
                for _ in range(64)
            ]

        first, again = pattern(7), pattern(7)
        assert first == again
        assert any(first) and not all(first)
        assert pattern(8) != first

    def test_seeded_schedule_needs_a_seed(self):
        with pytest.raises(FaultSpecError):
            FaultPlan(rate=0.5)

    def test_use_faults_scopes_activation(self):
        plan = FaultPlan(["pool.dispatch@1"])
        assert not faults_active()
        with use_faults(plan):
            assert faults_active()
            assert active_plan() is plan
        assert not faults_active()

    def test_every_site_has_a_registered_owner(self):
        # Importing the owning modules (done at the top of this file,
        # transitively) must register a fault point for every site in
        # the catalogue — an orphaned site is untestable dead grammar.
        assert set(FAULT_POINTS) == set(SITES)


# ----------------------------------------------------------------------
# Pool recovery: thread backend
# ----------------------------------------------------------------------
class TestThreadRecovery:
    def test_worker_raise_once_is_recovered(self):
        plan = FaultPlan(["pool.worker:raise@1"])
        pool = _pool("thread")
        with use_faults(plan), use_recovery(FAST):
            assert_recovery_invisible(pool, _square, _tasks(11))
        assert plan.fired()["pool.worker"] == 1
        assert pool.stats.worker_faults == 1
        assert pool.stats.retries == 1
        assert pool.stats.failures == 0

    def test_dispatch_raise_once_is_recovered(self):
        plan = FaultPlan(["pool.dispatch@1"])
        pool = _pool("thread")
        with use_faults(plan), use_recovery(FAST):
            assert_recovery_invisible(pool, _square, _tasks(12))
        assert plan.fired()["pool.dispatch"] == 1
        assert pool.stats.dispatch_faults == 1

    def test_persistent_fault_surfaces_typed_with_cause(self):
        plan = FaultPlan(["pool.worker*inf"])
        pool = _pool("thread")
        with use_faults(plan), use_recovery(FAST):
            with pytest.raises(PoolFailureError) as excinfo:
                pool.map(_square, _tasks(13))
        assert isinstance(excinfo.value.__cause__, InjectedFault)
        assert pool.stats.failures == 1
        assert pool.stats.retries == FAST.retries

    def test_thread_hang_times_out_typed_without_retry(self):
        # A hung *thread* cannot be preempted and still owns the
        # caller's scratch, so the pool surfaces a typed failure
        # instead of re-executing into shared state.
        plan = FaultPlan(["pool.worker:hang@1"], hang_seconds=1.0)
        pool = _pool("thread")
        with use_faults(plan), use_recovery(
            RecoveryPolicy(timeout=0.2, retries=2, backoff=0.0)
        ):
            with pytest.raises(PoolFailureError):
                pool.map(_square, _tasks(14))
        assert pool.stats.timeouts == 1
        assert pool.stats.retries == 0
        shutdown_pools()  # drop the pool still running the hung shard

    def test_repro_error_from_shard_propagates_without_retry(self):
        # Deterministic library errors are not faults: retrying them
        # would re-raise identically and mask the real diagnosis.
        pool = _pool("thread")
        with use_recovery(FAST):
            with pytest.raises(GraphError):
                pool.map(_raise_graph_error, _tasks(15))
        assert pool.stats.retries == 0


# ----------------------------------------------------------------------
# Pool recovery: process backend (fork + shared-memory arena)
# ----------------------------------------------------------------------
@needs_fork
class TestProcessRecovery:
    def test_worker_raise_once_is_recovered(self):
        plan = FaultPlan(["pool.worker:raise@1"])
        pool = _pool("process")
        with use_faults(plan), use_recovery(FAST):
            assert_recovery_invisible(pool, _square, _tasks(21))
        assert plan.fired()["pool.worker"] == 1
        assert pool.stats.worker_faults == 1
        assert pool.stats.retries == 1

    def test_worker_exit_is_detected_and_reexecuted(self):
        # os._exit in a worker: the shard's result never arrives; the
        # parent detects it by timeout, respawns the pool, and
        # re-executes only the missing shard.
        plan = FaultPlan(["pool.worker:exit@1"])
        pool = _pool("process")
        with use_faults(plan), use_recovery(
            RecoveryPolicy(timeout=1.0, retries=2, backoff=0.0)
        ):
            assert_recovery_invisible(pool, _square, _tasks(22))
        assert plan.fired()["pool.worker"] == 1
        assert pool.stats.timeouts >= 1
        assert pool.stats.respawns >= 1

    def test_worker_hang_is_preempted_by_respawn(self):
        plan = FaultPlan(["pool.worker:hang@1"], hang_seconds=10.0)
        pool = _pool("process")
        with use_faults(plan), use_recovery(
            RecoveryPolicy(timeout=0.5, retries=2, backoff=0.0)
        ):
            assert_recovery_invisible(pool, _square, _tasks(23))
        assert pool.stats.timeouts >= 1
        assert pool.stats.respawns >= 1

    def test_attach_enoent_falls_back_to_fresh_segments(self):
        # A worker that cannot attach the arena's cached segment
        # (externally unlinked) reports ENOENT; the parent discards
        # the stale entry and retries the shard on per-call segments.
        plan = FaultPlan(["arena.attach:enoent@1"])
        pool = _pool("process")
        with use_faults(plan), use_recovery(FAST):
            assert_recovery_invisible(pool, _square, _tasks(24))
        assert plan.fired()["arena.attach"] == 1
        assert pool.stats.attach_failures == 1
        assert pool.stats.degraded_exports == 1

    def test_persistent_fault_surfaces_typed(self):
        plan = FaultPlan(["pool.worker*inf"])
        pool = _pool("process")
        with use_faults(plan), use_recovery(FAST):
            with pytest.raises(PoolFailureError) as excinfo:
                pool.map(_square, _tasks(25))
        assert isinstance(excinfo.value.__cause__, InjectedFault)


# ----------------------------------------------------------------------
# Arena degradation
# ----------------------------------------------------------------------
class TestArenaRecovery:
    def test_enospc_once_recovered_by_drain_and_retry(self):
        arena = SharedArena()
        plan = FaultPlan(["arena.export:enospc@1"])
        (block,) = _tasks(31, count=1)[0]
        try:
            with use_faults(plan):
                ref = arena.export(block)
            assert ref.shape == block.shape
            assert plan.fired()["arena.export"] == 1
            assert len(arena) == 1
        finally:
            arena.release()

    def test_enospc_after_drain_exhaustion_is_typed_and_descriptive(self):
        arena = SharedArena()
        plan = FaultPlan(["arena.export:enospc@1*2"])  # initial + retry
        (block,) = _tasks(32, count=1)[0]
        try:
            with use_faults(plan):
                with pytest.raises(ArenaError) as excinfo:
                    arena.export(block)
            message = str(excinfo.value)
            # The error must name the byte budget and the live working
            # set — the two numbers an operator needs to re-tune.
            assert "byte budget" in message
            assert "working set" in message
            assert isinstance(excinfo.value.__cause__, OSError)
        finally:
            arena.release()

    @needs_fork
    def test_pool_degrades_to_transient_segments_bit_identically(self):
        # Arena export fails twice (initial + post-drain retry) ->
        # ArenaError absorbed by the pool as a counted degradation to
        # per-call transient segments; results stay bit-identical.
        plan = FaultPlan(["arena.export:enospc@1*2"])
        pool = _pool("process")
        with use_faults(plan), use_recovery(FAST):
            assert_recovery_invisible(pool, _square, _tasks(33))
        assert plan.fired()["arena.export"] == 2
        assert pool.stats.degraded_exports == 1
        assert pool.stats.failures == 0


# ----------------------------------------------------------------------
# Serving layer
# ----------------------------------------------------------------------
@pytest.fixture()
def graph():
    return random_connected(40, 0.12, rng=601)


@pytest.fixture()
def server(graph):
    return FlowServer(graph, epsilon=EPS, rng=602)


def _plane(graph, seed, num_queries):
    rng = np.random.default_rng(seed)
    plane = rng.normal(size=(num_queries, graph.num_nodes))
    plane -= plane.mean(axis=1, keepdims=True)
    return plane


class TestServeRecovery:
    def test_checkout_failure_falls_back_to_fresh_workspace(
        self, graph, server
    ):
        demand = st_demand(graph, 0, graph.num_nodes - 1)
        baseline = server.route(demand, use_cache=False)
        plan = FaultPlan(["serve.checkout*inf"])
        with use_faults(plan):
            served = server.route(demand, use_cache=False)
        assert_arrays_identical("flow", baseline.flow, served.flow)
        assert served.iterations == baseline.iterations
        assert plan.fired()["serve.checkout"] >= 1
        assert server.health().workspace_fallbacks >= 1

    def test_miss_failure_bisects_and_stays_bit_identical(
        self, graph, server
    ):
        plane = _plane(graph, 41, 4)
        baseline = server.route_batch(plane, use_cache=False)
        plan = FaultPlan(["serve.miss@1"])
        with use_faults(plan):
            chaotic = server.route_batch(plane, use_cache=False)
        for q, (want, have) in enumerate(zip(baseline, chaotic)):
            assert_arrays_identical(f"flow[{q}]", want.flow, have.flow)
            assert want.iterations == have.iterations
        assert plan.fired()["serve.miss"] == 1
        assert server.health().batch_splits >= 1

    def test_poisoned_column_is_isolated_with_cause_chain(
        self, graph, server
    ):
        plane = _plane(graph, 42, 4)
        baseline = server.route_batch(plane, use_cache=False)
        poisoned = plane.copy()
        poisoned[2, 0] = np.nan
        results = server.route_batch(
            poisoned, use_cache=False, errors="return"
        )
        failure = results[2]
        assert isinstance(failure, ServingError)
        assert "column 2" in str(failure)
        assert failure.__cause__ is not None
        for q in (0, 1, 3):
            assert_arrays_identical(
                f"flow[{q}]", baseline[q].flow, results[q].flow
            )
        assert server.health().column_failures >= 1
        # errors="raise" (the default) surfaces the same typed error.
        with pytest.raises(ServingError):
            server.route_batch(poisoned, use_cache=False)

    def test_errors_mode_is_validated(self, graph, server):
        with pytest.raises(GraphError):
            server.route_batch(_plane(graph, 43, 2), errors="ignore")

    def test_deadline_surfaces_typed(self, graph):
        strict = FlowServer(graph, epsilon=EPS, rng=602, deadline=1e-9)
        with pytest.raises(DeadlineExceededError):
            strict.route(st_demand(graph, 0, 5), use_cache=False)
        assert strict.health().deadline_hits == 1
        # DeadlineExceededError is a ServingError is a ReproError.
        assert issubclass(DeadlineExceededError, ServingError)

    def test_health_snapshot_starts_clean(self, graph):
        quiet = FlowServer(
            graph, epsilon=EPS, rng=602, parallel=ParallelConfig(workers=1)
        )
        health = quiet.health()
        assert not health.degraded
        assert health.configured_backend == health.effective_backend
        assert health.workspace_fallbacks == 0
        assert health.breaker_trips == 0
        assert health.last_error is None
        assert health.shard_pool is None  # serial: no pool to report

    def test_health_reports_shard_pool_stats(self, graph):
        sharded = FlowServer(
            graph, epsilon=EPS, rng=602, parallel=forced(2, "thread")
        )
        sharded.route(st_demand(graph, 0, 7), use_cache=False)
        health = sharded.health()
        assert health.shard_pool is not None
        assert health.shard_pool.failures == 0

    @needs_fork
    def test_breaker_degrades_process_thread_serial(self):
        # Beyond TINY_GRAPH_LIMIT so the adaptive operator actually
        # takes the sharded path (tiny graphs never touch the pool).
        graph = random_connected(72, 0.08, rng=101)
        plan = FaultPlan(["pool.worker*inf"])
        flaky = FlowServer(
            graph,
            epsilon=EPS,
            rng=602,
            parallel=forced(2, "process"),
            breaker_threshold=1,
        )
        reference = FlowServer(
            graph, epsilon=EPS, rng=602, parallel=ParallelConfig(workers=1)
        )
        demand = st_demand(graph, 1, graph.num_nodes - 2)
        baseline = reference.route(demand, use_cache=False)
        with use_faults(plan), use_recovery(
            RecoveryPolicy(timeout=10.0, retries=0, backoff=0.0)
        ):
            served = flaky.route(demand, use_cache=False)
        # Degraded all the way to the serial reference path — and the
        # cross-backend bit-identity contract makes that invisible.
        assert_arrays_identical("flow", baseline.flow, served.flow)
        health = flaky.health()
        assert health.degraded
        assert health.configured_backend == "process"
        assert health.effective_backend == "serial"
        assert health.breaker_trips == 2
        assert health.pool_failures >= 2
        assert health.last_error is not None
        flaky.reset_breaker()
        health = flaky.health()
        assert not health.degraded
        assert health.effective_backend == "process"


# ----------------------------------------------------------------------
# REPRO_FAULTS sweep: every (site, kind) the env grammar can name,
# driven exactly as the env would drive it, against each backend that
# exercises the site. Contract: bit-identical recovery or a typed
# ReproError — nothing else escapes, and nothing hangs.
# ----------------------------------------------------------------------
_SWEEP = [
    ("thread", "pool.dispatch@1"),
    ("thread", "pool.dispatch:hang@1"),
    ("thread", "pool.worker@1"),
    ("thread", "pool.worker:hang@1"),
    ("thread", "pool.worker:exit@1"),  # degrades to raise in threads
    ("process", "pool.dispatch@1"),
    ("process", "pool.worker@1"),
    ("process", "pool.worker:hang@1"),
    ("process", "pool.worker:exit@1"),
    ("process", "arena.export:enospc@1"),
    ("process", "arena.export:enospc@1*2"),
    ("process", "arena.attach:enoent@1"),
]


@pytest.mark.parametrize(
    ("backend", "spec"), _SWEEP, ids=[f"{b}-{s}" for b, s in _SWEEP]
)
def test_env_spec_sweep(backend, spec):
    if backend == "process" and not _fork_available():
        pytest.skip("fork start method unavailable")
    plan = plan_from_env({"REPRO_FAULTS": spec})
    assert plan is not None
    tasks = _tasks(99)
    expected = [_square(*task) for task in tasks]
    pool = _pool(backend)
    with use_faults(plan), use_recovery(
        RecoveryPolicy(timeout=1.5, retries=3, backoff=0.0)
    ):
        try:
            got = pool.map(_square, tasks)
        except ReproError:
            # Typed surfacing is within contract (e.g. a thread-pool
            # timeout, which cannot safely re-execute).
            assert sum(plan.fired().values()) >= 1
            return
    for i, (want, have) in enumerate(zip(expected, got)):
        assert_arrays_identical(f"{spec}[shard {i}]", want, have)
    assert sum(plan.fired().values()) >= 1
