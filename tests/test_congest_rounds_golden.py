"""Round-accounting goldens for the congest layer (Lemmas 5.1 / 8.1).

The simulated CONGEST cost model is part of what this library
reproduces: ``simulate_cluster_round`` charges ``2·depth + O(1)``
network rounds per cluster round (Lemma 5.1) and
``distributed_tree_flow`` ``O(depth)`` pipelined windows (Lemma 8.1).
Those counts are *outputs* of the substrate — they depend on traversal
order, tree shapes, and contraction results — so a substrate refactor
that silently changed any of them would skew every round-complexity
experiment while all value-level tests stayed green.

These tests pin exact round counts on small goldens, including runs on
**contracted** graphs (quotients from ``Graph.contract`` and a real
Madry merge step), and assert the counts are invariant under the
sharded execution backend (sharding must change schedules, never
simulated cost).
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ClusterGraph
from repro.congest import cluster_flood_max, simulate_cluster_round
from repro.congest.tree_flow import distributed_tree_flow
from repro.graphs.generators import grid, path, random_connected
from repro.graphs.graph import Graph
from repro.graphs.trees import bfs_tree, induced_cut_capacities
from repro.jtree.mwu import build_jtree_distribution
from repro.parallel import ParallelConfig, use_config
from repro.util.rng import as_generator


def _merged_cluster_graph(n=30, seed=201, j=4):
    """A nontrivial cluster graph produced by one real Madry step
    (clusters are contracted forest components of the level-0 graph)."""
    g = random_connected(n, 0.12, rng=seed)
    cg = ClusterGraph.trivial(g)
    rng = as_generator(seed + 1)
    dist = build_jtree_distribution(
        cg.quotient, j=j, num_trees=2, rng=rng, removal_policy="topj"
    )
    step = dist.sample(rng)
    new_quotient = Graph(step.num_components)
    new_origin = []
    for ce in step.core_edges:
        new_quotient.add_edge(ce.component_u, ce.component_v, ce.capacity)
        new_origin.append(cg.edge_origin[ce.quotient_edge])
    merged = cg.merge_along_forest(
        step.forest_parent,
        step.forest_edge,
        new_quotient,
        new_origin,
        step.component_of,
    )
    merged.validate()
    return merged


class TestClusterRoundGoldens:
    def test_trivial_cluster_round_cost(self):
        """Singleton clusters have depth 0: one cluster round is the
        psi exchange plus the leader's own convergecast — 2 rounds."""
        cg = ClusterGraph.trivial(path(10, rng=11))
        result = simulate_cluster_round(cg, list(range(10)), max)
        assert result.rounds == 2

    def test_merged_cluster_round_cost(self):
        """One real Madry merge step: 5 clusters of depth 6. The
        Lemma 5.1 charge is 2·depth + O(1); the simulator measures
        exactly 14 = 2·6 + 2 network rounds on this golden."""
        merged = _merged_cluster_graph()
        assert merged.num_clusters == 5
        assert merged.cluster_tree_depth() == 6
        result = simulate_cluster_round(
            merged, list(range(merged.num_clusters)), max
        )
        assert result.rounds == 14
        assert result.rounds == 2 * merged.cluster_tree_depth() + 2

    def test_flood_max_total_round_golden(self):
        """Flood-max composes cluster rounds; the total network-round
        bill on the merged golden is pinned (2 productive cluster
        rounds at 14 rounds each on this instance)."""
        merged = _merged_cluster_graph()
        winner, total = cluster_flood_max(merged)
        assert winner == merged.num_clusters - 1
        assert total == 28

    def test_contracted_quotient_cluster_round_cost(self):
        """Trivial clustering of a Graph.contract quotient: the
        simulation runs on the contracted multigraph and still charges
        the depth-0 cost of 2 rounds."""
        g = grid(6, 6, rng=41)
        labels = [v // 3 for v in range(g.num_nodes)]
        quotient, _ = g.contract(labels, keep_parallel=False)
        assert (quotient.num_nodes, quotient.num_edges) == (12, 16)
        cg = ClusterGraph.trivial(quotient)
        result = simulate_cluster_round(
            cg, list(range(quotient.num_nodes)), max
        )
        assert result.rounds == 2

    def test_round_count_invariant_under_sharded_backend(self):
        """REPRO_WORKERS-style sharding may change the execution
        schedule of the *centralized* kernels, never the simulated
        CONGEST cost."""
        merged = _merged_cluster_graph()
        with use_config(ParallelConfig(workers=2, backend="serial", min_size=0)):
            result = simulate_cluster_round(
                merged, list(range(merged.num_clusters)), max
            )
        assert result.rounds == 14


class TestTreeFlowGoldens:
    def test_base_graph_round_golden(self):
        """Lemma 8.1 on a 16-node golden: window W = height + 1 = 4,
        phases 1-2 take 2W rounds, the pipelined convergecast the
        rest — 11 rounds total, pinned."""
        g = random_connected(16, 0.2, rng=37)
        tree = bfs_tree(g, root=0)
        run = distributed_tree_flow(g, tree)
        assert run.rounds == 11
        reference = induced_cut_capacities(g, tree)
        assert np.allclose(run.cut_capacity[1:], reference[1:])

    def test_contracted_quotient_round_golden(self):
        """Lemma 8.1 on a contracted quotient (merged parallel edges):
        the deeper 12-node quotient tree pays 27 rounds, pinned, and
        the distributed cuts still match the centralized oracle."""
        g = grid(6, 6, rng=41)
        labels = [v // 3 for v in range(g.num_nodes)]
        quotient, _ = g.contract(labels, keep_parallel=False)
        tree = bfs_tree(quotient, root=0)
        run = distributed_tree_flow(quotient, tree)
        assert run.rounds == 27
        reference = induced_cut_capacities(quotient, tree)
        assert np.allclose(run.cut_capacity[1:], reference[1:])

    def test_round_scaling_with_window(self):
        """The round bill grows with tree height (the O(d) of Lemma
        8.1): a path's BFS tree costs strictly more windows than a
        star-ish random graph of the same size."""
        shallow = random_connected(16, 0.5, rng=38)
        deep = path(16, rng=39)
        shallow_rounds = distributed_tree_flow(
            shallow, bfs_tree(shallow, root=0)
        ).rounds
        deep_rounds = distributed_tree_flow(deep, bfs_tree(deep, root=0)).rounds
        assert deep_rounds > shallow_rounds
