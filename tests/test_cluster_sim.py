"""Tests for the Lemma 5.1 cluster-round simulation."""

from __future__ import annotations

import operator

import pytest

from repro.cluster import ClusterGraph
from repro.congest import cluster_flood_max, simulate_cluster_round
from repro.graphs.generators import random_connected
from repro.graphs.graph import Graph
from repro.jtree.mwu import build_jtree_distribution
from repro.util.rng import as_generator


def _two_level_cluster_graph(n=30, seed=201, j=4):
    """A nontrivial cluster graph built by one real Madry step."""
    g = random_connected(n, 0.12, rng=seed)
    cg = ClusterGraph.trivial(g)
    rng = as_generator(seed + 1)
    dist = build_jtree_distribution(
        cg.quotient, j=j, num_trees=2, rng=rng, removal_policy="topj"
    )
    step = dist.sample(rng)
    new_quotient = Graph(step.num_components)
    new_origin = []
    for ce in step.core_edges:
        new_quotient.add_edge(ce.component_u, ce.component_v, ce.capacity)
        new_origin.append(cg.edge_origin[ce.quotient_edge])
    merged = cg.merge_along_forest(
        step.forest_parent,
        step.forest_edge,
        new_quotient,
        new_origin,
        step.component_of,
    )
    merged.validate()
    return merged


class TestSimulateClusterRound:
    def test_trivial_cluster_graph_exchange(self):
        g = random_connected(12, 0.3, rng=211)
        cg = ClusterGraph.trivial(g)
        result = simulate_cluster_round(cg, list(range(12)), max)
        # Every "cluster" (node) should have received the max over its
        # neighbors' ids.
        for v in range(12):
            expected = max(nbr for nbr, _ in g.neighbors(v))
            assert result.leader_values[v] == expected

    def test_sum_combiner(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        cg = ClusterGraph.trivial(g)
        result = simulate_cluster_round(cg, [10, 20, 30], operator.add)
        assert result.leader_values[0] == 20
        assert result.leader_values[1] == 40  # 10 + 30
        assert result.leader_values[2] == 20

    def test_rounds_bounded_by_depth(self):
        cg = _two_level_cluster_graph()
        depth = cg.cluster_tree_depth()
        result = simulate_cluster_round(
            cg, list(range(cg.num_clusters)), max
        )
        # Lemma 5.1 shape: one cluster round within ~2·depth + O(1).
        assert result.rounds <= 2 * depth + 4

    def test_leaders_receive_neighbor_info(self):
        cg = _two_level_cluster_graph()
        result = simulate_cluster_round(
            cg, [c * 100 for c in range(cg.num_clusters)], max
        )
        # Any cluster with at least one incident edge hears something.
        incident = [False] * cg.num_clusters
        for eid in range(cg.quotient.num_edges):
            a, b = cg.quotient.endpoints(eid)
            incident[a] = incident[b] = True
        for c in range(cg.num_clusters):
            if incident[c]:
                assert result.leader_values[c] is not None


class TestClusterFloodMax:
    def test_elects_max_cluster(self):
        cg = _two_level_cluster_graph()
        winner, rounds = cluster_flood_max(cg)
        assert winner == cg.num_clusters - 1
        assert rounds > 0

    def test_network_rounds_scale_with_cluster_rounds(self):
        """t cluster rounds cost ~t x (one cluster round) network
        rounds — the Lemma 5.1 composition."""
        cg = _two_level_cluster_graph()
        single = simulate_cluster_round(
            cg, list(range(cg.num_clusters)), max
        ).rounds
        _, total = cluster_flood_max(cg)
        assert total <= (cg.num_clusters + 1) * (single + 2)

    def test_trivial_graph_flood(self):
        g = random_connected(10, 0.25, rng=212)
        cg = ClusterGraph.trivial(g)
        winner, _ = cluster_flood_max(cg)
        assert winner == 9
