"""Tests for cluster graphs (Definition 5.1) and Lemma 8.2 decomposition."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cluster import ClusterGraph, TreeDecomposition, decompose_tree
from repro.errors import GraphError, TreeError
from repro.graphs.generators import caterpillar, path, random_connected
from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree, bfs_tree


class TestTrivialClusterGraph:
    def test_trivial_satisfies_definition(self, small_graph):
        cg = ClusterGraph.trivial(small_graph)
        cg.validate()

    def test_trivial_shape(self, small_graph):
        cg = ClusterGraph.trivial(small_graph)
        assert cg.num_clusters == small_graph.num_nodes
        assert cg.cluster_tree_depth() == 0
        assert cg.quotient.num_edges == small_graph.num_edges

    def test_cluster_members(self, small_graph):
        cg = ClusterGraph.trivial(small_graph)
        members = cg.cluster_members()
        assert all(members[c] == [c] for c in range(cg.num_clusters))


class TestValidation:
    def _two_cluster(self) -> ClusterGraph:
        # 0-1 in cluster 0 (root 0), 2 in cluster 1 (root 2);
        # graph edges: (0,1), (1,2).
        base = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        quotient = Graph(2, [(0, 1, 1.0)])
        return ClusterGraph(
            base=base,
            assignment=[0, 0, 1],
            parent=[-1, 0, -1],
            roots=[0, 2],
            quotient=quotient,
            edge_origin=[1],
        )

    def test_valid_two_cluster(self):
        self._two_cluster().validate()

    def test_root_outside_cluster_rejected(self):
        cg = self._two_cluster()
        cg.roots = [2, 2]
        with pytest.raises((GraphError, TreeError)):
            cg.validate()

    def test_cross_cluster_parent_rejected(self):
        cg = self._two_cluster()
        cg.assignment = [0, 1, 1]
        cg.roots = [0, 1]
        # parent[1] = 0 now crosses clusters.
        with pytest.raises((GraphError, TreeError)):
            cg.validate()

    def test_non_graph_tree_edge_rejected(self):
        base = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        cg = ClusterGraph(
            base=base,
            assignment=[0, 0, 0],
            parent=[-1, 0, 0],  # (2, 0) is not a graph edge
            roots=[0],
            quotient=Graph(1),
            edge_origin=[],
        )
        with pytest.raises(TreeError):
            cg.validate()

    def test_wrong_psi_mapping_rejected(self):
        cg = self._two_cluster()
        cg.edge_origin = [0]  # edge (0,1) is internal to cluster 0
        with pytest.raises(GraphError):
            cg.validate()


class TestReroot:
    def test_reroot_preserves_definition(self, small_graph):
        cg = ClusterGraph.trivial(small_graph)
        # singleton clusters: rerooting at the same node is a no-op.
        cg.reroot_cluster(0, 0)
        cg.validate()

    def test_reroot_chain(self):
        base = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        cg = ClusterGraph(
            base=base,
            assignment=[0, 0, 0],
            parent=[-1, 0, 1],
            roots=[0],
            quotient=Graph(1),
            edge_origin=[],
        )
        cg.reroot_cluster(0, 2)
        assert cg.parent == [1, 2, -1]
        assert cg.roots == [2]
        cg.validate()

    def test_reroot_wrong_cluster_rejected(self):
        cg = ClusterGraph.trivial(Graph(2, [(0, 1, 1.0)]))
        with pytest.raises(GraphError):
            cg.reroot_cluster(0, 1)


class TestMergeAlongForest:
    def test_merge_two_singletons(self):
        base = Graph(2, [(0, 1, 3.0)])
        cg = ClusterGraph.trivial(base)
        merged = cg.merge_along_forest(
            forest_parent=[1, -1],
            forest_edge=[0, -1],
            new_quotient=Graph(1),
            new_edge_origin=[],
            component_of=[0, 0],
        )
        merged.validate()
        assert merged.num_clusters == 1
        assert merged.roots == [1]
        assert merged.parent == [1, -1]

    def test_merge_path_into_one_cluster(self):
        base = Graph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        cg = ClusterGraph.trivial(base)
        merged = cg.merge_along_forest(
            forest_parent=[-1, 0, 1, 2],
            forest_edge=[-1, 0, 1, 2],
            new_quotient=Graph(1),
            new_edge_origin=[],
            component_of=[0, 0, 0, 0],
        )
        merged.validate()
        assert merged.roots == [0]
        assert merged.cluster_tree_depth() == 3

    def test_merge_keeps_other_clusters(self):
        base = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        cg = ClusterGraph.trivial(base)
        quotient = Graph(2, [(0, 1, 1.0)])
        merged = cg.merge_along_forest(
            forest_parent=[1, -1, -1],
            forest_edge=[0, -1, -1],
            new_quotient=quotient,
            new_edge_origin=[1],
            component_of=[0, 0, 1],
        )
        merged.validate()
        assert merged.num_clusters == 2
        assert merged.assignment == [0, 0, 1]

    def test_missing_root_rejected(self):
        base = Graph(2, [(0, 1, 3.0)])
        cg = ClusterGraph.trivial(base)
        with pytest.raises(GraphError):
            cg.merge_along_forest(
                forest_parent=[1, 0],  # cycle: no portal
                forest_edge=[0, 0],
                new_quotient=Graph(1),
                new_edge_origin=[],
                component_of=[0, 0],
            )


class TestDecomposition:
    def test_components_cover_all_nodes(self):
        tree = bfs_tree(random_connected(60, 0.08, rng=31), root=0)
        deco = decompose_tree(tree, rng=32)
        assert all(c >= 0 for c in deco.component)
        assert deco.num_components == len(set(deco.component))

    def test_component_count_near_sqrt_n(self):
        g = path(400, rng=1)
        tree = bfs_tree(g, root=0)
        counts = [
            decompose_tree(tree, rng=s).num_components for s in range(5)
        ]
        # E[|R|] <= sqrt(n) = 20; w.h.p. within a small constant factor.
        assert np.mean(counts) < 4 * math.sqrt(400)

    def test_depth_bound(self):
        g = path(400, rng=1)
        tree = bfs_tree(g, root=0)
        depths = [decompose_tree(tree, rng=s).max_depth for s in range(5)]
        bound = math.sqrt(400) * math.log(400) * 2
        assert np.mean(depths) < bound

    def test_weighted_sampling_cuts_heavy_children_more(self):
        # weight = sqrt(total): probability min(1, w/scale) = 1 for the
        # heavy child, so its edge is always removed.
        tree = RootedTree([-1, 0, 0])
        deco = decompose_tree(tree, rng=1, weights=[1.0, 100.0, 0.0], scale=10.0)
        assert 1 in deco.removed

    def test_caterpillar_decomposition(self):
        g = caterpillar(30, 2, rng=2)
        tree = bfs_tree(g, root=0)
        deco = decompose_tree(tree, rng=3)
        # Roots of components are either the tree root or removed nodes.
        assert 0 in deco.component_roots
        for r in deco.component_roots:
            assert r == 0 or r in deco.removed

    def test_no_removal_single_component(self):
        tree = RootedTree([-1, 0, 1, 2])
        deco = decompose_tree(tree, rng=1, scale=1e9)
        assert deco.num_components == 1
        assert deco.max_depth == 3
