"""Unit and cross-oracle tests for the exact max-flow algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.flow import (
    dinic_max_flow,
    edmonds_karp_max_flow,
    maximum_spanning_tree,
    minimum_spanning_tree,
    push_relabel_max_flow,
)
from repro.flow.residual import ResidualNetwork
from repro.graphs.cuts import cut_capacity
from repro.graphs.generators import (
    barbell,
    grid,
    random_connected,
)
from repro.graphs.graph import Graph
from repro.util.validation import check_feasible_flow, st_demand

ORACLES = [dinic_max_flow, edmonds_karp_max_flow, push_relabel_max_flow]


class TestResidualNetwork:
    def test_arc_pairing(self):
        g = Graph(2, [(0, 1, 3.0)])
        net = ResidualNetwork(g)
        assert net.arc_head[0] == 1
        assert net.arc_head[1] == 0
        assert ResidualNetwork.reverse(0) == 1
        assert ResidualNetwork.reverse(1) == 0

    def test_push_updates_both_directions(self):
        g = Graph(2, [(0, 1, 3.0)])
        net = ResidualNetwork(g)
        net.push(0, 2.0)
        assert net.residual(0) == pytest.approx(1.0)
        assert net.residual(1) == pytest.approx(5.0)

    def test_net_flow_vector_recovery(self):
        g = Graph(2, [(0, 1, 3.0)])
        net = ResidualNetwork(g)
        net.push(0, 2.0)
        np.testing.assert_allclose(net.net_flow_vector(), [2.0])

    def test_net_flow_reverse_direction_is_negative(self):
        g = Graph(2, [(0, 1, 3.0)])
        net = ResidualNetwork(g)
        net.push(1, 1.5)
        np.testing.assert_allclose(net.net_flow_vector(), [-1.5])


@pytest.mark.parametrize("solve", ORACLES)
class TestOracleBasics:
    def test_single_edge(self, solve):
        g = Graph(2, [(0, 1, 7.0)])
        assert solve(g, 0, 1).value == pytest.approx(7.0)

    def test_path_bottleneck(self, solve):
        g = Graph(4, [(0, 1, 9.0), (1, 2, 2.0), (2, 3, 9.0)])
        assert solve(g, 0, 3).value == pytest.approx(2.0)

    def test_parallel_edges_add(self, solve):
        g = Graph(2, [(0, 1, 3.0), (0, 1, 4.0)])
        assert solve(g, 0, 1).value == pytest.approx(7.0)

    def test_two_disjoint_paths(self, solve):
        g = Graph(
            4, [(0, 1, 3.0), (1, 3, 3.0), (0, 2, 4.0), (2, 3, 4.0)]
        )
        assert solve(g, 0, 3).value == pytest.approx(7.0)

    def test_disconnected_terminals_zero(self, solve):
        g = Graph(4, [(0, 1, 1.0), (2, 3, 1.0)])
        assert solve(g, 0, 3).value == 0.0

    def test_same_terminal_rejected(self, solve):
        g = Graph(2, [(0, 1, 1.0)])
        with pytest.raises(GraphError):
            solve(g, 0, 0)

    def test_flow_is_feasible(self, solve):
        g = random_connected(20, 0.2, rng=3)
        result = solve(g, 0, 19)
        check_feasible_flow(
            g, result.flow, st_demand(g, 0, 19, result.value)
        )

    def test_min_cut_certificate(self, solve):
        g = random_connected(15, 0.25, rng=5)
        result = solve(g, 0, 14)
        assert 0 in result.min_cut_side
        assert 14 not in result.min_cut_side
        assert cut_capacity(g, result.min_cut_side) == pytest.approx(
            result.value
        )

    def test_undirected_symmetry(self, solve):
        g = random_connected(12, 0.3, rng=8)
        forward = solve(g, 0, 11).value
        backward = solve(g, 11, 0).value
        assert forward == pytest.approx(backward)


class TestCrossOracleAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_graphs_agree(self, seed):
        g = random_connected(18, 0.2, rng=seed)
        values = {round(solve(g, 0, 17).value, 6) for solve in ORACLES}
        assert len(values) == 1

    def test_grid_agree(self):
        g = grid(5, 5, rng=2)
        values = {round(solve(g, 0, 24).value, 6) for solve in ORACLES}
        assert len(values) == 1

    def test_barbell_agree(self):
        g = barbell(5, bridge_capacity=2.5, rng=2)
        values = {round(solve(g, 0, 5).value, 6) for solve in ORACLES}
        assert values == {2.5}


class TestSpanningTrees:
    def test_max_st_picks_heavy_edges(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 10.0)])
        t = maximum_spanning_tree(g)
        pairs = {
            (min(v, t.parent[v]), max(v, t.parent[v]))
            for v in range(3)
            if t.parent[v] >= 0
        }
        assert (0, 2) in pairs

    def test_min_st_avoids_heavy_edges(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 10.0)])
        t = minimum_spanning_tree(g)
        pairs = {
            (min(v, t.parent[v]), max(v, t.parent[v]))
            for v in range(3)
            if t.parent[v] >= 0
        }
        assert (0, 2) not in pairs

    def test_spanning_tree_spans(self, medium_graph):
        t = maximum_spanning_tree(medium_graph)
        assert t.num_nodes == medium_graph.num_nodes

    def test_max_st_bottleneck_property(self):
        # On a max-capacity spanning tree, the path between any two
        # nodes maximizes the bottleneck capacity.
        g = random_connected(12, 0.3, rng=4)
        t = maximum_spanning_tree(g)
        # Bottleneck on tree path 0 -> 11:
        node = 11
        ancestor = t.lca(0, 11)
        bottleneck = float("inf")
        for start in (0, 11):
            node = start
            while node != ancestor:
                bottleneck = min(bottleneck, t.capacity[node])
                node = t.parent[node]
        # No single edge cut below the bottleneck separates 0 and 11:
        # the max flow must be at least the bottleneck.
        assert dinic_max_flow(g, 0, 11).value >= bottleneck - 1e-9

    def test_disconnected_rejected(self):
        g = Graph(3, [(0, 1, 1.0)])
        from repro.errors import DisconnectedGraphError

        with pytest.raises(DisconnectedGraphError):
            maximum_spanning_tree(g)
