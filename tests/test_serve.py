"""FlowServer: result cache, workspace pool, and mutation safety.

The serving layer's contracts under test:

* batched serving is bit-identical per column to the one-shot
  ``server.route`` answers (so the shared cache namespace is sound);
* a graph mutation (``set_capacity`` or ``add_edge``) after a cached
  query makes the next lookup miss, the cache invalidates **exactly
  once** per mutation, and an old-epoch result is never served;
* the warm workspace pool actually reuses workspaces and drops
  stale-shaped ones on rebind;
* the ``refresh="reuse"`` policy keeps the stale approximator (no
  rebuild) while still dropping cached results.
"""

from __future__ import annotations

import numpy as np
import pytest

from parallel_harness import assert_arrays_identical, forced
from repro.core import almost_route
from repro.errors import GraphError
from repro.graphs.generators import random_connected
from repro.serve import FlowServer, ResultCache, WorkspacePool, demand_digest
from repro.util.validation import st_demand

EPS = 0.4


@pytest.fixture()
def graph():
    return random_connected(40, 0.12, rng=601)


@pytest.fixture()
def server(graph):
    return FlowServer(graph, epsilon=EPS, rng=602)


def _plane(graph, seed, num_queries):
    rng = np.random.default_rng(seed)
    plane = rng.normal(size=(num_queries, graph.num_nodes))
    plane -= plane.mean(axis=1, keepdims=True)
    return plane


# ----------------------------------------------------------------------
# Serving correctness
# ----------------------------------------------------------------------
class TestServing:
    def test_single_matches_direct_call(self, graph, server):
        demand = st_demand(graph, 0, graph.num_nodes - 1)
        served = server.route(demand)
        direct = almost_route(graph, server.approximator, demand, EPS)
        assert_arrays_identical("flow", direct.flow, served.flow)
        assert served.iterations == direct.iterations

    def test_batch_matches_singles(self, graph, server):
        plane = _plane(graph, 603, 5)
        singles = [
            server.route(plane[q], use_cache=False) for q in range(5)
        ]
        batch = server.route_batch(plane, use_cache=False)
        for single, col in zip(singles, batch):
            assert_arrays_identical("flow", single.flow, col.flow)
            assert single.iterations == col.iterations
            assert single.potential == col.potential

    def test_batch_rejects_bad_shape(self, server, graph):
        with pytest.raises(GraphError):
            server.route_batch(np.zeros(graph.num_nodes))

    def test_route_st(self, graph, server):
        result = server.route_st(1, 5, value=2.0)
        direct = server.route(st_demand(graph, 1, 5, 2.0))
        assert result is direct  # second call hits the cache

    def test_parallel_config_is_bit_identical(self, graph):
        plain = FlowServer(graph, epsilon=EPS, rng=602)
        sharded = FlowServer(
            graph, epsilon=EPS, rng=602, parallel=forced(2, "thread")
        )
        plane = _plane(graph, 604, 3)
        for a, b in zip(plain.route_batch(plane), sharded.route_batch(plane)):
            assert_arrays_identical("flow", a.flow, b.flow)

    def test_rejects_foreign_approximator(self, graph):
        other = random_connected(10, 0.4, rng=605)
        foreign = FlowServer(other, epsilon=EPS, rng=606).approximator
        with pytest.raises(GraphError):
            FlowServer(graph, approximator=foreign)

    def test_rejects_bad_options(self, graph):
        with pytest.raises(GraphError):
            FlowServer(graph, solver="newton")
        with pytest.raises(GraphError):
            FlowServer(graph, refresh="ignore")
        with pytest.raises(GraphError):
            FlowServer(graph, epsilon=0.0)
        with pytest.raises(GraphError):
            FlowServer(graph, max_batch=0)

    def test_chunked_batches_are_bit_identical(self, graph):
        """max_batch only regroups columns — results never change."""
        plane = _plane(graph, 617, 5)
        whole = FlowServer(graph, epsilon=EPS, rng=602, max_batch=None)
        chunked = FlowServer(graph, epsilon=EPS, rng=602, max_batch=2)
        for a, b in zip(
            whole.route_batch(plane, use_cache=False),
            chunked.route_batch(plane, use_cache=False),
        ):
            assert_arrays_identical("flow", a.flow, b.flow)
            assert a.iterations == b.iterations
            assert a.potential == b.potential
        # Chunks of 2, 2, 1: two distinct batch-workspace sizes built,
        # the size-2 one reused across chunks.
        assert chunked.pool.created_batches == 2


# ----------------------------------------------------------------------
# Cache behaviour within one epoch
# ----------------------------------------------------------------------
class TestCacheHits:
    def test_repeat_single_hits(self, graph, server):
        demand = st_demand(graph, 0, 7)
        first = server.route(demand)
        second = server.route(demand)
        assert second is first
        stats = server.cache_stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_single_and_batch_share_namespace(self, graph, server):
        """A demand routed as a single hits later inside a batch, and a
        batched column hits later as a single."""
        plane = _plane(graph, 607, 3)
        warm = server.route(plane[0])
        batch = server.route_batch(plane)
        assert batch[0] is warm
        assert server.route(plane[2]) is batch[2]
        stats = server.cache_stats()
        assert stats.hits == 2

    def test_mixed_hit_miss_batch(self, graph, server):
        """Partial hits: only the misses are re-routed (as a smaller
        batch) and their results still match full-batch answers."""
        plane = _plane(graph, 608, 4)
        full = server.route_batch(plane)
        fresh = FlowServer(graph, epsilon=EPS, rng=602)
        fresh.route(plane[1])
        fresh.route(plane[3])
        mixed = fresh.route_batch(plane)
        for q in range(4):
            assert_arrays_identical(
                f"flow[{q}]", full[q].flow, mixed[q].flow
            )
        stats = fresh.stats()
        assert stats.cache.hits == 2
        assert stats.batched_columns == 4

    def test_use_cache_false_bypasses(self, graph, server):
        demand = st_demand(graph, 2, 9)
        first = server.route(demand)
        second = server.route(demand, use_cache=False)
        assert second is not first
        assert_arrays_identical("flow", first.flow, second.flow)

    def test_lru_eviction(self, graph):
        small = FlowServer(graph, epsilon=EPS, rng=602, cache_capacity=2)
        plane = _plane(graph, 609, 3)
        for q in range(3):
            small.route(plane[q])
        stats = small.cache_stats()
        assert stats.size == 2 and stats.evictions == 1
        # The oldest entry was evicted; the newest two still hit.
        assert small.route(plane[2]) is not None
        assert small.cache_stats().hits == 1

    def test_capacity_zero_disables(self, graph):
        uncached = FlowServer(graph, epsilon=EPS, rng=602, cache_capacity=0)
        demand = st_demand(graph, 0, 5)
        first = uncached.route(demand)
        second = uncached.route(demand)
        assert second is not first
        assert uncached.cache_stats().size == 0


# ----------------------------------------------------------------------
# Mutation / invalidation (satellite: cache-invalidation coverage)
# ----------------------------------------------------------------------
class TestInvalidation:
    def test_set_capacity_invalidates_exactly_once(self, graph, server):
        demand = st_demand(graph, 0, 11)
        stale = server.route(demand)
        caps = graph.capacities()
        graph.set_capacity(0, float(caps[0]) * 3.0)
        refreshed = server.route(demand)
        stats = server.cache_stats()
        # The post-mutation lookup missed (old-epoch entries are gone
        # before any lookup runs) and invalidation was counted once.
        assert refreshed is not stale
        assert stats.invalidations == 1
        assert stats.hits == 0 and stats.misses == 2
        # Subsequent queries in the new epoch don't re-invalidate.
        server.route(demand)
        assert server.cache_stats().invalidations == 1

    def test_old_epoch_result_never_served(self, graph, server):
        """The refreshed answer equals a from-scratch computation on the
        mutated graph — the stale flow is provably not reused."""
        demand = st_demand(graph, 3, 17)
        stale = server.route(demand)
        caps = graph.capacities()
        graph.set_capacity(1, float(caps[1]) * 10.0)
        refreshed = server.route(demand)
        oracle = almost_route(graph, server.approximator, demand, EPS)
        assert_arrays_identical("flow", oracle.flow, refreshed.flow)
        assert not np.array_equal(stale.flow, refreshed.flow)

    def test_batch_lookup_after_mutation_misses(self, graph, server):
        plane = _plane(graph, 610, 3)
        server.route_batch(plane)
        caps = graph.capacities()
        graph.set_capacity(2, float(caps[2]) * 2.0)
        server.route_batch(plane)
        stats = server.cache_stats()
        assert stats.invalidations == 1
        assert stats.hits == 0 and stats.misses == 6

    def test_add_edge_invalidates_and_reshapes(self, graph, server):
        demand = st_demand(graph, 0, 13)
        server.route(demand)
        graph.add_edge(0, graph.num_nodes - 1, 1.0)
        refreshed = server.route(demand)
        assert refreshed.flow.shape == (graph.num_edges,)
        stats = server.cache_stats()
        assert stats.invalidations == 1 and stats.hits == 0
        oracle = almost_route(graph, server.approximator, demand, EPS)
        assert_arrays_identical("flow", oracle.flow, refreshed.flow)

    def test_eviction_and_epoch_churn_never_serves_stale(self, graph):
        """Mutate -> route -> mutate churn with a cache small enough to
        evict every round: LRU eviction and epoch invalidation must
        compose without ever serving an old-epoch result, and the
        counters must stay consistent under the combined pressure."""
        server = FlowServer(graph, epsilon=EPS, rng=602, cache_capacity=2)
        plane = _plane(graph, 617, 4)
        caps = graph.capacities()
        previous = {}
        for round_index in range(3):
            graph.set_capacity(0, float(caps[0]) * (2.0 + round_index))
            served = [server.route(plane[q]) for q in range(4)]
            for q in range(4):
                # An old-epoch object must never come back...
                if q in previous:
                    assert served[q] is not previous[q]
                # ...and every answer equals a from-scratch solve on
                # the mutated graph.
                oracle = server.route(plane[q], use_cache=False)
                assert_arrays_identical(
                    f"round {round_index} flow[{q}]",
                    oracle.flow,
                    served[q].flow,
                )
            previous = dict(enumerate(served))
        stats = server.cache_stats()
        assert stats.invalidations == 3  # one per mutation, exactly
        # Four distinct queries thrash a two-slot LRU: every cached
        # lookup misses and eviction stays active throughout.
        assert stats.hits == 0 and stats.misses == 12
        assert stats.evictions > 0
        assert stats.size <= 2

    def test_rebuild_policy_rebuilds_once_per_mutation(self, graph, server):
        demand = st_demand(graph, 0, 9)
        server.route(demand)
        before = server.approximator
        caps = graph.capacities()
        graph.set_capacity(0, float(caps[0]) * 2.0)
        server.route(demand)
        assert server.approximator is not before
        assert server.stats().rebuilds == 1
        server.route(demand)
        assert server.stats().rebuilds == 1

    def test_reuse_policy_keeps_approximator(self, graph):
        lazy = FlowServer(graph, epsilon=EPS, rng=602, refresh="reuse")
        demand = st_demand(graph, 0, 9)
        stale = lazy.route(demand)
        before = lazy.approximator
        caps = graph.capacities()
        graph.set_capacity(0, float(caps[0]) * 2.0)
        refreshed = lazy.route(demand)
        # No rebuild, but the cache still dropped the old epoch and the
        # answer reflects the live capacities.
        assert lazy.approximator is before
        assert lazy.stats().rebuilds == 0
        assert lazy.cache_stats().invalidations == 1
        assert refreshed is not stale
        oracle = almost_route(graph, before, demand, EPS)
        assert_arrays_identical("flow", oracle.flow, refreshed.flow)

    def test_reuse_policy_survives_structural_mutation(self, graph):
        lazy = FlowServer(graph, epsilon=EPS, rng=602, refresh="reuse")
        lazy.route(st_demand(graph, 0, 9))
        graph.add_edge(1, graph.num_nodes - 2, 1.0)
        # The stale approximator's row space is still n-shaped, so
        # routing on the grown edge set keeps working (m-shaped
        # workspaces were flushed by the structural rebind).
        result = lazy.route(st_demand(graph, 0, 9))
        assert result.flow.shape == (graph.num_edges,)
        assert lazy.stats().rebuilds == 0


# ----------------------------------------------------------------------
# Workspace pool
# ----------------------------------------------------------------------
class TestWorkspacePool:
    def test_single_workspace_reused(self, graph, server):
        plane = _plane(graph, 611, 3)
        for q in range(3):
            server.route(plane[q], use_cache=False)
        pool = server.pool
        assert pool.created_singles == 1
        assert pool.pooled_counts() == (1, 0)

    def test_batch_workspace_reused_per_size(self, graph, server):
        for seed in (612, 613):
            server.route_batch(_plane(graph, seed, 3), use_cache=False)
        server.route_batch(_plane(graph, 614, 2), use_cache=False)
        pool = server.pool
        assert pool.created_batches == 2  # one for Q=3, one for Q=2
        assert pool.pooled_counts() == (0, 2)

    def test_rebind_drops_stale_shapes(self, graph, server):
        server.route(st_demand(graph, 0, 7), use_cache=False)
        assert server.pool.pooled_counts()[0] == 1
        graph.add_edge(0, graph.num_nodes - 1, 1.0)
        server.route(st_demand(graph, 0, 7), use_cache=False)
        # The old m-shaped workspace was dropped; a new one was built
        # for the grown edge count and pooled.
        assert server.pool.created_singles == 2
        assert server.pool.pooled_counts()[0] == 1

    def test_release_rejects_stale_workspace(self, graph):
        server = FlowServer(graph, epsilon=EPS, rng=602)
        ws = server.pool.acquire()
        graph.add_edge(0, graph.num_nodes - 1, 1.0)
        server.route(st_demand(graph, 0, 5))  # triggers rebind
        server.pool.release(ws)  # stale shape: silently dropped
        pooled_singles = server.pool.pooled_counts()[0]
        assert all(
            pooled.shape_key
            == (graph.num_edges, graph.num_nodes, server.approximator.num_rows)
            for pooled in server.pool._singles
        )
        assert pooled_singles == len(server.pool._singles)

    def test_flush(self, graph, server):
        server.route(st_demand(graph, 0, 7), use_cache=False)
        server.route_batch(_plane(graph, 615, 2), use_cache=False)
        server.pool.flush()
        assert server.pool.pooled_counts() == (0, 0)


# ----------------------------------------------------------------------
# ResultCache / digest unit behaviour
# ----------------------------------------------------------------------
class TestResultCacheUnit:
    def test_sync_epoch_exactly_once(self):
        cache = ResultCache(4)
        assert cache.sync_epoch(0) is False  # first pin, no mutation
        cache.put("a", 1)
        assert cache.sync_epoch(0) is False  # same epoch: no-op
        assert cache.get("a") == 1
        assert cache.sync_epoch(2) is True  # moved: drop, count once
        assert cache.get("a") is None
        assert cache.invalidations == 1
        assert cache.sync_epoch(2) is False
        assert cache.invalidations == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(GraphError):
            ResultCache(-1)

    def test_digest_is_content_keyed(self):
        a = np.array([1.0, -1.0, 0.0])
        assert demand_digest(a) == demand_digest(a.copy())
        assert demand_digest(a) != demand_digest(np.array([1.0, 0.0, -1.0]))
        # Shape-tagged: a (1, n) plane row digests like the 1-D vector
        # it is served as.
        assert demand_digest(a) == demand_digest(np.asarray([1, -1, 0]))


class TestStats:
    def test_counters(self, graph, server):
        plane = _plane(graph, 616, 3)
        server.route(plane[0])
        server.route_batch(plane)
        stats = server.stats()
        assert stats.single_queries == 1
        assert stats.batch_queries == 1
        assert stats.batched_columns == 3
        assert stats.rebuilds == 0
        assert stats.cache.hits == 1  # plane[0] warmed by the single
        assert stats.cache.misses == 3
