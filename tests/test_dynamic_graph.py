"""Dynamic-graph epochs: delta journal, warm starts, scoped rebuilds.

The contracts under test:

* **journal soundness** — every capacity-only ``set_capacity`` bumps
  ``_version`` exactly once AND appends exactly one journal record, so
  the retained record count always equals the version delta; a journal
  that cannot vouch for an interval (overflow, structural mutation,
  out-of-range epoch) returns ``None`` and forces full invalidation.
* **warm-start validity** — seeding AlmostRoute with the previous
  epoch's flow (rescaled via the journal) converges in no more
  iterations than a cold start on small capacity-only deltas, is
  bit-identical across execution backends, and a zero seed reproduces
  the cold run bit for bit.
* **scoped rebuild** — ``TreeCongestionApproximator.refresh_capacities``
  patches cut capacities in place to the exact recomputed values and
  preserves row counts, so workspaces keep fitting.
* **workspace epoch-independence** — the pool shape key contains no
  epoch, and a workspace surviving ``set_capacity`` is reused, not
  rebuilt.
* **incremental serving** — ``refresh="incremental"`` consumes the
  journal, counts refreshes and warm starts, and falls back to a full
  rebuild on structural mutation or journal overflow.
"""

from __future__ import annotations

import numpy as np
import pytest

from parallel_harness import assert_arrays_identical, forced
from repro.core import (
    accelerated_almost_route,
    almost_route,
    build_congestion_approximator,
)
from repro.core.almost_route import RouteWorkspace, almost_route_batch
from repro.errors import GraphError
from repro.graphs.generators import random_connected
from repro.graphs.graph import Graph
from repro.graphs.journal import (
    JOURNAL_LIMIT,
    DeltaJournal,
    rescale_flow,
)
from repro.serve import FlowServer
from repro.util.validation import st_demand

EPS = 0.4

#: workers x backend matrix required by the warm-start acceptance
#: criterion (workers=1 is the unsharded serial path).
WORKER_BACKENDS = [
    (1, "serial"),
    (2, "serial"),
    (2, "thread"),
    (2, "process"),
]


@pytest.fixture()
def graph():
    return random_connected(48, 0.10, rng=710)


def _degrade(graph, fraction=0.01, factor=0.5, seed=0):
    """Capacity-only delta over ~fraction of the edges; returns eids."""
    rng = np.random.default_rng(seed)
    count = max(1, int(graph.num_edges * fraction))
    eids = np.sort(rng.choice(graph.num_edges, size=count, replace=False))
    for eid in eids.tolist():
        graph.set_capacity(int(eid), graph.capacity(int(eid)) * factor)
    return eids


# ----------------------------------------------------------------------
# Journal soundness
# ----------------------------------------------------------------------
class TestJournal:
    def test_version_delta_equals_record_count(self, graph):
        rng = np.random.default_rng(711)
        epoch = graph._version
        writes = 0
        for _ in range(50):
            eid = int(rng.integers(graph.num_edges))
            graph.set_capacity(eid, float(rng.uniform(0.5, 5.0)))
            writes += 1
            assert graph.journal_size == graph._version - epoch == writes
        delta = graph.deltas_since(epoch)
        assert delta is not None
        # Coalesced: one entry per distinct touched edge.
        assert delta.num_edges == len(set(delta.edge_ids.tolist()))

    def test_delta_coalesces_first_old_last_new(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 4.0)
        graph.add_edge(1, 2, 8.0)
        epoch = graph._version
        graph.set_capacity(0, 2.0)
        graph.set_capacity(0, 6.0)
        graph.set_capacity(1, 1.0)
        delta = graph.deltas_since(epoch)
        assert delta.edge_ids.tolist() == [0, 1]
        assert delta.old_capacity.tolist() == [4.0, 8.0]
        assert delta.new_capacity.tolist() == [6.0, 1.0]

    def test_equal_epoch_is_empty_delta(self, graph):
        delta = graph.deltas_since(graph._version)
        assert delta is not None and delta.num_edges == 0

    def test_future_and_prehistoric_epochs_return_none(self, graph):
        assert graph.deltas_since(graph._version + 1) is None
        graph.add_edge(0, 1, 1.0)  # re-bases the journal
        base = graph._version
        graph.set_capacity(0, 2.0)
        assert graph.deltas_since(base - 1) is None

    def test_overflow_forces_full_invalidation(self):
        graph = Graph(2)
        graph.add_edge(0, 1, 1.0)
        epoch = graph._version
        assert not graph.journal_overflowed
        for i in range(JOURNAL_LIMIT + 5):
            graph.set_capacity(0, float(i + 2))
        assert graph.journal_overflowed
        assert graph.deltas_since(epoch) is None
        # Recent epochs inside the retained window still resolve ...
        recent = graph._version - 3
        assert graph.deltas_since(recent) is not None
        # ... and a structural mutation clears the overflow state.
        graph.add_edge(1, 0, 1.0)
        assert not graph.journal_overflowed
        assert graph.journal_size == 0

    def test_structural_mutation_invalidates(self, graph):
        epoch = graph._version
        graph.set_capacity(0, 3.0)
        assert graph.deltas_since(epoch) is not None
        graph.add_edge(0, 1, 1.0)
        assert graph.deltas_since(epoch) is None
        assert graph.journal_size == 0

    def test_unaccounted_version_bump_returns_none(self):
        journal = DeltaJournal()
        journal.record(1, 0, 1.0, 2.0)
        # version moved by 2 but only one record retained: the journal
        # cannot vouch for the interval.
        assert journal.deltas_since(0, 3) is None

    def test_rescale_flow_preserves_congestion(self):
        graph = Graph(3)
        graph.add_edge(0, 1, 4.0)
        graph.add_edge(1, 2, 8.0)
        epoch = graph._version
        graph.set_capacity(0, 2.0)
        delta = graph.deltas_since(epoch)
        flow = np.array([2.0, -3.0])
        scaled = rescale_flow(flow, delta)
        assert scaled[0] == 2.0 * (2.0 / 4.0)  # congestion 0.5 kept
        assert scaled[1] == -3.0  # untouched edge unchanged
        assert flow[0] == 2.0  # input not mutated


# ----------------------------------------------------------------------
# Warm-started AlmostRoute
# ----------------------------------------------------------------------
class TestWarmStart:
    @pytest.mark.parametrize("workers,backend", WORKER_BACKENDS)
    def test_warm_converges_no_slower_and_backend_identical(
        self, workers, backend
    ):
        graph = random_connected(48, 0.10, rng=710)
        approximator = build_congestion_approximator(graph, rng=712)
        demand = st_demand(graph, 0, 47)
        parallel = None if workers == 1 else forced(workers, backend)
        previous = almost_route(
            graph, approximator, demand, EPS, parallel=parallel
        )
        epoch = graph._version
        _degrade(graph, fraction=0.01, seed=713)
        delta = graph.deltas_since(epoch)
        approximator.refresh_capacities(delta.edge_ids)
        seed = rescale_flow(previous.flow, delta)
        cold = almost_route(
            graph, approximator, demand, EPS, parallel=parallel
        )
        warm = almost_route(
            graph,
            approximator,
            demand,
            EPS,
            parallel=parallel,
            initial_flow=seed,
        )
        assert warm.converged
        assert warm.iterations <= cold.iterations
        serial_warm = almost_route(
            graph, approximator, demand, EPS, initial_flow=seed
        )
        assert_arrays_identical("flow", serial_warm.flow, warm.flow)

    def test_zero_seed_is_bit_identical_to_cold(self, graph):
        approximator = build_congestion_approximator(graph, rng=714)
        demand = st_demand(graph, 1, 40)
        cold = almost_route(graph, approximator, demand, EPS)
        seeded = almost_route(
            graph,
            approximator,
            demand,
            EPS,
            initial_flow=np.zeros(graph.num_edges),
        )
        assert_arrays_identical("flow", cold.flow, seeded.flow)
        assert cold.iterations == seeded.iterations

    def test_accelerated_zero_seed_is_bit_identical_to_cold(self, graph):
        approximator = build_congestion_approximator(graph, rng=714)
        demand = st_demand(graph, 1, 40)
        cold = accelerated_almost_route(graph, approximator, demand, EPS)
        seeded = accelerated_almost_route(
            graph,
            approximator,
            demand,
            EPS,
            initial_flow=np.zeros(graph.num_edges),
        )
        assert_arrays_identical("flow", cold.flow, seeded.flow)
        assert cold.iterations == seeded.iterations

    def test_bad_seed_shape_raises(self, graph):
        approximator = build_congestion_approximator(graph, rng=714)
        demand = st_demand(graph, 1, 40)
        with pytest.raises(GraphError):
            almost_route(
                graph,
                approximator,
                demand,
                EPS,
                initial_flow=np.zeros(graph.num_edges + 1),
            )

    def test_batch_seeded_columns_match_one_shot(self, graph):
        approximator = build_congestion_approximator(graph, rng=715)
        demands = np.stack(
            [st_demand(graph, 0, 30), st_demand(graph, 2, 41, 2.0)]
        )
        previous = [
            almost_route(graph, approximator, demands[q], EPS)
            for q in range(2)
        ]
        epoch = graph._version
        _degrade(graph, fraction=0.01, seed=716)
        delta = graph.deltas_since(epoch)
        approximator.refresh_capacities(delta.edge_ids)
        # Seed column 0 only; column 1's zero row must stay cold.
        seeds = np.zeros((2, graph.num_edges))
        seeds[0] = rescale_flow(previous[0].flow, delta)
        batch = almost_route_batch(
            graph, approximator, demands, EPS, initial_flows=seeds
        )
        one_warm = almost_route(
            graph, approximator, demands[0], EPS, initial_flow=seeds[0]
        )
        one_cold = almost_route(graph, approximator, demands[1], EPS)
        assert_arrays_identical("flow", one_warm.flow, batch.query(0).flow)
        assert_arrays_identical("flow", one_cold.flow, batch.query(1).flow)


# ----------------------------------------------------------------------
# Scoped rebuild
# ----------------------------------------------------------------------
class TestScopedRebuild:
    def test_refresh_matches_fresh_cut_capacities(self, graph):
        approximator = build_congestion_approximator(graph, rng=717)
        rows_before = approximator.num_rows
        eids = _degrade(graph, fraction=0.05, seed=718)
        resampled = approximator.refresh_capacities(eids)
        assert resampled == 0  # no rng: in-place refresh only
        assert approximator.num_rows == rows_before
        # Every operator's cuts equal an exact recomputation.
        from repro.graphs.trees import induced_cut_capacities

        for op in approximator.operators:
            fresh = induced_cut_capacities(graph, op.tree)[op.row_nodes]
            assert_arrays_identical(
                "row_inv_capacity", 1.0 / fresh, op.row_inv_capacity
            )

    def test_refresh_keeps_workspaces_valid(self, graph):
        approximator = build_congestion_approximator(graph, rng=719)
        workspace = RouteWorkspace(graph, approximator)
        demand = st_demand(graph, 0, 47)
        almost_route(graph, approximator, demand, EPS, workspace=workspace)
        eids = _degrade(graph, fraction=0.02, seed=720)
        approximator.refresh_capacities(
            eids, rng=np.random.default_rng(721)
        )
        # Row counts are stable even if trees resampled, so the same
        # workspace routes the new epoch.
        result = almost_route(
            graph, approximator, demand, EPS, workspace=workspace
        )
        assert result.converged


# ----------------------------------------------------------------------
# Workspace epoch-independence (pool reuse across set_capacity)
# ----------------------------------------------------------------------
class TestWorkspaceEpochIndependence:
    def test_shape_key_contains_no_epoch(self, graph):
        approximator = build_congestion_approximator(graph, rng=722)
        before = graph._version
        workspace = RouteWorkspace(graph, approximator)
        graph.set_capacity(0, graph.capacity(0) * 0.5)
        assert graph._version == before + 1
        assert workspace.shape_key == (
            graph.num_edges,
            graph.num_nodes,
            approximator.num_rows,
        )
        # ensure() accepts the pre-mutation workspace unchanged.
        assert (
            RouteWorkspace.ensure(workspace, graph, approximator)
            is workspace
        )

    def test_pool_reuses_workspace_across_set_capacity(self, graph):
        server = FlowServer(
            graph, epsilon=EPS, rng=723, refresh="incremental"
        )
        demand = st_demand(graph, 0, 40)
        server.route(demand)
        assert server.pool.created_singles == 1
        graph.set_capacity(0, graph.capacity(0) * 0.5)
        server.route(demand)
        # Reused, not rebuilt: no second workspace was created.
        assert server.pool.created_singles == 1


# ----------------------------------------------------------------------
# Incremental serving policy
# ----------------------------------------------------------------------
class TestIncrementalServing:
    def test_counters_and_validity(self, graph):
        server = FlowServer(
            graph, epsilon=EPS, rng=724, refresh="incremental"
        )
        demand = st_demand(graph, 0, 40)
        server.route(demand)
        _degrade(graph, fraction=0.02, seed=725)
        warm = server.route(demand)
        stats = server.stats()
        assert stats.incremental_refreshes == 1
        assert stats.warm_starts == 1
        assert stats.rebuilds == 0
        health = server.health()
        assert health.incremental_refreshes == 1
        assert health.warm_starts == 1
        assert warm.converged

    def test_warm_serving_matches_direct_warm_call(self, graph):
        server = FlowServer(
            graph, epsilon=EPS, rng=726, refresh="incremental"
        )
        demand = st_demand(graph, 0, 40)
        previous = server.route(demand)
        epoch = graph._version
        _degrade(graph, fraction=0.02, seed=727)
        delta = graph.deltas_since(epoch)
        served = server.route(demand)
        direct = almost_route(
            graph,
            server.approximator,
            demand,
            EPS,
            initial_flow=rescale_flow(previous.flow, delta),
        )
        assert_arrays_identical("flow", direct.flow, served.flow)

    def test_structural_mutation_falls_back_to_rebuild(self, graph):
        server = FlowServer(
            graph, epsilon=EPS, rng=728, refresh="incremental"
        )
        demand = st_demand(graph, 0, 40)
        server.route(demand)
        graph.add_edge(0, 47, 3.0)
        result = server.route(st_demand(graph, 0, 40))
        stats = server.stats()
        assert stats.rebuilds == 1
        assert stats.incremental_refreshes == 0
        assert stats.warm_starts == 0
        assert result.converged

    def test_journal_overflow_falls_back_to_rebuild(self):
        graph = random_connected(12, 0.2, rng=729)
        server = FlowServer(
            graph, epsilon=EPS, rng=730, refresh="incremental"
        )
        demand = st_demand(graph, 0, 11)
        server.route(demand)
        for i in range(JOURNAL_LIMIT + 1):
            graph.set_capacity(0, 2.0 + (i % 3))
        assert graph.journal_overflowed
        server.route(demand)
        stats = server.stats()
        assert stats.rebuilds == 1
        assert stats.incremental_refreshes == 0

    def test_no_cache_route_is_never_warm_started(self, graph):
        server = FlowServer(
            graph, epsilon=EPS, rng=731, refresh="incremental"
        )
        demand = st_demand(graph, 0, 40)
        server.route(demand)
        _degrade(graph, fraction=0.02, seed=732)
        server.route(demand, use_cache=False)
        assert server.stats().warm_starts == 0
