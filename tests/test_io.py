"""Tests for DIMACS / JSON graph serialization."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.flow import dinic_max_flow
from repro.graphs import read_dimacs, read_json, write_dimacs, write_json
from repro.graphs.generators import random_connected
from repro.graphs.graph import Graph


class TestDimacs:
    def test_round_trip(self, tmp_path):
        g = random_connected(15, 0.2, rng=301)
        path = tmp_path / "g.dimacs"
        write_dimacs(g, path, source=0, sink=14)
        loaded, s, t = read_dimacs(path)
        assert (s, t) == (0, 14)
        assert loaded.num_nodes == g.num_nodes
        # Max flow must survive the round trip (parallel edges may be
        # folded, which preserves all cut values).
        assert dinic_max_flow(loaded, 0, 14).value == pytest.approx(
            dinic_max_flow(g, 0, 14).value
        )

    def test_reads_directed_instance_folded(self, tmp_path):
        content = "\n".join(
            [
                "c comment",
                "p max 3 4",
                "n 1 s",
                "n 3 t",
                "a 1 2 5",
                "a 2 1 3",
                "a 2 3 4",
                "a 3 2 4",
            ]
        )
        path = tmp_path / "d.dimacs"
        path.write_text(content)
        g, s, t = read_dimacs(path)
        assert g.num_edges == 2
        caps = sorted(e.capacity for e in g.edges())
        assert caps == [8.0, 8.0]

    def test_self_loops_skipped(self, tmp_path):
        path = tmp_path / "l.dimacs"
        path.write_text("p max 2 2\nn 1 s\nn 2 t\na 1 1 5\na 1 2 3\n")
        g, _, _ = read_dimacs(path)
        assert g.num_edges == 1

    def test_missing_problem_line(self, tmp_path):
        path = tmp_path / "bad.dimacs"
        path.write_text("n 1 s\nn 2 t\na 1 2 3\n")
        with pytest.raises(GraphError):
            read_dimacs(path)

    def test_missing_terminals(self, tmp_path):
        path = tmp_path / "bad2.dimacs"
        path.write_text("p max 2 1\na 1 2 3\n")
        with pytest.raises(GraphError):
            read_dimacs(path)

    def test_unknown_record(self, tmp_path):
        path = tmp_path / "bad3.dimacs"
        path.write_text("p max 2 1\nn 1 s\nn 2 t\nx 1 2\n")
        with pytest.raises(GraphError):
            read_dimacs(path)


class TestJson:
    def test_round_trip_exact(self, tmp_path):
        g = Graph(3, [(0, 1, 2.5), (1, 2, 3.0), (0, 1, 1.0)])
        path = tmp_path / "g.json"
        write_json(g, path)
        loaded = read_json(path)
        assert loaded.num_nodes == 3
        assert loaded.num_edges == 3  # parallel edges preserved
        assert [e.capacity for e in loaded.edges()] == [2.5, 3.0, 1.0]

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"nodes": 3}')
        with pytest.raises(GraphError):
            read_json(path)
