"""Fixture suite for tools.repolint: every rule proven on a minimal
true-positive and a minimal clean snippet, plus the suppression
machinery, the JSON round trip, and the CLI exit-code contract.

Fixtures go through :func:`tools.repolint.engine.check_source` with a
*pretended* repository path, so path-scoped rules see e.g.
``src/repro/graphs/x.py`` without the snippet living in the tree.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from tools.repolint.engine import all_rules, check_source, run_paths
from tools.repolint.reporters import (
    JSON_SCHEMA_VERSION,
    parse_json,
    render_json,
    render_text,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def lint(source: str, rel_path: str = "src/repro/core/x.py"):
    return check_source(textwrap.dedent(source), rel_path)


def rules_hit(source: str, rel_path: str = "src/repro/core/x.py"):
    return {f.rule for f in lint(source, rel_path)}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_contains_the_catalogue():
    names = {rule.name for rule in all_rules()}
    assert {
        "rng-discipline",
        "index-dtype",
        "pool-bypass",
        "lock-discipline",
        "epoch-discipline",
        "hot-path-alloc",
        "error-discipline",
        "except-discipline",
        "mutable-default",
        "shadowed-builtin",
    } <= names


def test_rules_have_unique_names_and_descriptions():
    rules = all_rules()
    names = [rule.name for rule in rules]
    assert len(names) == len(set(names))
    assert all(rule.description for rule in rules)


# ----------------------------------------------------------------------
# rng-discipline
# ----------------------------------------------------------------------
def test_rng_discipline_flags_stdlib_random():
    assert "rng-discipline" in rules_hit(
        """
        import random

        def pick(xs):
            return random.choice(xs)
        """
    )


def test_rng_discipline_flags_global_numpy_rng():
    findings = lint(
        """
        import numpy as np

        def noise(n):
            return np.random.rand(n)
        """
    )
    assert [f.rule for f in findings] == ["rng-discipline"]


def test_rng_discipline_clean_on_generator_typing_and_rng_module():
    clean = """
        import numpy as np

        def noise(rng: np.random.Generator, n: int):
            return rng.standard_normal(n)
        """
    assert "rng-discipline" not in rules_hit(clean)
    # The coercion point itself may touch np.random.default_rng…
    coercion = "import numpy as np\nrng = np.random.default_rng(0)\n"
    assert "rng-discipline" not in rules_hit(
        coercion, rel_path="src/repro/util/rng.py"
    )
    # …but nothing else may, and stdlib random is banned even there.
    assert "rng-discipline" in rules_hit(coercion)
    assert "rng-discipline" in rules_hit(
        "import random\n", rel_path="src/repro/util/rng.py"
    )


# ----------------------------------------------------------------------
# index-dtype
# ----------------------------------------------------------------------
def test_index_dtype_flags_literal_dtypes():
    src = """
        import numpy as np

        def ids(n):
            a = np.zeros(n, dtype=np.int32)
            return a.astype(np.int64)
        """
    findings = [
        f
        for f in lint(src, rel_path="src/repro/graphs/x.py")
        if f.rule == "index-dtype"
    ]
    assert len(findings) == 2


def test_index_dtype_clean_on_named_lanes_and_out_of_scope():
    clean = """
        import numpy as np
        from repro.dtypes import INDEX_DTYPE, WIDE_DTYPE

        def ids(n):
            a = np.zeros(n, dtype=INDEX_DTYPE)
            return a.astype(WIDE_DTYPE)
        """
    assert "index-dtype" not in rules_hit(clean, "src/repro/graphs/x.py")
    # Out of the rule's scope entirely (e.g. congest cost models).
    dirty = "import numpy as np\na = np.zeros(3, dtype=np.int64)\n"
    assert "index-dtype" not in rules_hit(dirty, "src/repro/congest/x.py")


# ----------------------------------------------------------------------
# pool-bypass
# ----------------------------------------------------------------------
def test_pool_bypass_flags_direct_threading_import():
    assert "pool-bypass" in rules_hit("import threading\n")
    assert "pool-bypass" in rules_hit(
        "from concurrent.futures import ThreadPoolExecutor\n"
    )


def test_pool_bypass_clean_inside_parallel_package():
    assert "pool-bypass" not in rules_hit(
        "import threading\n", rel_path="src/repro/parallel/pool.py"
    )


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------
_LOCKED_CLASS = """
    import threading

    class Pool:
        _GUARDED_BY = ("_items",)

        def __init__(self):
            self._lock = threading.Lock()  # repolint: disable=pool-bypass -- fixture
            self._items = []

        def put(self, x):
            {body}
    """


def test_lock_discipline_flags_unguarded_write():
    src = _LOCKED_CLASS.format(body="self._items.append(x)")
    assert "lock-discipline" in rules_hit(src)


def test_lock_discipline_flags_assignment_outside_with():
    src = _LOCKED_CLASS.format(body="self._items = [x]")
    assert "lock-discipline" in rules_hit(src)


def test_lock_discipline_clean_under_lock_and_in_init():
    src = _LOCKED_CLASS.format(
        body="with self._lock:\n                self._items.append(x)"
    )
    assert "lock-discipline" not in rules_hit(src)


# ----------------------------------------------------------------------
# epoch-discipline
# ----------------------------------------------------------------------
def test_epoch_discipline_flags_mutation_without_invalidate():
    src = """
        class Graph:
            def chop(self):
                self._eu = self._eu[:-1]
        """
    findings = lint(src, rel_path="src/repro/graphs/graph.py")
    assert any(f.rule == "epoch-discipline" for f in findings)


def test_epoch_discipline_flags_return_before_bump():
    src = """
        class Graph:
            def chop(self, bail):
                self._eu = self._eu[:-1]
                if bail:
                    return None
                self._invalidate()
        """
    findings = [
        f
        for f in lint(src, rel_path="src/repro/graphs/graph.py")
        if f.rule == "epoch-discipline"
    ]
    assert len(findings) == 1
    assert "return" in findings[0].message


def test_epoch_discipline_clean_with_invalidate():
    src = """
        class Graph:
            def chop(self):
                self._eu = self._eu[:-1]
                self._invalidate()
        """
    assert "epoch-discipline" not in rules_hit(src, "src/repro/graphs/graph.py")


def test_epoch_discipline_flags_unjournaled_capacity_write():
    # A bare version bump next to a capacity write satisfies the old
    # epoch contract but leaves a step deltas_since() cannot account
    # for: the write must route through _record_capacity_delta or
    # _invalidate.
    src = """
        class Graph:
            def scale(self, eid, factor):
                self._cap[eid] = self._cap[eid] * factor
                self._version += 1
        """
    findings = [
        f
        for f in lint(src, rel_path="src/repro/graphs/graph.py")
        if f.rule == "epoch-discipline"
    ]
    assert len(findings) == 1
    assert "journal" in findings[0].message


def test_epoch_discipline_clean_capacity_write_through_journal():
    src = """
        class Graph:
            def scale(self, eid, factor):
                old = float(self._cap[eid])
                self._cap[eid] = old * factor
                self._record_capacity_delta(eid, old, old * factor)
        """
    assert "epoch-discipline" not in rules_hit(src, "src/repro/graphs/graph.py")


# ----------------------------------------------------------------------
# hot-path-alloc
# ----------------------------------------------------------------------
def test_hot_path_alloc_flags_allocation_in_hot_kernel():
    src = """
        import numpy as np
        from repro.hotpath import hot_kernel

        @hot_kernel
        def step(ws):
            tmp = np.zeros(ws.size)
            return tmp
        """
    findings = [f for f in lint(src) if f.rule == "hot-path-alloc"]
    assert len(findings) == 1
    assert "np.zeros" in findings[0].message


def test_hot_path_alloc_honors_alloc_ok_and_undecorated():
    marked = """
        import numpy as np
        from repro.hotpath import hot_kernel

        @hot_kernel
        def step(ws, out=None):
            if out is None:
                out = np.zeros(ws.size)  # alloc-ok (unbuffered fallback)
            return out
        """
    assert "hot-path-alloc" not in rules_hit(marked)
    undecorated = """
        import numpy as np

        def setup(n):
            return np.zeros(n)
        """
    assert "hot-path-alloc" not in rules_hit(undecorated)


# ----------------------------------------------------------------------
# error-discipline
# ----------------------------------------------------------------------
def test_error_discipline_flags_bare_valueerror_and_assert():
    src = """
        def check(x):
            assert x is not None
            if x < 0:
                raise ValueError("negative")
        """
    hits = [f for f in lint(src) if f.rule == "error-discipline"]
    assert len(hits) == 2


def test_error_discipline_clean_on_repro_errors():
    src = """
        from repro.errors import GraphError

        def check(x):
            if x < 0:
                raise GraphError("negative")
        """
    assert "error-discipline" not in rules_hit(src)


# ----------------------------------------------------------------------
# except-discipline
# ----------------------------------------------------------------------
def test_except_discipline_flags_bare_and_silent_broad_handlers():
    src = """
        def teardown(x):
            try:
                x.close()
            except:
                pass
            try:
                x.unlink()
            except Exception:
                pass
            try:
                x.flush()
            except (ValueError, BaseException):
                ...
        """
    hits = [f for f in lint(src) if f.rule == "except-discipline"]
    assert len(hits) == 3


def test_except_discipline_clean_on_counted_or_narrow_handlers():
    src = """
        from repro.errors import ArenaError

        def recover(pool, x):
            try:
                x.export()
            except OSError:
                pass
            try:
                x.attach()
            except Exception as exc:
                pool.stats.attach_failures += 1
            try:
                x.solve()
            except Exception:
                raise ArenaError("wrapped")
        """
    assert "except-discipline" not in rules_hit(src)


def test_except_discipline_suppression_and_scope():
    src = """
        def teardown(x):
            try:
                x.close()
            except Exception:  # repolint: disable=except-discipline -- atexit teardown
                pass
        """
    assert "except-discipline" not in rules_hit(src)
    # Out of scope: tools/ and benchmarks/ are not recovery layers.
    assert "except-discipline" not in rules_hit(
        """
        def f(x):
            try:
                x()
            except Exception:
                pass
        """,
        rel_path="tools/somewhere/x.py",
    )


# ----------------------------------------------------------------------
# mutable-default
# ----------------------------------------------------------------------
def test_mutable_default_flags_literal_and_constructor():
    src = """
        def collect(x, seen=[], cache=dict()):
            seen.append(x)
            return seen, cache
        """
    hits = [f for f in lint(src) if f.rule == "mutable-default"]
    assert len(hits) == 2


def test_mutable_default_clean_on_none_sentinel():
    src = """
        def collect(x, seen=None):
            seen = [] if seen is None else seen
            seen.append(x)
            return seen
        """
    assert "mutable-default" not in rules_hit(src)


# ----------------------------------------------------------------------
# shadowed-builtin
# ----------------------------------------------------------------------
def test_shadowed_builtin_flags_parameter_and_local():
    src = """
        def lookup(list, key):
            id = key + 1
            return list[id]
        """
    hits = [f for f in lint(src) if f.rule == "shadowed-builtin"]
    assert len(hits) == 2


def test_shadowed_builtin_clean_on_ordinary_names():
    src = """
        def lookup(items, key):
            idx = key + 1
            return items[idx]
        """
    assert "shadowed-builtin" not in rules_hit(src)


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_line_suppression_silences_only_named_rule():
    src = """
        def check(x):
            raise ValueError("x")  # repolint: disable=error-discipline -- fixture
        """
    assert "error-discipline" not in rules_hit(src)
    # A different rule name on the same line does not silence it.
    other = """
        def check(x):
            raise ValueError("x")  # repolint: disable=rng-discipline -- fixture
        """
    assert "error-discipline" in rules_hit(other)


def test_disable_all_and_def_line_suppression():
    src = """
        def check(x):
            raise ValueError("x")  # repolint: disable=all -- fixture
        """
    assert lint(src) == []
    # Whole-method findings anchor at the def line, so the comment
    # belongs there.
    graph = """
        class Graph:
            def chop(self):  # repolint: disable=epoch-discipline -- fixture
                self._eu = self._eu[:-1]
        """
    assert "epoch-discipline" not in rules_hit(graph, "src/repro/graphs/graph.py")


def test_parse_error_is_reported_as_finding():
    findings = lint("def broken(:\n")
    assert [f.rule for f in findings] == ["parse-error"]


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------
def test_json_round_trip():
    findings = lint(
        """
        def check(x):
            assert x
        """
    )
    assert findings
    text = render_json(findings, files_scanned=1)
    assert parse_json(text) == findings


def test_json_version_mismatch_rejected():
    bad = render_json([], 0).replace(
        f'"version": {JSON_SCHEMA_VERSION}', '"version": 99'
    )
    with pytest.raises(ValueError):
        parse_json(bad)


def test_text_report_format():
    findings = lint(
        """
        def check(x):
            assert x
        """
    )
    out = render_text(findings, files_scanned=3)
    first = out.splitlines()[0]
    assert first.startswith("src/repro/core/x.py:3:")
    assert "error-discipline" in first
    assert out.splitlines()[-1] == "repolint: 1 finding in 3 files"


# ----------------------------------------------------------------------
# Runner + CLI
# ----------------------------------------------------------------------
def test_run_paths_rejects_unknown_select(tmp_path):
    (tmp_path / "a.py").write_text("x = 1\n")
    with pytest.raises(ValueError):
        run_paths(["a.py"], root=tmp_path, select=["no-such-rule"])


def _cli(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "tools.repolint", *argv],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


def test_cli_exit_codes(tmp_path):
    clean = tmp_path / "clean"
    clean.mkdir()
    (clean / "ok.py").write_text("x = 1\n")
    # Every repository rule is path-scoped, so the portable way to
    # trip the CLI from a scratch dir is the engine-level parse-error.
    dirty = tmp_path / "dirty"
    dirty.mkdir()
    (dirty / "bad.py").write_text("def broken(:\n")

    assert _cli(str(clean)).returncode == 0
    proc = _cli(str(dirty))
    assert proc.returncode == 1
    assert "parse-error" in proc.stdout
    assert _cli(str(tmp_path / "missing")).returncode == 2
    assert _cli("--select", "no-such-rule", str(clean)).returncode == 2
    assert _cli("--list-rules").returncode == 0


def test_repo_tree_is_clean_under_repolint():
    """The shipped tree itself must lint clean (the CI gate)."""
    findings = run_paths(["src", "tools", "benchmarks"], root=REPO_ROOT)
    assert findings == [], render_text(findings)
