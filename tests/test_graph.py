"""Unit tests for the core Graph multigraph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DisconnectedGraphError, GraphError
from repro.graphs.graph import Edge, Graph


def triangle() -> Graph:
    return Graph(3, [(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])


class TestConstruction:
    def test_empty_graph_has_no_edges(self):
        g = Graph(5)
        assert g.num_nodes == 5
        assert g.num_edges == 0

    def test_zero_nodes_rejected(self):
        with pytest.raises(GraphError):
            Graph(0)

    def test_negative_nodes_rejected(self):
        with pytest.raises(GraphError):
            Graph(-3)

    def test_add_edge_returns_sequential_ids(self):
        g = Graph(3)
        assert g.add_edge(0, 1, 1.0) == 0
        assert g.add_edge(1, 2, 1.0) == 1

    def test_self_loop_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(1, 1, 1.0)

    def test_out_of_range_endpoint_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 2, 1.0)

    def test_zero_capacity_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, 0.0)

    def test_negative_capacity_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, -1.0)

    def test_nan_capacity_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, float("nan"))

    def test_infinite_capacity_rejected(self):
        g = Graph(2)
        with pytest.raises(GraphError):
            g.add_edge(0, 1, float("inf"))

    def test_parallel_edges_kept_separate(self):
        g = Graph(2, [(0, 1, 1.0), (0, 1, 2.0)])
        assert g.num_edges == 2
        assert g.capacity(0) == 1.0
        assert g.capacity(1) == 2.0

    def test_from_edge_arrays_round_trip(self):
        g = Graph.from_edge_arrays(3, [0, 1], [1, 2], [4.0, 5.0])
        assert g.num_edges == 2
        assert g.endpoints(1) == (1, 2)

    def test_from_edge_arrays_length_mismatch(self):
        with pytest.raises(GraphError):
            Graph.from_edge_arrays(3, [0, 1], [1], [4.0, 5.0])

    def test_copy_is_independent(self):
        g = triangle()
        h = g.copy()
        h.set_capacity(0, 99.0)
        assert g.capacity(0) == 1.0


class TestAccessors:
    def test_edge_object_fields(self):
        g = triangle()
        e = g.edge(1)
        assert e == Edge(1, 1, 2, 2.0)

    def test_edge_other_endpoint(self):
        e = Edge(0, 3, 7, 1.0)
        assert e.other(3) == 7
        assert e.other(7) == 3

    def test_edge_other_rejects_non_endpoint(self):
        e = Edge(0, 3, 7, 1.0)
        with pytest.raises(GraphError):
            e.other(5)

    def test_edge_id_out_of_range(self):
        with pytest.raises(GraphError):
            triangle().edge(3)

    def test_edges_iterates_in_id_order(self):
        ids = [e.id for e in triangle().edges()]
        assert ids == [0, 1, 2]

    def test_neighbors_lists_all_incident_edges(self):
        g = triangle()
        assert sorted(g.neighbors(0)) == [(1, 0), (2, 2)]

    def test_degree_counts_parallel_edges(self):
        g = Graph(2, [(0, 1, 1.0), (0, 1, 1.0)])
        assert g.degree(0) == 2

    def test_capacities_vector(self):
        caps = triangle().capacities()
        np.testing.assert_allclose(caps, [1.0, 2.0, 3.0])

    def test_set_capacity_validates(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.set_capacity(0, -1.0)

    def test_total_capacity(self):
        assert triangle().total_capacity() == 6.0

    def test_edge_index_arrays(self):
        tails, heads = triangle().edge_index_arrays()
        assert tails.tolist() == [0, 1, 0]
        assert heads.tolist() == [1, 2, 2]


class TestFlowOperators:
    def test_excess_of_zero_flow_is_zero(self):
        g = triangle()
        np.testing.assert_allclose(g.excess(np.zeros(3)), 0.0)

    def test_excess_signs_follow_orientation(self):
        g = Graph(2, [(0, 1, 1.0)])
        excess = g.excess(np.array([2.0]))
        # Edge 0->1 carrying +2: node 1 gains, node 0 loses.
        np.testing.assert_allclose(excess, [-2.0, 2.0])

    def test_excess_wrong_shape_rejected(self):
        with pytest.raises(GraphError):
            triangle().excess(np.zeros(2))

    def test_excess_sums_to_zero(self, rng):
        g = triangle()
        flow = rng.normal(size=3)
        assert abs(g.excess(flow).sum()) < 1e-12

    def test_congestion(self):
        g = triangle()
        cong = g.congestion(np.array([1.0, -1.0, 1.5]))
        np.testing.assert_allclose(cong, [1.0, 0.5, 0.5])


class TestConnectivity:
    def test_triangle_connected(self):
        assert triangle().is_connected()

    def test_isolated_node_disconnects(self):
        g = Graph(3, [(0, 1, 1.0)])
        assert not g.is_connected()
        assert len(g.connected_components()) == 2

    def test_require_connected_raises(self):
        g = Graph(2)
        with pytest.raises(DisconnectedGraphError):
            g.require_connected()

    def test_bfs_distances(self):
        g = Graph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        assert g.bfs_distances(0) == [0, 1, 2, 3]

    def test_bfs_unreachable_is_minus_one(self):
        g = Graph(3, [(0, 1, 1.0)])
        assert g.bfs_distances(0)[2] == -1

    def test_diameter_of_path(self):
        g = Graph(5, [(i, i + 1, 1.0) for i in range(4)])
        assert g.diameter() == 4

    def test_diameter_requires_connected(self):
        g = Graph(3, [(0, 1, 1.0)])
        with pytest.raises(DisconnectedGraphError):
            g.diameter()

    def test_eccentricity(self):
        g = Graph(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        assert g.eccentricity(1) == 2

    def test_eccentricity_disconnected_raises(self):
        g = Graph(3, [(0, 1, 1.0)])
        with pytest.raises(DisconnectedGraphError):
            g.eccentricity(0)


class TestContraction:
    def test_contract_merges_nodes(self):
        g = Graph(4, [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)])
        q, origin = g.contract([0, 0, 1, 1])
        assert q.num_nodes == 2
        assert q.num_edges == 1  # only 1-2 crosses
        assert origin == [1]

    def test_contract_keeps_parallel_edges(self):
        g = Graph(4, [(0, 2, 1.0), (1, 3, 2.0)])
        q, origin = g.contract([0, 0, 1, 1], keep_parallel=True)
        assert q.num_edges == 2

    def test_contract_merge_sums_capacities(self):
        g = Graph(4, [(0, 2, 1.0), (1, 3, 2.0)])
        q, origin = g.contract([0, 0, 1, 1], keep_parallel=False)
        assert q.num_edges == 1
        assert q.capacity(0) == 3.0

    def test_contract_drops_internal_edges(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        q, _ = g.contract([5, 5, 9])
        assert q.num_edges == 1

    def test_contract_label_length_checked(self):
        with pytest.raises(GraphError):
            triangle().contract([0, 1])

    def test_contract_arbitrary_labels_compacted(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        q, _ = g.contract([100, -5, 100])
        assert q.num_nodes == 2

    def test_node_map_after_contract_matches(self):
        g = Graph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        node_map = g.node_map_after_contract([7, 7, 3])
        assert node_map == [0, 0, 1]

    def test_edge_subgraph(self):
        g = triangle()
        sub = g.edge_subgraph([0, 2])
        assert sub.num_edges == 2
        assert sub.num_nodes == 3
