"""repolint — AST-based contract checker for this repository.

PRs 1–6 grew a substrate whose correctness rests on cross-cutting
*conventions*: bit-identical ordered-map sharding, ``Graph._version``
epoch discipline, ``INDEX_DTYPE``/``WIDE_DTYPE`` single-point dtype
control, allocation-free hot kernels, seeded-``Generator``-only
randomness, lock-guarded arena state, and a ``ReproError``-family
exception contract. Every one of them used to be enforced only
dynamically — by golden tests that catch a violation *after* it has
corrupted a result. repolint enforces them statically, at the source
level, the way a sanitizer tier guards a native build.

Usage (from the repository root)::

    python -m tools.repolint src tools benchmarks
    python -m tools.repolint --format json src
    python -m tools.repolint --list-rules

The exit code is non-zero iff findings remain. Intentional exceptions
are suppressed per line with a justification::

    import threading  # repolint: disable=pool-bypass -- Lock only

and hot-kernel setup allocations with ``# alloc-ok (reason)``. The
rule catalogue, the invariant each rule guards, and the PR that
introduced each invariant are documented in ROADMAP.md ("Static
contracts"). The package is stdlib-only (``ast`` + ``tokenize``):
no third-party dependency, importable anywhere the repo is.

Layout: :mod:`~tools.repolint.engine` (file contexts, suppression
parsing, rule registry, runner), :mod:`~tools.repolint.rules` (the
rule implementations), :mod:`~tools.repolint.reporters` (text/JSON),
:mod:`~tools.repolint.cli` (argument parsing and exit codes).
"""

from tools.repolint.engine import (
    FileContext,
    Finding,
    Rule,
    all_rules,
    check_file,
    check_source,
    run_paths,
)

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "check_file",
    "check_source",
    "run_paths",
]
