"""The repository's rule catalogue.

Each rule guards one cross-cutting convention the substrate's
correctness rests on; ROADMAP.md ("Static contracts") maps every rule
to the invariant it enforces and the PR that introduced the
invariant. Rules are intentionally *syntactic*: they inspect one file
at a time with the stdlib ``ast`` and accept per-line
``# repolint: disable=<rule>`` suppressions (see engine.py), trading
soundness for zero-dependency speed and reviewable precision. Where a
rule needs a registry (guarded attributes, hot kernels), the registry
lives *in the checked source* — a ``_GUARDED_BY`` class attribute, a
``@hot_kernel`` decorator — so the contract is visible at the
definition it protects, not in a lint config.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repolint.engine import FileContext, Finding, Rule, register

SRC = "src/repro"

#: Names the repository imports NumPy as. The substrate uses ``np``
#: exclusively; ``numpy`` is accepted so fixtures/tools can't dodge a
#: rule by spelling the import out.
_NUMPY_NAMES = ("np", "numpy")


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _root_pos(node: ast.AST) -> tuple[int, int]:
    """Position of the root Name of an attribute chain (dedup key)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return (getattr(node, "lineno", 0), getattr(node, "col_offset", 0))


def _functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _walk_shallow(func: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk a function's nodes, not descending into nested defs (those
    are visited as functions in their own right)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _decorator_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names: set[str] = set()
    for dec in func.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = _dotted(target)
        if dotted is not None:
            names.add(dotted.rsplit(".", 1)[-1])
    return names


@register
class RngDiscipline(Rule):
    """Randomness must thread an explicit seeded Generator.

    Module-level NumPy RNG state (``np.random.seed`` / ``np.random.rand``
    / …) and the stdlib ``random`` module are process-global: any use
    breaks run-to-run reproducibility and the draw-for-draw golden
    equivalence the batched samplers are pinned against (PR 2). The
    single coercion point is ``repro.util.rng.as_generator``; that file
    is the one place allowed to touch ``np.random.default_rng``.
    """

    name = "rng-discipline"
    description = (
        "no module-level np.random state or stdlib random under src/repro "
        "(thread an explicit Generator; coerce via repro.util.rng)"
    )
    paths = (SRC,)

    _COERCION_POINT = f"{SRC}/util/rng.py"
    #: Attribute chains under np.random that do not touch global state.
    _ALLOWED_SUFFIXES = ("Generator", "SeedSequence", "BitGenerator", "PCG64")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield self.finding(
                            ctx,
                            node,
                            "stdlib 'random' is banned: thread a seeded "
                            "np.random.Generator (repro.util.rng.as_generator)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "random":
                    yield self.finding(
                        ctx,
                        node,
                        "stdlib 'random' is banned: thread a seeded "
                        "np.random.Generator (repro.util.rng.as_generator)",
                    )
        if ctx.path == self._COERCION_POINT:
            return
        seen: set[tuple[int, int]] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            dotted = _dotted(node)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if len(parts) < 2 or parts[0] not in _NUMPY_NAMES:
                continue
            if parts[1] != "random":
                continue
            pos = _root_pos(node)
            if pos in seen:  # inner link of an already-reported chain
                continue
            seen.add(pos)
            if len(parts) > 2 and parts[2] in self._ALLOWED_SUFFIXES:
                continue
            if len(parts) == 2:
                # Bare ``np.random`` (e.g. a module alias) — still
                # reachable global state.
                pass
            yield self.finding(
                ctx,
                node,
                f"'{dotted}' reaches np.random module state: accept an "
                "explicit Generator (repro.util.rng.as_generator) instead",
            )


@register
class IndexDtype(Rule):
    """Integer array dtypes must be the named single-point constants.

    PR 2 narrowed every index array to ``INDEX_DTYPE`` (int32, guarded
    by ``MAX_INDEX`` at the Graph boundary) and PR 7 named the
    deliberate 64-bit lane ``WIDE_DTYPE`` (overflow-proof pair keys,
    cumulative counts, sentinel-valued distance/parent arrays). A
    literal ``np.int32``/``np.int64``/``int`` dtype in the kernel
    directories bypasses that single point of control — the compiled
    tier and any future re-narrowing must be one-line switches.
    """

    name = "index-dtype"
    description = (
        "integer array constructors in graphs/, core/, parallel/ must "
        "use INDEX_DTYPE / WIDE_DTYPE, not literal np.int32/np.int64/int"
    )
    paths = (f"{SRC}/graphs", f"{SRC}/core", f"{SRC}/parallel")

    _BAD_ATTRS = {"int32", "int64", "intc", "longlong", "intp"}
    #: The definition sites themselves assign the literal once.
    _DEFINITION_NAMES = {"INDEX_DTYPE", "WIDE_DTYPE"}

    def _is_bad_dtype(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Name) and node.id == "int":
            return "int"
        dotted = _dotted(node)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if (
            len(parts) == 2
            and parts[0] in _NUMPY_NAMES
            and parts[1] in self._BAD_ATTRS
        ):
            return dotted
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        definition_lines: set[int] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id in self._DEFINITION_NAMES
                for t in node.targets
            ):
                definition_lines.add(node.lineno)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg != "dtype":
                    continue
                bad = self._is_bad_dtype(kw.value)
                if bad and node.lineno not in definition_lines:
                    yield self.finding(
                        ctx,
                        kw.value,
                        f"literal integer dtype '{bad}': use INDEX_DTYPE "
                        "(narrow index lane) or WIDE_DTYPE (64-bit "
                        "keys/counts) from repro.graphs.csr",
                    )
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "astype"
                and node.args
            ):
                bad = self._is_bad_dtype(node.args[0])
                if bad:
                    yield self.finding(
                        ctx,
                        node.args[0],
                        f"literal integer dtype '{bad}' in astype(): use "
                        "INDEX_DTYPE or WIDE_DTYPE from repro.graphs.csr",
                    )


@register
class PoolBypass(Rule):
    """Concurrency primitives are importable only in src/repro/parallel.

    Everything else must go through the ordered-map pool contract
    (PR 4): ShardPlan partitions + serial/thread/process pools whose
    shard-output fold is bit-identical to serial by construction. A
    stray Executor or Thread elsewhere would compute outside the
    determinism contract (and outside the arena's export accounting).
    """

    name = "pool-bypass"
    description = (
        "concurrent.futures/multiprocessing/threading import outside "
        "src/repro/parallel (use the ordered-map pool contract)"
    )
    paths = (SRC,)

    _BANNED_ROOTS = {"threading", "multiprocessing", "concurrent"}
    _EXEMPT_PREFIX = f"{SRC}/parallel"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.under(self._EXEMPT_PREFIX):
            return
        for node in ast.walk(ctx.tree):
            modules: list[str] = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                modules = [node.module]
            for module in modules:
                if module.split(".")[0] in self._BANNED_ROOTS:
                    yield self.finding(
                        ctx,
                        node,
                        f"import of '{module}' outside src/repro/parallel: "
                        "route work through repro.parallel's ordered-map "
                        "pool contract",
                    )


class _LockWalker:
    """Walks a method body tracking ``with self._lock`` nesting."""

    def __init__(self, guarded: set[str]) -> None:
        self.guarded = guarded
        self.violations: list[tuple[ast.AST, str]] = []

    _MUTATORS = {
        "append", "extend", "insert", "remove", "pop", "clear", "update",
        "setdefault", "popitem", "add", "discard",
    }

    def _is_lock_with(self, node: ast.With) -> bool:
        for item in node.items:
            try:
                text = ast.unparse(item.context_expr)
            except Exception:
                continue
            if "self._lock" in text:
                return True
        return False

    def _guarded_attr(self, node: ast.AST) -> str | None:
        """The guarded attribute written through ``node``, if any."""
        target = node
        if isinstance(target, ast.Subscript):
            target = target.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and target.attr in self.guarded
        ):
            return target.attr
        return None

    def walk(self, stmts: list[ast.stmt], locked: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = locked or (
                    isinstance(stmt, ast.With) and self._is_lock_with(stmt)
                )
                self.walk(stmt.body, inner)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested defs execute later, under whatever lock their
                # caller holds then — analyze them as unlocked.
                self.walk(stmt.body, False)
                continue
            if not locked:
                self._check_stmt(stmt)
            for field in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field, None)
                if isinstance(sub, list) and sub:
                    self.walk(sub, locked)
            for handler in getattr(stmt, "handlers", []) or []:
                self.walk(handler.body, locked)

    def _check_stmt(self, stmt: ast.stmt) -> None:
        targets: list[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            func = stmt.value.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._MUTATORS
            ):
                attr = self._guarded_attr(func.value)
                if attr is not None:
                    self.violations.append((stmt, attr))
            return
        for target in targets:
            attr = self._guarded_attr(target)
            if attr is not None:
                self.violations.append((stmt, attr))


@register
class LockDiscipline(Rule):
    """Writes to ``_GUARDED_BY`` attributes need ``with self._lock``.

    Classes sharing state across threads (the arena's export cache,
    the serving workspace pool — PRs 5/6) declare their lock-protected
    fields in a ``_GUARDED_BY`` class attribute; any lexical write to
    one of them outside a ``with self._lock`` block is a data race
    waiting for a free-threaded build. ``__init__`` is exempt
    (construction happens-before publication).
    """

    name = "lock-discipline"
    description = (
        "write to a _GUARDED_BY attribute outside 'with self._lock' "
        "(construction in __init__ exempt)"
    )
    paths = (SRC,)

    def _guarded_set(self, cls: ast.ClassDef) -> set[str]:
        for stmt in cls.body:
            if not isinstance(stmt, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "_GUARDED_BY"
                for t in stmt.targets
            ):
                continue
            value = stmt.value
            if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                return {
                    elt.value
                    for elt in value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                }
            if isinstance(value, ast.Call) and value.args:
                inner = value.args[0]
                if isinstance(inner, (ast.Tuple, ast.List, ast.Set)):
                    return {
                        elt.value
                        for elt in inner.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    }
        return set()

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            guarded = self._guarded_set(node)
            if not guarded:
                continue
            for func in node.body:
                if not isinstance(
                    func, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if func.name == "__init__":
                    continue
                walker = _LockWalker(guarded)
                walker.walk(func.body, locked=False)
                for stmt, attr in walker.violations:
                    yield self.finding(
                        ctx,
                        stmt,
                        f"write to lock-guarded 'self.{attr}' outside "
                        f"'with self._lock' in {node.name}.{func.name} "
                        f"(declared in {node.name}._GUARDED_BY)",
                    )


@register
class EpochDiscipline(Rule):
    """Graph buffer mutations must bump the version epoch.

    ``Graph._version`` (PR 5) is what keys the shared-memory arena's
    export cache, the serving layer's result cache, and every
    ``capacities()`` view retag: a method that writes the edge or
    capacity buffers and exits without ``self._invalidate()`` or a
    ``self._version`` bump hands every downstream cache a stale epoch
    — the wrong-but-plausible-flow failure mode. The check is
    lexical: a mutating method must contain a bump, and no ``return``
    may sit between the first mutation and the first bump.

    PR 10 tightened the capacity side: ``deltas_since`` vouches for
    every version step in its window, so a ``_cap`` write must also
    *journal* — route through ``self._record_capacity_delta(...)`` or
    ``self._invalidate()`` (which marks the journal structural). A
    bare ``self._version += 1`` next to a capacity write would leave
    an unaccounted step the journal then wrongly vouches across.
    """

    name = "epoch-discipline"
    description = (
        "Graph method mutates edge/capacity buffers without "
        "_invalidate()/_version bump on every exit path, or writes "
        "the capacity buffer without journaling the delta"
    )
    paths = (f"{SRC}/graphs",)

    _CLASS = "Graph"
    _BUFFERS = {"_eu", "_ev", "_cap"}
    _EXEMPT = {"__init__", "_record_capacity_delta"}

    def _self_attr(self, node: ast.AST) -> str | None:
        target = node
        if isinstance(target, ast.Subscript):
            target = target.value
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef) or cls.name != self._CLASS:
                continue
            for func in cls.body:
                if not isinstance(
                    func, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                if func.name in self._EXEMPT:
                    continue
                mutations: list[ast.stmt] = []
                cap_mutations: list[ast.stmt] = []
                bumps: list[ast.stmt] = []
                journal_bumps: list[ast.stmt] = []
                returns: list[ast.Return] = []
                for node in ast.walk(func):
                    if isinstance(node, (ast.Assign, ast.AugAssign)):
                        targets = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for target in targets:
                            attr = self._self_attr(target)
                            if attr in self._BUFFERS:
                                mutations.append(node)
                                if attr == "_cap":
                                    cap_mutations.append(node)
                            elif attr == "_version":
                                bumps.append(node)
                    elif isinstance(node, ast.Expr) and isinstance(
                        node.value, ast.Call
                    ):
                        dotted = _dotted(node.value.func)
                        if dotted in (
                            "self._invalidate",
                            "self._adopt_arrays",
                            "self._record_capacity_delta",
                        ):
                            # _adopt_arrays invalidates on behalf of
                            # its caller (it is itself checked);
                            # _record_capacity_delta bumps and journals
                            # a capacity-only write.
                            bumps.append(node)
                            journal_bumps.append(node)
                    elif isinstance(node, ast.Return):
                        returns.append(node)
                if not mutations:
                    continue
                if cap_mutations and not journal_bumps:
                    yield self.finding(
                        ctx,
                        cap_mutations[0],
                        f"{cls.name}.{func.name} writes the capacity "
                        "buffer without journaling the delta: route the "
                        "write through _record_capacity_delta() or "
                        "_invalidate(), or deltas_since() vouches for "
                        "an interval it cannot account for",
                    )
                if not bumps:
                    yield self.finding(
                        ctx,
                        func,
                        f"{cls.name}.{func.name} writes "
                        f"{sorted(self._BUFFERS)} buffers but never calls "
                        "_invalidate() / bumps _version: downstream "
                        "version-keyed caches go stale",
                    )
                    continue
                first_mut = min(m.lineno for m in mutations)
                first_bump = min(b.lineno for b in bumps)
                for ret in returns:
                    if first_mut <= ret.lineno < first_bump:
                        yield self.finding(
                            ctx,
                            ret,
                            f"exit path in {cls.name}.{func.name} between "
                            "buffer mutation and epoch bump: this return "
                            "skips _invalidate()",
                        )


@register
class HotPathAlloc(Rule):
    """``@hot_kernel`` functions may not allocate outside ``# alloc-ok``.

    PR 3 made AlmostRoute's inner loop allocation-free on a reusable
    workspace; PR 6 extended the contract to the batched plane solvers.
    The ``@hot_kernel`` decorator (repro.util.hotpath) marks the
    functions under that contract; inside them, allocating NumPy
    constructors are findings unless the line carries ``# alloc-ok
    (reason)`` — the escape hatch for unbuffered-caller fallbacks.
    """

    name = "hot-path-alloc"
    description = (
        "allocating NumPy constructor inside a @hot_kernel function "
        "without an '# alloc-ok' marker"
    )
    paths = (SRC,)

    _ALLOCATORS = {
        "empty", "zeros", "ones", "full", "empty_like", "zeros_like",
        "ones_like", "full_like", "array", "arange", "linspace",
        "concatenate", "stack", "vstack", "hstack", "column_stack",
        "tile", "repeat", "copy",
    }

    def _alloc_ok(self, ctx: FileContext, node: ast.AST) -> bool:
        start = getattr(node, "lineno", 0)
        end = getattr(node, "end_lineno", start) or start
        return any(
            "alloc-ok" in ctx.comments.get(line, "")
            for line in range(start, end + 1)
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _functions(ctx.tree):
            if "hot_kernel" not in _decorator_names(func):
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                func_node = node.func
                label: str | None = None
                if isinstance(func_node, ast.Attribute):
                    dotted = _dotted(func_node)
                    if dotted is not None:
                        parts = dotted.split(".")
                        if (
                            len(parts) == 2
                            and parts[0] in _NUMPY_NAMES
                            and parts[1] in self._ALLOCATORS
                        ):
                            label = dotted
                    if label is None and func_node.attr == "copy" and not node.args:
                        label = f"{_dotted(func_node) or '<expr>.copy'}()"
                if label is None:
                    continue
                if self._alloc_ok(ctx, node):
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"'{label}' allocates inside hot kernel "
                    f"'{func.name}': reuse a workspace buffer, or mark "
                    "the line '# alloc-ok (reason)' if it is a "
                    "setup/fallback path",
                )


@register
class ErrorDiscipline(Rule):
    """Input validation raises the ReproError family, never bare
    ValueError/TypeError/assert.

    The library's catchability contract (errors.py): callers catch
    ``ReproError`` subclasses without swallowing programming errors.
    A bare ``ValueError`` leaks NumPy-shaped failures into user
    ``except`` clauses; a bare ``assert`` disappears under ``-O``.
    """

    name = "error-discipline"
    description = (
        "bare raise ValueError/TypeError or assert under src/repro "
        "(raise a ReproError subclass, e.g. GraphError)"
    )
    paths = (SRC,)

    _BANNED = {"ValueError", "TypeError"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                target = exc.func if isinstance(exc, ast.Call) else exc
                if isinstance(target, ast.Name) and target.id in self._BANNED:
                    yield self.finding(
                        ctx,
                        node,
                        f"bare {target.id}: raise a ReproError subclass "
                        "(repro.errors) so callers can catch library "
                        "failures without swallowing programming errors",
                    )
            elif isinstance(node, ast.Assert):
                yield self.finding(
                    ctx,
                    node,
                    "bare assert vanishes under 'python -O': raise a "
                    "ReproError subclass for invariants that must hold "
                    "in production",
                )


@register
class MutableDefault(Rule):
    """No mutable default arguments.

    A shared list/dict/set default is cross-call state — in a library
    that serves many queries from one process (PR 6), that is a cache
    poisoning bug, not a style nit.
    """

    name = "mutable-default"
    description = "mutable default argument (list/dict/set literal or call)"
    paths = (SRC, "tools", "benchmarks")

    _CTOR_NAMES = {"list", "dict", "set"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _functions(ctx.tree):
            args = func.args
            for default in [*args.defaults, *args.kw_defaults]:
                if default is None:
                    continue
                bad = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in self._CTOR_NAMES
                )
                if bad:
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default in '{func.name}': defaults are "
                        "evaluated once and shared across calls; default "
                        "to None and construct inside",
                    )


@register
class ShadowedBuiltin(Rule):
    """Function parameters and locals must not shadow builtins.

    Shadowing ``id``/``list``/``type``/… inside kernel code is how a
    later edit silently calls the wrong callable. Class-level
    attribute names (e.g. a dataclass ``id`` field) are fine — only
    bindings that enter a function scope are flagged.
    """

    name = "shadowed-builtin"
    description = "function parameter or local variable shadows a builtin"
    paths = (SRC,)

    _BUILTINS = frozenset({
        "list", "dict", "set", "tuple", "type", "id", "input", "filter",
        "map", "sum", "min", "max", "len", "range", "object", "hash",
        "next", "iter", "vars", "format", "bytes", "str", "int", "float",
        "bool", "all", "any", "open", "print", "sorted", "zip", "abs",
        "round", "repr", "slice", "frozenset", "dir", "bin", "hex", "pow",
    })

    def _flag(
        self, ctx: FileContext, node: ast.AST, name: str, func_name: str
    ) -> Finding:
        return self.finding(
            ctx,
            node,
            f"'{name}' shadows the builtin inside '{func_name}'",
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _functions(ctx.tree):
            args = func.args
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *( [args.vararg] if args.vararg else [] ),
                *( [args.kwarg] if args.kwarg else [] ),
            ]:
                if arg.arg in self._BUILTINS:
                    yield self._flag(ctx, arg, arg.arg, func.name)
            for node in _walk_shallow(func):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Name)
                            and target.id in self._BUILTINS
                        ):
                            yield self._flag(ctx, target, target.id, func.name)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    if (
                        isinstance(node.target, ast.Name)
                        and node.target.id in self._BUILTINS
                    ):
                        yield self._flag(
                            ctx, node.target, node.target.id, func.name
                        )
                elif isinstance(node, ast.comprehension):
                    if (
                        isinstance(node.target, ast.Name)
                        and node.target.id in self._BUILTINS
                    ):
                        yield self._flag(
                            ctx, node.target, node.target.id, func.name
                        )


@register
class ExceptDiscipline(Rule):
    """Recovery paths must recover, not swallow.

    PR 8's fault model makes this a contract: every failure a layer
    absorbs must either re-raise a ``ReproError`` or record a counted
    degradation (a ``PoolStats``/``ServerHealth`` counter), so that
    "recovered" is observable and "silently ignored" is impossible.
    A bare ``except:`` (which also eats ``KeyboardInterrupt``) or an
    ``except Exception: pass`` body is exactly the silent-swallow
    shape that rots into a wrong-answer bug; teardown paths that
    legitimately must not raise (finalizers, atexit hooks) carry a
    per-line suppression naming why.
    """

    name = "except-discipline"
    description = (
        "bare 'except:' or 'except Exception/BaseException' whose body "
        "only passes under src/repro (re-raise a ReproError or record "
        "a counted degradation)"
    )
    paths = (SRC,)

    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        """Whether the handler catches Exception/BaseException (alone
        or as a tuple member). ``except:`` is handled separately."""
        exc = handler.type
        members = exc.elts if isinstance(exc, ast.Tuple) else [exc]
        for member in members:
            dotted = _dotted(member) if member is not None else None
            if dotted is not None and dotted.rsplit(".", 1)[-1] in self._BROAD:
                return True
        return False

    def _only_passes(self, handler: ast.ExceptHandler) -> bool:
        """Whether the handler body does nothing (Pass statements or
        bare constant expressions like docstrings/ellipses only)."""
        for stmt in handler.body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue
            return False
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare 'except:' catches KeyboardInterrupt/SystemExit "
                    "too: name the exceptions, and re-raise a ReproError "
                    "or record a counted degradation",
                )
            elif self._is_broad(node) and self._only_passes(node):
                yield self.finding(
                    ctx,
                    node,
                    "'except Exception: pass' swallows failures "
                    "silently: re-raise a ReproError or record a "
                    "counted degradation (suppress per-line for "
                    "finalizer/atexit teardown that must not raise)",
                )
