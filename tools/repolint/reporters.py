"""Finding reporters: human text and machine JSON.

The JSON document round-trips (:func:`render_json` /
:func:`parse_json`) so downstream tooling — the CI annotation step, a
future baseline-diff mode — can consume findings without re-running
the pass.
"""

from __future__ import annotations

import json

from tools.repolint.engine import Finding

__all__ = ["render_text", "render_json", "parse_json"]

#: Format version for the JSON document; bump on breaking changes.
JSON_SCHEMA_VERSION = 1


def render_text(findings: list[Finding], files_scanned: int = 0) -> str:
    """GCC-style ``path:line:col: rule: message`` lines + a summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: {f.rule}: {f.message}"
        for f in findings
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    scanned = f" in {files_scanned} files" if files_scanned else ""
    lines.append(f"repolint: {len(findings)} {noun}{scanned}")
    return "\n".join(lines)


def render_json(findings: list[Finding], files_scanned: int = 0) -> str:
    document = {
        "version": JSON_SCHEMA_VERSION,
        "files_scanned": files_scanned,
        "count": len(findings),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def parse_json(text: str) -> list[Finding]:
    """Inverse of :func:`render_json` (ignores unknown keys)."""
    document = json.loads(text)
    version = document.get("version")
    if version != JSON_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported repolint JSON version {version!r} "
            f"(expected {JSON_SCHEMA_VERSION})"
        )
    return [Finding.from_dict(item) for item in document["findings"]]
