"""Command-line front end: ``python -m tools.repolint [paths...]``.

Exit codes: 0 clean, 1 findings (including parse errors reported as
``parse-error`` findings), 2 usage errors (unknown rule names, missing
paths). Run from the repository root so the path-scoped rules see
``src/repro/...``-relative locations.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.repolint.engine import all_rules, run_paths
from tools.repolint.reporters import render_json, render_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repolint",
        description=(
            "AST-based contract checker enforcing this repository's "
            "execution invariants (see ROADMAP.md 'Static contracts')."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tools", "benchmarks"],
        help="files or directories to check (default: src tools benchmarks)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root anchoring rule path scopes (default: cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rules (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.paths) if rule.paths else "everywhere"
            print(f"{rule.name}: {rule.description} [{scope}]")
        return 0

    root = Path(args.root)
    missing = [
        raw
        for raw in args.paths
        if not (Path(raw) if Path(raw).is_absolute() else root / raw).exists()
    ]
    if missing:
        print(
            f"repolint: path(s) not found: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    scanned = 0

    def _count(_: Path) -> None:
        nonlocal scanned
        scanned += 1

    try:
        findings = run_paths(
            args.paths, root=root, select=args.select, on_file=_count
        )
    except ValueError as exc:  # unknown --select rule name
        print(f"repolint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(findings, scanned))
    else:
        print(render_text(findings, scanned))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
