"""``python -m tools.repolint`` entry point."""

import sys

from tools.repolint.cli import main

sys.exit(main())
