"""repolint engine: file contexts, suppressions, registry, runner.

A *rule* is a class with a ``name``, a one-line ``description``, a
``paths`` prefix tuple scoping which repository files it applies to,
and a ``check(ctx)`` generator yielding :class:`Finding`s. Rules are
registered by :func:`register` (the :mod:`tools.repolint.rules` module
registers the repository's catalogue on import) and run by
:func:`run_paths` / :func:`check_file` / :func:`check_source`.

Suppressions are per line::

    something()  # repolint: disable=rule-a,rule-b -- justification
    something()  # repolint: disable=all -- why nothing applies here

A suppression on the line a finding is reported at silences it. For
findings reported at a ``def``/``class`` line (e.g. a whole-method
finding from ``epoch-discipline``), the comment therefore goes on the
``def`` line itself. ``# alloc-ok`` is a separate, rule-specific
marker consumed by ``hot-path-alloc`` (see rules.py); the engine just
exposes the raw comment text per line so rules can implement such
markers.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "check_file",
    "check_source",
    "iter_python_files",
    "register",
    "run_paths",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repolint:\s*disable=([A-Za-z0-9_,\-\s]+?)(?:\s*(?:--|—).*)?$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location.

    Attributes:
        rule: Registered rule name (e.g. ``"rng-discipline"``).
        path: Repository-relative POSIX path of the file.
        line: 1-based line the finding anchors to (suppression target).
        col: 0-based column offset.
        message: Human-readable statement of the violated contract.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @staticmethod
    def from_dict(data: dict[str, object]) -> "Finding":
        return Finding(
            rule=str(data["rule"]),
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[arg-type]
            col=int(data["col"]),  # type: ignore[arg-type]
            message=str(data["message"]),
        )


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: str  # repository-relative, POSIX separators
    source: str
    tree: ast.AST
    #: line -> comment text (including the leading ``#``).
    comments: dict[int, str] = field(default_factory=dict)
    #: line -> rule names disabled on that line (``{"all"}`` disables
    #: every rule).
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    def under(self, *prefixes: str) -> bool:
        """Whether this file lives under any of the path prefixes."""
        return any(
            self.path == p.rstrip("/") or self.path.startswith(p.rstrip("/") + "/")
            for p in prefixes
        )

    def suppressed(self, rule: str, line: int) -> bool:
        names = self.suppressions.get(line)
        return names is not None and (rule in names or "all" in names)


class Rule:
    """Base class for rules; subclasses override :meth:`check`.

    Attributes:
        name: Unique kebab-case identifier used in reports and
            ``disable=`` comments.
        description: One-line summary shown by ``--list-rules``.
        paths: Repository path prefixes the rule applies to. The
            engine skips files outside them.
    """

    name: str = ""
    description: str = ""
    paths: tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        return not self.paths or ctx.under(*self.paths)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.name,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule = rule_cls()
    if not rule.name:
        raise ValueError(f"rule {rule_cls.__name__} has no name")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return rule_cls


def all_rules() -> list[Rule]:
    """The registered rules, importing the repository catalogue on
    first use, sorted by name for stable report order."""
    if not _REGISTRY:
        from tools.repolint import rules as _rules  # noqa: F401

    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def _scan_comments(source: str) -> tuple[dict[int, str], dict[int, set[str]]]:
    """Extract per-line comments and ``repolint: disable=`` sets.

    Tolerates tokenization failures (the AST parse reports those) by
    returning what was scanned up to the failure point.
    """
    comments: dict[int, str] = {}
    suppressions: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            line = tok.start[0]
            comments[line] = tok.string
            match = _SUPPRESS_RE.search(tok.string)
            if match:
                names = {
                    part.strip()
                    for part in match.group(1).split(",")
                    if part.strip()
                }
                if names:
                    suppressions.setdefault(line, set()).update(names)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments, suppressions


def check_source(
    source: str,
    rel_path: str,
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Run rules over in-memory source pretending to live at
    ``rel_path`` (repository-relative, POSIX separators).

    This is the fixture-test entry point: path-scoped rules see the
    pretended location, so a snippet can exercise e.g. the
    ``src/repro/graphs/``-only dtype rule without touching the tree.
    A syntax error yields a single ``parse-error`` finding.
    """
    rules = list(rules) if rules is not None else all_rules()
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="parse-error",
                path=rel_path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"could not parse: {exc.msg}",
            )
        ]
    comments, suppressions = _scan_comments(source)
    ctx = FileContext(
        path=rel_path,
        source=source,
        tree=tree,
        comments=comments,
        suppressions=suppressions,
    )
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressed(rule.name, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def check_file(
    file_path: Path,
    root: Path,
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Run rules over one file; ``root`` anchors the relative path.

    Files outside ``root`` (e.g. scratch dirs handed straight to the
    CLI) are reported under their absolute path; path-scoped rules
    simply do not apply to them.
    """
    resolved = file_path.resolve()
    try:
        rel = resolved.relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = resolved.as_posix()
    source = file_path.read_text(encoding="utf-8")
    return check_source(source, rel, rules)


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under the given files/directories, sorted,
    skipping ``__pycache__`` and hidden directories."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(path).parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts):
                continue
            yield candidate


def run_paths(
    paths: Iterable[str | Path],
    root: str | Path | None = None,
    rules: Iterable[Rule] | None = None,
    select: Iterable[str] | None = None,
    on_file: Callable[[Path], None] | None = None,
) -> list[Finding]:
    """Run the pass over files/directories and return all findings.

    Args:
        paths: Files or directories, relative to ``root``.
        root: Repository root anchoring relative report paths
            (default: current working directory).
        rules: Explicit rule objects (default: full registry).
        select: If given, restrict to these rule names (unknown names
            raise ``ValueError`` so CI typos fail loudly).
        on_file: Optional progress callback per scanned file.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    active = list(rules) if rules is not None else all_rules()
    if select is not None:
        wanted = set(select)
        known = {r.name for r in active}
        unknown = wanted - known
        if unknown:
            raise ValueError(f"unknown rule name(s): {sorted(unknown)}")
        active = [r for r in active if r.name in wanted]
    findings: list[Finding] = []
    resolved = [
        p if (p := Path(raw)).is_absolute() else root_path / p for raw in paths
    ]
    for file_path in iter_python_files(resolved):
        if on_file is not None:
            on_file(file_path)
        findings.extend(check_file(file_path, root_path, active))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
