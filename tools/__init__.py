"""Repository tooling: benchmark drivers and the repolint static pass.

The scripts (``bench_regression.py``, ``bench_serving.py``,
``run_experiments.py``) are run directly; the :mod:`tools.repolint`
package is run as ``python -m tools.repolint`` from the repository
root. This ``__init__`` exists only to make that module path
importable.
"""
