#!/usr/bin/env python3
"""Run the declarative scenario corpus and regenerate its artifacts.

    python tools/run_scenarios.py --quick

executes the full quick Topology × Demand × Failure × Backend matrix
(:func:`repro.scenarios.quick_matrix`), asserting every correctness
invariant per scenario — demand conservation, congestion soundness and
the (1+ε)·α guarantee, max-flow value vs exact Dinic, planted-
bottleneck detection, failure epoch accounting, and bit-identical
flows across backends — and then writes the two checked-in artifacts:

* ``EXPERIMENTS.md`` — the deterministic experiments report (no
  wall-clock numbers; regenerating on a clean tree is a no-op diff);
* ``BENCH_scenarios.json`` — route-time baselines for the benchmark
  subset, gated by ``tools/bench_regression.py``.

``--full`` runs the widened nightly matrix (report to stdout, no
artifacts); ``--select SUBSTR`` runs the matching quick-matrix subset
and prints per-record JSON without touching the artifacts. A failed
invariant exits non-zero with the violating scenario in the message.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.errors import ReproError  # noqa: E402
from repro.scenarios import full_matrix, quick_matrix, run_matrix  # noqa: E402
from repro.scenarios.report import (  # noqa: E402
    scenario_record_json,
    scenario_report,
    write_bench,
    write_experiments,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick",
        action="store_true",
        help="run the CI quick matrix and write the artifacts (default)",
    )
    mode.add_argument(
        "--full",
        action="store_true",
        help="run the widened nightly matrix (stdout report only)",
    )
    mode.add_argument(
        "--select",
        metavar="SUBSTR",
        help="run quick-matrix scenarios whose name contains SUBSTR; "
        "prints per-record JSON, writes no artifacts",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker count for the thread/process backends (default 2)",
    )
    parser.add_argument(
        "--experiments",
        type=Path,
        default=REPO_ROOT / "EXPERIMENTS.md",
        help="where --quick writes the deterministic report",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_scenarios.json",
        help="where --quick writes the benchmark baseline rows",
    )
    args = parser.parse_args(argv)

    if args.full:
        scenarios = full_matrix()
        title = "Scenario experiments (full matrix)"
    elif args.select is not None:
        scenarios = [
            s for s in quick_matrix() if args.select in s.name
        ]
        if not scenarios:
            print(f"no quick-matrix scenario matches {args.select!r}")
            return 2
        title = f"Scenario experiments (selection {args.select!r})"
    else:
        scenarios = quick_matrix()
        title = "Scenario experiments (quick matrix)"

    print(f"running {len(scenarios)} scenarios ...")
    try:
        result = run_matrix(
            scenarios,
            workers=args.workers,
            progress=lambda line: print(f"  {line}", flush=True),
        )
    except ReproError as exc:
        print(f"SCENARIO FAILURE: {exc}", file=sys.stderr)
        return 1

    if args.select is not None:
        for record in result.records:
            print(json.dumps(scenario_record_json(record)))
    elif args.full:
        print(scenario_report(result, title))
    else:
        write_experiments(result, args.experiments, title)
        write_bench(result, args.out)
        print(f"wrote {args.experiments}")
        print(f"wrote {args.out}")

    checked = sum(record.invariants_checked for record in result.records)
    print(
        f"{result.groups} groups, {len(result.records)} scenarios, "
        f"{checked} invariant checks, all passed "
        f"({result.total_seconds:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
