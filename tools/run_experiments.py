#!/usr/bin/env python3
"""Regenerate every experiment table from EXPERIMENTS.md in one run.

This is the standalone (non-pytest) entry point:

    python tools/run_experiments.py [--quick]

It executes the same measurements as ``pytest benchmarks/
--benchmark-only -s`` but prints only the tables, so the output can be
diffed against EXPERIMENTS.md directly. ``--quick`` shrinks the sweeps.
"""

from __future__ import annotations

import argparse
import itertools
import sys

import numpy as np

from repro.congest import CostModel, distributed_push_relabel
from repro.core import build_congestion_approximator, max_flow
from repro.core.accelerated import accelerated_almost_route
from repro.core.almost_route import almost_route
from repro.flow import dinic_max_flow, gomory_hu_tree
from repro.graphs.cuts import cut_capacity
from repro.graphs.generators import (
    barbell,
    complete,
    grid,
    random_connected,
    random_regular_expander,
    torus,
)
from repro.lsst import akpw_spanning_tree, summarize_stretch
from repro.sparsify import sparsify
from repro.util.validation import st_demand


def header(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 66 - len(title)))


def e1_rounds(quick: bool) -> None:
    header("E1: rounds vs baselines (constant-diameter barbells)")
    sizes = (6, 10) if quick else (6, 10, 14)
    for k in sizes:
        g = barbell(k, bridge_capacity=1.0, rng=905, max_capacity=10)
        pr = distributed_push_relabel(g, 0, k)
        model = CostModel.for_graph(g)
        print(
            f"  n={g.num_nodes:3d} m={g.num_edges:4d} D={g.diameter()} "
            f"push_relabel={pr.rounds:4d} trivial={g.num_edges + 6:4d} "
            f"D+sqrt(n)={model.base:5.1f} "
            f"thm1.1(eps=.5)={model.theorem_1_1_bound(0.5):7.0f}"
        )


def e2_quality(quick: bool) -> None:
    header("E2: value / maxflow per family and epsilon")
    families = [
        ("random", random_connected(36, 0.12, rng=911), 0, 35),
        ("grid", grid(6, 6, rng=912), 0, 35),
        ("expander", random_regular_expander(36, rng=913), 0, 35),
    ]
    eps_values = (0.4,) if quick else (0.8, 0.4, 0.2)
    for name, g, s, t in families:
        exact = dinic_max_flow(g, s, t).value
        approx = build_congestion_approximator(g, rng=914)
        ratios = {
            eps: max_flow(g, s, t, epsilon=eps, approximator=approx).value
            / exact
            for eps in eps_values
        }
        cells = " ".join(f"eps={e}:{r:.4f}" for e, r in ratios.items())
        print(f"  {name:>9}: exact={exact:7.1f}  {cells}")


def e3_stretch(quick: bool) -> None:
    header("E3: AKPW average stretch vs n (tori)")
    sides = (6, 9) if quick else (6, 9, 12)
    for side in sides:
        g = torus(side, side, rng=921)
        values = [
            summarize_stretch(g, akpw_spanning_tree(g, rng=s).tree)["average"]
            for s in range(3)
        ]
        print(f"  n={g.num_nodes:4d}: avg stretch {np.mean(values):5.2f}")


def e4_approximator(quick: bool) -> None:
    header("E4: worst opt/estimate over all s-t pairs, by construction")
    g = random_connected(16, 0.25, rng=1003)
    ght = gomory_hu_tree(g)
    for method in ("hierarchy", "mwu", "bfs"):
        approx = build_congestion_approximator(
            g, num_trees=5, rng=1004, method=method, alpha=1.0
        )
        worst = 1.0
        for u, v in itertools.combinations(range(16), 2):
            opt = 1.0 / ght.min_cut_value(u, v)
            estimate = approx.estimate(st_demand(g, u, v))
            worst = max(worst, opt / max(estimate, 1e-30))
        print(f"  {method:>9}: worst alpha = {worst:.3f}")


def e5_sparsifier(quick: bool) -> None:
    header("E5: cut sparsifier size and cut preservation")
    sizes = (60,) if quick else (60, 90)
    for n in sizes:
        g = complete(n, rng=941)
        result = sparsify(g, rng=944)
        rng = np.random.default_rng(945)
        ratios = []
        for _ in range(25):
            side = [v for v in range(n) if rng.random() < 0.5]
            if 0 < len(side) < n:
                ratios.append(
                    cut_capacity(result.graph, side) / cut_capacity(g, side)
                )
        print(
            f"  K{n}: m {g.num_edges} -> {result.graph.num_edges}, "
            f"cut ratio [{min(ratios):.3f}, {max(ratios):.3f}]"
        )


def e6_descent(quick: bool) -> None:
    header("E6: descent iterations (plain vs accelerated)")
    g = random_connected(24, 0.15, rng=951)
    approx = build_congestion_approximator(g, rng=952)
    demand = st_demand(g, 0, 23)
    eps_values = (0.4,) if quick else (0.8, 0.4, 0.2)
    for eps in eps_values:
        plain = almost_route(g, approx, demand, eps)
        fast = accelerated_almost_route(g, approx, demand, eps)
        print(
            f"  eps={eps}: plain={plain.iterations:5d} "
            f"accelerated={fast.iterations:5d}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller sweeps")
    args = parser.parse_args(argv)
    for experiment in (
        e1_rounds,
        e2_quality,
        e3_stretch,
        e4_approximator,
        e5_sparsifier,
        e6_descent,
    ):
        experiment(args.quick)
    print("\n(E7-E9 structural experiments: run "
          "`pytest benchmarks/ --benchmark-only -s`.)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
