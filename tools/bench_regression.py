#!/usr/bin/env python
"""Benchmark-regression gate for CI.

Re-measures the ``approximator_build_n{256,1024,4096}`` rows (median
wall-clock of ``build_congestion_approximator``), the apply-path rows
``approximator_apply_n*`` / ``approximator_apply_transpose_n*`` /
``almost_route_n*`` (median wall-clock of the flat stacked operator
products and one AlmostRoute solve, same configuration the benchmark
harness records) and the execution-backend rows ``*_sharded_n4096``
(median wall-clock of the sharded R·b / Rᵀ·g products, frontier BFS,
multi-source hop distances and the stacked MWU length evaluation under
the ``REPRO_WORKERS=2`` thread-pool config, compared against the
checked-in *sharded* medians; the live serial-vs-sharded ratio is
printed alongside for visibility) and the serving rows
``route_batch_q{8,64}_n1024`` (median wall-clock of one stacked
``almost_route_batch`` call, compared against the checked-in *batched*
medians with the live sequential-vs-batched ratio printed alongside)
and fails — exit code 1 — if any median regresses more than
``--factor`` (default 2×) versus the checked-in
``BENCH_graphcore.json`` baseline.

When a checked-in ``BENCH_scenarios.json`` exists (written by
``tools/run_scenarios.py --quick``), the gate also re-measures the
scenario-corpus benchmark subset — serial routing of each named
scenario's demand plane, with the full invariant set asserted on the
same run — against the recorded ``after_s`` rows under the same
``--factor``.

When a checked-in ``BENCH_serving.json`` exists (written by
``tools/bench_serving.py``), the gate also enforces that its recorded
``batch_q64_speedup`` — batched serving throughput vs sequential
one-shot routing — has not been committed below ``--serving-floor``
(default 2.0; the acceptance run records ≥3×), and that the recorded
``update_latency_speedup`` — first-re-route latency after a ~1%
capacity delta under ``refresh="rebuild"`` vs ``refresh="incremental"``
— has not been committed below ``--update-floor`` (default 1.5).

Run from the repository root with ``src`` importable::

    PYTHONPATH=src python tools/bench_regression.py

The measurement configuration lives in ``benchmarks/conftest.py``
(``APPROXIMATOR_BENCH_CONFIG``) so the gate and the recorded baselines
can never drift apart.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", REPO_ROOT / "benchmarks" / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="fail when median wall-clock exceeds baseline × factor",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_graphcore.json",
        help="path to the checked-in baseline JSON",
    )
    parser.add_argument(
        "--serving-baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_serving.json",
        help="path to the checked-in serving benchmark JSON "
        "(skipped when absent)",
    )
    parser.add_argument(
        "--serving-floor",
        type=float,
        default=2.0,
        help="minimum recorded batch_q64_speedup in the serving "
        "baseline (guards against committing a degraded serving run)",
    )
    parser.add_argument(
        "--update-floor",
        type=float,
        default=1.5,
        help="minimum recorded update_latency_speedup (incremental vs "
        "rebuild refresh) in the serving baseline",
    )
    parser.add_argument(
        "--scenarios-baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_scenarios.json",
        help="path to the checked-in scenario-corpus baseline JSON "
        "written by tools/run_scenarios.py --quick (skipped when "
        "absent)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())["metrics"]
    bench = _load_bench_module()
    measured = bench.measure_approximator_benchmarks()
    measured.update(bench.measure_apply_benchmarks())
    backend_rows = bench.measure_execution_backend_benchmarks()
    for name, pair in backend_rows.items():
        measured[name] = pair["sharded_s"]
        ratio = pair["serial_s"] / pair["sharded_s"]
        print(
            f"info {name}: serial={pair['serial_s']:.6f}s "
            f"sharded={pair['sharded_s']:.6f}s "
            f"(sharded is {ratio:.2f}x serial on this host)"
        )
    serving_rows = bench.measure_serving_benchmarks()
    for name, pair in serving_rows.items():
        measured[name] = pair["batched_s"]
        ratio = pair["sequential_s"] / pair["batched_s"]
        print(
            f"info {name}: sequential={pair['sequential_s']:.6f}s "
            f"batched={pair['batched_s']:.6f}s "
            f"(batched is {ratio:.2f}x sequential on this host)"
        )

    failures = []
    for name, current_s in measured.items():
        row = baseline.get(name)
        if row is None:
            print(f"SKIP {name}: no baseline row ({current_s:.4f}s measured)")
            continue
        base_s = float(row["after_s"])
        ratio = current_s / base_s
        status = "FAIL" if ratio > args.factor else "ok"
        print(
            f"{status:>4} {name}: baseline={base_s:.4f}s "
            f"current={current_s:.4f}s ratio={ratio:.2f}x "
            f"(limit {args.factor:.1f}x)"
        )
        if ratio > args.factor:
            failures.append(name)

    # Scenario-corpus routing rows: re-measure the benchmark subset of
    # the quick matrix (serial, full invariant set asserted on the same
    # run) against the checked-in BENCH_scenarios.json baseline.
    if args.scenarios_baseline.exists():
        scenario_baseline = json.loads(
            args.scenarios_baseline.read_text()
        )["metrics"]
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.scenarios.report import measure_scenario_benchmarks

        for name, current_s in measure_scenario_benchmarks().items():
            row = scenario_baseline.get(name)
            if row is None:
                print(
                    f"SKIP {name}: no baseline row "
                    f"({current_s:.4f}s measured)"
                )
                continue
            base_s = float(row["after_s"])
            ratio = current_s / base_s
            status = "FAIL" if ratio > args.factor else "ok"
            print(
                f"{status:>4} {name}: baseline={base_s:.4f}s "
                f"current={current_s:.4f}s ratio={ratio:.2f}x "
                f"(limit {args.factor:.1f}x)"
            )
            if ratio > args.factor:
                failures.append(name)
    else:
        print(
            f"SKIP scenario rows: {args.scenarios_baseline.name} not found"
        )

    # Serving-throughput floor: the checked-in BENCH_serving.json is a
    # recorded acceptance run, not re-measured here (the full profile
    # costs minutes); the gate keeps a degraded recording from landing.
    if args.serving_baseline.exists():
        serving = json.loads(args.serving_baseline.read_text())
        speedup = serving.get("throughput", {}).get("batch_q64_speedup")
        if speedup is None:
            print(
                f"SKIP serving floor: no batch_q64_speedup in "
                f"{args.serving_baseline.name} "
                f"(profile={serving.get('profile')!r})"
            )
        else:
            status = "FAIL" if speedup < args.serving_floor else "ok"
            print(
                f"{status:>4} serving batch_q64_speedup: recorded="
                f"{speedup:.2f}x (floor {args.serving_floor:.1f}x)"
            )
            if speedup < args.serving_floor:
                failures.append("serving_batch_q64_speedup")
        update = serving.get(
            "update_latency_incremental_vs_rebuild", {}
        ).get("update_latency_speedup")
        if update is None:
            print(
                f"SKIP update-latency floor: no update_latency_speedup "
                f"in {args.serving_baseline.name} "
                f"(profile={serving.get('profile')!r})"
            )
        else:
            status = "FAIL" if update < args.update_floor else "ok"
            print(
                f"{status:>4} serving update_latency_speedup: recorded="
                f"{update:.2f}x (floor {args.update_floor:.1f}x)"
            )
            if update < args.update_floor:
                failures.append("serving_update_latency_speedup")
    else:
        print(f"SKIP serving floor: {args.serving_baseline.name} not found")

    if failures:
        print(f"benchmark regression in: {', '.join(failures)}")
        return 1
    print("benchmark gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
