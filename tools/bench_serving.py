#!/usr/bin/env python
"""Sustained-load serving benchmark — emits ``BENCH_serving.json``.

Measures the serving layer (:class:`repro.serve.FlowServer`) the way a
service is measured, in the standup → run → analysis → report shape:

1. **Standup** — build the benchmark graphs and servers (the one-time
   approximator build the serve-many economics amortize).
2. **Run** —
   * *batch throughput*: route ``Q`` fresh demands at ``n`` through
     ``server.route_batch`` (accelerated solver, chunked stacked
     batches) and compare aggregate throughput against ``Q`` sequential
     one-shot ``almost_route`` calls on the **same approximator** — the
     pre-serving workflow — plus a solver-matched control of ``Q``
     sequential ``accelerated_almost_route`` calls, so the report
     separates the solver's contribution from the batching's.
   * *sustained load*: an open-loop arrival process (Poisson, rate set
     as a fraction of the server's measured capacity, arrival times
     fixed in advance so queueing delay is charged to latency) over a
     mixed stream of single and batched queries with a popular-query
     repeat fraction that exercises the result cache.
   * *update latency*: repeated small capacity deltas (~1% of edges)
     against two identically-built servers, one ``refresh="rebuild"``
     and one ``refresh="incremental"``; the measured quantity is the
     latency of the first re-route after each mutation — full
     approximator rebuild + cold solve vs journal-scoped refresh +
     warm-started solve.
3. **Analysis** — p50/p95/p99/mean latency, throughput, speedups,
   cache counters.
4. **Report** — written to ``--out`` (default ``BENCH_serving.json``),
   consumed by ``tools/bench_regression.py`` (which enforces floors on
   ``batch_q64_speedup`` and the incremental-vs-rebuild update
   speedup).

Run from the repository root::

    PYTHONPATH=src python tools/bench_serving.py            # full (~3 min)
    PYTHONPATH=src python tools/bench_serving.py --quick    # CI smoke

Latencies are measured on a virtual clock driven by real service
times: the driver is single-threaded, so request i starts at
``max(arrival_i, finish_{i-1})`` and its open-loop latency is
``finish_i − arrival_i`` (service + queueing).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import (  # noqa: E402
    accelerated_almost_route,
    almost_route,
    build_congestion_approximator,
)
from repro.graphs.generators import random_connected  # noqa: E402
from repro.parallel import ParallelConfig  # noqa: E402
from repro.serve import FlowServer  # noqa: E402

#: (n, edge probability, Q, epsilon) of the batch-throughput experiment
#: per profile. The full profile is the acceptance row: Q=64 at n=1024.
THROUGHPUT_PROFILES = {
    "full": (1024, 0.012, 64, 0.2),
    "quick": (256, 0.05, 16, 0.25),
}
#: (n, edge probability, requests, epsilon) of the sustained-load run.
LOAD_PROFILES = {
    "full": (256, 0.05, 300, 0.25),
    "quick": (256, 0.05, 60, 0.25),
}
#: (n, edge probability, update cycles, epsilon) of the update-latency
#: experiment. Each cycle degrades ~UPDATE_FRACTION of the edges and
#: measures the first re-route on each refresh policy.
UPDATE_PROFILES = {
    "full": (512, 0.025, 5, 0.25),
    "quick": (192, 0.06, 3, 0.25),
}
#: Fraction of edges each update cycle touches (the "small delta"
#: regime the incremental policy targets) and the capacity multiplier.
UPDATE_FRACTION = 0.01
UPDATE_FACTOR = 0.9
#: Offered load as a fraction of measured single-query capacity.
OFFERED_LOAD = 0.7
#: Request mix: fraction of batch requests, columns per batch request,
#: and the fraction of single queries drawn from a small popular set
#: (repeats — the cache-hit path of a production demand stream).
BATCH_FRACTION = 0.25
BATCH_COLUMNS = 8
REPEAT_FRACTION = 0.3
POPULAR_SET = 6
GRAPH_SEED = 940
BUILD_SEED = 941
DEMAND_SEED = 77


def _demand_plane(n: int, num_queries: int, rng: np.random.Generator):
    plane = rng.normal(size=(num_queries, n))
    plane -= plane.mean(axis=1, keepdims=True)
    return plane


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return float("nan")
    idx = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[idx]


def run_batch_throughput(profile: str) -> dict:
    """Aggregate throughput: chunked batch serving vs sequential
    one-shot calls on one shared approximator."""
    n, p, num_queries, epsilon = THROUGHPUT_PROFILES[profile]
    print(f"[standup] building n={n} graph + approximator ...")
    graph = random_connected(n, p, rng=GRAPH_SEED)
    t0 = time.perf_counter()
    approximator = build_congestion_approximator(
        graph, rng=BUILD_SEED, alpha=1.0, parallel=ParallelConfig()
    )
    build_s = time.perf_counter() - t0
    rng = np.random.default_rng(DEMAND_SEED)
    plane = _demand_plane(n, num_queries, rng)

    print(f"[run] sequential baseline: {num_queries} one-shot almost_route ...")
    t0 = time.perf_counter()
    plain_iters = [
        almost_route(graph, approximator, plane[q], epsilon).iterations
        for q in range(num_queries)
    ]
    sequential_plain_s = time.perf_counter() - t0

    print(f"[run] solver-matched control: {num_queries} accelerated calls ...")
    t0 = time.perf_counter()
    for q in range(num_queries):
        accelerated_almost_route(graph, approximator, plane[q], epsilon)
    sequential_accelerated_s = time.perf_counter() - t0

    print("[run] batched serving path ...")
    server = FlowServer(
        graph,
        approximator=approximator,
        epsilon=epsilon,
        solver="accelerated",
    )
    t0 = time.perf_counter()
    results = server.route_batch(plane, use_cache=False)
    batched_s = time.perf_counter() - t0
    batch_iters = [r.iterations for r in results]

    return {
        "n": n,
        "num_edges": graph.num_edges,
        "num_queries": num_queries,
        "epsilon": epsilon,
        "solver": "accelerated",
        "max_batch": server.max_batch,
        "approximator_build_s": round(build_s, 4),
        "sequential_plain_s": round(sequential_plain_s, 4),
        "sequential_plain_qps": round(num_queries / sequential_plain_s, 3),
        "sequential_accelerated_s": round(sequential_accelerated_s, 4),
        "batched_s": round(batched_s, 4),
        "batched_qps": round(num_queries / batched_s, 3),
        f"batch_q{num_queries}_speedup": round(
            sequential_plain_s / batched_s, 2
        ),
        f"batch_q{num_queries}_speedup_vs_accelerated": round(
            sequential_accelerated_s / batched_s, 2
        ),
        "plain_iterations_median": int(np.median(plain_iters)),
        "batched_iterations_median": int(np.median(batch_iters)),
    }


def run_sustained_load(profile: str) -> dict:
    """Open-loop mixed single/batch stream against one warm server."""
    n, p, num_requests, epsilon = LOAD_PROFILES[profile]
    print(f"[standup] load server: n={n} graph + approximator ...")
    graph = random_connected(n, p, rng=GRAPH_SEED + 1)
    server = FlowServer(
        graph, epsilon=epsilon, solver="accelerated", rng=BUILD_SEED + 1
    )
    rng = np.random.default_rng(DEMAND_SEED + 1)
    popular = _demand_plane(n, POPULAR_SET, rng)

    # Calibrate: median single-query service time sets the arrival rate.
    calib = _demand_plane(n, 5, rng)
    service = []
    for q in range(calib.shape[0]):
        t0 = time.perf_counter()
        server.route(calib[q], use_cache=False)
        service.append(time.perf_counter() - t0)
    service.sort()
    # A batch request costs up to BATCH_COLUMNS single-query services
    # (less after batching/caching), so offered load is calibrated on
    # expected columns per request — otherwise the queue is unstable
    # by construction and latency measures backlog, not the server.
    expected_columns = (1 - BATCH_FRACTION) + BATCH_FRACTION * BATCH_COLUMNS
    arrival_rate = OFFERED_LOAD / (
        service[len(service) // 2] * expected_columns
    )

    # Pre-generate the open-loop schedule: arrival times are fixed in
    # advance, so a slow server pays queueing delay in latency instead
    # of silently slowing the workload down (closed-loop would).
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, num_requests))
    kinds = rng.random(num_requests)
    requests = []
    for i in range(num_requests):
        if kinds[i] < BATCH_FRACTION:
            requests.append(("batch", _demand_plane(n, BATCH_COLUMNS, rng)))
        elif kinds[i] < BATCH_FRACTION + (1 - BATCH_FRACTION) * REPEAT_FRACTION:
            requests.append(("single", popular[rng.integers(POPULAR_SET)]))
        else:
            requests.append(("single", _demand_plane(n, 1, rng)[0]))

    print(f"[run] {num_requests} open-loop requests "
          f"(rate {arrival_rate:.1f}/s, {BATCH_FRACTION:.0%} batches) ...")
    latencies: list[float] = []
    queries = 0
    busy_until = 0.0
    wall0 = time.perf_counter()
    for arrival, (kind, demand) in zip(arrivals, requests):
        t0 = time.perf_counter()
        if kind == "batch":
            served = server.route_batch(demand)
            queries += len(served)
        else:
            server.route(demand)
            queries += 1
        service_s = time.perf_counter() - t0
        start = max(busy_until, float(arrival))
        busy_until = start + service_s
        latencies.append(busy_until - float(arrival))
    wall_s = time.perf_counter() - wall0

    latencies.sort()
    cache = server.cache_stats()
    span = max(busy_until, float(arrivals[-1]))
    return {
        "n": n,
        "num_requests": num_requests,
        "num_queries": queries,
        "epsilon": epsilon,
        "arrival": "poisson-open-loop",
        "offered_load": OFFERED_LOAD,
        "arrival_rate_per_s": round(arrival_rate, 2),
        "mix": {
            "batch_fraction": BATCH_FRACTION,
            "batch_columns": BATCH_COLUMNS,
            "repeat_fraction": REPEAT_FRACTION,
        },
        "latency_ms": {
            "p50": round(_percentile(latencies, 0.50) * 1e3, 2),
            "p95": round(_percentile(latencies, 0.95) * 1e3, 2),
            "p99": round(_percentile(latencies, 0.99) * 1e3, 2),
            "mean": round(float(np.mean(latencies)) * 1e3, 2),
        },
        "throughput_qps": round(queries / span, 2),
        "service_wall_s": round(wall_s, 3),
        "cache": {
            "hits": cache.hits,
            "misses": cache.misses,
            "hit_rate": round(cache.hits / max(1, cache.hits + cache.misses), 3),
        },
    }


def run_update_latency(profile: str) -> dict:
    """First-re-route latency after a small capacity delta:
    ``refresh="rebuild"`` vs ``refresh="incremental"``.

    Two servers are built over identically-seeded graphs and warmed on
    the same demand. Each cycle applies the same ~1% capacity
    degradation to both graphs and times the next ``route`` call for
    the same demand — which pays the policy's full sync cost (cold
    approximator rebuild vs journal-scoped refresh + warm start) plus
    the solve. The speedup row is the gated acceptance metric.
    """
    n, p, cycles, epsilon = UPDATE_PROFILES[profile]
    print(f"[standup] update-latency servers: two n={n} graphs ...")
    servers = {}
    for policy in ("rebuild", "incremental"):
        graph = random_connected(n, p, rng=GRAPH_SEED + 2)
        servers[policy] = FlowServer(
            graph,
            epsilon=epsilon,
            solver="accelerated",
            rng=BUILD_SEED + 2,
            refresh=policy,
        )
    rng = np.random.default_rng(DEMAND_SEED + 2)
    demand = _demand_plane(n, 1, rng)[0]
    for server in servers.values():
        server.route(demand)  # warm: build + populate the cache

    num_edges = servers["rebuild"].graph.num_edges
    touched = max(1, int(num_edges * UPDATE_FRACTION))
    print(f"[run] {cycles} update cycles, {touched} edges each ...")
    latencies: dict[str, list[float]] = {name: [] for name in servers}
    for _ in range(cycles):
        edges = rng.choice(num_edges, size=touched, replace=False)
        for name, server in servers.items():
            for eid in edges.tolist():
                server.graph.set_capacity(
                    int(eid), server.graph.capacity(int(eid)) * UPDATE_FACTOR
                )
            t0 = time.perf_counter()
            server.route(demand)
            latencies[name].append(time.perf_counter() - t0)

    stats = servers["incremental"].stats()
    rebuild_s = float(np.median(latencies["rebuild"]))
    incremental_s = float(np.median(latencies["incremental"]))
    return {
        "n": n,
        "num_edges": num_edges,
        "cycles": cycles,
        "edges_touched_per_cycle": touched,
        "update_fraction": UPDATE_FRACTION,
        "epsilon": epsilon,
        "solver": "accelerated",
        "rebuild_update_s_median": round(rebuild_s, 4),
        "incremental_update_s_median": round(incremental_s, 4),
        "update_latency_speedup": round(rebuild_s / incremental_s, 2),
        "incremental_refreshes": stats.incremental_refreshes,
        "warm_starts": stats.warm_starts,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small CI-smoke profile (n=256, Q=16) instead of the full "
        "acceptance profile (n=1024, Q=64)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_serving.json",
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    profile = "quick" if args.quick else "full"

    throughput = run_batch_throughput(profile)
    load = run_sustained_load(profile)
    update = run_update_latency(profile)

    report = {
        "description": (
            "Serving-layer benchmark (FlowServer). throughput: aggregate "
            "time to route Q fresh demands — sequential one-shot "
            "almost_route calls on a shared approximator (the pre-serving "
            "workflow) vs sequential accelerated calls (solver-matched "
            "control) vs the server's chunked accelerated batch; "
            "batch_qN_speedup = sequential_plain_s / batched_s. "
            "sustained_load: open-loop Poisson arrivals of mixed "
            "single/batch queries with a popular-repeat fraction; "
            "latency = finish - arrival on a virtual clock driven by "
            "real service times, so queueing delay is included. "
            "All served results are bit-identical per column to the "
            "corresponding one-shot solver calls. "
            "update_latency_incremental_vs_rebuild: first-re-route "
            "latency after repeated ~1% capacity deltas — full "
            "approximator rebuild + cold solve (refresh='rebuild') vs "
            "journal-scoped refresh + warm-started solve "
            "(refresh='incremental'); update_latency_speedup = "
            "rebuild_median / incremental_median."
        ),
        "profile": profile,
        "throughput": throughput,
        "sustained_load": load,
        "update_latency_incremental_vs_rebuild": update,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    q = throughput["num_queries"]
    speedup = throughput[f"batch_q{q}_speedup"]
    print(
        f"[report] wrote {args.out.name}: batch_q{q}_speedup={speedup}x, "
        f"load p50={load['latency_ms']['p50']}ms "
        f"p99={load['latency_ms']['p99']}ms "
        f"throughput={load['throughput_qps']} q/s, "
        f"update_latency_speedup={update['update_latency_speedup']}x "
        f"({update['warm_starts']} warm starts)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
