"""Simulating cluster-graph algorithms on the network (Lemma 5.1).

The paper's recursion runs algorithms *on cluster graphs* while the
physical network is G; Lemma 5.1 shows one cluster-graph round can be
simulated in O(D + √n) network rounds. This module implements the
simulation on the message-level simulator, per cluster round:

1. **downcast** — each cluster leader's outgoing message is flooded
   down the cluster's internal spanning tree;
2. **exchange** — for every cluster edge, the two endpoints of its
   realizing physical edge (the ψ map of Definition 5.1) swap the
   clusters' messages;
3. **convergecast** — received values are combined (with a caller-
   supplied associative ``combine``) up the cluster tree to the leader.

This matches the Lemma 5.1 proof for clusters of depth Õ(√n) — the
invariant the hierarchy maintains (Lemma 8.2); the global-BFS
pipelining for oversized clusters is charged analytically by the cost
model. Each message is a constant number of O(log n)-bit words, and the
measured round count is ``2 · max cluster depth + O(1)`` per cluster
round (asserted in tests against the Lemma 5.1 charge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.cluster.cluster_graph import ClusterGraph
from repro.congest.model import CongestNetwork, Message, NodeContext
from repro.errors import ConvergenceError, GraphError
from repro.graphs import kernels

__all__ = ["ClusterExchangeResult", "simulate_cluster_round", "cluster_flood_max"]


@dataclass
class ClusterExchangeResult:
    """One simulated cluster round.

    Attributes:
        leader_values: Per cluster, the combined value of all messages
            received over its incident cluster edges (None if no
            incident edges delivered anything).
        rounds: Network rounds consumed.
    """

    leader_values: list[Any]
    rounds: int


class _ClusterRoundNode:
    """Node program for one cluster round (downcast/exchange/convergecast)."""

    def __init__(
        self,
        node: int,
        cg: ClusterGraph,
        outgoing: Any,
        combine: Callable[[Any, Any], Any],
        children: list[int],
        child_edges: dict[int, int],
        parent_edge: int,
        psi_edges: list[int],
    ) -> None:
        self.node = node
        self.cluster = cg.assignment[node]
        self.is_leader = cg.parent[node] < 0
        self.outgoing = outgoing if self.is_leader else None
        self.combine = combine
        self.children = children
        self.child_edges = child_edges
        self.parent_edge = parent_edge
        self.psi_edges = psi_edges
        self.accumulator: Any = None
        self.leader_value: Any = None
        self._downcast_done = self.is_leader
        self._exchanged = False
        self._pending_children = set(children)
        self._expected_xchg = len(psi_edges)
        self._received_xchg = 0
        self._sent_up = False

    def init(self, ctx: NodeContext) -> None:
        pass

    def _absorb(self, value: Any) -> None:
        if value is None:
            return
        if self.accumulator is None:
            self.accumulator = value
        else:
            self.accumulator = self.combine(self.accumulator, value)

    def on_round(self, ctx: NodeContext, inbox: Sequence[Message]) -> bool:
        for msg in inbox:
            kind, value = msg.payload[0], msg.payload[1]
            if kind == "down":
                self.outgoing = value
                self._downcast_done = True
            elif kind == "xchg":
                self._absorb(value)
                self._received_xchg += 1
            elif kind == "up":
                self._absorb(value)
                self._pending_children.discard(msg.sender)

        # Phase A: forward the leader's message downward once known.
        if self._downcast_done and not self._exchanged:
            for child in self.children:
                ctx.send(self.child_edges[child], ("down", self.outgoing))
            # Phase B: fire the psi exchanges this node manages.
            for eid in self.psi_edges:
                ctx.send(eid, ("xchg", self.outgoing))
            self._exchanged = True
            return False

        # Phase C: once every child reported and every expected psi
        # exchange has arrived, push the accumulator up.
        if (
            self._exchanged
            and not self._pending_children
            and self._received_xchg >= self._expected_xchg
            and not self._sent_up
        ):
            if self.is_leader:
                self.leader_value = self.accumulator
            elif self.parent_edge >= 0:
                ctx.send(self.parent_edge, ("up", self.accumulator))
            self._sent_up = True
        return self._sent_up


def simulate_cluster_round(
    cluster_graph: ClusterGraph,
    leader_messages: Sequence[Any],
    combine: Callable[[Any, Any], Any],
    network: CongestNetwork | None = None,
) -> ClusterExchangeResult:
    """Simulate one cluster-graph communication round (Lemma 5.1).

    Args:
        cluster_graph: The current cluster structure (Definition 5.1).
        leader_messages: ``leader_messages[c]`` — the message cluster c
            sends over all its incident cluster edges this round.
        combine: Associative combiner applied to the messages a cluster
            receives (e.g. ``max``, ``min``, ``operator.add``) — the
            aggregation the Lemma 5.1 proof performs on cluster trees.
        network: Optional pre-built simulator over the base graph.

    Returns:
        A :class:`ClusterExchangeResult` with each leader's combined
        inbox and the measured network rounds.
    """
    cg = cluster_graph
    base = cg.base
    net = network or CongestNetwork(base)
    n = base.num_nodes
    tails, heads = base.edge_index_arrays()

    # Cluster-tree wiring: the edge joining v to its parent is the
    # lowest-id base edge between them (the legacy dict lookup).
    keys, first_eid = kernels.pair_first_edge_index(tails, heads, n)
    parents = np.asarray(cg.parent, dtype=np.int64)
    kids = np.flatnonzero(parents >= 0)
    kid_eids = kernels.lookup_pairs(keys, first_eid, n, kids, parents[kids])
    if np.any(kid_eids < 0):
        v = int(kids[int(np.argmax(kid_eids < 0))])
        raise GraphError(f"cluster tree edge ({v}, {cg.parent[v]}) is not a base edge")
    parent_edge = np.full(n, -1, dtype=np.int64)
    parent_edge[kids] = kid_eids
    children = [
        group.tolist()
        for group in kernels.group_by_key(parents[kids], kids, n)
    ]
    child_edges = [
        {c: int(parent_edge[c]) for c in group} for group in children
    ]
    # psi edges: every quotient edge is fired by both endpoints of its
    # realizing physical edge, in edge_origin order per node.
    origin = np.asarray(cg.edge_origin, dtype=np.int64)
    ends = np.empty(2 * len(origin), dtype=np.int64)
    ends[0::2] = tails[origin]
    ends[1::2] = heads[origin]
    psi_edges = [
        group.tolist()
        for group in kernels.group_by_key(ends, np.repeat(origin, 2), n)
    ]

    result = net.run(
        lambda v: _ClusterRoundNode(
            v,
            cg,
            leader_messages[cg.assignment[v]],
            combine,
            children[v],
            child_edges[v],
            int(parent_edge[v]),
            psi_edges[v],
        )
    )
    leader_values: list[Any] = [None] * cg.num_clusters
    for c, root in enumerate(cg.roots):
        leader_values[c] = result.states[root].leader_value
    return ClusterExchangeResult(
        leader_values=leader_values, rounds=result.rounds
    )


def cluster_flood_max(
    cluster_graph: ClusterGraph,
    rounds: int | None = None,
) -> tuple[int, int]:
    """Leader election across clusters by repeated cluster rounds.

    Runs flood-max *on the cluster graph* (each cluster repeatedly
    shares the largest cluster id it has seen), each cluster round
    simulated on the network per Lemma 5.1.

    Returns:
        ``(winning cluster id, total network rounds)``.
    """
    cg = cluster_graph
    if rounds is None:
        rounds = cg.num_clusters  # safe diameter bound on the quotient
    known = list(range(cg.num_clusters))
    total_network_rounds = 0
    for _ in range(rounds):
        result = simulate_cluster_round(cg, known, max)
        total_network_rounds += result.rounds
        changed = False
        for c in range(cg.num_clusters):
            value = result.leader_values[c]
            if value is not None and value > known[c]:
                known[c] = value
                changed = True
        if not changed:
            break
    winners = set(known)
    if len(winners) != 1:
        raise ConvergenceError("cluster flood-max did not converge")
    return winners.pop(), total_network_rounds
