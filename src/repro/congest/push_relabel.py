"""Distributed push-relabel in the CONGEST model.

This is the baseline the paper's introduction uses to motivate the
whole work: "Goldberg and Tarjan's push-relabel algorithm, which is
very local and simple to implement in the CONGEST model, requires
Ω(n²) rounds to converge." (Section 1.2.)

The implementation below is the natural synchronous localization:

* each node stores its height and excess;
* each round, every active node (positive excess, not s or t) pushes
  along admissible incident edges — but a push must be *announced* to
  the neighbor, so pushes take effect at the next round; to respect
  capacities under concurrency, a node pushes on at most one edge per
  round (choosing the admissible edge with lowest neighbor height);
* a node with excess but no admissible edge relabels to one more than
  its minimum-height residual neighbor; height changes are announced
  to neighbors (heights are the only remote state pushes depend on);
* termination is detected by a global quiescence counter piggybacked
  here as "no node active for ``diameter_bound`` consecutive rounds"
  (in a real network one would run a termination-detection BFS; the
  simulator's global view is used only to *stop*, never to compute).

Round counts of this baseline versus `(√n + D)·n^o(1)` are Experiment
E1 (EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.congest.model import CongestNetwork, Message, NodeContext
from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = ["DistributedPushRelabelNode", "distributed_push_relabel", "PushRelabelRun"]


@dataclass
class PushRelabelRun:
    """Result of a distributed push-relabel run.

    Attributes:
        value: Max-flow value (excess accumulated at the sink).
        rounds: Synchronous rounds until quiescence.
        flow: Signed flow per edge (positive along fixed orientation).
        pushes: Total push operations executed.
        relabels: Total relabel operations executed.
    """

    value: float
    rounds: int
    flow: np.ndarray
    pushes: int
    relabels: int


class DistributedPushRelabelNode:
    """Per-node push-relabel state machine. See module docstring."""

    def __init__(self, node: int, source: int, sink: int, quiet_rounds: int) -> None:
        self.node = node
        self.source = source
        self.sink = sink
        self.quiet_rounds = quiet_rounds
        self.height = 0
        self.excess = 0.0
        self.pushes = 0
        self.relabels = 0
        # flow_out[eid] = signed flow this node has pushed out on eid
        # (from this node's perspective).
        self.flow_out: dict[int, float] = {}
        self._neighbor_height: dict[int, int] = {}
        self._edge_cap: dict[int, float] = {}
        self._edge_neighbor: dict[int, int] = {}
        self._quiet = 0
        self._initialized = False

    # -- local residual helpers ---------------------------------------
    def _residual(self, eid: int) -> float:
        """Residual capacity from this node across edge eid (undirected
        edge: cap - net flow already sent from this side)."""
        return self._edge_cap[eid] - self.flow_out.get(eid, 0.0)

    def init(self, ctx: NodeContext) -> None:
        for nbr, eid, cap in ctx.incident:
            self._neighbor_height[eid] = 0
            self._edge_cap[eid] = cap
            self._edge_neighbor[eid] = nbr
        if self.node == self.source:
            self.height = ctx.num_nodes

    def on_round(self, ctx: NodeContext, inbox: Sequence[Message]) -> bool:
        # 1. Apply incoming pushes and height announcements.
        for msg in inbox:
            payload = list(msg.payload)
            while payload:
                kind = payload.pop(0)
                value = payload.pop(0)
                if kind == "push":
                    amount = float(value)
                    self.excess += amount
                    self.flow_out[msg.edge] = (
                        self.flow_out.get(msg.edge, 0.0) - amount
                    )
                elif kind == "height":
                    self._neighbor_height[msg.edge] = int(value)

        acted = False
        # 2. Round 1: everyone announces its initial height; the source
        # additionally saturates all incident edges. Heights and pushes
        # travel together, so no node ever acts on a missing source
        # height (which would let excess leak back to the source early).
        if not self._initialized:
            if self.node == self.source:
                for eid, cap in self._edge_cap.items():
                    self.flow_out[eid] = cap
                    ctx.send(eid, ("push", cap, "height", self.height))
                    self.pushes += 1
            else:
                ctx.send_to_all_neighbors(("height", self.height))
            self._initialized = True
            return False

        # 3. Active? Push or relabel.
        if (
            self.node not in (self.source, self.sink)
            and self.excess > 1e-9
        ):
            admissible = [
                eid
                for eid in self._edge_cap
                if self._residual(eid) > 1e-9
                and self.height == self._neighbor_height[eid] + 1
            ]
            if admissible:
                eid = min(admissible, key=lambda e: self._neighbor_height[e])
                amount = min(self.excess, self._residual(eid))
                self.excess -= amount
                self.flow_out[eid] = self.flow_out.get(eid, 0.0) + amount
                ctx.send(eid, ("push", amount))
                self.pushes += 1
                acted = True
            else:
                candidates = [
                    self._neighbor_height[eid]
                    for eid in self._edge_cap
                    if self._residual(eid) > 1e-9
                ]
                if candidates:
                    new_height = min(candidates) + 1
                    if new_height > self.height:
                        self.height = new_height
                        self.relabels += 1
                        ctx.send_to_all_neighbors(("height", self.height))
                        acted = True

        # 4. Local quiescence tracking (global detection in the runner).
        if acted:
            self._quiet = 0
        else:
            self._quiet += 1
        return self._quiet >= self.quiet_rounds


def distributed_push_relabel(
    graph: Graph,
    source: int,
    sink: int,
    network: CongestNetwork | None = None,
    max_rounds: int = 2_000_000,
) -> PushRelabelRun:
    """Run distributed push-relabel to quiescence and recover the flow.

    Args:
        graph: Undirected capacitated topology.
        source: Source node.
        sink: Sink node.
        network: Optional pre-built simulator (for custom budgets).
        max_rounds: Safety cap for the simulator.

    Returns:
        A :class:`PushRelabelRun`; ``run.value`` matches the exact max
        flow (validated in tests against Dinic).
    """
    if source == sink:
        raise GraphError("source and sink must differ")
    net = network or CongestNetwork(graph)
    # Quiescence window: messages (pushes/heights) travel 1 hop per
    # round, so 3 quiet rounds at *every* node means nothing is in
    # flight anywhere; use a small constant window per node — global
    # termination requires all nodes quiet simultaneously.
    quiet_window = 3
    result = net.run(
        lambda v: DistributedPushRelabelNode(v, source, sink, quiet_window),
        max_rounds=max_rounds,
    )
    states: list[DistributedPushRelabelNode] = result.states
    value = states[sink].excess
    flow = np.zeros(graph.num_edges)
    for e in graph.edges():
        # Net flow along orientation u->v: pushes from u minus pushes
        # from v, averaged from both endpoints' books (they agree).
        flow[e.id] = states[e.u].flow_out.get(e.id, 0.0)
    return PushRelabelRun(
        value=float(value),
        rounds=result.rounds,
        flow=flow,
        pushes=sum(s.pushes for s in states),
        relabels=sum(s.relabels for s in states),
    )
