"""Distributed minimum/maximum spanning tree (synchronous Borůvka).

Lemma 9.1 routes the leftover demand of Algorithm 1 over a
maximum-capacity spanning tree (computed with Kutten–Peleg in
Õ(D + √n) rounds in the paper). This module provides a genuinely
distributed spanning tree on the message-level simulator — the classic
synchronous Borůvka scheme:

* every node belongs to a *fragment* (initially itself);
* each phase: (1) neighbors exchange fragment ids; (2) a fragment-wide
  min-flood agrees on the fragment's best outgoing edge (minimum weight
  key, ties by edge id — distinct keys make the MST unique and
  cycle-free); (3) the edge's owner announces the merge across it;
  (4) a min-id flood over tree edges renames the merged fragment;
* O(log n) phases suffice (fragment count at least halves per phase).

Round complexity is O(n log n) — the simple scheme the paper's
Õ(D + √n) constructions improve upon; the cost model charges the
improved bound, and tests verify that this implementation produces a
spanning tree of exactly Kruskal's weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.congest.model import CongestNetwork, Message, NodeContext
from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = ["BoruvkaNode", "SpanningTreeRun", "distributed_spanning_tree"]


@dataclass
class SpanningTreeRun:
    """Result of a distributed spanning-tree computation.

    Attributes:
        tree_edges: Edge ids selected into the spanning tree.
        rounds: Synchronous rounds used.
        phases: Borůvka phases executed.
        total_weight: Sum of selected edge capacities.
    """

    tree_edges: list[int]
    rounds: int
    phases: int
    total_weight: float


class BoruvkaNode:
    """Per-node Borůvka state machine (see module docstring).

    Every phase has a fixed local schedule of ``2·W + 3`` rounds with
    ``W = num_nodes`` (a safe bound on any fragment's diameter):

    ====================  =============================================
    step 0                broadcast fragment id to all neighbors
    steps 1 .. W          min-flood the best outgoing-edge candidate
                          over same-fragment edges
    step W+1              the candidate's owner announces the merge
                          across the chosen edge
    steps W+2 .. 2W+2     min-id flood over tree edges (renaming)
    ====================  =============================================
    """

    def __init__(self, node: int, num_nodes: int, maximize: bool) -> None:
        self.node = node
        self.n = num_nodes
        self.maximize = maximize
        self.fragment = node
        self.tree_edges: set[int] = set()
        self._neighbor_fragment: dict[int, int] = {}
        self._round = 0
        self._phase = 0
        self._window = num_nodes
        self._phase_len = 2 * self._window + 3
        self._phases_total = max(1, (num_nodes - 1).bit_length()) + 1
        self._best: tuple[float, int, int] | None = None  # (key, eid, owner)

    def _key(self, capacity: float) -> float:
        return -capacity if self.maximize else capacity

    def init(self, ctx: NodeContext) -> None:
        pass

    # ------------------------------------------------------------------
    def on_round(self, ctx: NodeContext, inbox: Sequence[Message]) -> bool:
        for msg in inbox:
            kind = msg.payload[0]
            if kind == "frag":
                self._neighbor_fragment[msg.edge] = int(msg.payload[1])
            elif kind == "cand":
                candidate = (
                    float(msg.payload[1]),
                    int(msg.payload[2]),
                    int(msg.payload[3]),
                )
                if self._best is None or candidate[:2] < self._best[:2]:
                    self._best = candidate
            elif kind == "merge":
                self.tree_edges.add(int(msg.payload[2]))
                self.fragment = min(self.fragment, int(msg.payload[1]))
            elif kind == "rename":
                self.fragment = min(self.fragment, int(msg.payload[1]))

        step = self._round % self._phase_len
        if step == 0:
            ctx.send_to_all_neighbors(("frag", self.fragment))
            self._best = None
        elif step == 1:
            self._best = self._local_best(ctx)
            self._share_candidate(ctx)
        elif step <= self._window:
            self._share_candidate(ctx)
        elif step == self._window + 1:
            if self._best is not None and self._best[2] == self.node:
                _, eid, _ = self._best
                other = self._neighbor_fragment.get(eid, self.fragment)
                merged = min(self.fragment, other)
                self.tree_edges.add(eid)
                ctx.send(eid, ("merge", self.fragment, eid))
                self.fragment = merged
        else:
            # Rename flood over tree edges.
            for eid in self.tree_edges:
                ctx.send(eid, ("rename", self.fragment))

        self._round += 1
        if step == self._phase_len - 1:
            self._phase += 1
        return self._phase >= self._phases_total

    # ------------------------------------------------------------------
    def _local_best(self, ctx: NodeContext):
        best = None
        for _, eid, cap in ctx.incident:
            nbr_frag = self._neighbor_fragment.get(eid, -1)
            if nbr_frag < 0 or nbr_frag == self.fragment:
                continue
            candidate = (self._key(cap), eid, self.node)
            if best is None or candidate[:2] < best[:2]:
                best = candidate
        return best

    def _share_candidate(self, ctx: NodeContext) -> None:
        if self._best is None:
            return
        key, eid, owner = self._best
        for _, e, _ in ctx.incident:
            if self._neighbor_fragment.get(e) == self.fragment:
                ctx.send(e, ("cand", key, eid, owner))


def distributed_spanning_tree(
    graph: Graph,
    maximize: bool = False,
    network: CongestNetwork | None = None,
    max_rounds: int = 2_000_000,
) -> SpanningTreeRun:
    """Run synchronous Borůvka on the CONGEST simulator.

    Args:
        graph: Connected capacitated topology.
        maximize: If True, compute a maximum-capacity spanning tree
            (the Lemma 9.1 use case); minimum otherwise.
        network: Optional pre-built simulator.
        max_rounds: Safety bound.

    Returns:
        A :class:`SpanningTreeRun` whose edge set is a spanning tree of
        the same total weight as the centralized Kruskal result.

    Raises:
        GraphError: If the selected edges do not span (cannot happen on
            connected inputs; guards against protocol regressions).
    """
    graph.require_connected()
    net = network or CongestNetwork(graph)
    n = graph.num_nodes
    result = net.run(
        lambda v: BoruvkaNode(v, n, maximize), max_rounds=max_rounds
    )
    edges: set[int] = set()
    for state in result.states:
        edges.update(state.tree_edges)
    if len(edges) != n - 1:
        raise GraphError(
            f"Borůvka selected {len(edges)} edges, expected {n - 1}"
        )
    from repro.graphs.trees import spanning_tree_from_edges

    spanning_tree_from_edges(graph, edges)  # validates it spans
    phases = result.states[0]._phase if result.states else 0
    return SpanningTreeRun(
        tree_edges=sorted(edges),
        rounds=result.rounds,
        phases=phases,
        total_weight=float(sum(graph.capacity(e) for e in edges)),
    )
