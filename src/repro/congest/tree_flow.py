"""Distributed tree-flow aggregation (paper Lemma 8.1) on the simulator.

Lemma 8.1 computes, for every edge of a rooted spanning tree, the total
capacity |f'| of graph edges crossing the cut induced by its subtree —
the tree capacities of Madry's construction. The distributed algorithm:

1. every node learns its list of tree ancestors (round r: each node
   forwards its (r)-th ancestor to its children — one id per round,
   O(depth) rounds);
2. endpoints of every graph edge exchange ancestor lists (pipelined one
   id per round over the edge);
3. each node locally computes, for each ancestor a, the capacity of its
   incident edges whose other endpoint lies *outside* a's subtree
   (checked against the exchanged ancestor lists);
4. a pipelined convergecast sums these per-ancestor contributions up
   the tree; the value arriving at (v, parent(v)) is exactly
   cut(T_v) = |f'(v, parent v)|.

Everything is message-faithful: each message carries O(1) ids, so the
whole computation takes O(depth + #ancestors) = O(depth) round-ish
windows, matching Lemma 8.1's O(d) bound. Tests compare the result
against the centralized :func:`repro.graphs.trees.induced_cut_capacities`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.congest.model import CongestNetwork, Message, NodeContext
from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree

__all__ = ["TreeFlowRun", "distributed_tree_flow"]


@dataclass
class TreeFlowRun:
    """Result of the distributed |f'| computation.

    Attributes:
        cut_capacity: Per child node v, the computed capacity of the
            cut induced by T_v (index = child node id).
        rounds: Synchronous rounds used.
    """

    cut_capacity: np.ndarray
    rounds: int


class _TreeFlowNode:
    """Node program implementing Lemma 8.1's four phases.

    The phase schedule is time-driven with window ``W`` = a bound on
    the tree depth: ancestor learning takes W rounds, the pairwise
    ancestor-list exchange W rounds (one id per round per edge), and
    the pipelined convergecast W + depth rounds.
    """

    def __init__(
        self,
        node: int,
        tree: RootedTree,
        edge_map: dict[int, int],
        window: int,
    ) -> None:
        self.node = node
        self.tree = tree
        self.edge_map = edge_map  # child -> graph edge to parent
        self.window = window
        self.ancestors: list[int] = []  # nearest first
        self._children: list[int] = []
        self._child_edges: dict[int, int] = {}
        self._round = 0
        # Per incident graph edge: the other endpoint's ancestor set.
        self._neighbor_ancestors: dict[int, set[int]] = {}
        self._neighbor_caps: dict[int, float] = {}
        self._neighbor_id: dict[int, int] = {}
        # Convergecast state: per-ancestor-index accumulated sums.
        self._contribution: list[float] = []
        self._received: list[int] = []
        self._next_to_send = 0
        #: Output: the cut capacity for this node's parent edge.
        self.cut_value: float | None = None

    def init(self, ctx: NodeContext) -> None:
        parent = self.tree.parent[self.node]
        if parent >= 0:
            self.ancestors = [parent]
        for child in range(self.tree.num_nodes):
            if self.tree.parent[child] == self.node:
                self._children.append(child)
                self._child_edges[child] = self.edge_map[child]
        for nbr, eid, cap in ctx.incident:
            self._neighbor_ancestors[eid] = {nbr}
            self._neighbor_caps[eid] = cap
            self._neighbor_id[eid] = nbr

    # ------------------------------------------------------------------
    def on_round(self, ctx: NodeContext, inbox: Sequence[Message]) -> bool:
        w = self.window
        step = self._round
        for msg in inbox:
            kind = msg.payload[0]
            if kind == "anc":
                # Parent forwards its (k)-th ancestor; append if new.
                ancestor = int(msg.payload[1])
                if ancestor >= 0 and ancestor not in self.ancestors:
                    self.ancestors.append(ancestor)
            elif kind == "alist":
                self._neighbor_ancestors[msg.edge].add(int(msg.payload[1]))
            elif kind == "sum":
                index, amount = int(msg.payload[1]), float(msg.payload[2])
                self._ensure_contributions()
                if index < len(self._contribution):
                    self._contribution[index] += amount
                self._received[index] += 1

        # Phase 1 (rounds 0 .. w-1): ancestor dissemination. In round
        # r, send your r-th ancestor (if any) to every child.
        if step < w:
            if step < len(self.ancestors):
                ancestor = self.ancestors[step]
                for child in self._children:
                    ctx.send(self._child_edges[child], ("anc", ancestor))
        # Phase 2 (rounds w .. 2w-1): exchange ancestor lists pairwise.
        elif step < 2 * w:
            k = step - w
            if k < len(self.ancestors):
                for _, eid, _ in ctx.incident:
                    ctx.send(eid, ("alist", self.ancestors[k]))
        # Phase 3+4 (rounds >= 2w): pipelined convergecast, one
        # ancestor index per round once all children reported it.
        else:
            self._ensure_contributions()
            chain = [self.node] + self.ancestors
            if (
                self._next_to_send < len(self._contribution)
                and self._received[self._next_to_send]
                >= self._expected_reports(self._next_to_send)
            ):
                i = self._next_to_send
                total = self._contribution[i]
                target = chain[i]  # the subtree root this sum belongs to
                if target == self.node:
                    # Completed: this is cut(T_node).
                    self.cut_value = total
                else:
                    # Forward to the parent, re-indexed for its chain.
                    parent = self.tree.parent[self.node]
                    ctx.send(
                        self.edge_map[self.node], ("sum", i - 1, total)
                    )
                self._next_to_send += 1
        self._round += 1
        done = self._next_to_send >= len(self._contribution or [0])
        return step >= 2 * w and done and self._round > 2 * w + 1

    # ------------------------------------------------------------------
    def _ensure_contributions(self) -> None:
        if self._contribution:
            return
        # contribution[i] = capacity of incident edges leaving the
        # subtree of chain[i] (chain[0] = self, then ancestors).
        chain = [self.node] + self.ancestors
        self._contribution = [0.0] * len(chain)
        self._received = [0] * len(chain)
        for eid, other_ancestors in self._neighbor_ancestors.items():
            cap = self._neighbor_caps[eid]
            other_chain = other_ancestors | {self._neighbor_id[eid]}
            for i, subtree_root in enumerate(chain):
                # Edge leaves T_root iff the other endpoint is not in
                # T_root, i.e. root is not among the other endpoint's
                # ancestors-or-self.
                if subtree_root not in other_chain:
                    self._contribution[i] += cap

    def _expected_reports(self, index: int) -> int:
        # Child v reports its chain position index+1 sums... every
        # child forwards exactly one "sum" per index; children's index
        # i+1 maps to our index i, so we expect len(children) reports
        # for every index except the deepest ones children lack. For
        # simplicity, expect a report from each child whose subtree
        # depth reaches this ancestor — children always have the
        # ancestor (it is an ancestor of theirs too), so:
        return len(self._children)


def distributed_tree_flow(
    graph: Graph,
    tree: RootedTree,
    network: CongestNetwork | None = None,
    max_rounds: int = 500_000,
) -> TreeFlowRun:
    """Compute induced-cut capacities distributedly (Lemma 8.1).

    Args:
        graph: The host graph; capacities are the |f'| weights.
        tree: A rooted spanning tree whose edges are graph edges.
        network: Optional simulator (a fresh one is built otherwise).
        max_rounds: Safety cap.

    Returns:
        A :class:`TreeFlowRun`; ``cut_capacity[v]`` equals the
        centralized ``induced_cut_capacities(graph, tree)[v]`` for
        every non-root v (verified in tests).
    """
    edge_of_pair: dict[tuple[int, int], int] = {}
    for e in graph.edges():
        edge_of_pair.setdefault((min(e.u, e.v), max(e.u, e.v)), e.id)
    edge_map: dict[int, int] = {}
    for v in range(tree.num_nodes):
        p = tree.parent[v]
        if p >= 0:
            edge_map[v] = edge_of_pair[(min(v, p), max(v, p))]
    window = tree.height() + 1
    net = network or CongestNetwork(graph)
    result = net.run(
        lambda v: _TreeFlowNode(v, tree, edge_map, window),
        max_rounds=max_rounds,
    )
    cuts = np.zeros(graph.num_nodes)
    for v, state in enumerate(result.states):
        if tree.parent[v] >= 0 and state.cut_value is not None:
            cuts[v] = state.cut_value
    return TreeFlowRun(cut_capacity=cuts, rounds=result.rounds)
