"""Round-cost accounting for the composed pipeline (Theorem 1.1 shape).

Simulating the full Sherman pipeline message-by-message costs
Θ(rounds · m) work — infeasible beyond toy sizes. The paper itself
composes round costs analytically from a small set of lemmas; this
module encodes those lemmas as a :class:`CostModel` and lets the actual
implementations report *measured* operation counts (gradient steps, MWU
iterations, SplitGraph phases, trees sampled, recursion levels), which
the model converts into round estimates.

The simulator in :mod:`repro.congest` validates the primitive costs
(BFS ≤ D + 1, pipelined k-aggregation ≤ height + k + O(1)) so the
composition rests on measured constants, not hand-waving.

Charged costs (all from the paper):

=====================  ===========================================
operation              rounds charged                     source
=====================  ===========================================
BFS tree               D + 1                              folklore
broadcast/convergecast height + 1                         folklore
pipelined k-aggregate  D + k + O(1)                       Lemma 5.1
cluster-graph step     O(D + √n) per simulated round      Lemma 5.1
tree flow aggregation  Õ(√n + D)                          Lemma 8.3
tree decomposition     Õ(√n)                              Lemma 8.2
skeleton/portals       Õ(√n)                              Lemma 8.8
R·b / Rᵀ·y product     Õ(√n + D) per sampled tree         Cor. 9.3
gradient step          O(D) + products                    §9.1
MST + residual route   Õ(D + √n)                          Lemma 9.1
=====================  ===========================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = ["CostModel", "RoundLedger"]


@dataclass
class RoundLedger:
    """An itemized record of charged rounds."""

    items: list[tuple[str, float]] = field(default_factory=list)

    def charge(self, label: str, rounds: float) -> float:
        self.items.append((label, float(rounds)))
        return float(rounds)

    @property
    def total(self) -> float:
        return sum(rounds for _, rounds in self.items)

    def by_label(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for label, rounds in self.items:
            out[label] = out.get(label, 0.0) + rounds
        return out


class CostModel:
    """Round costs for a given topology.

    Args:
        num_nodes: n.
        diameter: Hop diameter D.
        log_base: Base for the Õ log factors (natural log of n used as
            the generic "log n" factor).
    """

    def __init__(self, num_nodes: int, diameter: int) -> None:
        if num_nodes < 2:
            raise GraphError("cost model needs at least 2 nodes")
        self.n = int(num_nodes)
        self.diameter = int(diameter)
        self.sqrt_n = math.sqrt(self.n)
        self.log_n = max(1.0, math.log2(self.n))
        self.ledger = RoundLedger()

    @classmethod
    def for_graph(cls, graph: Graph) -> "CostModel":
        """Build a model with the exact diameter of ``graph``."""
        return cls(graph.num_nodes, graph.diameter())

    # -- primitive costs ------------------------------------------------
    @property
    def base(self) -> float:
        """The additive `D + √n` term every global operation pays."""
        return self.diameter + self.sqrt_n

    def bfs_tree(self) -> float:
        """BFS-tree construction: D + 1 rounds."""
        return self.ledger.charge("bfs_tree", self.diameter + 1)

    def broadcast(self, items: int = 1) -> float:
        """Pipelined broadcast of ``items`` words over the BFS tree:
        D + items rounds (Lemma 5.1's pipelining argument)."""
        return self.ledger.charge("broadcast", self.diameter + items)

    def convergecast(self, items: int = 1) -> float:
        """Pipelined convergecast, same bound as broadcast."""
        return self.ledger.charge("convergecast", self.diameter + items)

    def cluster_graph_round(self, simulated_rounds: int = 1) -> float:
        """Lemma 5.1: each round of a cluster-graph algorithm costs
        O(D + √n) network rounds."""
        return self.ledger.charge(
            "cluster_graph_simulation", simulated_rounds * self.base
        )

    def tree_flow_aggregation(self) -> float:
        """Lemma 8.3: computing |f'| for all tree edges, Õ(√n + D)."""
        return self.ledger.charge(
            "tree_flow_aggregation", self.base * self.log_n
        )

    def tree_decomposition(self) -> float:
        """Lemma 8.2: random decomposition into O(√n) low-depth parts."""
        return self.ledger.charge("tree_decomposition", self.sqrt_n * self.log_n)

    def skeleton_construction(self) -> float:
        """Lemma 8.8: portals, skeleton, and minimum-capacity path edges
        in Õ(√n) rounds."""
        return self.ledger.charge("skeleton", self.sqrt_n * self.log_n)

    def sparsifier(self) -> float:
        """Lemma 6.1: cut sparsifier in (D + √n) · polylog rounds."""
        return self.ledger.charge("sparsifier", self.base * self.log_n**2)

    def lsst(self, split_graph_phases: int) -> float:
        """Theorem 3.1 via the Section 7 accounting: each SplitGraph /
        Partition phase is a cluster-graph computation of O(ρ log N)
        simulated rounds; the caller reports the *measured* number of
        elementary phases (BFS steps across all Partition calls)."""
        return self.ledger.charge(
            "low_stretch_spanning_tree", split_graph_phases * self.base
        )

    def approximator_product(self, num_trees: int) -> float:
        """Corollary 9.3: one R·b or Rᵀ·y product = one convergecast +
        one downcast per sampled virtual tree, Õ(√n + D) each. The trees
        are processed sequentially (same physical edges)."""
        return self.ledger.charge(
            "approximator_product", num_trees * self.base * self.log_n
        )

    def gradient_step(self, num_trees: int) -> float:
        """One AlmostRoute iteration (Section 9.1): two products with R
        (for y and for π), plus O(D) scalar aggregations for φ and δ."""
        products = 2 * num_trees * self.base * self.log_n
        scalars = 4 * self.diameter
        return self.ledger.charge("gradient_step", products + scalars)

    def mst_and_residual_routing(self) -> float:
        """Lemma 9.1: max-weight spanning tree + tree routing."""
        return self.ledger.charge(
            "mst_residual_routing", self.base * self.log_n
        )

    # -- headline bounds --------------------------------------------------
    def theorem_1_1_bound(self, epsilon: float) -> float:
        """The paper's headline round bound with the n^o(1) factor
        instantiated as 2^O(√(log n log log n)) (the stretch of the AKPW
        trees, which dominates the subpolynomial factor)."""
        subpoly = self.subpolynomial_factor()
        return (self.diameter + self.sqrt_n) * subpoly / epsilon**3

    def subpolynomial_factor(self) -> float:
        """2^√(log₂ n · log₂ log₂ n) — the concrete n^o(1) factor."""
        log_n = max(2.0, math.log2(self.n))
        return 2.0 ** math.sqrt(log_n * max(1.0, math.log2(log_n)))

    def trivial_upper_bound(self, num_edges: int) -> float:
        """The O(m) collect-everything-at-one-node baseline the paper's
        introduction cites: m words pipelined over a BFS tree."""
        return num_edges + 2 * self.diameter
