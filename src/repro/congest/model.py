"""Synchronous CONGEST-model simulator.

Implements the model of the paper's Section 1.1: ``n`` nodes, each
knowing only its own identifier and incident edges; synchronous rounds;
``O(log n)``-bit messages per edge per direction per round.

The simulator is message-faithful: every message a node sends is
size-checked against the bandwidth budget (a configurable number of
"words", each standing for an O(log n)-bit field), and delivery happens
strictly at the next round boundary. Algorithms are written as per-node
state machines (:class:`NodeAlgorithm`); the network runs them in
lockstep and counts rounds.

Only the *primitives* (BFS, broadcast, convergecast, pipelining,
push-relabel) run on this simulator — the full Sherman pipeline would
need Θ(rounds · m) simulated messages, which is exactly why the paper's
round accounting is composed analytically in :mod:`repro.congest.cost`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Protocol, Sequence

from repro.errors import (
    CongestModelError,
    MessageTooLargeError,
    RoundLimitExceededError,
)
from repro.graphs.graph import Graph

__all__ = [
    "Message",
    "NodeContext",
    "NodeAlgorithm",
    "CongestNetwork",
    "RunResult",
    "message_words",
]

#: Default number of O(log n)-bit words a single message may carry.
#: CONGEST allows O(log n) bits; a small constant number of id-sized
#: fields is the standard reading.
DEFAULT_WORDS_PER_MESSAGE = 4


def message_words(payload: Any) -> int:
    """Count the O(log n)-bit words a payload occupies.

    Ints, floats, bools, None and short strings count as one word each;
    tuples/lists count the sum of their elements. This is the unit the
    bandwidth check uses.
    """
    if payload is None or isinstance(payload, (int, float, bool)):
        return 1
    if isinstance(payload, str):
        # A string is packed into 8-byte words.
        return max(1, math.ceil(len(payload) / 8))
    if isinstance(payload, (tuple, list)):
        return sum(message_words(item) for item in payload)
    if isinstance(payload, dict):
        return sum(
            message_words(k) + message_words(v) for k, v in payload.items()
        )
    raise CongestModelError(
        f"unsupported message payload type {type(payload).__name__}"
    )


@dataclass(frozen=True)
class Message:
    """A message delivered to a node.

    Attributes:
        sender: Node id of the sender.
        edge: Edge id it arrived on.
        payload: The content (ints/floats/tuples...).
    """

    sender: int
    edge: int
    payload: Any


class NodeContext:
    """Per-node view of the network handed to algorithms.

    Nodes may inspect only local information: their id, their incident
    edges (with capacities), and the total node count (standard
    assumption; n or a poly upper bound is known to all nodes).
    """

    def __init__(self, network: "CongestNetwork", node: int) -> None:
        self._network = network
        self.node = node
        self.num_nodes = network.graph.num_nodes
        #: list of (neighbor, edge_id, capacity) for incident edges.
        self.incident: list[tuple[int, int, float]] = [
            (nbr, eid, network.graph.capacity(eid))
            for nbr, eid in network.graph.neighbors(node)
        ]

    def send(self, edge: int, payload: Any) -> None:
        """Queue ``payload`` on ``edge`` for delivery next round.

        Raises:
            MessageTooLargeError: If the payload exceeds the per-edge
                word budget.
            CongestModelError: If a second message is queued on the same
                edge in one round, or the edge is not incident.
        """
        self._network._queue_send(self.node, edge, payload)

    def send_to_all_neighbors(self, payload: Any) -> None:
        """Queue the same payload on every incident edge."""
        for _, eid, _ in self.incident:
            self.send(eid, payload)


class NodeAlgorithm(Protocol):
    """Per-node synchronous state machine.

    Implementations hold the *local* state of one node. The network
    calls :meth:`on_round` once per node per round with the messages
    delivered this round; the node queues sends via the context. A node
    signals local termination by returning True; the run stops when all
    nodes have terminated (or the algorithm class overrides
    :meth:`is_done` semantics via quiescence detection in the runner).
    """

    def init(self, ctx: NodeContext) -> None:
        """Called once before round 1."""
        ...

    def on_round(self, ctx: NodeContext, inbox: Sequence[Message]) -> bool:
        """Execute one round; return True when locally terminated."""
        ...


@dataclass
class RunResult:
    """Outcome of a simulated run.

    Attributes:
        rounds: Number of synchronous rounds executed.
        messages_sent: Total messages delivered over the run.
        max_words_per_round: Peak total words sent in any single round.
        states: The per-node algorithm objects (to read out results).
    """

    rounds: int
    messages_sent: int
    max_words_per_round: int
    states: list[Any] = field(default_factory=list)


class CongestNetwork:
    """Synchronous network over an undirected :class:`Graph`.

    Args:
        graph: The communication topology (capacities are visible to
            endpoints as edge attributes, per the paper's model).
        words_per_message: Bandwidth budget per edge per direction per
            round, in O(log n)-bit words.
    """

    def __init__(
        self, graph: Graph, words_per_message: int = DEFAULT_WORDS_PER_MESSAGE
    ) -> None:
        graph.require_connected()
        self.graph = graph
        self.words_per_message = words_per_message
        self._outbox: dict[tuple[int, int], Any] = {}
        self.rounds_executed = 0
        self.messages_sent = 0
        self.max_words_per_round = 0

    # ------------------------------------------------------------------
    def _queue_send(self, sender: int, edge: int, payload: Any) -> None:
        words = message_words(payload)
        if words > self.words_per_message:
            raise MessageTooLargeError(
                f"node {sender} tried to send {words} words on edge {edge}; "
                f"budget is {self.words_per_message} words per round"
            )
        u, v = self.graph.endpoints(edge)
        if sender not in (u, v):
            raise CongestModelError(
                f"node {sender} is not incident to edge {edge}"
            )
        key = (sender, edge)
        if key in self._outbox:
            raise CongestModelError(
                f"node {sender} queued two messages on edge {edge} in one round"
            )
        self._outbox[key] = payload

    # ------------------------------------------------------------------
    def run(
        self,
        algorithm_factory: Callable[[int], NodeAlgorithm],
        max_rounds: int = 10_000,
    ) -> RunResult:
        """Run one algorithm instance per node until global termination.

        Args:
            algorithm_factory: Called with each node id to create that
                node's state machine.
            max_rounds: Safety budget.

        Returns:
            A :class:`RunResult`; per-node outputs live on the returned
            ``states`` objects.

        Raises:
            RoundLimitExceededError: If not all nodes terminate within
                ``max_rounds``.
        """
        n = self.graph.num_nodes
        contexts = [NodeContext(self, v) for v in range(n)]
        states = [algorithm_factory(v) for v in range(n)]
        for v in range(n):
            states[v].init(contexts[v])

        inboxes: list[list[Message]] = [[] for _ in range(n)]
        rounds = 0
        all_done = False
        while not all_done:
            if rounds >= max_rounds:
                raise RoundLimitExceededError(
                    f"algorithm did not terminate within {max_rounds} rounds"
                )
            self._outbox = {}
            # Termination is evaluated per round: the run ends when every
            # node reports done in the *same* round (quiescence), so a
            # node may become active again after a temporary lull.
            all_done = True
            for v in range(n):
                finished = states[v].on_round(contexts[v], inboxes[v])
                all_done = all_done and bool(finished)
            # Deliver.
            inboxes = [[] for _ in range(n)]
            words_this_round = 0
            for (sender, edge), payload in self._outbox.items():
                u, w = self.graph.endpoints(edge)
                receiver = w if sender == u else u
                inboxes[receiver].append(Message(sender, edge, payload))
                self.messages_sent += 1
                words_this_round += message_words(payload)
            self.max_words_per_round = max(
                self.max_words_per_round, words_this_round
            )
            rounds += 1
            # If messages are in flight, the system is not quiescent even
            # when every node reported done this round.
            if all_done and any(box for box in inboxes):
                all_done = False
        self.rounds_executed += rounds
        return RunResult(
            rounds=rounds,
            messages_sent=self.messages_sent,
            max_words_per_round=self.max_words_per_round,
            states=states,
        )
