"""Distributed BFS-tree construction.

The global BFS tree is the paper's workhorse for long-distance
communication (Lemma 5.1, Section 9): broadcasts, convergecasts, and
pipelined aggregations all run over it. A BFS tree rooted at ``r``
completes in at most ``ecc(r) + 1 <= D + 1`` rounds — a bound the test
suite verifies on the simulator.
"""

from __future__ import annotations

from typing import Sequence

from repro.congest.model import CongestNetwork, Message, NodeContext
from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree

__all__ = ["BFSNode", "build_bfs_tree"]


class BFSNode:
    """Per-node state machine for BFS-tree construction.

    Round 1: the root announces itself. Each node adopts the first
    announcer as parent (ties broken by sender id) and re-announces the
    next round. A node terminates one round after announcing.

    Attributes (outputs):
        parent: Parent node id (-1 at the root, None if never reached).
        parent_edge: Edge id to the parent.
        level: BFS level (hop distance from root).
    """

    def __init__(self, node: int, root: int) -> None:
        self.node = node
        self.root = root
        self.parent: int | None = -1 if node == root else None
        self.parent_edge: int | None = None
        self.level: int | None = 0 if node == root else None
        self._announced = False

    def init(self, ctx: NodeContext) -> None:
        pass

    def on_round(self, ctx: NodeContext, inbox: Sequence[Message]) -> bool:
        if self.level is None:
            offers = [
                msg for msg in inbox if isinstance(msg.payload, tuple)
                and msg.payload[0] == "bfs"
            ]
            if offers:
                best = min(offers, key=lambda m: m.sender)
                self.parent = best.sender
                self.parent_edge = best.edge
                self.level = int(best.payload[1]) + 1
        if self.level is not None and not self._announced:
            ctx.send_to_all_neighbors(("bfs", self.level))
            self._announced = True
            return False
        return self._announced


def build_bfs_tree(
    graph: Graph, root: int = 0, network: CongestNetwork | None = None
) -> tuple[RootedTree, int]:
    """Build a BFS tree on the CONGEST simulator.

    Returns:
        ``(tree, rounds)`` — the rooted tree and the number of
        synchronous rounds the construction took (≤ ecc(root) + 2).
    """
    net = network or CongestNetwork(graph)
    result = net.run(lambda v: BFSNode(v, root))
    parent = [state.parent if state.parent is not None else -2
              for state in result.states]
    tree = RootedTree(parent)
    return tree, result.rounds
