"""CONGEST-model simulator and distributed primitives."""

from repro.congest.model import (
    CongestNetwork,
    Message,
    NodeContext,
    RunResult,
    message_words,
)
from repro.congest.bfs import build_bfs_tree
from repro.congest.broadcast import broadcast, convergecast_sum, pipelined_aggregate
from repro.congest.leader import elect_leader
from repro.congest.push_relabel import PushRelabelRun, distributed_push_relabel
from repro.congest.cost import CostModel, RoundLedger
from repro.congest.spanning_tree import (
    BoruvkaNode,
    SpanningTreeRun,
    distributed_spanning_tree,
)
from repro.congest.tree_flow import TreeFlowRun, distributed_tree_flow
from repro.congest.cluster_sim import (
    ClusterExchangeResult,
    cluster_flood_max,
    simulate_cluster_round,
)

__all__ = [
    "CongestNetwork",
    "Message",
    "NodeContext",
    "RunResult",
    "message_words",
    "build_bfs_tree",
    "broadcast",
    "convergecast_sum",
    "pipelined_aggregate",
    "elect_leader",
    "PushRelabelRun",
    "distributed_push_relabel",
    "CostModel",
    "RoundLedger",
    "BoruvkaNode",
    "SpanningTreeRun",
    "distributed_spanning_tree",
    "ClusterExchangeResult",
    "cluster_flood_max",
    "simulate_cluster_round",
    "TreeFlowRun",
    "distributed_tree_flow",
]
