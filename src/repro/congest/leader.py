"""Leader election by flood-max.

Cluster graphs (Definition 5.1) require a unique leader per cluster;
the standard way to pick one distributedly is flooding the maximum id,
which stabilizes in D rounds. Implemented on the simulator both for use
in cluster bootstrapping and as a round-count check.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConvergenceError
from repro.congest.model import CongestNetwork, Message, NodeContext
from repro.graphs.graph import Graph

__all__ = ["FloodMaxNode", "elect_leader"]


class FloodMaxNode:
    """Flood-max leader election.

    Every node repeatedly forwards the largest id it has seen. A node
    terminates after ``num_nodes`` rounds (a safe upper bound on D when
    D is unknown) or ``rounds_budget`` rounds when a diameter bound is
    supplied.

    Attributes (outputs):
        leader: The largest node id in the graph.
    """

    def __init__(self, node: int, rounds_budget: int) -> None:
        self.node = node
        self.leader = node
        self.rounds_budget = rounds_budget
        self._round = 0
        self._last_sent: int | None = None

    def init(self, ctx: NodeContext) -> None:
        pass

    def on_round(self, ctx: NodeContext, inbox: Sequence[Message]) -> bool:
        for msg in inbox:
            self.leader = max(self.leader, int(msg.payload))
        self._round += 1
        if self._round > self.rounds_budget:
            return True
        if self.leader != self._last_sent:
            ctx.send_to_all_neighbors(self.leader)
            self._last_sent = self.leader
        return False


def elect_leader(
    graph: Graph,
    diameter_bound: int | None = None,
    network: CongestNetwork | None = None,
) -> tuple[int, int]:
    """Elect the max-id node as leader.

    Args:
        graph: Topology.
        diameter_bound: Known upper bound on D; defaults to n.

    Returns:
        ``(leader_id, rounds)``.
    """
    net = network or CongestNetwork(graph)
    budget = diameter_bound if diameter_bound is not None else graph.num_nodes
    result = net.run(lambda v: FloodMaxNode(v, budget))
    leaders = {state.leader for state in result.states}
    if len(leaders) != 1:
        raise ConvergenceError("flood-max did not converge")
    return leaders.pop(), result.rounds
