"""Broadcast, convergecast, and pipelined aggregation on a tree.

These are the communication primitives behind the paper's Lemma 5.1
("k independent convergecasts or broadcasts on a depth-D tree complete
in D + k rounds, using pipelining") and behind every `R·b` / `Rᵀ·y`
product in Section 9. All three run for real on the CONGEST simulator
so their round counts can be measured and compared with the stated
bounds.

All primitives take a precomputed rooted tree (parent pointers are
local knowledge, exactly as the paper assumes after BFS construction).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import CongestModelError
from repro.congest.model import CongestNetwork, Message, NodeContext
from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree

__all__ = [
    "BroadcastNode",
    "ConvergecastSumNode",
    "PipelinedAggregationNode",
    "broadcast",
    "convergecast_sum",
    "pipelined_aggregate",
]


def _tree_edge_map(graph: Graph, tree: RootedTree) -> dict[int, int]:
    """Map child node -> graph edge id to its parent."""
    edge_of_pair: dict[tuple[int, int], int] = {}
    for e in graph.edges():
        key = (min(e.u, e.v), max(e.u, e.v))
        edge_of_pair.setdefault(key, e.id)
    out: dict[int, int] = {}
    for v in range(tree.num_nodes):
        p = tree.parent[v]
        if p >= 0:
            out[v] = edge_of_pair[(min(v, p), max(v, p))]
    return out


class BroadcastNode:
    """Flood a value from the root down a given tree. Terminates when
    the value is known and forwarded; total rounds = tree height + O(1)."""

    def __init__(
        self, node: int, tree: RootedTree, edge_map: dict[int, int],
        value: Any = None,
    ) -> None:
        self.node = node
        self.tree = tree
        self.edge_map = edge_map
        self.value = value if node == tree.root else None
        self._forwarded = False
        self._child_edges: list[int] = []

    def init(self, ctx: NodeContext) -> None:
        self._child_edges = [
            self.edge_map[child]
            for child in range(self.tree.num_nodes)
            if self.tree.parent[child] == self.node
        ]

    def on_round(self, ctx: NodeContext, inbox: Sequence[Message]) -> bool:
        if self.value is None:
            for msg in inbox:
                if msg.edge == self.edge_map.get(self.node):
                    self.value = msg.payload
        if self.value is not None and not self._forwarded:
            for eid in self._child_edges:
                ctx.send(eid, self.value)
            self._forwarded = True
            return False
        return self._forwarded


class ConvergecastSumNode:
    """Sum values up a tree: each node forwards (its value + all
    children's sums) once every child has reported. The root ends up
    with the global sum; rounds = tree height + O(1)."""

    def __init__(
        self, node: int, tree: RootedTree, edge_map: dict[int, int], value: float
    ) -> None:
        self.node = node
        self.tree = tree
        self.edge_map = edge_map
        self.value = float(value)
        self.result: float | None = None
        self._pending_children: set[int] = set()
        self._sent = False

    def init(self, ctx: NodeContext) -> None:
        self._pending_children = {
            child
            for child in range(self.tree.num_nodes)
            if self.tree.parent[child] == self.node
        }

    def on_round(self, ctx: NodeContext, inbox: Sequence[Message]) -> bool:
        for msg in inbox:
            if msg.sender in self._pending_children:
                self.value += float(msg.payload)
                self._pending_children.discard(msg.sender)
        if not self._pending_children and not self._sent:
            if self.node == self.tree.root:
                self.result = self.value
            else:
                ctx.send(self.edge_map[self.node], self.value)
            self._sent = True
            return False
        return self._sent


class PipelinedAggregationNode:
    """Pipelined convergecast of k independent sums (Lemma 5.1's
    "D + k rounds" claim).

    Each node holds a k-vector. Sums are computed coordinate by
    coordinate, one coordinate injected into the pipe per round: a node
    forwards coordinate i once all children's coordinate-i reports have
    arrived. Since children finish coordinate i at most one round after
    coordinate i-1, the pipeline drains in height + k + O(1) rounds.
    """

    def __init__(
        self,
        node: int,
        tree: RootedTree,
        edge_map: dict[int, int],
        values: Sequence[float],
    ) -> None:
        self.node = node
        self.tree = tree
        self.edge_map = edge_map
        self.values = [float(x) for x in values]
        self.k = len(self.values)
        self.result: list[float] | None = None
        self._received: list[int] = []
        self._next_to_send = 0
        self._num_children = 0

    def init(self, ctx: NodeContext) -> None:
        self._num_children = sum(
            1
            for child in range(self.tree.num_nodes)
            if self.tree.parent[child] == self.node
        )
        self._received = [0] * self.k

    def on_round(self, ctx: NodeContext, inbox: Sequence[Message]) -> bool:
        for msg in inbox:
            index, amount = msg.payload
            self.values[index] += float(amount)
            self._received[index] += 1
        # Send the lowest coordinate whose children have all reported.
        if (
            self._next_to_send < self.k
            and self._received[self._next_to_send] == self._num_children
        ):
            i = self._next_to_send
            if self.node != self.tree.root:
                ctx.send(self.edge_map[self.node], (i, self.values[i]))
            self._next_to_send += 1
        finished = self._next_to_send >= self.k
        if finished and self.node == self.tree.root:
            self.result = list(self.values)
        return finished


def broadcast(
    graph: Graph,
    tree: RootedTree,
    value: Any,
    network: CongestNetwork | None = None,
) -> tuple[list[Any], int]:
    """Broadcast ``value`` from the tree root; returns (per-node values,
    rounds)."""
    net = network or CongestNetwork(graph)
    edge_map = _tree_edge_map(graph, tree)
    result = net.run(lambda v: BroadcastNode(v, tree, edge_map, value))
    return [state.value for state in result.states], result.rounds


def convergecast_sum(
    graph: Graph,
    tree: RootedTree,
    values: Sequence[float],
    network: CongestNetwork | None = None,
) -> tuple[float, int]:
    """Sum per-node values at the root; returns (sum, rounds)."""
    net = network or CongestNetwork(graph)
    edge_map = _tree_edge_map(graph, tree)
    result = net.run(
        lambda v: ConvergecastSumNode(v, tree, edge_map, values[v])
    )
    root_state = result.states[tree.root]
    if root_state.result is None:
        raise CongestModelError(
            "convergecast finished without delivering a sum to the root"
        )
    return float(root_state.result), result.rounds


def pipelined_aggregate(
    graph: Graph,
    tree: RootedTree,
    values: Sequence[Sequence[float]],
    network: CongestNetwork | None = None,
) -> tuple[list[float], int]:
    """Compute k independent sums (values[v] is node v's k-vector) with
    pipelining; returns (k sums at the root, rounds ≈ height + k)."""
    net = network or CongestNetwork(graph)
    edge_map = _tree_edge_map(graph, tree)
    result = net.run(
        lambda v: PipelinedAggregationNode(v, tree, edge_map, values[v])
    )
    root_state = result.states[tree.root]
    if root_state.result is None:
        raise CongestModelError(
            "pipelined aggregation finished without a result at the root"
        )
    return list(root_state.result), result.rounds
