"""Skeleton and portal computation (paper §8.3, Lemmas 8.5/8.8).

Given a spanning tree T of the (cluster) graph and the removed edge set
F, the forest T \\ F is reduced to a j-tree as follows:

* **primary portals** P1: clusters incident to an edge of F;
* the **skeleton**: iteratively strip degree-1 non-portal clusters;
* **secondary portals** P2: skeleton clusters of degree > 2 not in P1;
* on every maximal skeleton path between portals with no interior
  portal, delete the minimum-capacity edge (the set D);
* each component of T \\ (F ∪ D) then contains exactly one portal and
  becomes one tree of the j-tree's forest, rooted at its portal.

Lemma 8.5: |P| < 4|F|.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import GraphError

__all__ = ["SkeletonResult", "build_skeleton"]


@dataclass
class SkeletonResult:
    """Output of the skeleton/portal computation.

    All node indices refer to the cluster graph on which the spanning
    tree was built. Tree edges are identified by their child endpoint
    in the rooted tree representation used by the caller, but here the
    tree is given as an undirected adjacency, so edges are (a, b) pairs
    with a < b.

    Attributes:
        primary_portals: P1.
        secondary_portals: P2.
        deleted_path_edges: The set D, as (a, b, capacity) with a < b.
        component: Component index of each node in T \\ (F ∪ D).
        component_portal: The unique portal of each component.
        skeleton_nodes: Nodes surviving the leaf stripping.
    """

    primary_portals: set[int]
    secondary_portals: set[int]
    deleted_path_edges: list[tuple[int, int, float]]
    component: list[int]
    component_portal: list[int]
    skeleton_nodes: set[int]

    @property
    def portals(self) -> set[int]:
        return self.primary_portals | self.secondary_portals


def build_skeleton(
    num_nodes: int,
    forest_edges: list[tuple[int, int, float]],
    primary_portals: set[int],
) -> SkeletonResult:
    """Compute skeleton, portals, and the deleted edge set D.

    Args:
        num_nodes: Number of cluster-graph nodes.
        forest_edges: Edges of T \\ F as (a, b, capacity) pairs.
        primary_portals: Clusters incident to F edges.

    Returns:
        A :class:`SkeletonResult`; every component of T \\ (F ∪ D) has
        exactly one portal. If ``primary_portals`` is empty (F = ∅),
        the whole tree is one component and node 0's tree root acts as
        the single "portal" (the j-tree degenerates to a 1-tree).
    """
    adjacency: list[dict[tuple[int, int], float]] = [
        {} for _ in range(num_nodes)
    ]
    for a, b, cap in forest_edges:
        key = (min(a, b), max(a, b))
        adjacency[a][key] = cap
        adjacency[b][key] = cap

    portals = set(primary_portals)
    if not portals:
        # Degenerate: no F edges; one component, pick a canonical portal.
        portals = {0} if num_nodes else set()

    # --- 1. strip non-portal leaves iteratively -----------------------
    degree = [len(adjacency[v]) for v in range(num_nodes)]
    alive = [True] * num_nodes
    queue = deque(
        v
        for v in range(num_nodes)
        if degree[v] <= 1 and v not in portals
    )
    stripped: set[int] = set()
    while queue:
        v = queue.popleft()
        if not alive[v] or v in portals:
            continue
        if degree[v] > 1:
            continue
        alive[v] = False
        stripped.add(v)
        for key in adjacency[v]:
            a, b = key
            other = b if a == v else a
            if alive[other]:
                degree[other] -= 1
                if degree[other] <= 1 and other not in portals:
                    queue.append(other)
    skeleton_nodes = {
        v for v in range(num_nodes) if alive[v] and (degree[v] > 0 or v in portals)
    }

    # --- 2. secondary portals: skeleton degree > 2 --------------------
    secondary = {
        v
        for v in skeleton_nodes
        if v not in portals and degree[v] > 2
    }
    all_portals = portals | secondary

    # --- 3. walk skeleton paths between portals; delete min-cap edge --
    deleted: list[tuple[int, int, float]] = []
    visited_edges: set[tuple[int, int]] = set()
    for p in sorted(all_portals):
        if p not in skeleton_nodes:
            continue
        for key in list(adjacency[p].keys()):
            a, b = key
            other = b if a == p else a
            if other not in skeleton_nodes or key in visited_edges:
                continue
            # Walk along degree-2 non-portal skeleton nodes.
            path_edges: list[tuple[int, int, float]] = []
            prev, node = p, other
            edge_key = key
            path_edges.append((edge_key[0], edge_key[1], adjacency[p][edge_key]))
            visited_edges.add(edge_key)
            while node not in all_portals:
                next_keys = [
                    k
                    for k in adjacency[node]
                    if k != edge_key
                    and (k[0] if k[1] == node else k[1]) in skeleton_nodes
                    and alive[k[0]]
                    and alive[k[1]]
                ]
                if not next_keys:
                    break  # dead end (stripped side branch)
                edge_key = next_keys[0]
                a2, b2 = edge_key
                prev, node = node, (b2 if a2 == node else a2)
                path_edges.append((a2, b2, adjacency[prev][edge_key]))
                visited_edges.add(edge_key)
            if node in all_portals and path_edges:
                deleted.append(min(path_edges, key=lambda t: (t[2], t[:2])))

    # --- 4. components of T \ (F ∪ D) --------------------------------
    deleted_keys = {(a, b) for a, b, _ in deleted}
    component = [-1] * num_nodes
    component_portal: list[int] = []
    comp = 0
    for start in range(num_nodes):
        if component[start] >= 0:
            continue
        members = [start]
        component[start] = comp
        queue = deque([start])
        while queue:
            v = queue.popleft()
            for key in adjacency[v]:
                if key in deleted_keys:
                    continue
                a, b = key
                other = b if a == v else a
                if component[other] < 0:
                    component[other] = comp
                    members.append(other)
                    queue.append(other)
        inside = [v for v in members if v in all_portals]
        if len(inside) > 1:
            raise GraphError(
                f"component {comp} contains {len(inside)} portals; "
                "skeleton path deletion failed"
            )
        component_portal.append(inside[0] if inside else members[0])
        comp += 1
    return SkeletonResult(
        primary_portals=set(primary_portals),
        secondary_portals=secondary,
        deleted_path_edges=deleted,
        component=component,
        component_portal=component_portal,
        skeleton_nodes=skeleton_nodes,
    )
