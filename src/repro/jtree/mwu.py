"""Multiplicative-weights j-tree distributions (Räcke / Madry, §8.2,
Lemma 8.4).

Räcke's insight: repeating the spanning-tree (or j-tree) construction
while exponentially up-weighting the lengths of overloaded tree edges
produces a *distribution* {(λ_i, J_i)} such that every cut's capacity
is preserved from below by every J_i and overestimated only by an
expected α factor when sampling by λ. Each iteration chooses
λ_i ∝ 1 / max-rload so the per-edge potential grows by at most a
constant, and the potential bound caps the number of trees needed.

The library exposes the truncated construction (``num_trees``
iterations, λ renormalized): Lemma 3.3 samples O(log n) trees from the
distribution anyway, and Experiment E4 measures the resulting
approximation quality directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.jtree.madry import JTreeStep, madry_jtree_step
from repro.util.rng import as_generator

__all__ = ["JTreeDistribution", "build_jtree_distribution"]

#: Per-iteration potential growth target (λ_i = PROGRESS / max rload).
PROGRESS = 0.5
#: Exponent rate for the length update.
ETA = 1.0
#: Cap on the potential exponent to keep lengths finite.
MAX_EXPONENT = 40.0


@dataclass
class JTreeDistribution:
    """A (truncated) (α, H[j])-decomposition of a cluster multigraph.

    Attributes:
        steps: The constructed j-trees (one :class:`JTreeStep` each).
        weights: λ_i, normalized to sum to 1.
        potentials: Final per-edge potential (diagnostic).
    """

    steps: list[JTreeStep]
    weights: np.ndarray
    potentials: np.ndarray

    def sample(self, rng: np.random.Generator | int | None = None) -> JTreeStep:
        """Draw one j-tree with probability proportional to λ."""
        rng = as_generator(rng)
        index = int(rng.choice(len(self.steps), p=self.weights))
        return self.steps[index]


def build_jtree_distribution(
    quotient: Graph,
    j: int,
    num_trees: int,
    rng: np.random.Generator | int | None = None,
    removal_policy: str = "classes",
) -> JTreeDistribution:
    """Build a truncated MWU distribution of j-trees.

    Args:
        quotient: Cluster multigraph (the current core).
        j: The j parameter handed to every Madry step.
        num_trees: Number of iterations (the paper's full construction
            runs Θ(|E| α log n / j); the hierarchy truncates because it
            samples O(log n) trees overall, cf. Lemma 3.3).
        rng: Randomness source.

    Returns:
        A :class:`JTreeDistribution`.
    """
    if num_trees < 1:
        raise GraphError("num_trees must be >= 1")
    rng = as_generator(rng)
    caps = quotient.capacities()
    potentials = np.zeros(quotient.num_edges)
    steps: list[JTreeStep] = []
    raw_weights: list[float] = []
    total = 0.0
    for _ in range(num_trees):
        exponent = np.minimum(ETA * potentials, MAX_EXPONENT)
        lengths = np.exp(exponent) / caps
        step = madry_jtree_step(
            quotient, lengths, j, rng=rng, removal_policy=removal_policy
        )
        r_max = float(step.rload_per_edge.max())
        if r_max <= 0:
            r_max = 1.0
        lam = min(1.0 - total, PROGRESS / r_max)
        if lam <= 0:
            lam = PROGRESS / r_max
        steps.append(step)
        raw_weights.append(lam)
        total += lam
        potentials = potentials + lam * step.rload_per_edge
        if total >= 1.0:
            break
    weights = np.asarray(raw_weights, dtype=float)
    weights = weights / weights.sum()
    return JTreeDistribution(
        steps=steps, weights=weights, potentials=potentials
    )
