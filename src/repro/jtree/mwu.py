"""Multiplicative-weights j-tree distributions (Räcke / Madry, §8.2,
Lemma 8.4).

Räcke's insight: repeating the spanning-tree (or j-tree) construction
while exponentially up-weighting the lengths of overloaded tree edges
produces a *distribution* {(λ_i, J_i)} such that every cut's capacity
is preserved from below by every J_i and overestimated only by an
expected α factor when sampling by λ. Each iteration chooses
λ_i ∝ 1 / max-rload so the per-edge potential grows by at most a
constant, and the potential bound caps the number of trees needed.

The library exposes the truncated construction (``num_trees``
iterations, λ renormalized): Lemma 3.3 samples O(log n) trees from the
distribution anyway, and Experiment E4 measures the resulting
approximation quality directly.

Two entry points:

* :func:`build_jtree_distribution` materializes every iteration as a
  full :class:`~repro.jtree.madry.JTreeStep` (the ablation /
  inspection API);
* :func:`sample_jtree_step` runs the same iterations but keeps only
  the cheap :class:`~repro.jtree.madry.TreePhase` per iteration (the
  MWU update consumes nothing else) and finishes skeleton/portals/core
  edges for *only the sampled* iteration — the single-quotient form of
  the lazy loop.

The hierarchy itself does not call either entry point: its
``_SampleState`` (:mod:`repro.jtree.hierarchy`) re-runs the same lazy
loop level-synchronously across many samples, which is why the loop's
ingredients are factored here — :func:`mwu_lengths` (the length
update, applied stacked over samples there) and :func:`_mwu_lambda`
(the truncation rule). All three loops share those helpers plus
:func:`~repro.jtree.madry.madry_tree_phase` /
:func:`~repro.jtree.madry.finish_jtree_step`, so their randomness
streams are draw-for-draw identical for a fixed seed — the golden
tests pin ``sample_jtree_step`` against
``build_jtree_distribution(...).sample(...)`` and the batched
hierarchy against the sequential one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.jtree.madry import (
    JTreeStep,
    TreePhase,
    finish_jtree_step,
    madry_jtree_step,
    madry_tree_phase,
)
from repro.parallel.config import ParallelConfig, resolve_config
from repro.parallel.plan import ShardPlan
from repro.parallel.pool import get_pool
from repro.util.rng import as_generator

__all__ = [
    "JTreeDistribution",
    "SampledJTree",
    "build_jtree_distribution",
    "sample_jtree_step",
    "mwu_lengths",
]

#: Work-size divisor for the stacked length evaluation's sharding
#: threshold: one exp/divide element is far cheaper than one
#: gather-kernel work unit, and the shared ``min_size`` default is
#: calibrated for the latter — dividing by this makes the default
#: config shard only past ~0.5M stack elements, where the serial
#: evaluation (several ms) clearly exceeds the pool's dispatch
#: overhead. ``min_size=0`` (the harness's forced configs) still
#: shards unconditionally.
MWU_SHARD_WORK_DIVISOR = 64

#: Per-iteration potential growth target (λ_i = PROGRESS / max rload).
PROGRESS = 0.5
#: Exponent rate for the length update.
ETA = 1.0
#: Cap on the potential exponent to keep lengths finite.
MAX_EXPONENT = 40.0


def _mwu_lengths_rows(potentials: np.ndarray, caps: np.ndarray) -> np.ndarray:
    """The elementwise MWU length evaluation for one row block
    (top-level so the worker pools can receive it)."""
    return np.exp(np.minimum(ETA * potentials, MAX_EXPONENT)) / caps


def mwu_lengths(
    potentials: np.ndarray,
    caps: np.ndarray,
    parallel: ParallelConfig | None = None,
) -> np.ndarray:
    """The MWU edge lengths ``exp(min(η·potential, cap_exp)) / cap``.

    Elementwise, so it applies unchanged to a single ``(m,)`` potential
    vector or to a ``(num_samples, m)`` stack of them (the batched
    hierarchy computes every active sample's lengths in one call;
    broadcasting keeps the per-row results bitwise identical to the
    per-sample computation, which the golden tests rely on).

    Under a sharded config (``parallel=`` / the ``REPRO_WORKERS``
    process default) a large enough stacked evaluation splits over
    contiguous sample-row blocks on the worker pool; rows are
    independent elementwise work, so the concatenated result is
    bit-identical to the serial evaluation. "Large enough" is scaled
    by :data:`MWU_SHARD_WORK_DIVISOR` — elementwise work only beats
    the dispatch overhead at much larger element counts than the
    gather kernels' shared threshold assumes.
    """
    potentials = np.asarray(potentials)
    if potentials.ndim == 2 and potentials.shape[0] >= 2:
        config = resolve_config(parallel)
        if config.should_shard(potentials.size // MWU_SHARD_WORK_DIVISOR):
            plan = ShardPlan.even(potentials.shape[0], config.workers)
            if plan.num_shards > 1:
                parts = get_pool(config).map(
                    _mwu_lengths_rows,
                    [
                        (potentials[lo:hi], caps)
                        for lo, hi in plan.ranges()
                    ],
                )
                return np.concatenate(parts, axis=0)
    return _mwu_lengths_rows(potentials, caps)


def _mwu_lambda(total: float, r_max: float) -> tuple[float, float]:
    """One iteration's (λ, r_max) under the truncation rule."""
    if r_max <= 0:
        r_max = 1.0
    lam = min(1.0 - total, PROGRESS / r_max)
    if lam <= 0:
        lam = PROGRESS / r_max
    return lam, r_max


@dataclass
class JTreeDistribution:
    """A (truncated) (α, H[j])-decomposition of a cluster multigraph.

    Attributes:
        steps: The constructed j-trees (one :class:`JTreeStep` each).
        weights: λ_i, normalized to sum to 1.
        potentials: Final per-edge potential (diagnostic).
    """

    steps: list[JTreeStep]
    weights: np.ndarray
    potentials: np.ndarray

    def sample(self, rng: np.random.Generator | int | None = None) -> JTreeStep:
        """Draw one j-tree with probability proportional to λ."""
        rng = as_generator(rng)
        index = int(rng.choice(len(self.steps), p=self.weights))
        return self.steps[index]


@dataclass
class SampledJTree:
    """One j-tree sampled from a (lazily built) MWU distribution.

    Attributes:
        step: The finished :class:`JTreeStep` of the sampled iteration.
        phases: Total SplitGraph phases over *all* iterations (round
            accounting charges the whole distribution build).
        num_iterations: Iterations the truncated construction ran.
    """

    step: JTreeStep
    phases: int
    num_iterations: int


def build_jtree_distribution(
    quotient: Graph,
    j: int,
    num_trees: int,
    rng: np.random.Generator | int | None = None,
    removal_policy: str = "classes",
) -> JTreeDistribution:
    """Build a truncated MWU distribution of j-trees.

    Args:
        quotient: Cluster multigraph (the current core).
        j: The j parameter handed to every Madry step.
        num_trees: Number of iterations (the paper's full construction
            runs Θ(|E| α log n / j); the hierarchy truncates because it
            samples O(log n) trees overall, cf. Lemma 3.3).
        rng: Randomness source.

    Returns:
        A :class:`JTreeDistribution`.
    """
    if num_trees < 1:
        raise GraphError("num_trees must be >= 1")
    rng = as_generator(rng)
    caps = quotient.capacities()
    potentials = np.zeros(quotient.num_edges)
    steps: list[JTreeStep] = []
    raw_weights: list[float] = []
    total = 0.0
    for _ in range(num_trees):
        lengths = mwu_lengths(potentials, caps)
        step = madry_jtree_step(
            quotient, lengths, j, rng=rng, removal_policy=removal_policy
        )
        lam, _ = _mwu_lambda(total, float(step.rload_per_edge.max()))
        steps.append(step)
        raw_weights.append(lam)
        total += lam
        potentials = potentials + lam * step.rload_per_edge
        if total >= 1.0:
            break
    weights = np.asarray(raw_weights, dtype=float)
    weights = weights / weights.sum()
    return JTreeDistribution(
        steps=steps, weights=weights, potentials=potentials
    )


def sample_jtree_step(
    quotient: Graph,
    j: int,
    num_trees: int,
    rng: np.random.Generator | int | None = None,
    removal_policy: str = "classes",
) -> SampledJTree:
    """Sample one j-tree from the truncated MWU distribution, lazily.

    Runs the same iterations as :func:`build_jtree_distribution` but
    materializes only the sampled iteration's skeleton / portals /
    core edges (:func:`~repro.jtree.madry.finish_jtree_step` is
    deterministic, so deferring it does not touch the randomness
    stream). For a fixed seed the returned step equals
    ``build_jtree_distribution(...).sample(rng)`` exactly.
    """
    if num_trees < 1:
        raise GraphError("num_trees must be >= 1")
    rng = as_generator(rng)
    caps = quotient.capacities()
    potentials = np.zeros(quotient.num_edges)
    phases_list: list[TreePhase] = []
    raw_weights: list[float] = []
    total = 0.0
    for _ in range(num_trees):
        lengths = mwu_lengths(potentials, caps)
        phase = madry_tree_phase(
            quotient, lengths, j, rng=rng, removal_policy=removal_policy
        )
        lam, _ = _mwu_lambda(total, float(phase.rload_per_edge.max()))
        phases_list.append(phase)
        raw_weights.append(lam)
        total += lam
        potentials = potentials + lam * phase.rload_per_edge
        if total >= 1.0:
            break
    weights = np.asarray(raw_weights, dtype=float)
    weights = weights / weights.sum()
    index = int(rng.choice(len(phases_list), p=weights))
    return SampledJTree(
        step=finish_jtree_step(quotient, phases_list[index]),
        phases=sum(p.phases for p in phases_list),
        num_iterations=len(phases_list),
    )
