"""j-trees and the recursive virtual-tree hierarchy (paper §§4, 8)."""

from repro.jtree.skeleton import SkeletonResult, build_skeleton
from repro.jtree.madry import (
    CoreEdge,
    JTreeStep,
    madry_jtree_step,
    select_load_classes,
)
from repro.jtree.mwu import JTreeDistribution, build_jtree_distribution
from repro.jtree.embedding import EmbeddingReport, embedding_report
from repro.jtree.hierarchy import (
    HierarchyParams,
    VirtualTree,
    sample_virtual_tree,
)

__all__ = [
    "SkeletonResult",
    "build_skeleton",
    "CoreEdge",
    "JTreeStep",
    "madry_jtree_step",
    "select_load_classes",
    "JTreeDistribution",
    "build_jtree_distribution",
    "HierarchyParams",
    "VirtualTree",
    "sample_virtual_tree",
    "EmbeddingReport",
    "embedding_report",
]
