"""j-trees and the recursive virtual-tree hierarchy (paper §§4, 8)."""

from repro.jtree.skeleton import SkeletonResult, build_skeleton
from repro.jtree.madry import (
    CoreEdge,
    JTreeStep,
    TreePhase,
    finish_jtree_step,
    madry_jtree_step,
    madry_tree_phase,
    select_load_classes,
)
from repro.jtree.mwu import (
    JTreeDistribution,
    SampledJTree,
    build_jtree_distribution,
    sample_jtree_step,
)
from repro.jtree.embedding import EmbeddingReport, embedding_report
from repro.jtree.hierarchy import (
    HierarchyParams,
    VirtualTree,
    sample_virtual_tree,
    sample_virtual_trees,
)

__all__ = [
    "SkeletonResult",
    "build_skeleton",
    "CoreEdge",
    "JTreeStep",
    "TreePhase",
    "finish_jtree_step",
    "madry_jtree_step",
    "madry_tree_phase",
    "select_load_classes",
    "JTreeDistribution",
    "SampledJTree",
    "build_jtree_distribution",
    "sample_jtree_step",
    "HierarchyParams",
    "VirtualTree",
    "sample_virtual_tree",
    "sample_virtual_trees",
    "EmbeddingReport",
    "embedding_report",
]
