"""One step of Madry's j-tree construction (paper §4 and §8.2–8.3).

Given the current cluster multigraph (the "core" from the previous
recursion level) and an edge length function, one step produces a
Θ(j)-tree:

1. compute a low average-stretch spanning tree T w.r.t. the lengths
   (Theorem 3.1);
2. compute, for every tree edge, the load |f'| of embedding the graph
   into T — equal to the capacity of the cut the edge's subtree induces
   (Lemma 8.1/8.3) — and the relative load rload = |f'| / cap;
3. partition tree edges into load classes (R/2^i, R/2^{i-1}]; find the
   minimal class i0 with Ω(j / log n) edges whose higher classes hold
   at most j edges; remove those higher-class edges (the set F);
4. compute portals, skeleton, and the deleted path-edge set D
   (:mod:`repro.jtree.skeleton`);
5. the forest T \\ (F ∪ D), rooted at the portals, plus the core edges
   (graph edges crossing components at original capacity, D edges at
   their tree capacity) form the j-tree.

The relative loads feed the multiplicative-weights update
(:mod:`repro.jtree.mwu`) that turns repeated steps into an
(α, H[j])-decomposition (Lemma 8.4).

The step is split into two stages so the MWU loop can defer work it
may never need: :func:`madry_tree_phase` (stages 1–3: the spanning
tree, loads, and removal set — everything the weight update consumes,
and everything that draws randomness) and :func:`finish_jtree_step`
(stages 4–5: skeleton, portals, forest orientation, and core edges —
deterministic given the phase, so it can be run for *only the sampled*
iteration of a distribution; cf. :func:`repro.jtree.mwu.sample_jtree_step`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs import kernels
from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree, induced_cut_capacities
from repro.jtree.skeleton import SkeletonResult, build_skeleton
from repro.lsst.akpw import akpw_spanning_tree
from repro.util.rng import as_generator

__all__ = [
    "CoreEdge",
    "JTreeStep",
    "TreePhase",
    "madry_tree_phase",
    "finish_jtree_step",
    "madry_jtree_step",
    "select_load_classes",
]


@dataclass(frozen=True)
class CoreEdge:
    """An edge of the j-tree's core multigraph.

    Attributes:
        component_u / component_v: Endpoint components (new clusters).
        capacity: Core capacity (original capacity for crossing graph
            edges; the tree capacity cap_T for D-edges, per §8.3).
        quotient_edge: The quotient edge this core edge is realized by
            (a physical network edge via the cluster graph's ψ map).
        is_path_edge: True for D-edges (deleted skeleton path edges).
    """

    component_u: int
    component_v: int
    capacity: float
    quotient_edge: int
    is_path_edge: bool


@dataclass
class TreePhase:
    """The randomness-consuming first stage of a Madry step.

    Everything the multiplicative-weights update needs (Lemma 8.4 uses
    only the relative loads), plus everything :func:`finish_jtree_step`
    needs to deterministically complete the j-tree.

    Attributes:
        tree: The spanning tree T of the quotient.
        tree_edge_of_child: ``(n,)`` int array; quotient edge id
            realizing (c, parent(c)), -1 at the root.
        tree_capacity: cap_T per child node (induced cut capacities).
        rload: Relative load per child node (cap_T / cap).
        rload_per_edge: Relative load per *quotient edge* (0 off-tree)
            — the MWU update vector.
        removed: Sorted child node ids whose parent edge went into F.
        phases: SplitGraph phases consumed (round accounting).
    """

    tree: RootedTree
    tree_edge_of_child: np.ndarray
    tree_capacity: np.ndarray
    rload: np.ndarray
    rload_per_edge: np.ndarray
    removed: list[int]
    phases: int


@dataclass
class JTreeStep:
    """Everything one Madry step produces.

    Attributes:
        tree: The spanning tree T of the quotient.
        tree_edge_of_child: Quotient edge id realizing (c, parent(c)).
        tree_capacity: cap_T per child node (induced cut capacities).
        rload: Relative load per child node (cap_T / cap).
        rload_per_edge: Relative load per *quotient edge* (0 off-tree) —
            the MWU update vector.
        removed_edges: Child node ids whose parent edge went into F.
        skeleton: Portal/skeleton/D data.
        forest_parent: Per cluster, parent cluster in the j-tree forest
            (-1 at portals).
        forest_edge: Per cluster, quotient edge to the forest parent.
        component_of: Per cluster, its component (new cluster) index.
        core_u / core_v / core_cap / core_origin / core_is_path:
            Parallel arrays of the core multigraph's edges (endpoint
            components, capacity, realizing quotient edge, D-flag) in
            quotient-edge-id order — the array-native form the
            hierarchy consumes; :attr:`core_edges` materializes the
            per-edge view lazily.
        num_components: Number of new clusters (= core size).
        phases: SplitGraph phases consumed (round accounting).
    """

    tree: RootedTree
    tree_edge_of_child: list[int]
    tree_capacity: np.ndarray
    rload: np.ndarray
    rload_per_edge: np.ndarray
    removed_edges: list[int]
    skeleton: SkeletonResult
    forest_parent: list[int]
    forest_edge: list[int]
    component_of: list[int]
    core_u: np.ndarray
    core_v: np.ndarray
    core_cap: np.ndarray
    core_origin: np.ndarray
    core_is_path: np.ndarray
    num_components: int
    phases: int
    _core_edges_cache: list[CoreEdge] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def core_edges(self) -> list[CoreEdge]:
        """Per-edge :class:`CoreEdge` view of the core arrays (lazy)."""
        if self._core_edges_cache is None:
            self._core_edges_cache = [
                CoreEdge(int(u), int(v), float(c), int(q), bool(d))
                for u, v, c, q, d in zip(
                    self.core_u.tolist(),
                    self.core_v.tolist(),
                    self.core_cap.tolist(),
                    self.core_origin.tolist(),
                    self.core_is_path.tolist(),
                )
            ]
        return self._core_edges_cache


def select_load_classes(
    rload: np.ndarray, children: list[int], j: int
) -> list[int]:
    """Choose the removal set F by load classes (paper §4 step 3).

    Args:
        rload: Relative load per child node.
        children: Child node ids carrying tree edges (all non-roots).
        j: Target size bound: |F| <= j.

    Returns:
        Child node ids whose parent edges form F (the classes strictly
        above the first class containing Ω(j / log n) edges).
    """
    if not children:
        return []
    loads = np.array([rload[c] for c in children])
    r_max = float(loads.max())
    if r_max <= 0:
        return []
    # class index of edge: i such that rload in (R/2^i, R/2^{i-1}],
    # i.e. ratio R/rload in [2^{i-1}, 2^i) and i = floor(log2 ratio)+1.
    with np.errstate(divide="ignore"):
        ratio = np.where(loads > 0, r_max / loads, np.inf)
    finite = np.isfinite(ratio)
    class_index = np.full(len(loads), 63, dtype=int)
    class_index[finite] = (
        np.floor(np.log2(np.maximum(ratio[finite], 1.0))).astype(int) + 1
    )
    i_max = int(class_index.max())
    quota = max(1, int(j / max(1.0, math.log2(len(children) + 1))))
    prefix = 0
    for i in range(1, i_max + 1):
        size_i = int((class_index == i).sum())
        if size_i >= quota or prefix + size_i > j:
            # classes 1..i-1 are removed (they hold `prefix` <= j edges)
            return [
                c
                for c, ci in zip(children, class_index)
                if ci < i
            ]
        prefix += size_i
    # Every class was small and the total fits within j: remove all but
    # the last class (keeps Ω(j / log) near the new max).
    return [c for c, ci in zip(children, class_index) if ci < i_max]


def madry_tree_phase(
    quotient: Graph,
    lengths: Sequence[float] | None,
    j: int,
    rng: np.random.Generator | int | None = None,
    extra_removals: Sequence[int] = (),
    removal_policy: str = "classes",
) -> TreePhase:
    """Run stages 1–3 of a Madry step (tree, loads, removal set).

    This is the only part of a step that consumes randomness; see
    :func:`madry_jtree_step` for the argument semantics.
    """
    rng = as_generator(rng)
    n = quotient.num_nodes
    if n < 2:
        raise GraphError("madry step needs at least 2 clusters")
    if lengths is None:
        lengths = 1.0 / quotient.capacities()
    lsst = akpw_spanning_tree(quotient, lengths=lengths, rng=rng)
    tree = lsst.tree

    # Map each tree edge (child, parent) to the quotient edge realizing
    # it. A spanning tree holds one edge per node pair, so the lowest
    # edge id per pair over `tree_edges` is exactly the chosen edge.
    tree_edges = np.asarray(lsst.tree_edges, dtype=np.int64)
    tails, heads = quotient.edge_index_arrays()
    parents = np.asarray(tree.parent, dtype=np.int64)
    nonroot = np.flatnonzero(parents >= 0)
    tree_edge_of_child = np.full(n, -1, dtype=np.int64)
    if len(tree_edges):
        keys, first = kernels.pair_first_edge_index(
            tails[tree_edges], heads[tree_edges], n
        )
        tree_edge_of_child[nonroot] = tree_edges[
            kernels.lookup_pairs(keys, first, n, nonroot, parents[nonroot])
        ]

    # Tree capacities = induced cut capacities (the |f'| of Lemma 8.3).
    tree_capacity = induced_cut_capacities(quotient, tree)
    caps = quotient.capacities()
    rload = np.zeros(n)
    child_eids = tree_edge_of_child[nonroot]
    rload[nonroot] = tree_capacity[nonroot] / caps[child_eids]
    rload_per_edge = np.zeros(quotient.num_edges)
    rload_per_edge[child_eids] = rload[nonroot]

    children = nonroot.tolist()
    if removal_policy == "classes":
        removed = set(select_load_classes(rload, children, j))
    elif removal_policy == "topj":
        by_load = sorted(children, key=lambda c: -rload[c])
        removed = set(by_load[: min(j, max(0, len(children) - 1))])
    else:
        raise GraphError(f"unknown removal_policy {removal_policy!r}")
    removed.update(int(c) for c in extra_removals if tree.parent[c] >= 0)
    return TreePhase(
        tree=tree,
        tree_edge_of_child=tree_edge_of_child,
        tree_capacity=tree_capacity,
        rload=rload,
        rload_per_edge=rload_per_edge,
        removed=sorted(removed),
        phases=lsst.phases,
    )


def finish_jtree_step(quotient: Graph, phase: TreePhase) -> JTreeStep:
    """Run stages 4–5 of a Madry step (skeleton, forest, core edges).

    Deterministic given ``phase`` — no randomness is consumed, so the
    MWU loop can run it for only the iteration it actually sampled.
    """
    n = quotient.num_nodes
    tree = phase.tree
    tree_capacity = phase.tree_capacity
    tree_edge_of_child = phase.tree_edge_of_child
    removed = phase.removed

    # Forest T \ F and primary portals.
    removed_set = set(removed)
    children = np.flatnonzero(np.asarray(tree.parent, dtype=np.int64) >= 0)
    forest_edges = [
        (c, tree.parent[c], float(tree_capacity[c]))
        for c in children.tolist()
        if c not in removed_set
    ]
    primary = set()
    for c in removed:
        primary.add(c)
        primary.add(tree.parent[c])
    skeleton = build_skeleton(n, forest_edges, primary)

    # Root every component at its portal; orient the forest.
    deleted_keys = {
        (a, b) for a, b, _ in skeleton.deleted_path_edges
    }
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for c, p, _ in forest_edges:
        if (min(c, p), max(c, p)) in deleted_keys:
            continue
        adjacency[c].append(p)
        adjacency[p].append(c)
    forest_parent = [-1] * n
    forest_edge = [-1] * n
    tec = tree_edge_of_child.tolist()
    for comp_index, portal in enumerate(skeleton.component_portal):
        stack = [portal]
        seen = {portal}
        while stack:
            v = stack.pop()
            for w in adjacency[v]:
                if w in seen:
                    continue
                seen.add(w)
                forest_parent[w] = v
                forest_edge[w] = (
                    tec[w] if tree.parent[w] == v else tec[v]
                )
                stack.append(w)

    # Core edges: quotient edges crossing components (original capacity)
    # plus D edges (tree capacity). D edges physically cross components.
    # Emitted in quotient-edge-id order, matching the legacy loop: a
    # spanning tree realizes each node pair by a unique edge, so each
    # D pair is hit by exactly one tree edge and needs no dedup.
    component = np.asarray(skeleton.component, dtype=np.int64)
    tails, heads = quotient.edge_index_arrays()
    comp_u = component[tails]
    comp_v = component[heads]
    eids = np.flatnonzero(comp_u != comp_v)
    e_tails, e_heads = tails[eids], heads[eids]
    is_tree = (tree_edge_of_child[e_tails] == eids) | (
        tree_edge_of_child[e_heads] == eids
    )
    core_cap = quotient.capacities()[eids].copy()
    is_d = np.zeros(len(eids), dtype=bool)
    if skeleton.deleted_path_edges:
        d_arr = np.asarray(
            [(a, b) for a, b, _ in skeleton.deleted_path_edges],
            dtype=np.int64,
        )
        d_caps = np.asarray(
            [cap for _, _, cap in skeleton.deleted_path_edges], dtype=float
        )
        d_keys = d_arr[:, 0] * np.int64(n) + d_arr[:, 1]
        d_order = np.argsort(d_keys)
        d_keys = d_keys[d_order]
        d_caps = d_caps[d_order]
        e_keys = np.minimum(e_tails, e_heads).astype(np.int64) * np.int64(
            n
        ) + np.maximum(e_tails, e_heads)
        pos = np.searchsorted(d_keys, e_keys)
        pos_c = np.minimum(pos, len(d_keys) - 1)
        found = d_keys[pos_c] == e_keys
        is_d = is_tree & found
        core_cap[is_d] = d_caps[pos_c[is_d]]
    return JTreeStep(
        tree=tree,
        tree_edge_of_child=tec,
        tree_capacity=tree_capacity,
        rload=phase.rload,
        rload_per_edge=phase.rload_per_edge,
        removed_edges=list(removed),
        skeleton=skeleton,
        forest_parent=forest_parent,
        forest_edge=forest_edge,
        component_of=component.tolist(),
        core_u=comp_u[eids],
        core_v=comp_v[eids],
        core_cap=core_cap,
        core_origin=eids,
        core_is_path=is_d,
        num_components=len(skeleton.component_portal),
        phases=phase.phases,
    )


def madry_jtree_step(
    quotient: Graph,
    lengths: Sequence[float] | None,
    j: int,
    rng: np.random.Generator | int | None = None,
    extra_removals: Sequence[int] = (),
    removal_policy: str = "classes",
) -> JTreeStep:
    """Run one Madry construction step on a cluster multigraph.

    Args:
        quotient: The core multigraph from the previous level.
        lengths: Edge lengths for the spanning tree (None = 1/cap).
        j: The j parameter (bounds |F| and hence portal count < 4j).
        rng: Randomness source.
        extra_removals: Additional child node ids to force into F (the
            paper's Õ(√n) random depth-control edges, Lemma 8.2).
        removal_policy: ``"classes"`` — the load-class rule of §4 step 3
            (F may be empty when the top class is already large);
            ``"topj"`` — §8.2's "repeatedly delete the edge with the
            largest relative load" reading: F = the j highest-load tree
            edges, which guarantees ~Θ(j) portals and hence genuinely
            multi-level recursion.

    Returns:
        A :class:`JTreeStep`.
    """
    phase = madry_tree_phase(
        quotient,
        lengths,
        j,
        rng=rng,
        extra_removals=extra_removals,
        removal_policy=removal_policy,
    )
    return finish_jtree_step(quotient, phase)
