"""One step of Madry's j-tree construction (paper §4 and §8.2–8.3).

Given the current cluster multigraph (the "core" from the previous
recursion level) and an edge length function, one step produces a
Θ(j)-tree:

1. compute a low average-stretch spanning tree T w.r.t. the lengths
   (Theorem 3.1);
2. compute, for every tree edge, the load |f'| of embedding the graph
   into T — equal to the capacity of the cut the edge's subtree induces
   (Lemma 8.1/8.3) — and the relative load rload = |f'| / cap;
3. partition tree edges into load classes (R/2^i, R/2^{i-1}]; find the
   minimal class i0 with Ω(j / log n) edges whose higher classes hold
   at most j edges; remove those higher-class edges (the set F);
4. compute portals, skeleton, and the deleted path-edge set D
   (:mod:`repro.jtree.skeleton`);
5. the forest T \\ (F ∪ D), rooted at the portals, plus the core edges
   (graph edges crossing components at original capacity, D edges at
   their tree capacity) form the j-tree.

The relative loads feed the multiplicative-weights update
(:mod:`repro.jtree.mwu`) that turns repeated steps into an
(α, H[j])-decomposition (Lemma 8.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree, induced_cut_capacities
from repro.jtree.skeleton import SkeletonResult, build_skeleton
from repro.lsst.akpw import akpw_spanning_tree
from repro.util.rng import as_generator

__all__ = ["CoreEdge", "JTreeStep", "madry_jtree_step", "select_load_classes"]


@dataclass(frozen=True)
class CoreEdge:
    """An edge of the j-tree's core multigraph.

    Attributes:
        component_u / component_v: Endpoint components (new clusters).
        capacity: Core capacity (original capacity for crossing graph
            edges; the tree capacity cap_T for D-edges, per §8.3).
        quotient_edge: The quotient edge this core edge is realized by
            (a physical network edge via the cluster graph's ψ map).
        is_path_edge: True for D-edges (deleted skeleton path edges).
    """

    component_u: int
    component_v: int
    capacity: float
    quotient_edge: int
    is_path_edge: bool


@dataclass
class JTreeStep:
    """Everything one Madry step produces.

    Attributes:
        tree: The spanning tree T of the quotient.
        tree_edge_of_child: Quotient edge id realizing (c, parent(c)).
        tree_capacity: cap_T per child node (induced cut capacities).
        rload: Relative load per child node (cap_T / cap).
        rload_per_edge: Relative load per *quotient edge* (0 off-tree) —
            the MWU update vector.
        removed_edges: Child node ids whose parent edge went into F.
        skeleton: Portal/skeleton/D data.
        forest_parent: Per cluster, parent cluster in the j-tree forest
            (-1 at portals).
        forest_edge: Per cluster, quotient edge to the forest parent.
        component_of: Per cluster, its component (new cluster) index.
        core_edges: The core multigraph's edges.
        num_components: Number of new clusters (= core size).
        phases: SplitGraph phases consumed (round accounting).
    """

    tree: RootedTree
    tree_edge_of_child: list[int]
    tree_capacity: np.ndarray
    rload: np.ndarray
    rload_per_edge: np.ndarray
    removed_edges: list[int]
    skeleton: SkeletonResult
    forest_parent: list[int]
    forest_edge: list[int]
    component_of: list[int]
    core_edges: list[CoreEdge]
    num_components: int
    phases: int


def select_load_classes(
    rload: np.ndarray, children: list[int], j: int
) -> list[int]:
    """Choose the removal set F by load classes (paper §4 step 3).

    Args:
        rload: Relative load per child node.
        children: Child node ids carrying tree edges (all non-roots).
        j: Target size bound: |F| <= j.

    Returns:
        Child node ids whose parent edges form F (the classes strictly
        above the first class containing Ω(j / log n) edges).
    """
    if not children:
        return []
    loads = np.array([rload[c] for c in children])
    r_max = float(loads.max())
    if r_max <= 0:
        return []
    # class index of edge: i such that rload in (R/2^i, R/2^{i-1}],
    # i.e. ratio R/rload in [2^{i-1}, 2^i) and i = floor(log2 ratio)+1.
    with np.errstate(divide="ignore"):
        ratio = np.where(loads > 0, r_max / loads, np.inf)
    finite = np.isfinite(ratio)
    class_index = np.full(len(loads), 63, dtype=int)
    class_index[finite] = (
        np.floor(np.log2(np.maximum(ratio[finite], 1.0))).astype(int) + 1
    )
    i_max = int(class_index.max())
    quota = max(1, int(j / max(1.0, math.log2(len(children) + 1))))
    prefix = 0
    for i in range(1, i_max + 1):
        size_i = int((class_index == i).sum())
        if size_i >= quota or prefix + size_i > j:
            # classes 1..i-1 are removed (they hold `prefix` <= j edges)
            return [
                c
                for c, ci in zip(children, class_index)
                if ci < i
            ]
        prefix += size_i
    # Every class was small and the total fits within j: remove all but
    # the last class (keeps Ω(j / log) near the new max).
    return [c for c, ci in zip(children, class_index) if ci < i_max]


def madry_jtree_step(
    quotient: Graph,
    lengths: Sequence[float] | None,
    j: int,
    rng: np.random.Generator | int | None = None,
    extra_removals: Sequence[int] = (),
    removal_policy: str = "classes",
) -> JTreeStep:
    """Run one Madry construction step on a cluster multigraph.

    Args:
        quotient: The core multigraph from the previous level.
        lengths: Edge lengths for the spanning tree (None = 1/cap).
        j: The j parameter (bounds |F| and hence portal count < 4j).
        rng: Randomness source.
        extra_removals: Additional child node ids to force into F (the
            paper's Õ(√n) random depth-control edges, Lemma 8.2).
        removal_policy: ``"classes"`` — the load-class rule of §4 step 3
            (F may be empty when the top class is already large);
            ``"topj"`` — §8.2's "repeatedly delete the edge with the
            largest relative load" reading: F = the j highest-load tree
            edges, which guarantees ~Θ(j) portals and hence genuinely
            multi-level recursion.

    Returns:
        A :class:`JTreeStep`.
    """
    rng = as_generator(rng)
    n = quotient.num_nodes
    if n < 2:
        raise GraphError("madry step needs at least 2 clusters")
    if lengths is None:
        lengths = 1.0 / quotient.capacities()
    lsst = akpw_spanning_tree(quotient, lengths=lengths, rng=rng)
    tree = lsst.tree

    # Map each tree edge (child, parent) to the quotient edge realizing
    # it (akpw reports the chosen edge ids).
    chosen_by_pair: dict[tuple[int, int], int] = {}
    for eid in lsst.tree_edges:
        u, v = quotient.endpoints(eid)
        chosen_by_pair[(min(u, v), max(u, v))] = eid
    tree_edge_of_child = [-1] * n
    for c in range(n):
        p = tree.parent[c]
        if p >= 0:
            tree_edge_of_child[c] = chosen_by_pair[(min(c, p), max(c, p))]

    # Tree capacities = induced cut capacities (the |f'| of Lemma 8.3).
    tree_capacity = induced_cut_capacities(quotient, tree)
    rload = np.zeros(n)
    for c in range(n):
        eid = tree_edge_of_child[c]
        if eid >= 0:
            rload[c] = tree_capacity[c] / quotient.capacity(eid)
    rload_per_edge = np.zeros(quotient.num_edges)
    for c in range(n):
        eid = tree_edge_of_child[c]
        if eid >= 0:
            rload_per_edge[eid] = rload[c]

    children = [c for c in range(n) if tree.parent[c] >= 0]
    if removal_policy == "classes":
        removed = set(select_load_classes(rload, children, j))
    elif removal_policy == "topj":
        by_load = sorted(children, key=lambda c: -rload[c])
        removed = set(by_load[: min(j, max(0, len(children) - 1))])
    else:
        raise GraphError(f"unknown removal_policy {removal_policy!r}")
    removed.update(int(c) for c in extra_removals if tree.parent[c] >= 0)

    # Forest T \ F and primary portals.
    forest_edges = [
        (c, tree.parent[c], float(tree_capacity[c]))
        for c in children
        if c not in removed
    ]
    primary = set()
    for c in removed:
        primary.add(c)
        primary.add(tree.parent[c])
    skeleton = build_skeleton(n, forest_edges, primary)

    # Root every component at its portal; orient the forest.
    deleted_keys = {
        (a, b) for a, b, _ in skeleton.deleted_path_edges
    }
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for c, p, _ in forest_edges:
        if (min(c, p), max(c, p)) in deleted_keys:
            continue
        adjacency[c].append(p)
        adjacency[p].append(c)
    forest_parent = [-1] * n
    forest_edge = [-1] * n
    for comp_index, portal in enumerate(skeleton.component_portal):
        stack = [portal]
        seen = {portal}
        while stack:
            v = stack.pop()
            for w in adjacency[v]:
                if w in seen:
                    continue
                seen.add(w)
                forest_parent[w] = v
                forest_edge[w] = (
                    tree_edge_of_child[w]
                    if tree.parent[w] == v
                    else tree_edge_of_child[v]
                )
                stack.append(w)

    # Core edges: quotient edges crossing components (original capacity)
    # plus D edges (tree capacity). D edges physically cross components.
    component = skeleton.component
    core_edges: list[CoreEdge] = []
    d_capacity = {
        (a, b): cap for a, b, cap in skeleton.deleted_path_edges
    }
    d_emitted: set[tuple[int, int]] = set()
    for e in quotient.edges():
        cu, cv = component[e.u], component[e.v]
        if cu == cv:
            continue
        pair = (min(e.u, e.v), max(e.u, e.v))
        is_tree_edge = (
            tree_edge_of_child[e.u] == e.id or tree_edge_of_child[e.v] == e.id
        )
        if is_tree_edge and pair in d_capacity and pair not in d_emitted:
            core_edges.append(
                CoreEdge(cu, cv, d_capacity[pair], e.id, True)
            )
            d_emitted.add(pair)
        elif is_tree_edge and pair in d_capacity:
            continue  # the D edge was already emitted once
        else:
            core_edges.append(CoreEdge(cu, cv, e.capacity, e.id, False))
    return JTreeStep(
        tree=tree,
        tree_edge_of_child=tree_edge_of_child,
        tree_capacity=tree_capacity,
        rload=rload,
        rload_per_edge=rload_per_edge,
        removed_edges=sorted(removed),
        skeleton=skeleton,
        forest_parent=forest_parent,
        forest_edge=forest_edge,
        component_of=list(component),
        core_edges=core_edges,
        num_components=len(skeleton.component_portal),
        phases=lsst.phases,
    )
