"""Embedding diagnostics (Definition 8.1, Lemmas 8.6/8.7 empirically).

Madry's analysis rests on mutual O(1)-embeddability of H(T, F) and the
j-tree. This module measures the embedding quantities for the trees the
hierarchy actually emits:

* **relative load** rload(e) = cap_T(e)/cap(e): the congestion that
  embedding G into the tree puts on tree edge e when every graph edge
  routes its capacity along its tree path (1-embeddability of G into
  the tree holds by construction when tree capacities are the induced
  cut capacities — the load *equals* the capacity);
* **load profile** against the *graph* capacities of the tree's edges:
  the overhead the physical network would see if the virtual tree's
  traffic were carried on the underlying edges — the quantity Räcke's
  multiplicative-weights potential is built from (§8.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TreeError
from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree, induced_cut_capacities

__all__ = ["EmbeddingReport", "embedding_report"]


@dataclass
class EmbeddingReport:
    """Embedding diagnostics for one virtual tree.

    Attributes:
        tree_load: Per child node, the total graph capacity routed over
            the tree edge (v, parent) when embedding G into the tree
            (= the induced cut capacity).
        virtual_congestion: tree_load / tree capacity — 1.0 everywhere
            for induced-cut-capacity trees (the 1-embeddability check).
        physical_rload: tree_load / capacity of the *physical* graph
            edge beneath each tree edge — the §8.2 relative load.
        max_physical_rload: Its maximum (drives the MWU length update).
        mean_physical_rload: Its mean.
    """

    tree_load: np.ndarray
    virtual_congestion: np.ndarray
    physical_rload: np.ndarray
    max_physical_rload: float
    mean_physical_rload: float


def embedding_report(graph: Graph, tree: RootedTree) -> EmbeddingReport:
    """Measure embedding quality of a spanning tree of ``graph``.

    Args:
        graph: The host graph G.
        tree: A rooted spanning tree whose edges are graph edges, with
            capacities attached (induced cut capacities for hierarchy
            samples).

    Returns:
        An :class:`EmbeddingReport`.

    Raises:
        TreeError: If a tree edge has no underlying graph edge.
    """
    n = graph.num_nodes
    if tree.num_nodes != n:
        raise TreeError("tree and graph node counts differ")
    load = induced_cut_capacities(graph, tree)
    best_capacity: dict[tuple[int, int], float] = {}
    for e in graph.edges():
        key = (min(e.u, e.v), max(e.u, e.v))
        best_capacity[key] = max(best_capacity.get(key, 0.0), e.capacity)

    virtual = np.zeros(n)
    physical = np.zeros(n)
    children = [v for v in range(n) if tree.parent[v] >= 0]
    for v in children:
        p = tree.parent[v]
        key = (min(v, p), max(v, p))
        if key not in best_capacity:
            raise TreeError(f"tree edge ({v}, {p}) is not a graph edge")
        if tree.capacity[v] > 0:
            virtual[v] = load[v] / tree.capacity[v]
        physical[v] = load[v] / best_capacity[key]
    values = physical[children] if children else np.zeros(0)
    return EmbeddingReport(
        tree_load=load,
        virtual_congestion=virtual,
        physical_rload=physical,
        max_physical_rload=float(values.max(initial=0.0)),
        mean_physical_rload=float(values.mean()) if len(values) else 0.0,
    )
