"""The recursive hierarchy: sampling virtual trees (Theorem 8.10).

Each sample interleaves three ingredients per level, exactly as the
paper's recursion does:

1. **sparsify** the current core to Õ(N) edges (Lemma 6.1);
2. build a truncated **MWU distribution of j-trees** with
   j = N / (4β) (Lemma 8.4) and **sample** one;
3. the sampled j-tree's forest merges clusters (the cluster-graph level
   transition of Section 4); its core becomes the next level's graph.

When the core is small enough the remaining graph is collapsed by a
single low-stretch spanning tree (the paper finishes the construction
"locally" once N ≤ n^{1/2+o(1)}; a centralized implementation can
simply finish at a constant-size threshold).

The sampled **virtual tree** materializes as a genuine spanning tree of
the input graph — every virtual edge is realized by a physical edge
(invariant 4 of Section 4) — and its edges are assigned the *exact*
capacities of the cuts their subtrees induce in G. That choice makes
the lower-bound half of the congestion-approximator property
unconditional (every row of R is a true cut of G; cf. Lemma 3.3's
one-sided argument), while the tree distribution controls the upper
bound α.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster_graph import ClusterGraph
from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree, induced_cut_capacities
from repro.jtree.mwu import build_jtree_distribution
from repro.lsst.akpw import akpw_spanning_tree
from repro.sparsify.sparsifier import sparsification_target, sparsify
from repro.util.rng import as_generator

__all__ = ["VirtualTree", "HierarchyParams", "sample_virtual_tree"]


@dataclass
class HierarchyParams:
    """Tunables of the recursive construction.

    Attributes:
        beta: Core shrink factor per level; defaults to the paper's
            2^(log n)^(3/4), floored at 2.
        trees_per_level: MWU iterations per level (the paper constructs
            Õ(β) per level and samples one; Lemma 3.3 needs only
            O(log n) total samples, so a small constant per level keeps
            each sample cheap).
        final_threshold: Collapse the remaining core with one spanning
            tree once it has at most this many clusters.
        sparsify_cores: Whether to run the Lemma 6.1 sparsifier between
            levels (the paper always does; disabling is an ablation).
        max_levels: Safety bound on recursion depth.
        removal_policy: Passed to the Madry step ("classes" follows §4
            step 3 and may terminate early; "topj" forces Θ(j)-size
            cores and deep recursion, cf. §8.2).
    """

    beta: float | None = None
    trees_per_level: int = 3
    final_threshold: int | None = None
    sparsify_cores: bool = True
    max_levels: int = 64
    removal_policy: str = "classes"

    def resolved_beta(self, num_nodes: int) -> float:
        if self.beta is not None:
            return max(2.0, float(self.beta))
        log_n = max(2.0, math.log2(num_nodes))
        return max(2.0, 2.0 ** (log_n ** 0.75))

    def resolved_threshold(self, num_nodes: int) -> int:
        if self.final_threshold is not None:
            return max(2, int(self.final_threshold))
        return max(3, int(math.isqrt(num_nodes)))


@dataclass
class VirtualTree:
    """A sampled virtual tree (one row-block of the approximator R).

    Attributes:
        tree: Rooted spanning tree of the input graph; the capacity of
            edge (v, parent(v)) is the exact capacity of the cut that
            T_v induces in the input graph.
        levels: Number of j-tree recursion levels used.
        cluster_counts: Core size after each level (diagnostics; the
            paper predicts geometric decay by factor ~β).
        phases: Total SplitGraph phases consumed (round accounting).
        sparsifier_rounds: Total sparsifier peeling rounds.
    """

    tree: RootedTree
    levels: int
    cluster_counts: list[int] = field(default_factory=list)
    phases: int = 0
    sparsifier_rounds: int = 0


def _finish_with_spanning_tree(
    cg: ClusterGraph, rng: np.random.Generator, phases_acc: list[int]
) -> ClusterGraph:
    """Collapse the remaining core with one low-stretch spanning tree."""
    quotient = cg.quotient
    lengths = 1.0 / quotient.capacities()
    lsst = akpw_spanning_tree(quotient, lengths=lengths, rng=rng)
    phases_acc.append(lsst.phases)
    tree = lsst.tree
    chosen_by_pair: dict[tuple[int, int], int] = {}
    for eid in lsst.tree_edges:
        u, v = quotient.endpoints(eid)
        chosen_by_pair[(min(u, v), max(u, v))] = eid
    forest_parent = list(tree.parent)
    forest_edge = [-1] * quotient.num_nodes
    for c in range(quotient.num_nodes):
        p = tree.parent[c]
        if p >= 0:
            forest_edge[c] = chosen_by_pair[(min(c, p), max(c, p))]
    single = Graph(1)
    return cg.merge_along_forest(
        forest_parent=forest_parent,
        forest_edge=forest_edge,
        new_quotient=single,
        new_edge_origin=[],
        component_of=[0] * quotient.num_nodes,
    )


def sample_virtual_tree(
    graph: Graph,
    rng: np.random.Generator | int | None = None,
    params: HierarchyParams | None = None,
) -> VirtualTree:
    """Sample one virtual tree from the recursive distribution.

    Args:
        graph: Connected capacitated input graph G.
        rng: Randomness source.
        params: Hierarchy tunables.

    Returns:
        A :class:`VirtualTree` whose ``tree`` spans G.

    Raises:
        GraphError: On disconnected input or recursion stall.
    """
    graph.require_connected()
    rng = as_generator(rng)
    params = params or HierarchyParams()
    n = graph.num_nodes
    if n == 1:
        return VirtualTree(tree=RootedTree([-1]), levels=0)
    beta = params.resolved_beta(n)
    threshold = params.resolved_threshold(n)

    cg = ClusterGraph.trivial(graph)
    cluster_counts = [cg.num_clusters]
    phases_acc: list[int] = []
    sparsifier_rounds = 0
    levels = 0
    while cg.num_clusters > threshold and levels < params.max_levels:
        quotient, origin = cg.quotient, cg.edge_origin
        if params.sparsify_cores:
            target = sparsification_target(quotient.num_nodes, 0.5)
            if quotient.num_edges > target:
                result = sparsify(quotient, rng=rng, target_edges=target)
                sparsifier_rounds += result.rounds
                origin = [origin[e] for e in result.edge_origin]
                quotient = result.graph
                cg = ClusterGraph(
                    base=cg.base,
                    assignment=cg.assignment,
                    parent=cg.parent,
                    roots=cg.roots,
                    quotient=quotient,
                    edge_origin=origin,
                )
        j = max(1, int(quotient.num_nodes / (4.0 * beta)))
        distribution = build_jtree_distribution(
            quotient,
            j,
            params.trees_per_level,
            rng=rng,
            removal_policy=params.removal_policy,
        )
        step = distribution.sample(rng)
        phases_acc.append(sum(s.phases for s in distribution.steps))
        if step.num_components >= cg.num_clusters:
            raise GraphError("j-tree step made no progress")
        new_quotient = Graph(step.num_components)
        new_origin: list[int] = []
        for ce in step.core_edges:
            new_quotient.add_edge(ce.component_u, ce.component_v, ce.capacity)
            new_origin.append(origin[ce.quotient_edge])
        cg = cg.merge_along_forest(
            forest_parent=step.forest_parent,
            forest_edge=step.forest_edge,
            new_quotient=new_quotient,
            new_edge_origin=new_origin,
            component_of=step.component_of,
        )
        cluster_counts.append(cg.num_clusters)
        levels += 1
        if cg.num_clusters == 1:
            break
    if cg.num_clusters > 1:
        cg = _finish_with_spanning_tree(cg, rng, phases_acc)
        cluster_counts.append(1)
    tree = RootedTree(cg.parent)
    capacities = induced_cut_capacities(graph, tree)
    tree = RootedTree(cg.parent, capacities)
    return VirtualTree(
        tree=tree,
        levels=levels,
        cluster_counts=cluster_counts,
        phases=sum(phases_acc),
        sparsifier_rounds=sparsifier_rounds,
    )
