"""The recursive hierarchy: sampling virtual trees (Theorem 8.10).

Each sample interleaves three ingredients per level, exactly as the
paper's recursion does:

1. **sparsify** the current core to Õ(N) edges (Lemma 6.1);
2. build a truncated **MWU distribution of j-trees** with
   j = N / (4β) (Lemma 8.4) and **sample** one;
3. the sampled j-tree's forest merges clusters (the cluster-graph level
   transition of Section 4); its core becomes the next level's graph.

When the core is small enough the remaining graph is collapsed by a
single low-stretch spanning tree (the paper finishes the construction
"locally" once N ≤ n^{1/2+o(1)}; a centralized implementation can
simply finish at a constant-size threshold).

The sampled **virtual tree** materializes as a genuine spanning tree of
the input graph — every virtual edge is realized by a physical edge
(invariant 4 of Section 4) — and its edges are assigned the *exact*
capacities of the cuts their subtrees induce in G. That choice makes
the lower-bound half of the congestion-approximator property
unconditional (every row of R is a true cut of G; cf. Lemma 3.3's
one-sided argument), while the tree distribution controls the upper
bound α.

Batched sampling
----------------

Lemma 3.3 needs O(log n) *independent* samples, and
:func:`sample_virtual_trees` draws them all in one level-synchronous
pass instead of running the recursion once per sample:

* every sample advances through the same level structure in lockstep,
  each driven by its own child generator (spawned exactly as the
  legacy per-tree loop spawns them, so the two paths are
  draw-for-draw identical — the golden tests pin this);
* samples whose recursion paths still coincide (they hold the *same*
  core object — always true at level 0, where the cores are the
  shared input graph and its cached CSR) have their per-iteration MWU
  length updates computed as one stacked ``(num_samples × num_edges)``
  NumPy evaluation (:func:`repro.jtree.mwu.mwu_lengths`) instead of a
  Python loop per tree;
* the level-0 core is *shared*, not copied, per sample: nothing in the
  recursion mutates a core, so all samples reuse the input graph's
  cached CSR/adjacency/connectivity instead of re-deriving them;
* within a level, only the **sampled** MWU iteration pays for
  skeleton/portals/core-edge materialization: each iteration keeps
  only its cheap :class:`~repro.jtree.madry.TreePhase`, and
  :func:`~repro.jtree.madry.finish_jtree_step` — deterministic,
  consuming no randomness — runs once per level on the sampled phase
  (the same lazy loop :func:`repro.jtree.mwu.sample_jtree_step`
  exposes for a single quotient).

Stage-to-paper map: the per-level sparsifier is Lemma 6.1; each MWU
iteration is one Madry step (§4 steps 1–3 = Theorem 3.1 trees plus the
Lemma 8.1/8.3 loads), the λ-weighting is Lemma 8.4, skeleton/portals
are Lemmas 8.5/8.8, the level transition is the cluster-graph merge of
Definition 5.1, and the final collapse is the "finish locally" step of
Theorem 8.10; the O(log n) independent samples assemble the
congestion approximator of Lemma 3.3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster_graph import ClusterGraph
from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.trees import RootedTree, induced_cut_capacities
from repro.jtree.madry import finish_jtree_step, madry_tree_phase
from repro.jtree.mwu import mwu_lengths, _mwu_lambda
from repro.lsst.akpw import akpw_spanning_tree
from repro.parallel.config import ParallelConfig
from repro.sparsify.sparsifier import sparsification_target, sparsify
from repro.util.rng import as_generator, spawn

__all__ = [
    "VirtualTree",
    "HierarchyParams",
    "sample_virtual_tree",
    "sample_virtual_trees",
]


@dataclass
class HierarchyParams:
    """Tunables of the recursive construction.

    Attributes:
        beta: Core shrink factor per level; defaults to the paper's
            2^(log n)^(3/4), floored at 2.
        trees_per_level: MWU iterations per level (the paper constructs
            Õ(β) per level and samples one; Lemma 3.3 needs only
            O(log n) total samples, so a small constant per level keeps
            each sample cheap).
        final_threshold: Collapse the remaining core with one spanning
            tree once it has at most this many clusters.
        sparsify_cores: Whether to run the Lemma 6.1 sparsifier between
            levels (the paper always does; disabling is an ablation).
        max_levels: Safety bound on recursion depth; exhausting it with
            the core still above the threshold raises
            :class:`~repro.errors.GraphError` (a stalled recursion is a
            bug, not something to paper over with one giant collapse).
        removal_policy: Passed to the Madry step ("classes" follows §4
            step 3 and may terminate early; "topj" forces Θ(j)-size
            cores and deep recursion, cf. §8.2).
    """

    beta: float | None = None
    trees_per_level: int = 3
    final_threshold: int | None = None
    sparsify_cores: bool = True
    max_levels: int = 64
    removal_policy: str = "classes"

    def resolved_beta(self, num_nodes: int) -> float:
        if self.beta is not None:
            return max(2.0, float(self.beta))
        log_n = max(2.0, math.log2(num_nodes))
        return max(2.0, 2.0 ** (log_n ** 0.75))

    def resolved_threshold(self, num_nodes: int) -> int:
        if self.final_threshold is not None:
            return max(2, int(self.final_threshold))
        return max(3, int(math.isqrt(num_nodes)))


@dataclass
class VirtualTree:
    """A sampled virtual tree (one row-block of the approximator R).

    Attributes:
        tree: Rooted spanning tree of the input graph; the capacity of
            edge (v, parent(v)) is the exact capacity of the cut that
            T_v induces in the input graph.
        levels: Number of j-tree recursion levels used.
        cluster_counts: Core size after each level (diagnostics; the
            paper predicts geometric decay by factor ~β).
        phases: Total SplitGraph phases consumed (round accounting).
        sparsifier_rounds: Total sparsifier peeling rounds.
    """

    tree: RootedTree
    levels: int
    cluster_counts: list[int] = field(default_factory=list)
    phases: int = 0
    sparsifier_rounds: int = 0


def _finish_with_spanning_tree(
    cg: ClusterGraph, rng: np.random.Generator, phases_acc: list[int]
) -> ClusterGraph:
    """Collapse the remaining core with one low-stretch spanning tree."""
    quotient = cg.quotient
    lengths = 1.0 / quotient.capacities()
    lsst = akpw_spanning_tree(quotient, lengths=lengths, rng=rng)
    phases_acc.append(lsst.phases)
    tree = lsst.tree
    chosen_by_pair: dict[tuple[int, int], int] = {}
    for eid in lsst.tree_edges:
        u, v = quotient.endpoints(eid)
        chosen_by_pair[(min(u, v), max(u, v))] = eid
    forest_parent = list(tree.parent)
    forest_edge = [-1] * quotient.num_nodes
    for c in range(quotient.num_nodes):
        p = tree.parent[c]
        if p >= 0:
            forest_edge[c] = chosen_by_pair[(min(c, p), max(c, p))]
    single = Graph(1)
    return cg.merge_along_forest(
        forest_parent=forest_parent,
        forest_edge=forest_edge,
        new_quotient=single,
        new_edge_origin=[],
        component_of=[0] * quotient.num_nodes,
    )


class _SampleState:
    """One virtual-tree sample's recursion state, advanced level by
    level so the batched driver can run many samples in lockstep.

    The methods partition one level of the legacy loop into
    ``level_begin`` (sparsify + MWU init), ``mwu_iterate`` (one Madry
    tree phase; the caller supplies the lengths so it can compute them
    stacked across samples), and ``level_end`` (sample the iteration,
    finish it, merge the cluster graph). Each sample owns its
    generator, so any interleaving across samples leaves the
    per-sample draw sequences — and therefore the outputs — identical
    to running the samples one after another.
    """

    __slots__ = (
        "rng",
        "params",
        "beta",
        "threshold",
        "cg",
        "cluster_counts",
        "phases_acc",
        "sparsifier_rounds",
        "levels",
        "quotient",
        "origin",
        "j",
        "caps",
        "potentials",
        "tree_phases",
        "raw_weights",
        "weight_total",
    )

    def __init__(
        self,
        cg: ClusterGraph,
        rng: np.random.Generator,
        params: HierarchyParams,
        beta: float,
        threshold: int,
    ) -> None:
        self.rng = rng
        self.params = params
        self.beta = beta
        self.threshold = threshold
        self.cg = cg
        self.cluster_counts = [cg.num_clusters]
        self.phases_acc: list[int] = []
        self.sparsifier_rounds = 0
        self.levels = 0

    def active(self) -> bool:
        return (
            self.cg.num_clusters > self.threshold
            and self.levels < self.params.max_levels
        )

    def level_begin(self) -> None:
        """Sparsify the core if needed and reset the MWU accumulators."""
        quotient, origin = self.cg.quotient, self.cg.edge_origin
        if self.params.sparsify_cores:
            target = sparsification_target(quotient.num_nodes, 0.5)
            if quotient.num_edges > target:
                result = sparsify(quotient, rng=self.rng, target_edges=target)
                self.sparsifier_rounds += result.rounds
                origin = [origin[e] for e in result.edge_origin]
                quotient = result.graph
                self.cg = ClusterGraph(
                    base=self.cg.base,
                    assignment=self.cg.assignment,
                    parent=self.cg.parent,
                    roots=self.cg.roots,
                    quotient=quotient,
                    edge_origin=origin,
                )
        self.quotient = quotient
        self.origin = origin
        self.j = max(1, int(quotient.num_nodes / (4.0 * self.beta)))
        self.caps = quotient.capacities()
        self.potentials = np.zeros(quotient.num_edges)
        self.tree_phases = []
        self.raw_weights = []
        self.weight_total = 0.0

    def mwu_needs_iteration(self) -> bool:
        return (
            len(self.tree_phases) < self.params.trees_per_level
            and self.weight_total < 1.0
        )

    def mwu_iterate(self, lengths: np.ndarray) -> None:
        """One Madry tree phase with the supplied MWU lengths."""
        phase = madry_tree_phase(
            self.quotient,
            lengths,
            self.j,
            rng=self.rng,
            removal_policy=self.params.removal_policy,
        )
        lam, _ = _mwu_lambda(
            self.weight_total, float(phase.rload_per_edge.max())
        )
        self.tree_phases.append(phase)
        self.raw_weights.append(lam)
        self.weight_total += lam
        self.potentials = self.potentials + lam * phase.rload_per_edge

    def level_end(self) -> None:
        """Sample one iteration, finish it, and merge the level."""
        weights = np.asarray(self.raw_weights, dtype=float)
        weights = weights / weights.sum()
        index = int(self.rng.choice(len(self.tree_phases), p=weights))
        step = finish_jtree_step(self.quotient, self.tree_phases[index])
        self.phases_acc.append(sum(p.phases for p in self.tree_phases))
        if step.num_components >= self.cg.num_clusters:
            raise GraphError("j-tree step made no progress")
        if len(step.core_cap) and float(step.core_cap.min()) <= 0:
            raise GraphError("j-tree core produced a non-positive capacity")
        new_quotient = Graph._from_trusted_arrays(
            step.num_components, step.core_u, step.core_v, step.core_cap
        )
        # Cores stay connected through sparsify (spanner skeleton) and
        # contraction; seeding saves one BFS per downstream AKPW call.
        new_quotient._connected_cache = True
        new_origin = (
            np.asarray(self.origin, dtype=np.int64)[step.core_origin].tolist()
        )
        self.cg = self.cg.merge_along_forest(
            forest_parent=step.forest_parent,
            forest_edge=step.forest_edge,
            new_quotient=new_quotient,
            new_edge_origin=new_origin,
            component_of=step.component_of,
        )
        self.cluster_counts.append(self.cg.num_clusters)
        self.levels += 1

    def finish(self, graph: Graph) -> VirtualTree:
        """Collapse any remainder and materialize the virtual tree."""
        if self.cg.num_clusters > self.threshold:
            raise GraphError(
                f"hierarchy exhausted max_levels={self.params.max_levels} "
                f"with {self.cg.num_clusters} clusters still above the "
                f"threshold {self.threshold}"
            )
        if self.cg.num_clusters > 1:
            self.cg = _finish_with_spanning_tree(
                self.cg, self.rng, self.phases_acc
            )
            self.cluster_counts.append(1)
        tree = RootedTree(self.cg.parent)
        capacities = induced_cut_capacities(graph, tree)
        tree = RootedTree(self.cg.parent, capacities)
        return VirtualTree(
            tree=tree,
            levels=self.levels,
            cluster_counts=self.cluster_counts,
            phases=sum(self.phases_acc),
            sparsifier_rounds=self.sparsifier_rounds,
        )


def _run_level_sequential(state: _SampleState) -> None:
    state.level_begin()
    while state.mwu_needs_iteration():
        state.mwu_iterate(mwu_lengths(state.potentials, state.caps))
    state.level_end()


def _make_states(
    graph: Graph,
    rngs: list[np.random.Generator],
    params: HierarchyParams,
) -> list[_SampleState]:
    n = graph.num_nodes
    beta = params.resolved_beta(n)
    threshold = params.resolved_threshold(n)
    shared = ClusterGraph.trivial(graph, share_quotient=True)
    return [
        _SampleState(shared, rng, params, beta, threshold) for rng in rngs
    ]


def sample_virtual_tree(
    graph: Graph,
    rng: np.random.Generator | int | None = None,
    params: HierarchyParams | None = None,
) -> VirtualTree:
    """Sample one virtual tree from the recursive distribution.

    Args:
        graph: Connected capacitated input graph G.
        rng: Randomness source.
        params: Hierarchy tunables.

    Returns:
        A :class:`VirtualTree` whose ``tree`` spans G.

    Raises:
        GraphError: On disconnected input, a stalled j-tree step, or
            ``max_levels`` exhaustion.
    """
    graph.require_connected()
    rng = as_generator(rng)
    params = params or HierarchyParams()
    if graph.num_nodes == 1:
        return VirtualTree(tree=RootedTree([-1]), levels=0)
    state = _make_states(graph, [rng], params)[0]
    while state.active():
        _run_level_sequential(state)
    return state.finish(graph)


def sample_virtual_trees(
    graph: Graph,
    num_samples: int,
    rng: np.random.Generator | int | None = None,
    params: HierarchyParams | None = None,
    batched: bool = True,
    parallel: ParallelConfig | None = None,
) -> list[VirtualTree]:
    """Sample ``num_samples`` independent virtual trees (Lemma 3.3).

    Args:
        graph: Connected capacitated input graph G.
        num_samples: How many trees to draw (the O(log n) of Lemma 3.3).
        rng: Randomness source; each sample runs on its own child
            generator spawned from it, exactly as the per-tree loop
            would.
        params: Hierarchy tunables (shared across samples).
        batched: Run all samples level-synchronously, sharing coinciding
            cores and stacking the MWU length updates (the default).
            ``False`` runs the samples one after another — kept as the
            reference path; both produce identical trees for a fixed
            seed (golden-tested).
        parallel: Optional sharded-execution config for the stacked
            MWU length evaluations (``None`` resolves to the
            ``REPRO_WORKERS`` process default inside
            :func:`~repro.jtree.mwu.mwu_lengths`). Never changes a
            sampled tree — the sharded evaluation is bit-identical.

    Returns:
        A list of ``num_samples`` :class:`VirtualTree` objects.
    """
    graph.require_connected()
    rng = as_generator(rng)
    params = params or HierarchyParams()
    if num_samples <= 0:
        return []
    children = spawn(rng, num_samples)
    if graph.num_nodes == 1:
        return [
            VirtualTree(tree=RootedTree([-1]), levels=0) for _ in children
        ]
    if not batched:
        return [
            sample_virtual_tree(graph, rng=child, params=params)
            for child in children
        ]
    states = _make_states(graph, children, params)
    active = [s for s in states if s.active()]
    while active:
        for state in active:
            state.level_begin()
        # MWU iterations in lockstep: samples holding the *same* core
        # object get their length updates computed as one stacked
        # (num_samples × num_edges) evaluation.
        pending = [s for s in active if s.mwu_needs_iteration()]
        while pending:
            groups: dict[int, list[_SampleState]] = {}
            for state in pending:
                groups.setdefault(id(state.quotient), []).append(state)
            for group in groups.values():
                if len(group) > 1:
                    stacked = mwu_lengths(
                        np.stack([s.potentials for s in group]),
                        group[0].caps,
                        parallel=parallel,
                    )
                    for row, state in zip(stacked, group):
                        state.mwu_iterate(row)
                else:
                    state = group[0]
                    state.mwu_iterate(
                        mwu_lengths(state.potentials, state.caps)
                    )
            pending = [s for s in pending if s.mwu_needs_iteration()]
        for state in active:
            state.level_end()
        active = [s for s in states if s.active()]
    return [state.finish(graph) for state in states]
