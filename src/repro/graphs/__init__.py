"""Graph substrate: array-native multigraphs (growable edge buffers +
cached CSR adjacency), vectorized kernels, generators, cuts, and rooted
trees with cached Euler-tour indices."""

from repro.graphs.csr import CSRAdjacency, build_csr
from repro.graphs.graph import Edge, Graph
from repro.graphs.trees import (
    RootedTree,
    average_stretch,
    bfs_tree,
    induced_cut_capacities,
    spanning_tree_from_edges,
    tree_route_demand,
    weighted_average_stretch,
)
from repro.graphs.io import read_dimacs, read_json, write_dimacs, write_json
from repro.graphs.cuts import (
    cut_capacity,
    cut_congestion_lower_bound,
    cut_demand,
    cut_edges,
    enumerate_cut_capacities,
    sparsest_cut_brute_force,
)

__all__ = [
    "CSRAdjacency",
    "build_csr",
    "Edge",
    "Graph",
    "RootedTree",
    "average_stretch",
    "bfs_tree",
    "induced_cut_capacities",
    "spanning_tree_from_edges",
    "tree_route_demand",
    "weighted_average_stretch",
    "cut_capacity",
    "cut_congestion_lower_bound",
    "cut_demand",
    "cut_edges",
    "enumerate_cut_capacities",
    "sparsest_cut_brute_force",
    "read_dimacs",
    "read_json",
    "write_dimacs",
    "write_json",
]
