"""Epoch delta journal: *what* changed between graph versions.

``Graph._version`` (PR 5) tells downstream caches *that* something
changed; the journal tells them *what*. Every ``set_capacity`` write
appends one record — ``(version-after, eid, old capacity, new
capacity)`` — so a consumer holding a flow or an operator built at
epoch ``e`` can ask :meth:`DeltaJournal.deltas_since` for the coalesced
capacity delta ``e → current`` and patch instead of rebuild:

* warm-start AlmostRoute from the previous epoch's flow, rescaled per
  touched edge (:func:`rescale_flow`);
* refresh a congestion approximator's ``row_inv_capacity`` in place and
  resample only the trees whose realized edges intersect the delta;
* salvage result-cache entries across an epoch move
  (``FlowServer(refresh="incremental")``).

The journal is deliberately **bounded** (:data:`JOURNAL_LIMIT`
records): once it overflows, the oldest records are dropped and
``deltas_since`` answers ``None`` for epochs older than the retained
window — the caller must treat that as a full invalidation, exactly as
if the version counter were still bare. Structural mutations
(``add_edge`` — edge ids shift meaning) clear the journal entirely and
re-base it, so a capacity delta can never silently span a structural
change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import WIDE_DTYPE

__all__ = [
    "JOURNAL_LIMIT",
    "CapacityDelta",
    "DeltaJournal",
    "rescale_flow",
]

#: Maximum retained journal records. One record per ``set_capacity``;
#: a window of 1024 single-edge writes comfortably covers the serving
#: layer's sync cadence while bounding memory at a few tens of KB.
JOURNAL_LIMIT = 1024


@dataclass(frozen=True)
class CapacityDelta:
    """A coalesced capacity-only delta between two graph epochs.

    Attributes:
        base_version: The epoch the delta starts from (exclusive) —
            ``old_capacity`` is the capacity vector entry *at* this
            epoch for each touched edge.
        version: The epoch the delta ends at (inclusive) —
            ``new_capacity`` holds the entries at this epoch.
        edge_ids: Touched edge ids, ascending, each appearing once
            (repeated writes to one edge coalesce to first-old /
            last-new).
        old_capacity / new_capacity: Per-edge capacities at
            ``base_version`` / ``version``, aligned with ``edge_ids``.
    """

    base_version: int
    version: int
    edge_ids: np.ndarray
    old_capacity: np.ndarray
    new_capacity: np.ndarray

    @property
    def num_edges(self) -> int:
        """How many distinct edges the delta touches."""
        return int(self.edge_ids.shape[0])


class DeltaJournal:
    """Bounded per-epoch record of capacity writes.

    ``record`` is called by ``Graph._record_capacity_delta`` with the
    *post-bump* version, so record ``k`` describes the transition
    ``version k-1 → k``; the retained records always cover the
    contiguous window ``base_version → <current version>``.
    """

    def __init__(self, limit: int = JOURNAL_LIMIT) -> None:
        if limit <= 0:
            raise GraphError(f"journal limit must be positive, got {limit}")
        self._limit = int(limit)
        self._versions: list[int] = []
        self._edge_ids: list[int] = []
        self._old: list[float] = []
        self._new: list[float] = []
        self._base_version = 0
        self._overflowed = False

    @property
    def size(self) -> int:
        """Retained record count (== version span of the window)."""
        return len(self._versions)

    @property
    def base_version(self) -> int:
        """Oldest epoch ``deltas_since`` can still answer from."""
        return self._base_version

    @property
    def overflowed(self) -> bool:
        """Whether records were ever dropped since the last structural
        re-base — epochs before ``base_version`` are unanswerable."""
        return self._overflowed

    def record(
        self, version: int, edge_id: int, old: float, new: float
    ) -> None:
        """Append one capacity write (``version`` is post-bump)."""
        self._versions.append(int(version))
        self._edge_ids.append(int(edge_id))
        self._old.append(float(old))
        self._new.append(float(new))
        if len(self._versions) > self._limit:
            self._base_version = self._versions.pop(0)
            del self._edge_ids[0], self._old[0], self._new[0]
            self._overflowed = True

    def mark_structural(self, version: int) -> None:
        """Re-base after a structural mutation (edge ids changed
        meaning): drop every record and start a fresh window at
        ``version`` (post-bump)."""
        self._versions.clear()
        self._edge_ids.clear()
        self._old.clear()
        self._new.clear()
        self._base_version = int(version)
        self._overflowed = False

    def deltas_since(
        self, epoch: int, current_version: int
    ) -> CapacityDelta | None:
        """The coalesced capacity delta ``epoch → current_version``.

        Returns ``None`` when the window cannot answer — the epoch
        predates ``base_version`` (overflow or structural re-base), or
        the journal's records do not account for every version step in
        between (a version bump that bypassed the journal). ``None``
        means *treat as full invalidation*.
        """
        epoch = int(epoch)
        current_version = int(current_version)
        if epoch > current_version:
            return None
        if epoch < self._base_version:
            return None
        retained = [
            i for i, v in enumerate(self._versions) if epoch < v <= current_version
        ]
        if len(retained) != current_version - epoch:
            return None
        first_old: dict[int, float] = {}
        last_new: dict[int, float] = {}
        for i in retained:
            eid = self._edge_ids[i]
            if eid not in first_old:
                first_old[eid] = self._old[i]
            last_new[eid] = self._new[i]
        eids = sorted(first_old)
        return CapacityDelta(
            base_version=epoch,
            version=current_version,
            edge_ids=np.asarray(eids, dtype=WIDE_DTYPE),
            old_capacity=np.asarray(
                [first_old[e] for e in eids], dtype=float
            ),
            new_capacity=np.asarray(
                [last_new[e] for e in eids], dtype=float
            ),
        )


def rescale_flow(flow: np.ndarray, delta: CapacityDelta) -> np.ndarray:
    """A previous epoch's flow rescaled to the new capacities.

    Entries on journal-touched edges are multiplied by
    ``new_capacity / old_capacity`` so per-edge congestion ``|f|/c`` is
    preserved across the delta — the warm-start seed stays inside the
    soft-max's well-conditioned region even when an edge was degraded
    by orders of magnitude. Untouched entries pass through unchanged;
    the input is never mutated.
    """
    out = np.array(flow, dtype=float, copy=True)
    if delta.num_edges:
        out[delta.edge_ids] *= delta.new_capacity / delta.old_capacity
    return out
