"""Cut utilities.

Cuts are the currency of the paper: the congestion approximator's rows
are cuts, its quality is stated in terms of cut capacities, and the
max-flow min-cut theorem converts congestion bounds into flow bounds.
This module provides exact cut evaluation on node sets, demand-aware
cut congestion, and brute-force enumeration for small graphs (used by
tests to certify approximator soundness).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = [
    "cut_capacity",
    "cut_edges",
    "cut_demand",
    "cut_congestion_lower_bound",
    "enumerate_cut_capacities",
    "sparsest_cut_brute_force",
]


def _side_mask(graph: Graph, side: Iterable[int]) -> np.ndarray:
    mask = np.zeros(graph.num_nodes, dtype=bool)
    for v in side:
        if not (0 <= v < graph.num_nodes):
            raise GraphError(f"cut side contains invalid node {v}")
        mask[v] = True
    if not mask.any() or mask.all():
        raise GraphError("cut side must be a proper non-empty subset of nodes")
    return mask


def cut_edges(graph: Graph, side: Iterable[int]) -> list[int]:
    """Return the edge ids crossing the cut ``(side, complement)``."""
    mask = _side_mask(graph, side)
    tails, heads = graph.edge_index_arrays()
    return np.flatnonzero(mask[tails] != mask[heads]).tolist()


def cut_capacity(graph: Graph, side: Iterable[int]) -> float:
    """Total capacity of edges crossing the cut ``(side, complement)``."""
    mask = _side_mask(graph, side)
    tails, heads = graph.edge_index_arrays()
    return float(graph.capacities()[mask[tails] != mask[heads]].sum())


def cut_demand(demand: Sequence[float], side: Iterable[int]) -> float:
    """Net demand that must cross the cut: ``|Σ_{v in side} b_v|``."""
    demand = np.asarray(demand, dtype=float)
    side_list = list(side)
    return float(abs(demand[side_list].sum()))


def cut_congestion_lower_bound(
    graph: Graph, demand: Sequence[float], side: Iterable[int]
) -> float:
    """The congestion any feasible routing of ``demand`` must put on this
    cut: net crossing demand divided by cut capacity. The max over all
    cuts equals opt(b) by LP duality (the paper's congestion view of
    max-flow min-cut)."""
    side_list = list(side)
    capacity = cut_capacity(graph, side_list)
    crossing = cut_demand(demand, side_list)
    if capacity == 0:
        return float("inf") if crossing > 0 else 0.0
    return crossing / capacity


def enumerate_cut_capacities(
    graph: Graph, max_nodes: int = 18
) -> list[tuple[frozenset[int], float]]:
    """Enumerate all 2^(n-1) - 1 proper cuts (sides containing node 0)
    with their capacities. Exponential; guarded by ``max_nodes``."""
    n = graph.num_nodes
    if n > max_nodes:
        raise GraphError(
            f"cut enumeration limited to {max_nodes} nodes, graph has {n}"
        )
    others = list(range(1, n))
    out: list[tuple[frozenset[int], float]] = []
    for size in range(0, n - 1):
        for rest in combinations(others, size):
            side = frozenset((0, *rest))
            out.append((side, cut_capacity(graph, side)))
    return out


def sparsest_cut_brute_force(
    graph: Graph, demand: Sequence[float], max_nodes: int = 18
) -> tuple[frozenset[int], float]:
    """Return the most congested cut for ``demand`` by enumeration:
    ``argmax over cuts of crossing_demand / capacity``. This equals
    opt(b) exactly on small graphs and is the test oracle for
    congestion-approximator quality."""
    demand = np.asarray(demand, dtype=float)
    best_side: frozenset[int] | None = None
    best_value = -1.0
    for side, capacity in enumerate_cut_capacities(graph, max_nodes):
        crossing = cut_demand(demand, side)
        value = (
            float("inf")
            if capacity == 0 and crossing > 0
            else (crossing / capacity if capacity > 0 else 0.0)
        )
        if value > best_value:
            best_value = value
            best_side = side
    if best_side is None:
        raise GraphError("no non-trivial cut side among the candidates")
    return best_side, best_value
