"""Vectorized graph kernels over :class:`~repro.graphs.csr.CSRAdjacency`.

These are the shared frontier-at-a-time / scatter-gather primitives the
whole library runs on: BFS (levels and deterministic parent trees),
connected components, label compaction and contraction, and
first-edge-per-node-pair indexing.  Every kernel is NumPy-whole-array —
no Python work proportional to ``m`` — and every kernel that has a
legacy pure-Python equivalent reproduces its output *exactly*,
including tie-breaking and discovery order (the golden tests in
``tests/test_csr.py`` pin this equivalence on random multigraphs).

The determinism contract matters because several algorithms (SplitGraph
ball growing, BFS tree construction, component-order-dependent
generators) derive randomness-adjacent choices from traversal order:
a kernel that visited nodes in a different but equally valid order
would silently change every seeded experiment downstream.

Sharded execution
=================

The frontier BFS kernels additionally run **sharded** when a
:class:`~repro.parallel.config.ParallelConfig` says so (explicit
``parallel=`` argument, or the process-wide ``REPRO_WORKERS`` default)
and the instance is beyond the adaptive ``min_size`` threshold: each
BFS level's ragged gather is split over contiguous frontier ranges
(balanced by degree mass, :meth:`~repro.parallel.plan.ShardPlan.
for_frontier`) and executed on the configured worker pool. Because the
shard outputs are concatenated back in frontier order, the gathered
``(origin, neighbor, edge_id)`` sequences — and therefore every
claim-order tie-break downstream — are *bit-identical* to the serial
pass; the frontier/visited state is updated only by the coordinating
thread between levels, and each run keeps a persistent
:class:`~repro.parallel.plan.BfsShardState` so successive levels reuse
the previous shard boundaries until frontier mass shifts.
:func:`multi_source_hop_distances` shards over contiguous *source
blocks* instead (rows are independent BFS runs, so stacking the block
results is trivially exact). The same contract is swept across a seed
× generator × shard-count matrix in ``tests/test_parallel_backend.py``.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRAdjacency, INDEX_DTYPE, WIDE_DTYPE, build_csr
from repro.parallel.config import ParallelConfig, resolve_config
from repro.parallel.plan import BfsShardState, ShardPlan
from repro.parallel.pool import get_pool

__all__ = [
    "ragged_rows",
    "bfs_levels",
    "bfs_parents",
    "multi_source_hop_distances",
    "all_pairs_hop_distances",
    "connected_components",
    "compact_labels",
    "contract_edges",
    "contract_csr",
    "pair_first_edge_index",
    "lookup_pairs",
    "group_by_key",
]


def _ragged_arrays(
    indptr: np.ndarray,
    neighbor: np.ndarray,
    edge_id: np.ndarray,
    nodes: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`ragged_rows` over raw CSR arrays (the picklable form the
    shard workers receive)."""
    starts = indptr[nodes]
    counts = indptr[nodes + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=WIDE_DTYPE)
        return empty, empty.copy(), empty.copy()
    # Positions: for each row, starts[r] .. starts[r] + counts[r] - 1.
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    idx = np.arange(total, dtype=WIDE_DTYPE) - offsets + np.repeat(starts, counts)
    origin = np.repeat(nodes, counts)
    return origin, neighbor[idx], edge_id[idx]


def ragged_rows(
    csr: CSRAdjacency, nodes: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate the CSR rows of ``nodes``, preserving row order.

    Returns:
        ``(origin, neighbors, edge_ids)`` — ``origin[i]`` is the node
        whose row produced position ``i``; rows appear in the order of
        ``nodes`` and, within a row, in edge-insertion order.
    """
    return _ragged_arrays(csr.indptr, csr.neighbor, csr.edge_id, nodes)


def _bfs_level_shard(
    indptr: np.ndarray,
    neighbor: np.ndarray,
    edge_id: np.ndarray,
    frontier: np.ndarray,
    dist: np.ndarray,
    allowed_edges: np.ndarray | None,
) -> np.ndarray:
    """One shard of a BFS level: gather + mask + unvisited filter.

    ``dist`` is only read; the coordinating thread owns all updates.
    """
    _, nbrs, eids = _ragged_arrays(indptr, neighbor, edge_id, frontier)
    if allowed_edges is not None:
        nbrs = nbrs[allowed_edges[eids]]
    return nbrs[dist[nbrs] < 0]


def _bfs_claim_shard(
    indptr: np.ndarray,
    neighbor: np.ndarray,
    edge_id: np.ndarray,
    frontier: np.ndarray,
    dist: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One shard of a parent-BFS level: gather + unvisited filter,
    keeping ``(origin, neighbor, edge_id)`` aligned for claim order."""
    origin, nbrs, eids = _ragged_arrays(indptr, neighbor, edge_id, frontier)
    keep = dist[nbrs] < 0
    return origin[keep], nbrs[keep], eids[keep]


def _sharded_level_gather(
    csr: CSRAdjacency,
    frontier: np.ndarray,
    config: ParallelConfig,
    worker,
    extra: tuple,
    state: BfsShardState,
) -> list:
    """Run one level's gather over contiguous frontier shards.

    Results come back in shard (= frontier) order, so concatenating
    them reproduces the serial gather sequence exactly. ``state`` is
    the BFS run's persistent shard state: it reuses the previous
    level's (rescaled) boundaries until frontier mass shifts past its
    rebalance threshold, instead of re-planning from scratch per level.
    """
    plan = state.plan(csr.indptr, frontier)
    if plan.num_shards <= 1:
        return [worker(csr.indptr, csr.neighbor, csr.edge_id, frontier, *extra)]
    tasks = [
        (csr.indptr, csr.neighbor, csr.edge_id, frontier[lo:hi], *extra)
        for lo, hi in plan.ranges()
    ]
    return get_pool(config).map(worker, tasks)


def bfs_levels(
    csr: CSRAdjacency,
    sources: int | np.ndarray,
    allowed_edges: np.ndarray | None = None,
    parallel: ParallelConfig | None = None,
) -> np.ndarray:
    """Multi-source hop distances by frontier-at-a-time BFS.

    Args:
        csr: Adjacency.
        sources: One source or an array of sources (all at distance 0).
        allowed_edges: Optional boolean mask over edge ids; masked-out
            edges are not traversed.
        parallel: Optional sharded-execution config (``None`` resolves
            to the ``REPRO_WORKERS`` process default). Sharding splits
            each level's gather over frontier ranges; the result is
            bit-identical to the serial pass.

    Returns:
        ``(n,)`` int64 distances, ``-1`` for unreachable nodes.
    """
    config = resolve_config(parallel)
    sharded = config.should_shard(csr.num_nodes + len(csr.neighbor))
    shard_state = BfsShardState(config.workers) if sharded else None
    dist = np.full(csr.num_nodes, -1, dtype=WIDE_DTYPE)
    frontier = np.atleast_1d(np.asarray(sources, dtype=WIDE_DTYPE))
    dist[frontier] = 0
    level = 0
    while frontier.size:
        if sharded:
            parts = _sharded_level_gather(
                csr,
                frontier,
                config,
                _bfs_level_shard,
                (dist, allowed_edges),
                shard_state,
            )
            nbrs = parts[0] if len(parts) == 1 else np.concatenate(parts)
        else:
            nbrs = _bfs_level_shard(
                csr.indptr,
                csr.neighbor,
                csr.edge_id,
                frontier,
                dist,
                allowed_edges,
            )
        if nbrs.size == 0:
            break
        frontier = np.unique(nbrs)
        level += 1
        dist[frontier] = level
    return dist


def bfs_parents(
    csr: CSRAdjacency, root: int, parallel: ParallelConfig | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic BFS tree from ``root``.

    Reproduces the legacy FIFO-queue BFS exactly: a node is claimed by
    the earliest-discovered frontier node adjacent to it, ties broken
    by adjacency (edge-insertion) order, and the next frontier keeps
    claim order. The sharded path (``parallel``) splits each level's
    gather over frontier ranges and concatenates in frontier order, so
    claim order — and therefore the returned tree — is unchanged.

    Returns:
        ``(dist, parent, parent_edge)`` int64 arrays; unreachable nodes
        have ``dist = -1``, ``parent = -2``, ``parent_edge = -1``; the
        root has ``parent = -1``, ``parent_edge = -1``.
    """
    config = resolve_config(parallel)
    sharded = config.should_shard(csr.num_nodes + len(csr.neighbor))
    shard_state = BfsShardState(config.workers) if sharded else None
    n = csr.num_nodes
    dist = np.full(n, -1, dtype=WIDE_DTYPE)
    parent = np.full(n, -2, dtype=WIDE_DTYPE)
    parent_edge = np.full(n, -1, dtype=WIDE_DTYPE)
    dist[root] = 0
    parent[root] = -1
    frontier = np.array([root], dtype=WIDE_DTYPE)
    level = 0
    while frontier.size:
        if sharded:
            parts = _sharded_level_gather(
                csr, frontier, config, _bfs_claim_shard, (dist,), shard_state
            )
            if len(parts) == 1:
                origin, nbrs, eids = parts[0]
            else:
                origin = np.concatenate([p[0] for p in parts])
                nbrs = np.concatenate([p[1] for p in parts])
                eids = np.concatenate([p[2] for p in parts])
        else:
            origin, nbrs, eids = _bfs_claim_shard(
                csr.indptr, csr.neighbor, csr.edge_id, frontier, dist
            )
        if nbrs.size == 0:
            break
        # First occurrence in gather order = legacy claim order.
        _, first = np.unique(nbrs, return_index=True)
        first.sort()
        frontier = nbrs[first]
        level += 1
        dist[frontier] = level
        parent[frontier] = origin[first]
        parent_edge[frontier] = eids[first]
    return dist, parent, parent_edge


def _hop_block_shard(
    indptr: np.ndarray,
    neighbor: np.ndarray,
    edge_id: np.ndarray,
    sources: np.ndarray,
) -> np.ndarray:
    """Lockstep multi-source BFS for one contiguous source block.

    Each source's BFS is independent of every other source — the
    lockstep batching exists purely for vectorization — so the
    ``(len(sources), n)`` block this computes is row-for-row identical
    to the corresponding rows of the whole-batch evaluation, which is
    what makes per-source-block sharding bit-exact. Top-level so the
    worker pools can receive it.
    """
    n = len(indptr) - 1
    sources = np.asarray(sources, dtype=WIDE_DTYPE)
    k = len(sources)
    dist = np.full((k, n), -1, dtype=WIDE_DTYPE)
    dist[np.arange(k), sources] = 0
    flat = dist.ravel()
    src = np.arange(k, dtype=WIDE_DTYPE)
    nodes = sources.copy()
    level = 0
    while nodes.size:
        counts = indptr[nodes + 1] - indptr[nodes]
        _, nbrs, _ = _ragged_arrays(indptr, neighbor, edge_id, nodes)
        keys = np.repeat(src, counts) * n + nbrs
        keys = np.unique(keys[flat[keys] < 0])
        if keys.size == 0:
            break
        level += 1
        flat[keys] = level
        src, nodes = np.divmod(keys, n)
    return dist


def multi_source_hop_distances(
    csr: CSRAdjacency,
    sources: np.ndarray,
    parallel: ParallelConfig | None = None,
) -> np.ndarray:
    """Hop distances from each of ``sources``, advanced in lockstep.

    Args:
        csr: Adjacency.
        sources: Source nodes (one BFS row each; duplicates allowed).
        parallel: Optional sharded-execution config (``None`` resolves
            to the ``REPRO_WORKERS`` process default). Sharding splits
            the batch over contiguous source blocks; rows are
            independent, so the stacked result is bit-identical to the
            serial pass.

    Returns:
        ``(len(sources), n)`` int64 matrix, ``-1`` where unreachable.
        O(len(sources)·m) work, a constant number of NumPy passes per
        BFS level, O(len(sources)·n) memory — batch the sources to
        bound memory on large graphs.
    """
    sources = np.asarray(sources, dtype=WIDE_DTYPE)
    k = len(sources)
    config = resolve_config(parallel)
    if k >= 2 and config.should_shard(
        k * (csr.num_nodes + len(csr.neighbor))
    ):
        plan = ShardPlan.even(k, config.workers)
        if plan.num_shards > 1:
            parts = get_pool(config).map(
                _hop_block_shard,
                [
                    (csr.indptr, csr.neighbor, csr.edge_id, sources[lo:hi])
                    for lo, hi in plan.ranges()
                ],
            )
            return np.concatenate(parts, axis=0)
    return _hop_block_shard(csr.indptr, csr.neighbor, csr.edge_id, sources)


def all_pairs_hop_distances(
    csr: CSRAdjacency,
    max_batch_cells: int = 1 << 24,
    parallel: ParallelConfig | None = None,
) -> np.ndarray:
    """All-pairs hop distances via lockstep BFS over source batches.

    Returns:
        ``(n, n)`` int64 matrix, ``-1`` where unreachable. O(n·m) work;
        peak *working* memory beyond the result is bounded by
        ``max_batch_cells`` matrix cells per batch. ``parallel`` is
        forwarded to :func:`multi_source_hop_distances` per batch.
    """
    n = csr.num_nodes
    batch = max(1, max_batch_cells // max(n, 1))
    out = np.empty((n, n), dtype=WIDE_DTYPE)
    for start in range(0, n, batch):
        sources = np.arange(start, min(start + batch, n), dtype=WIDE_DTYPE)
        out[start : start + len(sources)] = multi_source_hop_distances(
            csr, sources, parallel=parallel
        )
    return out


def connected_components(csr: CSRAdjacency) -> list[list[int]]:
    """Connected components as node lists.

    Matches the legacy output exactly: components ordered by smallest
    start node, nodes within a component in BFS discovery order.
    """
    n = csr.num_nodes
    seen = np.zeros(n, dtype=bool)
    components: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = True
        component = [start]
        frontier = np.array([start], dtype=WIDE_DTYPE)
        while frontier.size:
            _, nbrs, _ = ragged_rows(csr, frontier)
            nbrs = nbrs[~seen[nbrs]]
            if nbrs.size == 0:
                break
            _, first = np.unique(nbrs, return_index=True)
            first.sort()
            frontier = nbrs[first]
            seen[frontier] = True
            component.extend(frontier.tolist())
        components.append(component)
    return components


def compact_labels(labels: np.ndarray) -> tuple[np.ndarray, int]:
    """Compact arbitrary integer labels to ``0..k-1`` by first occurrence.

    Returns:
        ``(node_map, k)`` — ``node_map[v]`` is the compacted label of
        position ``v``; labels are numbered in order of first
        appearance, matching the legacy dict-based compaction.
    """
    labels = np.asarray(labels, dtype=WIDE_DTYPE)
    _, first_idx, inverse = np.unique(
        labels, return_index=True, return_inverse=True
    )
    k = len(first_idx)
    # Rank the sorted-unique labels by where they first appeared.
    rank = np.empty(k, dtype=INDEX_DTYPE)
    rank[np.argsort(first_idx, kind="stable")] = np.arange(k, dtype=INDEX_DTYPE)
    return rank[inverse], k


def contract_edges(
    node_map: np.ndarray,
    num_clusters: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    capacity: np.ndarray,
    keep_parallel: bool,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Quotient-edge arrays for a contraction by ``node_map``.

    Args:
        node_map: Compacted cluster label per node (``0..k-1``).
        num_clusters: ``k``.
        edge_u / edge_v / capacity: The edge arrays being contracted.
        keep_parallel: Keep every inter-cluster edge (multigraph) or
            merge parallel quotient edges, summing capacities.

    Returns:
        ``(new_u, new_v, new_cap, edge_origin)``; quotient edges appear
        in original-edge-id order (``keep_parallel``) or in order of
        first occurrence of their endpoint pair (merged), matching the
        legacy loop. ``edge_origin[j]`` is the (representative)
        original edge id of quotient edge ``j``.
    """
    cu = node_map[np.asarray(edge_u, dtype=INDEX_DTYPE)]
    cv = node_map[np.asarray(edge_v, dtype=INDEX_DTYPE)]
    cross = cu != cv
    origin = np.flatnonzero(cross).astype(INDEX_DTYPE)
    cu, cv = cu[cross], cv[cross]
    caps = np.asarray(capacity, dtype=float)[cross]
    if keep_parallel:
        return cu, cv, caps, origin
    lo = np.minimum(cu, cv)
    hi = np.maximum(cu, cv)
    # np.int64 scalar forces a wide key: int32 * int32 would wrap for
    # num_clusters above ~46k under NEP 50 value-based promotion.
    key = lo * np.int64(num_clusters) + hi
    _, first_idx, inverse = np.unique(key, return_index=True, return_inverse=True)
    k = len(first_idx)
    rank = np.empty(k, dtype=INDEX_DTYPE)
    first_order = np.argsort(first_idx, kind="stable")
    rank[first_order] = np.arange(k, dtype=INDEX_DTYPE)
    merged_cap = np.bincount(rank[inverse], weights=caps, minlength=k)
    rep = first_idx[first_order]
    return lo[rep], hi[rep], merged_cap, origin[rep]


def contract_csr(
    num_clusters: int,
    new_u: np.ndarray,
    new_v: np.ndarray,
    parallel: ParallelConfig | None = None,
) -> CSRAdjacency:
    """Emit the quotient's CSR adjacency directly from a contraction.

    :func:`contract_edges` produces the quotient's edge arrays already
    in quotient-edge-id order, which is exactly the order
    :func:`~repro.graphs.csr.build_csr` needs — so the child CSR can be
    materialized in the same pass and seeded into the quotient's cache,
    making the chained contractions of AKPW and the j-tree hierarchy
    pay zero lazy adjacency rebuilds per level. Under a sharded config
    the emission sorts per ``indptr`` node range on the worker pool
    (see :func:`~repro.graphs.csr.build_csr`), still bit-identical.
    """
    return build_csr(num_clusters, new_u, new_v, parallel=parallel)


def pair_first_edge_index(
    edge_u: np.ndarray, edge_v: np.ndarray, num_nodes: int
) -> tuple[np.ndarray, np.ndarray]:
    """Index the lowest edge id joining each unordered node pair.

    Returns:
        ``(keys, first_eid)`` — sorted unordered-pair keys
        (``min·n + max``) and, per key, the smallest edge id realizing
        that pair. Query with :func:`lookup_pairs`.
    """
    lo = np.minimum(edge_u, edge_v)
    hi = np.maximum(edge_u, edge_v)
    key = lo * np.int64(num_nodes) + hi
    keys, first_idx = np.unique(key, return_index=True)
    return keys, first_idx.astype(WIDE_DTYPE)


def lookup_pairs(
    keys: np.ndarray,
    first_eid: np.ndarray,
    num_nodes: int,
    us: np.ndarray,
    vs: np.ndarray,
) -> np.ndarray:
    """Look up :func:`pair_first_edge_index` for pair arrays.

    Returns:
        Per queried pair, the smallest edge id joining it, or ``-1``
        when no edge does.
    """
    us = np.asarray(us, dtype=WIDE_DTYPE)
    vs = np.asarray(vs, dtype=WIDE_DTYPE)
    query = np.minimum(us, vs) * np.int64(num_nodes) + np.maximum(us, vs)
    pos = np.searchsorted(keys, query)
    pos_clipped = np.minimum(pos, len(keys) - 1) if len(keys) else pos
    out = np.full(len(query), -1, dtype=WIDE_DTYPE)
    if len(keys):
        hit = keys[pos_clipped] == query
        out[hit] = first_eid[pos_clipped[hit]]
    return out


def group_by_key(
    keys: np.ndarray, values: np.ndarray, num_groups: int
) -> list[np.ndarray]:
    """Group ``values`` by integer ``keys`` in ``0..num_groups-1``.

    Within a group, values keep their input order (stable). Returns one
    array per group (possibly empty).
    """
    keys = np.asarray(keys, dtype=WIDE_DTYPE)
    order = np.argsort(keys, kind="stable")
    sorted_vals = np.asarray(values)[order]
    counts = np.bincount(keys, minlength=num_groups)
    bounds = np.cumsum(counts[:-1]) if num_groups > 1 else []
    return np.split(sorted_vals, bounds)
