"""Rooted spanning trees and tree routing, array-native.

Trees are the load-bearing structure of the whole paper: the congestion
approximator is a set of rooted trees, `R·b` is a subtree aggregation,
`Rᵀ·y` is a root-to-leaf prefix sum of edge prices, and the final
residual demand of Algorithm 1 is routed on a maximum-weight spanning
tree. This module implements all of those tree operations centrally
(each corresponds to the distributed convergecast/downcast the paper
performs on the virtual trees, cf. Section 9 and Corollary 9.3).

A :class:`RootedTree` is a parent-pointer array over nodes ``0..n-1``
with per-edge capacities on the (child -> parent) edges. On top of the
parent array it caches, built once per tree:

* a DFS **Euler tour** (``order`` / ``tin`` / ``tout``), making every
  subtree aggregation two cumulative-sum lookups and every
  root-to-path sum one range-update pass — the same index arithmetic
  the congestion approximator's ``TreeOperator`` consumes directly;
* a lazily built **binary-lifting table**, making batched LCA (and so
  stretch and induced-cut computations over all graph edges at once)
  a vectorized O(log depth) scan instead of a per-edge Python walk.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

from repro.errors import TreeError
from repro.graphs import kernels
from repro.graphs.csr import WIDE_DTYPE, build_csr
from repro.graphs.graph import SMALL_GRAPH_LIMIT, Graph

__all__ = [
    "RootedTree",
    "spanning_tree_from_edges",
    "bfs_tree",
    "tree_route_demand",
    "induced_cut_capacities",
    "average_stretch",
    "weighted_average_stretch",
]


class RootedTree:
    """A rooted tree on nodes ``0 .. n-1`` stored as a parent array.

    Attributes:
        parent: ``parent[v]`` is the parent of ``v``; ``parent[root]``
            is ``-1``.
        root: The root node.
        capacity: ``capacity[v]`` is the capacity of the edge
            ``(v, parent[v])``; ``capacity[root]`` is ignored (0).

    Construction validates acyclicity and computes depths in one
    amortized pass; the Euler intervals, child lists, and the
    binary-lifting table are built lazily on first use and cached
    (trees that are only constructed — the common case inside the
    j-tree recursion — never pay for them).
    """

    def __init__(
        self,
        parent: Sequence[int],
        capacity: Sequence[float] | None = None,
    ) -> None:
        if isinstance(parent, np.ndarray):
            self._parent_arr = parent.astype(WIDE_DTYPE)
            self.parent = self._parent_arr.tolist()
        else:
            self.parent = [int(p) for p in parent]
            self._parent_arr = np.asarray(self.parent, dtype=WIDE_DTYPE)
        n = len(self.parent)
        roots = np.flatnonzero(self._parent_arr < 0)
        if len(roots) != 1:
            raise TreeError(f"tree must have exactly one root, found {len(roots)}")
        self.root = int(roots[0])
        if np.any(self._parent_arr >= n):
            v = int(np.argmax(self._parent_arr >= n))
            raise TreeError(f"parent[{v}] = {self.parent[v]} out of range")
        if capacity is None:
            self.capacity = np.zeros(n)
        else:
            if len(capacity) != n:
                raise TreeError("capacity array must have one entry per node")
            self.capacity = np.asarray(capacity, dtype=float).copy()
        self.capacity[self.root] = 0.0
        self._depth_list = self._validate_depths()
        self._euler: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._children_cache: list[list[int]] | None = None
        self._depth_arr: np.ndarray | None = None
        self._lift: np.ndarray | None = None

    def _validate_depths(self) -> list[int]:
        """Depth of every node by memoized parent-chain walks.

        One amortized O(n) pass that doubles as validation: with a
        single root, a chain that revisits this walk's own trail (or
        runs past n hops) is a cycle, and acyclicity plus one root
        implies every node reaches the root.
        """
        n = self.num_nodes
        parent = self.parent
        depth = [-1] * n
        depth[self.root] = 0
        for v in range(n):
            if depth[v] >= 0:
                continue
            chain = []
            w = v
            while depth[w] < 0:
                chain.append(w)
                if len(chain) > n:
                    raise TreeError(
                        "parent pointers contain a cycle or unreachable "
                        f"nodes (node {v} never reaches the root)"
                    )
                w = parent[w]
            d = depth[w]
            for u in reversed(chain):
                d += 1
                depth[u] = d
        return depth

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.parent)

    def _ensure_euler(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Build (lazily, once) the Euler intervals every aggregation
        runs on: one DFS pass yielding preorder + entry/exit indices."""
        if self._euler is None:
            n = self.num_nodes
            children = self._children()
            order = [0] * n
            tin = [0] * n
            tout = [0] * n
            clock = 0
            stack: list[int] = [~self.root, self.root]
            while stack:
                node = stack.pop()
                if node < 0:
                    tout[~node] = clock
                    continue
                order[clock] = node
                tin[node] = clock
                clock += 1
                # Push in reverse so children are *visited* ascending.
                for child in reversed(children[node]):
                    stack.append(~child)
                    stack.append(child)
            self._euler = (
                np.asarray(order, dtype=WIDE_DTYPE),
                np.asarray(tin, dtype=WIDE_DTYPE),
                np.asarray(tout, dtype=WIDE_DTYPE),
            )
        return self._euler

    def _children(self) -> list[list[int]]:
        if self._children_cache is None:
            children: list[list[int]] = [[] for _ in range(self.num_nodes)]
            for v, p in enumerate(self.parent):
                if p >= 0:
                    children[p].append(v)
            self._children_cache = children
        return self._children_cache

    @property
    def euler_order(self) -> np.ndarray:
        """DFS preorder over nodes."""
        return self._ensure_euler()[0]

    @property
    def euler_tin(self) -> np.ndarray:
        """Entry index of each node in the Euler tour."""
        return self._ensure_euler()[1]

    @property
    def euler_tout(self) -> np.ndarray:
        """Exit index of each node: subtree of v is ``tin[v]:tout[v]``."""
        return self._ensure_euler()[2]

    @property
    def depths(self) -> np.ndarray:
        """Hop depth of every node below the root (int64 array)."""
        if self._depth_arr is None:
            self._depth_arr = np.asarray(self._depth_list, dtype=WIDE_DTYPE)
        return self._depth_arr

    def topological_order(self) -> list[int]:
        """Nodes in root-first order (every prefix closed under taking
        parents). Since this PR the concrete order is DFS preorder with
        children visited ascending — the legacy implementation used BFS
        order; all in-repo consumers only rely on the root-first
        property."""
        return self._ensure_euler()[0].tolist()

    def depth(self, node: int) -> int:
        """Hop depth of ``node`` below the root."""
        return self._depth_list[node]

    def height(self) -> int:
        """Maximum depth over all nodes."""
        return max(self._depth_list)

    def children(self) -> list[list[int]]:
        """Return the child lists of every node."""
        return [list(c) for c in self._children()]

    def path_to_root(self, node: int) -> list[int]:
        """Return the node sequence from ``node`` up to and including the
        root."""
        path = [node]
        while self.parent[path[-1]] >= 0:
            path.append(self.parent[path[-1]])
        return path

    # ------------------------------------------------------------------
    # Lowest common ancestors
    # ------------------------------------------------------------------
    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor by depth-equalizing walk (O(depth))."""
        depth = self._depth_list
        while depth[u] > depth[v]:
            u = self.parent[u]
        while depth[v] > depth[u]:
            v = self.parent[v]
        while u != v:
            u = self.parent[u]
            v = self.parent[v]
        return u

    def _lifting_table(self) -> np.ndarray:
        """Binary-lifting ancestor table ``up[k][v]`` (lazy, cached)."""
        if self._lift is None:
            n = self.num_nodes
            height = max(self._depth_list)
            levels = max(1, height.bit_length())
            up = np.empty((levels, n), dtype=WIDE_DTYPE)
            # Treat the root as its own ancestor so jumps saturate.
            base = self._parent_arr.copy()
            base[self.root] = self.root
            up[0] = base
            for k in range(1, levels):
                up[k] = up[k - 1][up[k - 1]]
            self._lift = up
        return self._lift

    def lca_batch(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Vectorized LCA for pair arrays (binary lifting)."""
        us = np.asarray(us, dtype=WIDE_DTYPE).copy()
        vs = np.asarray(vs, dtype=WIDE_DTYPE).copy()
        up = self._lifting_table()
        depth = self.depths
        # Lift the deeper endpoint up to the shallower one's depth.
        diff = depth[us] - depth[vs]
        swap = diff < 0
        us[swap], vs[swap] = vs[swap], us[swap]
        diff = np.abs(diff)
        for k in range(len(up)):
            take = (diff >> k) & 1 == 1
            if np.any(take):
                us[take] = up[k][us[take]]
        # Now equal depth: jump both while ancestors differ.
        for k in range(len(up) - 1, -1, -1):
            differs = up[k][us] != up[k][vs]
            if np.any(differs):
                us[differs] = up[k][us[differs]]
                vs[differs] = up[k][vs[differs]]
        out = np.where(us == vs, us, up[0][us])
        return out

    def path_length(
        self, u: int, v: int, edge_length: Sequence[float] | None = None
    ) -> float:
        """Length of the unique u-v tree path. ``edge_length[w]`` is the
        length of edge (w, parent[w]); hop count if omitted."""
        ancestor = self.lca(u, v)
        total = 0.0
        for start in (u, v):
            node = start
            while node != ancestor:
                total += 1.0 if edge_length is None else float(edge_length[node])
                node = self.parent[node]
        return total

    def path_lengths_batch(
        self,
        us: np.ndarray,
        vs: np.ndarray,
        edge_length: Sequence[float] | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`path_length` over pair arrays."""
        anc = self.lca_batch(us, vs)
        if edge_length is None:
            dist = self.depths.astype(float)
        else:
            dist = self.prefix_sums_from_root(edge_length)
        return dist[us] + dist[vs] - 2.0 * dist[anc]

    # ------------------------------------------------------------------
    # Aggregations (the paper's convergecast / downcast)
    # ------------------------------------------------------------------
    def subtree_sums(self, values: Sequence[float]) -> np.ndarray:
        """Return, for every node v, the sum of ``values`` over the
        subtree rooted at v (a convergecast): two prefix-sum lookups on
        the Euler tour."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.num_nodes,):
            raise TreeError("values must have one entry per node")
        order, tin, tout = self._ensure_euler()
        prefix = np.concatenate(([0.0], np.cumsum(values[order])))
        return prefix[tout] - prefix[tin]

    def prefix_sums_from_root(self, edge_values: Sequence[float]) -> np.ndarray:
        """Return, for every node v, the sum of ``edge_values[w]`` over
        the edges (w, parent[w]) on the root-to-v path (a downcast).

        This is exactly the node-potential computation π_v of Section
        9.1: with ``edge_values`` = edge prices, the result is the
        per-tree contribution to π. Implemented as one Euler range
        update: edge (w, p(w)) contributes to exactly the subtree of w.
        """
        edge_values = np.asarray(edge_values, dtype=float)
        if edge_values.shape != (self.num_nodes,):
            raise TreeError("edge_values must have one entry per node")
        diff = np.zeros(self.num_nodes + 1)
        nonroot = self._parent_arr >= 0
        _, tin, tout = self._ensure_euler()
        np.add.at(diff, tin[nonroot], edge_values[nonroot])
        np.subtract.at(diff, tout[nonroot], edge_values[nonroot])
        out = np.cumsum(diff[:-1])[tin]
        out[self.root] = 0.0
        return out

    def edge_flows_for_demand(self, demand: Sequence[float]) -> np.ndarray:
        """Route a demand vector on the tree; return per-edge signed flow.

        ``result[v]`` is the flow on edge (v, parent[v]), positive when
        flow moves from v toward the parent. Routing on a tree is
        unique: the flow out of subtree T_v equals the total demand
        inside T_v (paper Section 2, "routing flows on trees is
        trivial")."""
        demand = np.asarray(demand, dtype=float)
        flows = self.subtree_sums(demand)
        flows[self.root] = 0.0
        return flows

    def congestion_for_demand(self, demand: Sequence[float]) -> np.ndarray:
        """Per-edge congestion |flow| / capacity when routing ``demand``
        on the tree. This is one block of rows of the R operator."""
        flows = self.edge_flows_for_demand(demand)
        with np.errstate(divide="ignore", invalid="ignore"):
            congestion = np.abs(flows) / self.capacity
        congestion[self.root] = 0.0
        congestion[~np.isfinite(congestion)] = 0.0
        return congestion

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_graph(self) -> Graph:
        """Return the tree as a :class:`Graph` (edge (v, parent[v]) gets
        edge id ordering by child node)."""
        nonroot = np.flatnonzero(self._parent_arr >= 0)
        caps = self.capacity[nonroot]
        caps = np.where(caps > 0, caps, 1.0)
        return Graph._from_trusted_arrays(
            self.num_nodes, nonroot, self._parent_arr[nonroot], caps
        )


def bfs_tree(graph: Graph, root: int = 0) -> RootedTree:
    """Breadth-first spanning tree of a connected graph."""
    graph.require_connected()
    if not graph.is_small():
        _, parent, _ = kernels.bfs_parents(graph.csr(), root)
        return RootedTree(parent)
    parent = [-2] * graph.num_nodes
    parent[root] = -1
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for neighbor, _ in graph.neighbors(node):
            if parent[neighbor] == -2:
                parent[neighbor] = node
                queue.append(neighbor)
    return RootedTree(parent)


def spanning_tree_from_edges(
    graph: Graph, edge_ids: Iterable[int], root: int = 0
) -> RootedTree:
    """Build a :class:`RootedTree` from a set of graph edge ids that form
    a spanning tree of ``graph``.

    Raises:
        TreeError: If the edge set is not a spanning tree.
    """
    n = graph.num_nodes
    ids = np.asarray(
        edge_ids if isinstance(edge_ids, np.ndarray) else list(edge_ids),
        dtype=WIDE_DTYPE,
    )
    if len(ids) != n - 1:
        raise TreeError(f"spanning tree needs {n - 1} edges, got {len(ids)}")
    tails, heads = graph.edge_index_arrays()
    if n + 2 * len(ids) >= SMALL_GRAPH_LIMIT:
        csr = build_csr(n, tails[ids], heads[ids])
        dist, parent, _ = kernels.bfs_parents(csr, root)
        if np.any(dist < 0):
            raise TreeError("edge set does not span the graph")
        return RootedTree(parent)
    sel_u = tails[ids].tolist()
    sel_v = heads[ids].tolist()
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for u, v in zip(sel_u, sel_v):
        adjacency[u].append(v)
        adjacency[v].append(u)
    parent = [-2] * n
    parent[root] = -1
    queue = deque([root])
    visited = 1
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if parent[neighbor] == -2:
                parent[neighbor] = node
                visited += 1
                queue.append(neighbor)
    if visited != n:
        raise TreeError("edge set does not span the graph")
    return RootedTree(parent)


def induced_cut_capacities(graph: Graph, tree: RootedTree) -> np.ndarray:
    """For each tree edge (v, parent[v]), compute the capacity in
    ``graph`` of the cut (T_v, V \\ T_v) its subtree induces.

    This is exactly the multicommodity-flow magnitude |f'| of the
    paper's Section 8.1 (Lemmas 8.1/8.3): routing cap(e) units along the
    tree for every graph edge e loads tree edge (v, p(v)) with the total
    capacity of graph edges having exactly one endpoint in T_v — i.e.
    the induced cut capacity. Computed with one batched-LCA pass plus
    one Euler subtree sum:
    cut(T_v) = Σ_{e incident to T_v} cap(e) − 2·Σ_{e inside T_v} cap(e).
    """
    n = graph.num_nodes
    if tree.num_nodes != n:
        raise TreeError("tree and graph node counts differ")
    tails, heads = graph.edge_index_arrays()
    caps = graph.capacities()
    incident = np.zeros(n)
    np.add.at(incident, tails, caps)
    np.add.at(incident, heads, caps)
    # An edge {u, v} lies inside T_w iff w is an ancestor of lca(u, v).
    # Accumulate 2*cap at the LCA, then take subtree sums of
    # (incident - 2*cap_at_lca).
    at_lca = np.zeros(n)
    if graph.num_edges:
        if graph.is_tiny():
            lca = tree.lca
            for u, v, c in zip(tails.tolist(), heads.tolist(), caps.tolist()):
                at_lca[lca(u, v)] += 2.0 * c
        else:
            np.add.at(at_lca, tree.lca_batch(tails, heads), 2.0 * caps)
    cut = tree.subtree_sums(incident - at_lca)
    cut[tree.root] = 0.0
    # Clamp tiny negatives from float accumulation.
    cut[cut < 0] = 0.0
    return cut


def tree_route_demand(
    graph: Graph, tree: RootedTree, demand: Sequence[float]
) -> np.ndarray:
    """Route ``demand`` on a spanning tree whose edges are graph edges,
    returning a flow vector indexed by *graph* edge ids.

    The tree's (v, parent[v]) edges must each correspond to at least one
    graph edge between v and parent[v]; the lowest-id such edge carries
    the flow. Used for Algorithm 1's final residual routing.
    """
    demand = np.asarray(demand, dtype=float)
    flows_on_tree = tree.edge_flows_for_demand(demand)
    tails, heads = graph.edge_index_arrays()
    keys, first_eid = kernels.pair_first_edge_index(
        tails, heads, graph.num_nodes
    )
    nonroot = np.flatnonzero(np.asarray(tree.parent, dtype=WIDE_DTYPE) >= 0)
    parents = np.asarray(tree.parent, dtype=WIDE_DTYPE)[nonroot]
    eids = kernels.lookup_pairs(keys, first_eid, graph.num_nodes, nonroot, parents)
    if np.any(eids < 0):
        v = int(nonroot[int(np.argmax(eids < 0))])
        raise TreeError(
            f"tree edge ({v}, {tree.parent[v]}) has no corresponding graph edge"
        )
    # Positive tree flow moves v -> p; positive graph flow moves
    # tail -> head. Align signs.
    signs = np.where(tails[eids] == nonroot, 1.0, -1.0)
    flow = np.zeros(graph.num_edges)
    np.add.at(flow, eids, signs * flows_on_tree[nonroot])
    return flow


def average_stretch(graph: Graph, tree: RootedTree) -> float:
    """Average (unweighted) stretch of ``tree`` over the edges of
    ``graph``: mean over edges {u,v} of the hop length of the u-v tree
    path. For an edge of the tree itself the stretch is 1."""
    if graph.num_edges == 0:
        return 0.0
    tails, heads = graph.edge_index_arrays()
    if graph.is_tiny():
        total = sum(
            tree.path_length(u, v)
            for u, v in zip(tails.tolist(), heads.tolist())
        )
        return total / graph.num_edges
    return float(tree.path_lengths_batch(tails, heads).mean())


def weighted_average_stretch(
    graph: Graph,
    tree: RootedTree,
    edge_length: Sequence[float],
    tree_edge_length: Sequence[float],
) -> float:
    """Average stretch with lengths (paper Section 7 / Eq. (2)):
    ``mean over e={u,v} of d_T(u, v) / ℓ(e)`` where d_T uses
    ``tree_edge_length[w]`` for tree edge (w, parent[w])."""
    if graph.num_edges == 0:
        return 0.0
    tails, heads = graph.edge_index_arrays()
    if graph.is_tiny():
        lengths = np.asarray(edge_length, dtype=float).tolist()
        total = 0.0
        for eid, (u, v) in enumerate(zip(tails.tolist(), heads.tolist())):
            total += tree.path_length(u, v, tree_edge_length) / lengths[eid]
        return total / graph.num_edges
    d_t = tree.path_lengths_batch(tails, heads, tree_edge_length)
    return float((d_t / np.asarray(edge_length, dtype=float)).mean())
