"""Rooted spanning trees and tree routing.

Trees are the load-bearing structure of the whole paper: the congestion
approximator is a set of rooted trees, `R·b` is a subtree aggregation,
`Rᵀ·y` is a root-to-leaf prefix sum of edge prices, and the final
residual demand of Algorithm 1 is routed on a maximum-weight spanning
tree. This module implements all of those tree operations centrally
(each corresponds to the distributed convergecast/downcast the paper
performs on the virtual trees, cf. Section 9 and Corollary 9.3).

A :class:`RootedTree` is a parent-pointer array over nodes ``0..n-1``
with per-edge capacities on the (child -> parent) edges.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

from repro.errors import TreeError
from repro.graphs.graph import Graph

__all__ = [
    "RootedTree",
    "spanning_tree_from_edges",
    "bfs_tree",
    "tree_route_demand",
    "induced_cut_capacities",
    "average_stretch",
    "weighted_average_stretch",
]


class RootedTree:
    """A rooted tree on nodes ``0 .. n-1`` stored as a parent array.

    Attributes:
        parent: ``parent[v]`` is the parent of ``v``; ``parent[root]``
            is ``-1``.
        root: The root node.
        capacity: ``capacity[v]`` is the capacity of the edge
            ``(v, parent[v])``; ``capacity[root]`` is ignored (0).

    The class precomputes a topological order (root first) so subtree
    aggregations and root-to-leaf scans are single passes.
    """

    def __init__(
        self,
        parent: Sequence[int],
        capacity: Sequence[float] | None = None,
    ) -> None:
        self.parent = [int(p) for p in parent]
        n = len(self.parent)
        roots = [v for v, p in enumerate(self.parent) if p < 0]
        if len(roots) != 1:
            raise TreeError(f"tree must have exactly one root, found {len(roots)}")
        self.root = roots[0]
        for v, p in enumerate(self.parent):
            if p >= n:
                raise TreeError(f"parent[{v}] = {p} out of range")
        if capacity is None:
            self.capacity = np.zeros(n)
        else:
            if len(capacity) != n:
                raise TreeError("capacity array must have one entry per node")
            self.capacity = np.asarray(capacity, dtype=float).copy()
        self.capacity[self.root] = 0.0
        self._order = self._topological_order()
        self._depth = self._compute_depths()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.parent)

    def _topological_order(self) -> list[int]:
        """Return nodes in root-first order; validates acyclicity."""
        n = self.num_nodes
        children: list[list[int]] = [[] for _ in range(n)]
        for v, p in enumerate(self.parent):
            if p >= 0:
                children[p].append(v)
        order: list[int] = []
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            order.append(node)
            queue.extend(children[node])
        if len(order) != n:
            raise TreeError(
                "parent pointers contain a cycle or unreachable nodes "
                f"({len(order)} of {n} reachable from root)"
            )
        return order

    def _compute_depths(self) -> list[int]:
        depth = [0] * self.num_nodes
        for v in self._order:
            if self.parent[v] >= 0:
                depth[v] = depth[self.parent[v]] + 1
        return depth

    def topological_order(self) -> list[int]:
        """Nodes in root-first (BFS) order."""
        return list(self._order)

    def depth(self, node: int) -> int:
        """Hop depth of ``node`` below the root."""
        return self._depth[node]

    def height(self) -> int:
        """Maximum depth over all nodes."""
        return max(self._depth)

    def children(self) -> list[list[int]]:
        """Return the child lists of every node."""
        out: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for v, p in enumerate(self.parent):
            if p >= 0:
                out[p].append(v)
        return out

    def path_to_root(self, node: int) -> list[int]:
        """Return the node sequence from ``node`` up to and including the
        root."""
        path = [node]
        while self.parent[path[-1]] >= 0:
            path.append(self.parent[path[-1]])
        return path

    def lca(self, u: int, v: int) -> int:
        """Lowest common ancestor by depth-equalizing walk (O(depth))."""
        while self._depth[u] > self._depth[v]:
            u = self.parent[u]
        while self._depth[v] > self._depth[u]:
            v = self.parent[v]
        while u != v:
            u = self.parent[u]
            v = self.parent[v]
        return u

    def path_length(
        self, u: int, v: int, edge_length: Sequence[float] | None = None
    ) -> float:
        """Length of the unique u-v tree path. ``edge_length[w]`` is the
        length of edge (w, parent[w]); hop count if omitted."""
        ancestor = self.lca(u, v)
        total = 0.0
        for start in (u, v):
            node = start
            while node != ancestor:
                total += 1.0 if edge_length is None else float(edge_length[node])
                node = self.parent[node]
        return total

    # ------------------------------------------------------------------
    # Aggregations (the paper's convergecast / downcast)
    # ------------------------------------------------------------------
    def subtree_sums(self, values: Sequence[float]) -> np.ndarray:
        """Return, for every node v, the sum of ``values`` over the
        subtree rooted at v (a convergecast)."""
        values = np.asarray(values, dtype=float)
        if values.shape != (self.num_nodes,):
            raise TreeError("values must have one entry per node")
        sums = values.copy()
        for v in reversed(self._order):
            p = self.parent[v]
            if p >= 0:
                sums[p] += sums[v]
        return sums

    def prefix_sums_from_root(self, edge_values: Sequence[float]) -> np.ndarray:
        """Return, for every node v, the sum of ``edge_values[w]`` over
        the edges (w, parent[w]) on the root-to-v path (a downcast).

        This is exactly the node-potential computation π_v of Section
        9.1: with ``edge_values`` = edge prices, the result is the
        per-tree contribution to π."""
        edge_values = np.asarray(edge_values, dtype=float)
        if edge_values.shape != (self.num_nodes,):
            raise TreeError("edge_values must have one entry per node")
        out = np.zeros(self.num_nodes)
        for v in self._order:
            p = self.parent[v]
            if p >= 0:
                out[v] = out[p] + edge_values[v]
        out[self.root] = 0.0
        return out

    def edge_flows_for_demand(self, demand: Sequence[float]) -> np.ndarray:
        """Route a demand vector on the tree; return per-edge signed flow.

        ``result[v]`` is the flow on edge (v, parent[v]), positive when
        flow moves from v toward the parent. Routing on a tree is
        unique: the flow out of subtree T_v equals the total demand
        inside T_v (paper Section 2, "routing flows on trees is
        trivial")."""
        demand = np.asarray(demand, dtype=float)
        flows = self.subtree_sums(demand)
        flows[self.root] = 0.0
        return flows

    def congestion_for_demand(self, demand: Sequence[float]) -> np.ndarray:
        """Per-edge congestion |flow| / capacity when routing ``demand``
        on the tree. This is one block of rows of the R operator."""
        flows = self.edge_flows_for_demand(demand)
        with np.errstate(divide="ignore", invalid="ignore"):
            congestion = np.abs(flows) / self.capacity
        congestion[self.root] = 0.0
        congestion[~np.isfinite(congestion)] = 0.0
        return congestion

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def as_graph(self) -> Graph:
        """Return the tree as a :class:`Graph` (edge (v, parent[v]) gets
        edge id ordering by child node)."""
        graph = Graph(self.num_nodes)
        for v in range(self.num_nodes):
            if self.parent[v] >= 0:
                cap = float(self.capacity[v]) if self.capacity[v] > 0 else 1.0
                graph.add_edge(v, self.parent[v], cap)
        return graph


def bfs_tree(graph: Graph, root: int = 0) -> RootedTree:
    """Breadth-first spanning tree of a connected graph."""
    graph.require_connected()
    parent = [-2] * graph.num_nodes
    parent[root] = -1
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for neighbor, _ in graph.neighbors(node):
            if parent[neighbor] == -2:
                parent[neighbor] = node
                queue.append(neighbor)
    return RootedTree(parent)


def spanning_tree_from_edges(
    graph: Graph, edge_ids: Iterable[int], root: int = 0
) -> RootedTree:
    """Build a :class:`RootedTree` from a set of graph edge ids that form
    a spanning tree of ``graph``.

    Raises:
        TreeError: If the edge set is not a spanning tree.
    """
    n = graph.num_nodes
    adjacency: list[list[int]] = [[] for _ in range(n)]
    count = 0
    for eid in edge_ids:
        u, v = graph.endpoints(eid)
        adjacency[u].append(v)
        adjacency[v].append(u)
        count += 1
    if count != n - 1:
        raise TreeError(f"spanning tree needs {n - 1} edges, got {count}")
    parent = [-2] * n
    parent[root] = -1
    queue = deque([root])
    visited = 1
    while queue:
        node = queue.popleft()
        for neighbor in adjacency[node]:
            if parent[neighbor] == -2:
                parent[neighbor] = node
                visited += 1
                queue.append(neighbor)
    if visited != n:
        raise TreeError("edge set does not span the graph")
    return RootedTree(parent)


def induced_cut_capacities(graph: Graph, tree: RootedTree) -> np.ndarray:
    """For each tree edge (v, parent[v]), compute the capacity in
    ``graph`` of the cut (T_v, V \\ T_v) its subtree induces.

    This is exactly the multicommodity-flow magnitude |f'| of the
    paper's Section 8.1 (Lemmas 8.1/8.3): routing cap(e) units along the
    tree for every graph edge e loads tree edge (v, p(v)) with the total
    capacity of graph edges having exactly one endpoint in T_v — i.e.
    the induced cut capacity. Computed here with one Euler pass:
    cut(T_v) = Σ_{e incident to T_v} cap(e) − 2·Σ_{e inside T_v} cap(e).
    """
    n = graph.num_nodes
    if tree.num_nodes != n:
        raise TreeError("tree and graph node counts differ")
    incident = np.zeros(n)
    for e in graph.edges():
        incident[e.u] += e.capacity
        incident[e.v] += e.capacity
    # For "inside" sums: an edge {u, v} lies inside T_w iff w is an
    # ancestor of lca(u, v). Accumulate 2*cap at the LCA, then take
    # subtree sums of (incident - 2*cap_at_lca).
    at_lca = np.zeros(n)
    for e in graph.edges():
        at_lca[tree.lca(e.u, e.v)] += 2.0 * e.capacity
    cut = tree.subtree_sums(incident - at_lca)
    cut[tree.root] = 0.0
    # Clamp tiny negatives from float accumulation.
    cut[cut < 0] = 0.0
    return cut


def tree_route_demand(
    graph: Graph, tree: RootedTree, demand: Sequence[float]
) -> np.ndarray:
    """Route ``demand`` on a spanning tree whose edges are graph edges,
    returning a flow vector indexed by *graph* edge ids.

    The tree's (v, parent[v]) edges must each correspond to at least one
    graph edge between v and parent[v]; the lowest-id such edge carries
    the flow. Used for Algorithm 1's final residual routing.
    """
    demand = np.asarray(demand, dtype=float)
    flows_on_tree = tree.edge_flows_for_demand(demand)
    # Map each tree edge to a graph edge id.
    edge_of_pair: dict[tuple[int, int], int] = {}
    for e in graph.edges():
        key = (min(e.u, e.v), max(e.u, e.v))
        if key not in edge_of_pair:
            edge_of_pair[key] = e.id
    flow = np.zeros(graph.num_edges)
    for v in range(tree.num_nodes):
        p = tree.parent[v]
        if p < 0:
            continue
        key = (min(v, p), max(v, p))
        if key not in edge_of_pair:
            raise TreeError(f"tree edge ({v}, {p}) has no corresponding graph edge")
        eid = edge_of_pair[key]
        u, _ = graph.endpoints(eid)
        # Positive tree flow moves v -> p; positive graph flow moves
        # tail -> head. Align signs.
        sign = 1.0 if u == v else -1.0
        flow[eid] += sign * flows_on_tree[v]
    return flow


def average_stretch(graph: Graph, tree: RootedTree) -> float:
    """Average (unweighted) stretch of ``tree`` over the edges of
    ``graph``: mean over edges {u,v} of the hop length of the u-v tree
    path. For an edge of the tree itself the stretch is 1."""
    if graph.num_edges == 0:
        return 0.0
    total = 0.0
    for e in graph.edges():
        total += tree.path_length(e.u, e.v)
    return total / graph.num_edges


def weighted_average_stretch(
    graph: Graph,
    tree: RootedTree,
    edge_length: Sequence[float],
    tree_edge_length: Sequence[float],
) -> float:
    """Average stretch with lengths (paper Section 7 / Eq. (2)):
    ``mean over e={u,v} of d_T(u, v) / ℓ(e)`` where d_T uses
    ``tree_edge_length[w]`` for tree edge (w, parent[w])."""
    if graph.num_edges == 0:
        return 0.0
    total = 0.0
    for e in graph.edges():
        d_t = tree.path_length(e.u, e.v, tree_edge_length)
        total += d_t / float(edge_length[e.id])
    return total / graph.num_edges
