"""Workload generators.

The paper has no benchmark suite of its own, so these generators supply
the synthetic workloads used by the test suite, the examples, and the
experiment harness (EXPERIMENTS.md). They cover the regimes the paper's
analysis distinguishes:

* low-diameter dense graphs (Erdős–Rényi, complete, expanders) where
  the `√n` term dominates the round complexity,
* high-diameter sparse graphs (paths, grids, tori, caterpillars) where
  `D` dominates,
* structured worst cases for specific components (barbells for min-cut
  bottlenecks, hard instances for push-relabel).

All generators take a seeded :class:`numpy.random.Generator` (or seed)
so every experiment is reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graphs.csr import WIDE_DTYPE
from repro.graphs.graph import Graph
from repro.util.rng import as_generator

__all__ = [
    "erdos_renyi",
    "random_connected",
    "grid",
    "torus",
    "path",
    "cycle",
    "complete",
    "star",
    "barbell",
    "caterpillar",
    "hypercube",
    "random_regular_expander",
    "random_geometric",
    "weighted_variant",
    "push_relabel_hard_instance",
    "power_law",
    "road_network",
    "PlantedBottleneckGraph",
    "planted_bottleneck",
]


def _random_capacity(rng: np.random.Generator, max_capacity: float) -> float:
    """Draw an integer capacity in [1, max_capacity] (paper: cap ∈ poly n)."""
    return float(rng.integers(1, int(max_capacity) + 1))


def erdos_renyi(
    num_nodes: int,
    edge_probability: float,
    rng: np.random.Generator | int | None = None,
    max_capacity: float = 100.0,
) -> Graph:
    """G(n, p) with integer capacities; no connectivity guarantee."""
    rng = as_generator(rng)
    graph = Graph(num_nodes)
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(u, v, _random_capacity(rng, max_capacity))
    return graph


def random_connected(
    num_nodes: int,
    extra_edge_probability: float = 0.05,
    rng: np.random.Generator | int | None = None,
    max_capacity: float = 100.0,
) -> Graph:
    """A connected random graph: a random spanning tree (random Prüfer-
    style attachment) plus independent extra edges with probability
    ``extra_edge_probability``."""
    rng = as_generator(rng)
    graph = Graph(num_nodes)
    order = rng.permutation(num_nodes)
    for i in range(1, num_nodes):
        parent = order[rng.integers(0, i)]
        graph.add_edge(int(order[i]), int(parent), _random_capacity(rng, max_capacity))
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if rng.random() < extra_edge_probability:
                graph.add_edge(u, v, _random_capacity(rng, max_capacity))
    return graph


def grid(
    rows: int,
    cols: int,
    rng: np.random.Generator | int | None = None,
    max_capacity: float = 100.0,
    uniform_capacity: float | None = None,
) -> Graph:
    """A rows×cols grid; node ``(r, c)`` has id ``r * cols + c``."""
    rng = as_generator(rng)
    graph = Graph(rows * cols)

    def nid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            cap = (
                uniform_capacity
                if uniform_capacity is not None
                else _random_capacity(rng, max_capacity)
            )
            if c + 1 < cols:
                graph.add_edge(nid(r, c), nid(r, c + 1), cap)
            cap = (
                uniform_capacity
                if uniform_capacity is not None
                else _random_capacity(rng, max_capacity)
            )
            if r + 1 < rows:
                graph.add_edge(nid(r, c), nid(r + 1, c), cap)
    return graph


def torus(
    rows: int,
    cols: int,
    rng: np.random.Generator | int | None = None,
    max_capacity: float = 100.0,
) -> Graph:
    """A rows×cols torus (grid with wraparound edges)."""
    if rows < 3 or cols < 3:
        raise GraphError("torus requires rows, cols >= 3 to avoid parallel edges")
    rng = as_generator(rng)
    graph = Graph(rows * cols)
    for r in range(rows):
        for c in range(cols):
            graph.add_edge(
                r * cols + c,
                r * cols + (c + 1) % cols,
                _random_capacity(rng, max_capacity),
            )
            graph.add_edge(
                r * cols + c,
                ((r + 1) % rows) * cols + c,
                _random_capacity(rng, max_capacity),
            )
    return graph


def path(
    num_nodes: int,
    rng: np.random.Generator | int | None = None,
    max_capacity: float = 100.0,
) -> Graph:
    """A path 0 - 1 - ... - (n-1); the maximum-diameter workload."""
    rng = as_generator(rng)
    graph = Graph(num_nodes)
    for v in range(num_nodes - 1):
        graph.add_edge(v, v + 1, _random_capacity(rng, max_capacity))
    return graph


def cycle(
    num_nodes: int,
    rng: np.random.Generator | int | None = None,
    max_capacity: float = 100.0,
) -> Graph:
    """A cycle on ``num_nodes >= 3`` nodes."""
    if num_nodes < 3:
        raise GraphError("cycle requires at least 3 nodes")
    rng = as_generator(rng)
    graph = Graph(num_nodes)
    for v in range(num_nodes):
        graph.add_edge(v, (v + 1) % num_nodes, _random_capacity(rng, max_capacity))
    return graph


def complete(
    num_nodes: int,
    rng: np.random.Generator | int | None = None,
    max_capacity: float = 100.0,
) -> Graph:
    """The complete graph K_n; the densest workload (sparsifier target)."""
    rng = as_generator(rng)
    graph = Graph(num_nodes)
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            graph.add_edge(u, v, _random_capacity(rng, max_capacity))
    return graph


def star(
    num_leaves: int,
    rng: np.random.Generator | int | None = None,
    max_capacity: float = 100.0,
) -> Graph:
    """A star with center 0 and ``num_leaves`` leaves."""
    rng = as_generator(rng)
    graph = Graph(num_leaves + 1)
    for v in range(1, num_leaves + 1):
        graph.add_edge(0, v, _random_capacity(rng, max_capacity))
    return graph


def barbell(
    clique_size: int,
    bridge_length: int = 1,
    bridge_capacity: float = 1.0,
    rng: np.random.Generator | int | None = None,
    max_capacity: float = 100.0,
) -> Graph:
    """Two cliques joined by a low-capacity path: the canonical min-cut
    bottleneck instance. The bridge is the unique min s-t cut for s in
    one clique and t in the other."""
    rng = as_generator(rng)
    n = 2 * clique_size + max(0, bridge_length - 1)
    graph = Graph(n)
    left = range(clique_size)
    right = range(clique_size, 2 * clique_size)
    for group in (left, right):
        group = list(group)
        for i, u in enumerate(group):
            for v in group[i + 1 :]:
                graph.add_edge(u, v, _random_capacity(rng, max_capacity))
    chain = [0] + [2 * clique_size + i for i in range(bridge_length - 1)] + [
        clique_size
    ]
    for a, b in zip(chain, chain[1:]):
        graph.add_edge(a, b, bridge_capacity)
    return graph


def caterpillar(
    spine_length: int,
    legs_per_node: int,
    rng: np.random.Generator | int | None = None,
    max_capacity: float = 100.0,
) -> Graph:
    """A caterpillar tree: a path spine with pendant legs. High diameter
    and many leaves — a stress case for tree decompositions."""
    rng = as_generator(rng)
    n = spine_length * (1 + legs_per_node)
    graph = Graph(n)
    for i in range(spine_length - 1):
        graph.add_edge(i, i + 1, _random_capacity(rng, max_capacity))
    next_id = spine_length
    for i in range(spine_length):
        for _ in range(legs_per_node):
            graph.add_edge(i, next_id, _random_capacity(rng, max_capacity))
            next_id += 1
    return graph


def hypercube(
    dimension: int,
    rng: np.random.Generator | int | None = None,
    max_capacity: float = 100.0,
) -> Graph:
    """The ``dimension``-dimensional hypercube (n = 2^d, D = d)."""
    rng = as_generator(rng)
    n = 1 << dimension
    graph = Graph(n)
    for v in range(n):
        for bit in range(dimension):
            u = v ^ (1 << bit)
            if u > v:
                graph.add_edge(v, u, _random_capacity(rng, max_capacity))
    return graph


def random_regular_expander(
    num_nodes: int,
    degree: int = 6,
    rng: np.random.Generator | int | None = None,
    max_capacity: float = 100.0,
) -> Graph:
    """A union of ``degree / 2`` random Hamiltonian cycles — a standard
    construction that is an expander with high probability. Low
    diameter, so the `√n` round term dominates."""
    if degree % 2 != 0 or degree < 2:
        raise GraphError("degree must be a positive even number")
    rng = as_generator(rng)
    graph = Graph(num_nodes)
    existing: set[tuple[int, int]] = set()
    for _ in range(degree // 2):
        perm = rng.permutation(num_nodes)
        for i in range(num_nodes):
            u = int(perm[i])
            v = int(perm[(i + 1) % num_nodes])
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in existing:
                continue
            existing.add(key)
            graph.add_edge(u, v, _random_capacity(rng, max_capacity))
    return graph


def random_geometric(
    num_nodes: int,
    radius: float | None = None,
    rng: np.random.Generator | int | None = None,
    max_capacity: float = 100.0,
) -> Graph:
    """Random geometric graph on the unit square. If ``radius`` is None
    it is set just above the connectivity threshold
    ``sqrt(2 ln n / n)``. Models spatial/mesh networks with moderate
    diameter."""
    rng = as_generator(rng)
    if radius is None:
        radius = math.sqrt(2.0 * math.log(max(num_nodes, 2)) / num_nodes)
    points = rng.random((num_nodes, 2))
    graph = Graph(num_nodes)
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            if np.linalg.norm(points[u] - points[v]) <= radius:
                graph.add_edge(u, v, _random_capacity(rng, max_capacity))
    return graph


def weighted_variant(
    graph: Graph,
    spread: float,
    rng: np.random.Generator | int | None = None,
) -> Graph:
    """Return a copy of ``graph`` with capacities resampled log-uniformly
    from ``[1, spread]`` — used to exercise the weighted-stretch and
    capacity-ratio (`log C`) behaviour the paper's footnote 1 covers."""
    if spread < 1:
        raise GraphError("spread must be >= 1")
    rng = as_generator(rng)
    out = Graph(graph.num_nodes)
    for e in graph.edges():
        cap = math.exp(rng.uniform(0.0, math.log(spread)))
        out.add_edge(e.u, e.v, max(1.0, round(cap)))
    return out


def push_relabel_hard_instance(levels: int) -> Graph:
    """A layered instance on which push-relabel needs many rounds:
    a long path of unit-capacity edges with one wide source gadget.
    Excess must trickle down the path one relabel at a time, producing
    the Θ(n²)-ish round behaviour the paper cites as motivation."""
    if levels < 2:
        raise GraphError("levels must be >= 2")
    # Node 0 = source hub, nodes 1..levels = path, last node = sink.
    graph = Graph(levels + 1)
    graph.add_edge(0, 1, float(levels))
    for v in range(1, levels):
        graph.add_edge(v, v + 1, 1.0)
    return graph


def power_law(
    num_nodes: int,
    exponent: float = 2.5,
    rng: np.random.Generator | int | None = None,
    max_capacity: float = 100.0,
    min_degree: int = 1,
) -> Graph:
    """A connected power-law graph via the configuration model.

    Degrees are drawn from a discrete Pareto tail
    ``d = floor(min_degree · u^{-1/(exponent-1)})`` (clipped to
    ``n - 1``), stubs are paired uniformly, self-loops and duplicate
    pairs are dropped, and the surviving simple graph is stitched
    connected by linking consecutive components. The hub-and-tail
    degree structure models the clustered/hub demand regimes the
    distributed k-center literature motivates — the opposite extreme
    from the regular grids and tori above.
    """
    if num_nodes < 2:
        raise GraphError("power_law requires at least 2 nodes")
    if exponent <= 1.0:
        raise GraphError(f"power-law exponent must exceed 1, got {exponent}")
    if min_degree < 1:
        raise GraphError(f"min_degree must be >= 1, got {min_degree}")
    rng = as_generator(rng)
    u = rng.random(num_nodes)
    degrees = np.floor(
        min_degree * u ** (-1.0 / (exponent - 1.0))
    ).astype(WIDE_DTYPE)
    degrees = np.minimum(degrees, num_nodes - 1)
    if int(degrees.sum()) % 2 == 1:
        # One extra stub on the largest hub keeps the stub count even
        # without disturbing the tail shape.
        degrees[int(np.argmax(degrees))] += 1
    stubs = np.repeat(np.arange(num_nodes, dtype=WIDE_DTYPE), degrees)
    stubs = stubs[rng.permutation(len(stubs))]
    tails, heads = stubs[0::2], stubs[1::2]
    keep = tails != heads
    tails, heads = tails[keep], heads[keep]
    # Deduplicate pairs (canonical key) so the family stays a simple
    # graph; parallel stubs are common around hubs.
    lo = np.minimum(tails, heads)
    hi = np.maximum(tails, heads)
    _, first = np.unique(lo * num_nodes + hi, return_index=True)
    lo, hi = lo[first], hi[first]
    graph = Graph(num_nodes)
    if len(lo):
        caps = rng.integers(1, int(max_capacity) + 1, size=len(lo)).astype(
            float
        )
        graph._append_bulk(lo, hi, caps)
    components = graph.connected_components()
    if len(components) > 1:
        for left, right in zip(components, components[1:]):
            a = left[int(rng.integers(0, len(left)))]
            b = right[int(rng.integers(0, len(right)))]
            graph.add_edge(a, b, _random_capacity(rng, max_capacity))
    return graph


def road_network(
    rows: int,
    cols: int,
    delete_fraction: float = 0.2,
    shortcuts: int | None = None,
    rng: np.random.Generator | int | None = None,
    max_capacity: float = 100.0,
) -> Graph:
    """A road-network-like graph: a grid with deleted edges plus
    long-range shortcuts.

    Starting from a ``rows × cols`` grid, up to ``delete_fraction`` of
    the edges are removed in a random order (an edge is only removed
    when the remainder stays connected — real street networks are
    connected but full of dead ends and missing links), then
    ``shortcuts`` long-range edges (highways) are added between random
    distant node pairs. Moderate diameter, irregular degrees, and a
    mix of local and long-range capacity — the regime between the grid
    and the expander families.
    """
    if rows < 2 or cols < 2:
        raise GraphError("road_network requires rows, cols >= 2")
    if not 0.0 <= delete_fraction < 1.0:
        raise GraphError(
            f"delete_fraction must be in [0, 1), got {delete_fraction}"
        )
    rng = as_generator(rng)
    base = grid(rows, cols, rng=rng, max_capacity=max_capacity)
    n = base.num_nodes
    tails, heads = (arr.copy() for arr in base.edge_index_arrays())
    caps = base.capacities().copy()
    alive = np.ones(base.num_edges, dtype=bool)
    budget = int(delete_fraction * base.num_edges)

    def _connected_without(candidate: int) -> bool:
        alive[candidate] = False
        kept = np.flatnonzero(alive)
        probe = Graph._from_trusted_arrays(
            n, tails[kept], heads[kept], caps[kept]
        )
        ok = probe.is_connected()
        alive[candidate] = True
        return ok

    for eid in rng.permutation(base.num_edges):
        if budget == 0:
            break
        if _connected_without(int(eid)):
            alive[int(eid)] = False
            budget -= 1
    kept = np.flatnonzero(alive)
    graph = Graph._from_trusted_arrays(n, tails[kept], heads[kept], caps[kept])
    if shortcuts is None:
        shortcuts = max(2, n // 24)
    added = 0
    while added < shortcuts:
        a = int(rng.integers(0, n))
        b = int(rng.integers(0, n))
        # Long-range only: skip pairs already adjacent in grid terms.
        if a == b or abs(a - b) in (1, cols):
            continue
        graph.add_edge(a, b, _random_capacity(rng, max_capacity))
        added += 1
    return graph


@dataclass(frozen=True, eq=False)
class PlantedBottleneckGraph:
    """A graph with a planted min-cut, plus the plant's coordinates.

    Attributes:
        graph: The generated graph.
        left: Boolean node mask; ``True`` marks the left side of the
            planted cut.
        bridge_edges: Edge ids of the planted cut (every edge crossing
            the sides — nothing else crosses).
        cut_capacity: Total capacity of the planted cut at generation
            time. Because all non-bridge edges carry strictly more
            capacity than this total, it is the *unique* minimum s-t
            cut value for any ``s`` on the left and ``t`` on the right
            (verified against Dinic in the test suite). After capacity
            mutations, recompute the live value as
            ``graph.capacities()[bridge_edges].sum()``.
    """

    graph: Graph
    left: np.ndarray
    bridge_edges: np.ndarray
    cut_capacity: float

    def live_cut_capacity(self) -> float:
        """The planted cut's capacity under the graph's *current*
        capacities (tracks ``set_capacity`` write-throughs)."""
        return float(self.graph.capacities()[self.bridge_edges].sum())


def planted_bottleneck(
    side_nodes: int,
    bridge_edges: int = 3,
    bridge_capacity: float = 1.0,
    extra_edge_probability: float = 0.15,
    rng: np.random.Generator | int | None = None,
    capacity_spread: float = 4.0,
) -> PlantedBottleneckGraph:
    """Two well-connected sides joined by a known-capacity bottleneck.

    Each side is a connected random graph on ``side_nodes`` nodes whose
    every edge carries capacity strictly greater than the bridge total,
    so any s-t cut (s left, t right) that severs an internal edge
    already exceeds the planted value and the unique min cut is the
    bridge. This makes the min-cut value *known by construction* —
    the property the scenario invariants (and the mutation test that
    breaks the approximator on purpose) are anchored to.
    """
    if side_nodes < 2:
        raise GraphError("planted_bottleneck requires side_nodes >= 2")
    if bridge_edges < 1:
        raise GraphError("planted_bottleneck requires bridge_edges >= 1")
    if not bridge_capacity > 0:
        raise GraphError(
            f"bridge_capacity must be positive, got {bridge_capacity}"
        )
    if capacity_spread < 1.0:
        raise GraphError(f"capacity_spread must be >= 1, got {capacity_spread}")
    rng = as_generator(rng)
    total = bridge_edges * bridge_capacity
    n = 2 * side_nodes
    graph = Graph(n)

    def _internal_capacity() -> float:
        # Strictly above the planted total: the floor is total + 1 and
        # the draw keeps the usual integer-capacity convention.
        span = max(2, int(math.ceil(total * capacity_spread)))
        return float(math.floor(total) + int(rng.integers(1, span + 1)))

    for offset in (0, side_nodes):
        order = rng.permutation(side_nodes)
        for i in range(1, side_nodes):
            parent = int(order[rng.integers(0, i)])
            graph.add_edge(
                offset + int(order[i]), offset + parent, _internal_capacity()
            )
        for a in range(side_nodes):
            for b in range(a + 1, side_nodes):
                if rng.random() < extra_edge_probability:
                    graph.add_edge(offset + a, offset + b, _internal_capacity())
    bridge_ids = []
    for _ in range(bridge_edges):
        a = int(rng.integers(0, side_nodes))
        b = side_nodes + int(rng.integers(0, side_nodes))
        bridge_ids.append(graph.add_edge(a, b, bridge_capacity))
    left = np.zeros(n, dtype=bool)
    left[:side_nodes] = True
    left.setflags(write=False)
    bridge = np.asarray(bridge_ids, dtype=WIDE_DTYPE)
    bridge.setflags(write=False)
    return PlantedBottleneckGraph(
        graph=graph,
        left=left,
        bridge_edges=bridge,
        cut_capacity=total,
    )
