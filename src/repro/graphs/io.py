"""Graph serialization: DIMACS max-flow format and JSON edge lists.

DIMACS is the de-facto interchange format for max-flow instances
(``p max <n> <m>`` header, ``a <u> <v> <cap>`` arcs, 1-indexed); the
reader folds arc pairs of a directed instance into undirected edges by
summing the two directions' capacities — matching the library's
undirected model. JSON is the friendlier format for small configs.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import GraphError
from repro.graphs.graph import Graph

__all__ = [
    "write_dimacs",
    "read_dimacs",
    "write_json",
    "read_json",
]


def write_dimacs(
    graph: Graph, path: str | Path, source: int = 0, sink: int | None = None
) -> None:
    """Write a DIMACS max-flow file (1-indexed nodes)."""
    sink = graph.num_nodes - 1 if sink is None else sink
    lines = [
        "c repro: undirected max-flow instance",
        f"p max {graph.num_nodes} {graph.num_edges}",
        f"n {source + 1} s",
        f"n {sink + 1} t",
    ]
    for e in graph.edges():
        cap = int(e.capacity) if e.capacity == int(e.capacity) else e.capacity
        lines.append(f"a {e.u + 1} {e.v + 1} {cap}")
    Path(path).write_text("\n".join(lines) + "\n")


def read_dimacs(path: str | Path) -> tuple[Graph, int, int]:
    """Read a DIMACS max-flow file.

    Returns:
        ``(graph, source, sink)``. Directed arc pairs (u→v and v→u) are
        merged into one undirected edge with summed capacity; repeated
        identical arcs stay parallel edges.

    Raises:
        GraphError: On malformed content.
    """
    num_nodes = None
    source = sink = None
    arcs: dict[tuple[int, int], float] = {}
    order: list[tuple[int, int]] = []
    for line_number, raw in enumerate(Path(path).read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        parts = line.split()
        if parts[0] == "p":
            if len(parts) != 4 or parts[1] != "max":
                raise GraphError(f"line {line_number}: bad problem line")
            num_nodes = int(parts[2])
        elif parts[0] == "n":
            if parts[2] == "s":
                source = int(parts[1]) - 1
            elif parts[2] == "t":
                sink = int(parts[1]) - 1
        elif parts[0] == "a":
            u, v, cap = int(parts[1]) - 1, int(parts[2]) - 1, float(parts[3])
            if u == v:
                continue
            key = (min(u, v), max(u, v))
            if key in arcs:
                arcs[key] += cap  # fold reverse direction / duplicates
            else:
                arcs[key] = cap
                order.append(key)
        else:
            raise GraphError(f"line {line_number}: unknown record {parts[0]!r}")
    if num_nodes is None:
        raise GraphError("missing problem line")
    if source is None or sink is None:
        raise GraphError("missing source/sink designators")
    graph = Graph(num_nodes)
    for key in order:
        graph.add_edge(key[0], key[1], arcs[key])
    return graph, source, sink


def write_json(graph: Graph, path: str | Path) -> None:
    """Write the graph as a JSON object {num_nodes, edges:[[u,v,cap]]}."""
    payload = {
        "num_nodes": graph.num_nodes,
        "edges": [[e.u, e.v, e.capacity] for e in graph.edges()],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def read_json(path: str | Path) -> Graph:
    """Read a graph written by :func:`write_json`."""
    payload = json.loads(Path(path).read_text())
    try:
        return Graph(payload["num_nodes"], payload["edges"])
    except (KeyError, TypeError) as exc:
        raise GraphError(f"malformed graph JSON: {exc}") from exc
