"""Compressed-sparse-row (CSR) adjacency for the array-native substrate.

A :class:`CSRAdjacency` is the read-only, cache-friendly view of a
multigraph's incidence structure that every vectorized kernel in
:mod:`repro.graphs.kernels` consumes.  It packs, for each node, the
incident ``(neighbor, edge_id)`` pairs into three flat int64 arrays:

* ``indptr`` — length ``n + 1``; node ``v``'s incidence slice is
  ``indptr[v] : indptr[v + 1]``;
* ``neighbor`` — length ``2m``; the other endpoint of each incidence;
* ``edge_id`` — length ``2m``; the undirected edge id of each incidence.

The contract, relied on by the deterministic BFS kernels:

* every undirected edge ``{u, v}`` contributes one incidence at ``u``
  and one at ``v`` (parallel edges appear once each, per endpoint);
* within a node's slice, incidences are sorted by **edge id** — which
  equals edge-insertion order, so iterating a CSR row reproduces the
  order of the legacy per-node adjacency lists exactly;
* all three arrays are marked read-only, so the owning
  :class:`~repro.graphs.graph.Graph` can hand out its cached instance
  without defensive copies.

Instances are built with :func:`build_csr` (one ``lexsort`` + one
``bincount``; no Python-level per-edge work) and cached by ``Graph``
until the next structural mutation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CSRAdjacency", "build_csr"]


@dataclass(frozen=True)
class CSRAdjacency:
    """Read-only CSR incidence structure of an undirected multigraph.

    Attributes:
        indptr: ``(n + 1,)`` int64 row pointers.
        neighbor: ``(2m,)`` int64 opposite endpoints.
        edge_id: ``(2m,)`` int64 undirected edge ids.
    """

    indptr: np.ndarray
    neighbor: np.ndarray
    edge_id: np.ndarray

    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m`` (half the incidence count)."""
        return len(self.neighbor) // 2

    def degrees(self) -> np.ndarray:
        """Per-node degree (parallel edges all counted)."""
        return np.diff(self.indptr)

    def row(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbors, edge_ids)`` views for one node."""
        lo, hi = self.indptr[node], self.indptr[node + 1]
        return self.neighbor[lo:hi], self.edge_id[lo:hi]


def build_csr(
    num_nodes: int, edge_u: np.ndarray, edge_v: np.ndarray
) -> CSRAdjacency:
    """Build a :class:`CSRAdjacency` from parallel edge-endpoint arrays.

    Args:
        num_nodes: Number of nodes ``n``.
        edge_u: ``(m,)`` integer tails.
        edge_v: ``(m,)`` integer heads.

    Returns:
        The CSR adjacency, rows sorted by edge id (= insertion order).
    """
    edge_u = np.asarray(edge_u, dtype=np.int64)
    edge_v = np.asarray(edge_v, dtype=np.int64)
    m = len(edge_u)
    eids = np.arange(m, dtype=np.int64)
    endpoint = np.concatenate([edge_u, edge_v])
    other = np.concatenate([edge_v, edge_u])
    incidence_eid = np.concatenate([eids, eids])
    # Sort incidences by (endpoint, edge id): each row then lists its
    # incident edges in insertion order, matching legacy adjacency.
    order = np.lexsort((incidence_eid, endpoint))
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(endpoint, minlength=num_nodes), out=indptr[1:])
    neighbor = other[order]
    edge_id = incidence_eid[order]
    for arr in (indptr, neighbor, edge_id):
        arr.setflags(write=False)
    return CSRAdjacency(indptr=indptr, neighbor=neighbor, edge_id=edge_id)
