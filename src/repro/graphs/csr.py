"""Compressed-sparse-row (CSR) adjacency for the array-native substrate.

A :class:`CSRAdjacency` is the read-only, cache-friendly view of a
multigraph's incidence structure that every vectorized kernel in
:mod:`repro.graphs.kernels` consumes.  It packs, for each node, the
incident ``(neighbor, edge_id)`` pairs into three flat arrays:

* ``indptr`` — length ``n + 1``, int64; node ``v``'s incidence slice
  is ``indptr[v] : indptr[v + 1]``;
* ``neighbor`` — length ``2m``, :data:`INDEX_DTYPE` (int32); the other
  endpoint of each incidence;
* ``edge_id`` — length ``2m``, :data:`INDEX_DTYPE` (int32); the
  undirected edge id of each incidence.

Node and edge ids are stored as int32 throughout the substrate: ids
stay below :data:`MAX_INDEX` (2^31 − 1, enforced at the ``Graph``
boundary), and halving the index bandwidth speeds every gather in the
hot kernels. ``indptr`` stays int64 because it indexes the ``2m``-long
incidence arrays.

The contract, relied on by the deterministic BFS kernels:

* every undirected edge ``{u, v}`` contributes one incidence at ``u``
  and one at ``v`` (parallel edges appear once each, per endpoint);
* within a node's slice, incidences are sorted by **edge id** — which
  equals edge-insertion order, so iterating a CSR row reproduces the
  order of the legacy per-node adjacency lists exactly;
* all three arrays are marked read-only, so the owning
  :class:`~repro.graphs.graph.Graph` can hand out its cached instance
  without defensive copies.

Instances are built with :func:`build_csr` (one single-key stable
argsort over eid-interleaved incidences + one ``bincount``; no
Python-level per-edge work) and cached by ``Graph`` until the next
structural mutation.  Under a sharded-execution config
(``parallel=`` / ``REPRO_WORKERS``, see :mod:`repro.parallel`) the
argsort splits over contiguous node ranges balanced by incidence
count: each shard stable-sorts the incidences of its own rows and the
shard outputs concatenate back into exactly the order the global
stable sort produces, so the sharded build is bit-identical.  :meth:`Graph.contract` builds the quotient's CSR
in the same pass as the quotient edge arrays and seeds the child's
cache directly, so chained contractions (AKPW, the j-tree hierarchy)
never re-derive adjacency lazily.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes import INDEX_DTYPE, MAX_INDEX, WIDE_DTYPE
from repro.parallel.config import resolve_config
from repro.parallel.plan import ShardPlan
from repro.parallel.pool import get_pool

# Historically defined here; re-exported so the whole tree keeps
# importing the dtype lanes alongside the CSR types. The definitions
# moved to the dependency-leaf :mod:`repro.dtypes` so that
# :mod:`repro.parallel` (which this module imports) can name them too.
__all__ = ["CSRAdjacency", "build_csr", "INDEX_DTYPE", "MAX_INDEX", "WIDE_DTYPE"]


@dataclass(frozen=True)
class CSRAdjacency:
    """Read-only CSR incidence structure of an undirected multigraph.

    Attributes:
        indptr: ``(n + 1,)`` int64 row pointers.
        neighbor: ``(2m,)`` int32 opposite endpoints.
        edge_id: ``(2m,)`` int32 undirected edge ids.
    """

    indptr: np.ndarray
    neighbor: np.ndarray
    edge_id: np.ndarray

    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m`` (half the incidence count)."""
        return len(self.neighbor) // 2

    def degrees(self) -> np.ndarray:
        """Per-node degree (parallel edges all counted)."""
        return np.diff(self.indptr)

    def row(self, node: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(neighbors, edge_ids)`` views for one node."""
        lo, hi = self.indptr[node], self.indptr[node + 1]
        return self.neighbor[lo:hi], self.edge_id[lo:hi]


def _csr_rows_shard(
    endpoint: np.ndarray,
    other: np.ndarray,
    incidence_eid: np.ndarray,
    lo: int,
    hi: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Sort the incidences of node range ``[lo, hi)`` (one shard).

    ``np.flatnonzero`` keeps the masked incidences in original order,
    so the stable argsort on the endpoint alone reproduces the global
    stable sort's tie-breaking within this range.

    The range mask is a full-array scan, so S shards do O(S·2m) boolean
    work on top of their own O((2m/S)·log) sorts — acceptable at the
    small shard counts the pools run (the compares vectorize at memory
    bandwidth and, on the thread pool, the scans themselves overlap),
    and it keeps every shard independent of a serial pre-bucketing
    pass.
    """
    sub = np.flatnonzero((endpoint >= lo) & (endpoint < hi))
    order = sub[np.argsort(endpoint[sub], kind="stable")]
    return other[order], incidence_eid[order]


def build_csr(
    num_nodes: int,
    edge_u: np.ndarray,
    edge_v: np.ndarray,
    parallel=None,
) -> CSRAdjacency:
    """Build a :class:`CSRAdjacency` from parallel edge-endpoint arrays.

    Args:
        num_nodes: Number of nodes ``n``.
        edge_u: ``(m,)`` integer tails.
        edge_v: ``(m,)`` integer heads.
        parallel: Optional :class:`~repro.parallel.config.ParallelConfig`
            (``None`` resolves to the ``REPRO_WORKERS`` process
            default). Sharded builds sort contiguous node ranges on the
            worker pool; output is bit-identical to the serial build.

    Returns:
        The CSR adjacency, rows sorted by edge id (= insertion order).
    """
    edge_u = np.asarray(edge_u, dtype=INDEX_DTYPE)
    edge_v = np.asarray(edge_v, dtype=INDEX_DTYPE)
    m = len(edge_u)
    # Interleave incidences in edge-id order ([u0, v0, u1, v1, ...]):
    # a single-key *stable* argsort on the endpoint then yields rows
    # sorted by (endpoint, edge id) — the same order the previous
    # two-key lexsort produced, at roughly half the sort cost (and a
    # node never carries two incidences of one edge: no self-loops).
    endpoint = np.empty(2 * m, dtype=INDEX_DTYPE)
    endpoint[0::2] = edge_u
    endpoint[1::2] = edge_v
    other = np.empty(2 * m, dtype=INDEX_DTYPE)
    other[0::2] = edge_v
    other[1::2] = edge_u
    incidence_eid = np.repeat(np.arange(m, dtype=INDEX_DTYPE), 2)
    counts = np.bincount(endpoint, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=WIDE_DTYPE)
    np.cumsum(counts, out=indptr[1:])

    config = resolve_config(parallel)
    neighbor: np.ndarray | None = None
    edge_id: np.ndarray | None = None
    if config.should_shard(num_nodes + 2 * m):
        plan = ShardPlan.balanced(counts, config.workers)
        if plan.num_shards > 1:
            parts = get_pool(config).map(
                _csr_rows_shard,
                [
                    (endpoint, other, incidence_eid, lo, hi)
                    for lo, hi in plan.ranges()
                ],
            )
            neighbor = np.concatenate([p[0] for p in parts])
            edge_id = np.concatenate([p[1] for p in parts])
    if neighbor is None or edge_id is None:
        order = np.argsort(endpoint, kind="stable")
        neighbor = other[order]
        edge_id = incidence_eid[order]
    for arr in (indptr, neighbor, edge_id):
        arr.setflags(write=False)
    return CSRAdjacency(indptr=indptr, neighbor=neighbor, edge_id=edge_id)
