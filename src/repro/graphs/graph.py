"""Core graph substrate: an undirected, weighted multigraph, array-native.

The whole library works on a single concrete representation:

* nodes are integers ``0 .. n-1``;
* edges live in growable parallel NumPy buffers (``edge_u``,
  ``edge_v``, ``capacity``) in insertion order, so an edge is referred
  to by its integer *edge id* everywhere (flows are vectors indexed by
  edge id, matching the paper's ``f ∈ R^E``); endpoints and edge ids
  are stored int32 (guarded at this boundary — see
  :data:`~repro.graphs.csr.MAX_INDEX`), halving index bandwidth in
  every kernel gather;
* parallel edges and general positive real capacities are allowed
  (Madry's construction and contractions naturally produce
  multigraphs);
* every edge has a fixed orientation ``u -> v`` (the paper fixes an
  arbitrary orientation to define signs of flow values).

The array substrate contract:

* ``capacities()`` / ``edge_index_arrays()`` return **cached,
  read-only** views of the live buffers — free to call in inner loops
  (the gradient descent calls them every step); ``set_capacity``
  writes through, structural mutation (``add_edge``) invalidates;
* ``csr()`` returns a lazily built, cached
  :class:`~repro.graphs.csr.CSRAdjacency` — ``indptr`` / ``neighbor``
  / ``edge_id`` arrays, rows in edge-insertion order — which is what
  the vectorized kernels in :mod:`repro.graphs.kernels` (BFS,
  components, contraction) and all hot call sites consume;
* ``neighbors()`` still serves ``(neighbor, edge_id)`` Python pairs
  for the remaining pointer-chasing code, materialized once from the
  CSR and cached alongside it.

Bulk constructions (``copy``, ``contract``, ``edge_subgraph``,
``from_edge_arrays``) are whole-array operations with no Python work
per edge.
"""

from __future__ import annotations

import weakref
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import DisconnectedGraphError, GraphError
from repro.graphs import kernels
from repro.graphs.csr import (
    CSRAdjacency,
    INDEX_DTYPE,
    MAX_INDEX,
    WIDE_DTYPE,
    build_csr,
)
from repro.graphs.journal import CapacityDelta, DeltaJournal
from repro.hotpath import hot_kernel
from repro.parallel.arena import tag_array_version

__all__ = ["Edge", "Graph"]

_INITIAL_BUFFER = 16

#: Below this many incidence entries (n + 2m) the cached-adjacency
#: Python traversals beat the whole-array kernels (NumPy's fixed
#: per-call cost exceeds the loop cost on tiny frontiers); above it the
#: frontier-at-a-time kernels win. Both paths are output-identical.
SMALL_GRAPH_LIMIT = 8192

#: Below this many incidence entries even element-wise array work
#: (contraction, batched LCA) loses to plain loops — the j-tree
#: recursion spends most of its calls on such tiny quotient graphs.
TINY_GRAPH_LIMIT = 512


@dataclass(frozen=True)
class Edge:
    """A single undirected edge with a fixed orientation ``u -> v``.

    Attributes:
        id: Integer edge id (index into the graph's edge arrays).
        u: Tail endpoint under the fixed orientation.
        v: Head endpoint under the fixed orientation.
        capacity: Positive capacity (the paper's ``cap(e)``).
    """

    id: int
    u: int
    v: int
    capacity: float

    def other(self, node: int) -> int:
        """Return the endpoint of this edge that is not ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise GraphError(f"node {node} is not an endpoint of edge {self.id}")


class Graph:
    """Undirected weighted multigraph on nodes ``0 .. n-1``.

    Args:
        num_nodes: Number of nodes.
        edges: Iterable of ``(u, v, capacity)`` triples. Self-loops are
            rejected; parallel edges are kept as distinct edges.

    Raises:
        GraphError: On out-of-range endpoints, self-loops, or
            non-positive capacities.
    """

    def __init__(
        self, num_nodes: int, edges: Iterable[tuple[int, int, float]] = ()
    ) -> None:
        if num_nodes <= 0:
            raise GraphError(f"graph must have at least one node, got {num_nodes}")
        if num_nodes > MAX_INDEX:
            raise GraphError(
                f"graph with {num_nodes} nodes exceeds the int32 index "
                f"substrate (max {MAX_INDEX})"
            )
        self._n = int(num_nodes)
        self._m = 0
        self._eu = np.empty(_INITIAL_BUFFER, dtype=INDEX_DTYPE)
        self._ev = np.empty(_INITIAL_BUFFER, dtype=INDEX_DTYPE)
        self._cap = np.empty(_INITIAL_BUFFER, dtype=float)
        self._version = 0
        # Weakrefs to every capacities() view ever handed out: views
        # from *earlier* invalidation epochs may still alias the live
        # buffer (no regrow in between), so a write-through must retag
        # all of them, not just the currently cached one.
        self._cap_view_refs: list[weakref.ref] = []
        self._journal = DeltaJournal()
        self._invalidate()
        triples = list(edges)
        if triples:
            arr = np.asarray(triples, dtype=float)
            self._append_bulk(
                arr[:, 0].astype(WIDE_DTYPE),
                arr[:, 1].astype(WIDE_DTYPE),
                arr[:, 2],
            )

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        """Drop every derived view after a structural mutation, and
        advance the cache-invalidation counter that version-keys any
        cross-call shared-memory exports of the cached views (see
        :mod:`repro.parallel.arena`). Structural mutations shift what
        edge ids mean, so the delta journal is re-based: capacity
        deltas never span a structural change."""
        self._version += 1
        self._journal.mark_structural(self._version)
        self._csr_cache: CSRAdjacency | None = None
        self._adj_cache: list[list[tuple[int, int]]] | None = None
        self._cap_view: np.ndarray | None = None
        self._uv_view: tuple[np.ndarray, np.ndarray] | None = None
        self._connected_cache: bool | None = None
        self._excess_plan: tuple[np.ndarray, ...] | None = None
        self._excess_batch_plans: dict[int, tuple[np.ndarray, ...]] = {}

    def _grow(self, extra: int) -> None:
        need = self._m + extra
        if need > MAX_INDEX:
            raise GraphError(
                f"graph with {need} edges exceeds the int32 index "
                f"substrate (max {MAX_INDEX})"
            )
        size = len(self._eu)
        if need <= size:
            return
        while size < need:
            size *= 2
        for name in ("_eu", "_ev", "_cap"):
            buf = getattr(self, name)
            grown = np.empty(size, dtype=buf.dtype)
            grown[: self._m] = buf[: self._m]
            setattr(self, name, grown)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add an edge ``u -> v`` and return its edge id."""
        u = int(u)
        v = int(v)
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise GraphError(
                f"edge ({u}, {v}) has an endpoint outside 0..{self._n - 1}"
            )
        if u == v:
            raise GraphError(f"self-loop at node {u} is not allowed")
        cap = float(capacity)
        if not cap > 0 or not np.isfinite(cap):
            raise GraphError(f"edge ({u}, {v}) has non-positive capacity {capacity}")
        self._grow(1)
        eid = self._m
        self._eu[eid] = u
        self._ev[eid] = v
        self._cap[eid] = cap
        self._m = eid + 1
        self._invalidate()
        return eid

    def _append_bulk(
        self, u: np.ndarray, v: np.ndarray, cap: np.ndarray
    ) -> None:
        """Append validated edge arrays in one shot (vectorized checks)."""
        cap = np.asarray(cap, dtype=float)
        bad = (u < 0) | (u >= self._n) | (v < 0) | (v >= self._n)
        if np.any(bad):
            i = int(np.argmax(bad))
            raise GraphError(
                f"edge ({u[i]}, {v[i]}) has an endpoint outside 0..{self._n - 1}"
            )
        loops = u == v
        if np.any(loops):
            raise GraphError(
                f"self-loop at node {u[int(np.argmax(loops))]} is not allowed"
            )
        bad_cap = ~(cap > 0) | ~np.isfinite(cap)
        if np.any(bad_cap):
            i = int(np.argmax(bad_cap))
            raise GraphError(
                f"edge ({u[i]}, {v[i]}) has non-positive capacity {cap[i]}"
            )
        self._adopt_arrays(u, v, cap)

    def _adopt_arrays(
        self, u: np.ndarray, v: np.ndarray, cap: np.ndarray
    ) -> None:
        """Append already-valid edge arrays (trusted internal fast path)."""
        k = len(u)
        self._grow(k)
        lo, hi = self._m, self._m + k
        self._eu[lo:hi] = u
        self._ev[lo:hi] = v
        self._cap[lo:hi] = cap
        self._m = hi
        self._invalidate()

    @classmethod
    def from_edge_arrays(
        cls,
        num_nodes: int,
        edge_u: Sequence[int],
        edge_v: Sequence[int],
        capacity: Sequence[float],
    ) -> "Graph":
        """Build a graph from parallel edge arrays."""
        if not (len(edge_u) == len(edge_v) == len(capacity)):
            raise GraphError("edge arrays must have equal length")
        graph = cls(num_nodes)
        if len(edge_u):
            graph._append_bulk(
                np.asarray(edge_u, dtype=WIDE_DTYPE),
                np.asarray(edge_v, dtype=WIDE_DTYPE),
                np.asarray(capacity, dtype=float),
            )
        return graph

    @classmethod
    def _from_trusted_arrays(
        cls, num_nodes: int, u: np.ndarray, v: np.ndarray, cap: np.ndarray
    ) -> "Graph":
        """Build from arrays known valid (slices of an existing graph)."""
        graph = cls(num_nodes)
        if len(u):
            graph._adopt_arrays(u, v, cap)
        return graph

    def copy(self) -> "Graph":
        """Return a deep copy (edge ids are preserved).

        The copy shares this graph's cached CSR and connectivity
        verdict when they exist: both depend only on the (identical)
        structure, the CSR arrays are immutable, and each graph
        invalidates only its own cache pointers on mutation.
        """
        m = self._m
        twin = Graph._from_trusted_arrays(
            self._n,
            self._eu[:m].copy(),
            self._ev[:m].copy(),
            self._cap[:m].copy(),
        )
        twin._csr_cache = self._csr_cache
        twin._connected_cache = self._connected_cache
        return twin

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges ``m`` (parallel edges counted separately)."""
        return self._m

    def nodes(self) -> range:
        """Iterate over node ids."""
        return range(self._n)

    def edge(self, eid: int) -> Edge:
        """Return the :class:`Edge` with the given id."""
        if not (0 <= eid < self._m):
            raise GraphError(f"edge id {eid} out of range")
        return Edge(
            eid, int(self._eu[eid]), int(self._ev[eid]), float(self._cap[eid])
        )

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in id order."""
        m = self._m
        eu = self._eu[:m].tolist()
        ev = self._ev[:m].tolist()
        cap = self._cap[:m].tolist()
        for eid in range(m):
            yield Edge(eid, eu[eid], ev[eid], cap[eid])

    def _edge_slot(self, eid: int) -> int:
        """Normalize an edge id (negatives count from the end) to its
        buffer slot — the buffers over-allocate, so Python-style
        negative indexing must be resolved against m, not the buffer."""
        slot = eid + self._m if eid < 0 else eid
        if not 0 <= slot < self._m:
            raise IndexError(f"edge id {eid} out of range")
        return slot

    def endpoints(self, eid: int) -> tuple[int, int]:
        """Return ``(u, v)`` for edge ``eid`` under the fixed orientation."""
        slot = self._edge_slot(eid)
        return int(self._eu[slot]), int(self._ev[slot])

    def capacity(self, eid: int) -> float:
        """Return the capacity of edge ``eid``."""
        return float(self._cap[self._edge_slot(eid)])

    def set_capacity(self, eid: int, capacity: float) -> None:
        """Overwrite the capacity of edge ``eid`` (cached capacity views
        see the new value; no cache rebuild needed).

        The write goes through the cached ``capacities()`` view without
        replacing the view object, so the data-version tag on that view
        must advance: a process pool that exported the view into shared
        memory re-exports it on the next ``map`` instead of serving the
        pre-write bytes.
        """
        cap = float(capacity)
        if not cap > 0 or not np.isfinite(cap):
            raise GraphError(f"capacity must be positive, got {capacity}")
        slot = self._edge_slot(eid)
        old = float(self._cap[slot])
        self._cap[slot] = cap
        self._record_capacity_delta(slot, old, cap)
        live = []
        for ref in self._cap_view_refs:
            view = ref()
            if view is not None:
                tag_array_version(view, self._version)
                live.append(ref)
        self._cap_view_refs = live

    def _record_capacity_delta(
        self, slot: int, old: float, new: float
    ) -> None:
        """Advance the epoch for one capacity write and journal it.

        The single sanctioned version bump for capacity-only mutations:
        the bump and the journal record are inseparable, so
        ``deltas_since`` can account for every version step in its
        window (repolint's epoch-discipline rule requires capacity
        writes to route through here or through ``_invalidate``).
        """
        self._version += 1
        self._journal.record(self._version, slot, old, new)

    def deltas_since(self, epoch: int) -> CapacityDelta | None:
        """The coalesced capacity-only delta from ``epoch`` to now.

        ``None`` means the journal cannot vouch for the interval — a
        structural mutation intervened, the bounded journal overflowed,
        or ``epoch`` is out of range — and the caller must fall back to
        full invalidation. An equal-epoch query returns an empty delta.
        """
        return self._journal.deltas_since(epoch, self._version)

    @property
    def journal_size(self) -> int:
        """Retained journal records (== ``_version`` delta since the
        journal's base when no overflow occurred)."""
        return self._journal.size

    @property
    def journal_overflowed(self) -> bool:
        """Whether the bounded journal has dropped records since the
        last structural mutation."""
        return self._journal.overflowed

    def csr(self) -> CSRAdjacency:
        """Return the cached CSR adjacency (built lazily, invalidated on
        structural mutation). Rows are in edge-insertion order."""
        if self._csr_cache is None:
            self._csr_cache = build_csr(
                self._n, self._eu[: self._m], self._ev[: self._m]
            )
        return self._csr_cache

    def neighbors(self, node: int) -> list[tuple[int, int]]:
        """Return the adjacency list of ``node`` as ``(neighbor, edge_id)``
        pairs, in edge-insertion order. Parallel edges appear once per
        edge."""
        return self.adjacency_lists()[node]

    def degree(self, node: int) -> int:
        """Return the degree of ``node`` (parallel edges all counted)."""
        csr = self.csr()
        return int(csr.indptr[node + 1] - csr.indptr[node])

    def capacities(self) -> np.ndarray:
        """Return the capacity vector as a float array of length m.

        The array is a cached **read-only view** of the live buffer:
        ``set_capacity`` writes through to it, ``add_edge`` invalidates
        it. Callers needing a private mutable copy must ``.copy()``.
        """
        if self._cap_view is None:
            view = self._cap[: self._m].view()
            view.setflags(write=False)
            tag_array_version(view, self._version)
            self._cap_view = view
            self._cap_view_refs = [
                ref for ref in self._cap_view_refs if ref() is not None
            ]
            self._cap_view_refs.append(weakref.ref(view))
        return self._cap_view

    def edge_index_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(tails, heads)`` integer arrays of length m (cached
        read-only views, invalidated on structural mutation)."""
        if self._uv_view is None:
            tails = self._eu[: self._m].view()
            heads = self._ev[: self._m].view()
            tails.setflags(write=False)
            heads.setflags(write=False)
            tag_array_version(tails, self._version)
            tag_array_version(heads, self._version)
            self._uv_view = (tails, heads)
        return self._uv_view

    def total_capacity(self) -> float:
        """Return the sum of all edge capacities."""
        return float(self._cap[: self._m].sum())

    # ------------------------------------------------------------------
    # Flow-operator views (the paper's B and C matrices, matrix-free)
    # ------------------------------------------------------------------
    def _scatter_plan(self) -> tuple[np.ndarray, ...]:
        """Precomputed (and cached) incidence-scatter plan for ``excess``:
        the fixed ``concat(heads, tails)`` bincount targets plus a
        signed-flow scratch buffer."""
        if self._excess_plan is None:
            tails, heads = self.edge_index_arrays()
            idx = np.concatenate(
                (heads.astype(WIDE_DTYPE), tails.astype(WIDE_DTYPE))
            )
            self._excess_plan = (idx, np.empty(2 * self._m))
        return self._excess_plan

    @hot_kernel
    def excess(self, flow: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Apply the node-edge incidence operator: return ``B f``.

        ``(B f)_v`` is the net flow *into* node ``v``: an edge
        ``u -> v`` carrying positive flow contributes ``+f_e`` at ``v``
        and ``-f_e`` at ``u`` (paper Section 2). Implemented as one
        ``np.bincount`` over the cached signed incidence targets —
        bincount accumulates strictly in input order, so the result is
        bit-identical to the legacy ``np.add.at``/``np.subtract.at``
        pair while avoiding ``ufunc.at``'s per-element dispatch. Safe
        to call every gradient step.
        """
        flow = np.asarray(flow, dtype=float)
        if flow.shape != (self._m,):
            raise GraphError(
                f"flow vector has shape {flow.shape}, expected ({self._m},)"
            )
        if self._m == 0:
            if out is None:
                return np.zeros(self._n)  # alloc-ok (empty-graph edge case)
            out[:] = 0.0
            return out
        idx, signed = self._scatter_plan()
        m = self._m
        signed[:m] = flow
        np.negative(flow, out=signed[m:])
        counts = np.bincount(idx, weights=signed, minlength=self._n)
        if out is None:
            return counts
        out[:] = counts
        return out

    def _scatter_plan_batch(self, num_queries: int) -> tuple[np.ndarray, ...]:
        """Cached q-major incidence-scatter plan for ``excess_batch``:
        the 1-D targets offset by ``q · n`` per query so one bincount
        scatters all ``Q`` flow rows, plus a ``(Q, 2m)`` signed-flow
        scratch plane. Keyed by Q; dropped on structural mutation."""
        plan = self._excess_batch_plans.get(num_queries)
        if plan is None:
            idx, _ = self._scatter_plan()
            offsets = np.arange(num_queries, dtype=WIDE_DTYPE) * self._n
            flat_idx = (idx[None, :] + offsets[:, None]).ravel()
            plan = (flat_idx, np.empty((num_queries, 2 * self._m)))
            self._excess_batch_plans[num_queries] = plan
        return plan

    @hot_kernel
    def excess_batch(
        self, flow_plane: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Apply the incidence operator to ``Q`` stacked flows at once.

        ``excess_batch(F)[q]`` is bit-identical to ``excess(F[q])``:
        the flat scatter targets are the 1-D targets offset by
        ``q · n`` in query-major order, so each output bin accumulates
        its contributions in exactly the order the 1-D bincount does —
        one ``np.bincount`` serves all queries.
        """
        flow_plane = np.asarray(flow_plane, dtype=float)
        if flow_plane.ndim != 2 or flow_plane.shape[1] != self._m:
            raise GraphError(
                f"flow plane has shape {flow_plane.shape}, "
                f"expected (Q, {self._m})"
            )
        num_queries = flow_plane.shape[0]
        if out is None:
            out = np.empty((num_queries, self._n))  # alloc-ok (unbuffered fallback)
        if self._m == 0 or num_queries == 0:
            out[:] = 0.0
            return out
        idx, signed = self._scatter_plan_batch(num_queries)
        m = self._m
        signed[:, :m] = flow_plane
        np.negative(flow_plane, out=signed[:, m:])
        counts = np.bincount(
            idx, weights=signed.ravel(), minlength=num_queries * self._n
        )
        out[:] = counts.reshape(num_queries, self._n)
        return out

    def congestion(self, flow: np.ndarray) -> np.ndarray:
        """Return per-edge congestion ``|C^{-1} f| = |f_e| / cap(e)``."""
        flow = np.asarray(flow, dtype=float)
        return np.abs(flow) / self.capacities()

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def is_small(self) -> bool:
        """Whether the adaptive traversals should take the Python path
        (part of the substrate contract: lsst/trees dispatch on this)."""
        return self._n + 2 * self._m < SMALL_GRAPH_LIMIT

    def is_tiny(self) -> bool:
        """Whether even element-wise array work should take Python paths
        (part of the substrate contract: contraction and batched-LCA
        call sites dispatch on this)."""
        return self._n + 2 * self._m < TINY_GRAPH_LIMIT

    def adjacency_lists(self) -> list[list[tuple[int, int]]]:
        """All adjacency lists (``(neighbor, edge_id)`` pairs per node),
        materialized once from the CSR and cached until the next
        structural mutation — the Python-loop counterpart of csr()."""
        if self._adj_cache is None:
            csr = self.csr()
            ptr = csr.indptr.tolist()
            nbr = csr.neighbor.tolist()
            eid = csr.edge_id.tolist()
            self._adj_cache = [
                list(zip(nbr[ptr[i] : ptr[i + 1]], eid[ptr[i] : ptr[i + 1]]))
                for i in range(self._n)
            ]
        return self._adj_cache

    def connected_components(self) -> list[list[int]]:
        """Return connected components as lists of nodes."""
        if not self.is_small():
            return kernels.connected_components(self.csr())
        adj = self.adjacency_lists()
        seen = [False] * self._n
        components: list[list[int]] = []
        for start in range(self._n):
            if seen[start]:
                continue
            component = [start]
            seen[start] = True
            queue = deque([start])
            while queue:
                node = queue.popleft()
                for neighbor, _ in adj[node]:
                    if not seen[neighbor]:
                        seen[neighbor] = True
                        component.append(neighbor)
                        queue.append(neighbor)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """Return True iff the graph is connected (single BFS; memoized
        until the next structural mutation)."""
        if self._connected_cache is not None:
            return self._connected_cache
        if not self.is_small():
            connected = bool(kernels.bfs_levels(self.csr(), 0).min() >= 0)
        else:
            adj = self.adjacency_lists()
            seen = [False] * self._n
            seen[0] = True
            count = 1
            queue = deque([0])
            while queue:
                node = queue.popleft()
                for neighbor, _ in adj[node]:
                    if not seen[neighbor]:
                        seen[neighbor] = True
                        count += 1
                        queue.append(neighbor)
            connected = count == self._n
        self._connected_cache = connected
        return connected

    def require_connected(self) -> None:
        """Raise :class:`DisconnectedGraphError` unless connected."""
        if not self.is_connected():
            raise DisconnectedGraphError(
                "operation requires a connected graph but the graph has "
                f"{len(self.connected_components())} components"
            )

    def bfs_distances(self, source: int) -> list[int]:
        """Return hop distances from ``source`` (-1 for unreachable)."""
        if not self.is_small():
            return kernels.bfs_levels(self.csr(), source).tolist()
        adj = self.adjacency_lists()
        dist = [-1] * self._n
        dist[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor, _ in adj[node]:
                if dist[neighbor] < 0:
                    dist[neighbor] = dist[node] + 1
                    queue.append(neighbor)
        return dist

    def diameter(self) -> int:
        """Return the exact hop diameter.

        Quadratic work (all-pairs lockstep BFS on large graphs, one
        BFS per source on small ones); intended for the test/benchmark
        graph sizes used in this library.
        """
        self.require_connected()
        if not self.is_small():
            # Lockstep BFS over source batches: O(batch · n) working
            # memory, never the full n×n distance matrix.
            csr = self.csr()
            batch = max(1, (1 << 24) // self._n)
            best = 0
            for start in range(0, self._n, batch):
                sources = np.arange(
                    start, min(start + batch, self._n), dtype=WIDE_DTYPE
                )
                best = max(
                    best,
                    int(kernels.multi_source_hop_distances(csr, sources).max()),
                )
            return best
        best = 0
        for source in range(self._n):
            best = max(best, max(self.bfs_distances(source)))
        return best

    def eccentricity(self, source: int) -> int:
        """Return the maximum hop distance from ``source``."""
        dist = self.bfs_distances(source)
        if min(dist) < 0:
            raise DisconnectedGraphError("eccentricity undefined: graph disconnected")
        return max(dist)

    # ------------------------------------------------------------------
    # Contraction (used by AKPW and the j-tree hierarchy)
    # ------------------------------------------------------------------
    def contract(
        self, labels: Sequence[int], keep_parallel: bool = True
    ) -> tuple["Graph", list[int]]:
        """Contract nodes by label, returning the quotient multigraph.

        Args:
            labels: ``labels[v]`` is the cluster label of node ``v``.
                Labels may be arbitrary integers; they are compacted to
                ``0 .. k-1`` in label-of-first-occurrence order.
            keep_parallel: If True, every original inter-cluster edge
                becomes its own edge of the quotient (a multigraph). If
                False, parallel edges are merged and capacities summed.

        Returns:
            ``(quotient, edge_origin)`` where ``edge_origin[j]`` is the
            original edge id that quotient edge ``j`` came from (for the
            merged case, a representative original id).

        The quotient comes with its derived caches pre-seeded: the
        scaled path emits the child CSR directly from the contraction
        pass (:func:`~repro.graphs.kernels.contract_csr`), the tiny
        path seeds the adjacency lists, and both inherit a known
        ``True`` connectivity verdict (contracting a connected graph
        cannot disconnect it). Every seeded cache is dropped by the
        next structural mutation, exactly like a lazily built one.
        """
        if len(labels) != self._n:
            raise GraphError("labels must have one entry per node")
        if self.is_tiny():
            return self._contract_tiny(labels, keep_parallel)
        node_map, k = kernels.compact_labels(labels)
        new_u, new_v, new_cap, origin = kernels.contract_edges(
            node_map,
            k,
            self._eu[: self._m],
            self._ev[: self._m],
            self._cap[: self._m],
            keep_parallel,
        )
        quotient = Graph._from_trusted_arrays(k, new_u, new_v, new_cap)
        quotient._csr_cache = kernels.contract_csr(k, new_u, new_v)
        self._seed_quotient_connectivity(quotient)
        return quotient, origin.tolist()

    def _seed_quotient_connectivity(self, quotient: "Graph") -> None:
        """Propagate a known-connected verdict to a contraction child
        (only ``True`` transfers: contracting cannot disconnect, but it
        can *connect* a disconnected graph by merging components)."""
        if self._connected_cache is True:
            quotient._connected_cache = True

    def _contract_tiny(
        self, labels: Sequence[int], keep_parallel: bool
    ) -> tuple["Graph", list[int]]:
        """Loop-based contraction (output-identical to the kernels)."""
        node_map = self._compact_tiny(labels)
        k = max(node_map) + 1
        m = self._m
        tails = self._eu[:m].tolist()
        heads = self._ev[:m].tolist()
        new_u: list[int] = []
        new_v: list[int] = []
        edge_origin: list[int] = []
        push_u, push_v, push_e = new_u.append, new_v.append, edge_origin.append
        if keep_parallel:
            # Build the quotient's adjacency lists in the same pass —
            # they match what its CSR would serve (edge-id order), so
            # the quotient never pays a CSR build for its traversals.
            adj: list[list[tuple[int, int]]] = [[] for _ in range(k)]
            j = 0
            for eid, (u, v) in enumerate(zip(tails, heads)):
                cu = node_map[u]
                cv = node_map[v]
                if cu != cv:
                    push_u(cu)
                    push_v(cv)
                    push_e(eid)
                    adj[cu].append((cv, j))
                    adj[cv].append((cu, j))
                    j += 1
            new_cap = self._cap[:m][np.asarray(edge_origin, dtype=WIDE_DTYPE)]
            quotient = Graph._from_trusted_arrays(
                k,
                np.asarray(new_u, dtype=INDEX_DTYPE),
                np.asarray(new_v, dtype=INDEX_DTYPE),
                new_cap,
            )
            quotient._adj_cache = adj
            self._seed_quotient_connectivity(quotient)
            return quotient, edge_origin
        else:
            caps = self._cap[:m].tolist()
            cap_list: list[float] = []
            merged: dict[tuple[int, int], int] = {}
            for eid, (u, v) in enumerate(zip(tails, heads)):
                cu = node_map[u]
                cv = node_map[v]
                if cu == cv:
                    continue
                key = (cu, cv) if cu < cv else (cv, cu)
                j = merged.get(key)
                if j is None:
                    merged[key] = len(cap_list)
                    push_u(key[0])
                    push_v(key[1])
                    cap_list.append(caps[eid])
                    push_e(eid)
                else:
                    cap_list[j] += caps[eid]
            new_cap = np.asarray(cap_list, dtype=float)
        quotient = Graph._from_trusted_arrays(
            k,
            np.asarray(new_u, dtype=INDEX_DTYPE),
            np.asarray(new_v, dtype=INDEX_DTYPE),
            new_cap,
        )
        self._seed_quotient_connectivity(quotient)
        return quotient, edge_origin

    def _compact_tiny(self, labels: Sequence[int]) -> list[int]:
        compact: dict[int, int] = {}
        node_map = []
        for label in labels:
            label = int(label)
            if label not in compact:
                compact[label] = len(compact)
            node_map.append(compact[label])
        return node_map

    def node_map_after_contract(self, labels: Sequence[int]) -> list[int]:
        """Return the compacted node map used by :meth:`contract`."""
        if len(labels) != self._n:
            raise GraphError("labels must have one entry per node")
        if self.is_tiny():
            return self._compact_tiny(labels)
        node_map, _ = kernels.compact_labels(labels)
        return node_map.tolist()

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------
    def edge_subgraph(self, edge_ids: Iterable[int]) -> "Graph":
        """Return a graph on the same node set containing only the given
        edges (edge ids are *not* preserved)."""
        ids = np.asarray(
            edge_ids if isinstance(edge_ids, np.ndarray) else list(edge_ids),
            dtype=WIDE_DTYPE,
        )
        m = self._m
        return Graph._from_trusted_arrays(
            self._n, self._eu[:m][ids], self._ev[:m][ids], self._cap[:m][ids]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._n}, m={self.num_edges})"
