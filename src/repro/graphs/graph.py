"""Core graph substrate: an undirected, weighted multigraph.

The whole library works on a single concrete representation:

* nodes are integers ``0 .. n-1``;
* edges are stored in insertion order in parallel arrays
  (``edge_u``, ``edge_v``, ``capacity``), so an edge is referred to by
  its integer *edge id* everywhere (flows are vectors indexed by edge
  id, matching the paper's ``f ∈ R^E``);
* parallel edges and general positive real capacities are allowed
  (Madry's construction and contractions naturally produce
  multigraphs);
* every edge has a fixed orientation ``u -> v`` (the paper fixes an
  arbitrary orientation to define signs of flow values).

The class is deliberately plain — adjacency is a list of
``(neighbor, edge_id)`` pairs — because the algorithms in this library
walk adjacency lists far more than they do linear algebra. NumPy views
of the parallel arrays are exposed for the gradient-descent core.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import DisconnectedGraphError, GraphError

__all__ = ["Edge", "Graph"]


@dataclass(frozen=True)
class Edge:
    """A single undirected edge with a fixed orientation ``u -> v``.

    Attributes:
        id: Integer edge id (index into the graph's edge arrays).
        u: Tail endpoint under the fixed orientation.
        v: Head endpoint under the fixed orientation.
        capacity: Positive capacity (the paper's ``cap(e)``).
    """

    id: int
    u: int
    v: int
    capacity: float

    def other(self, node: int) -> int:
        """Return the endpoint of this edge that is not ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise GraphError(f"node {node} is not an endpoint of edge {self.id}")


class Graph:
    """Undirected weighted multigraph on nodes ``0 .. n-1``.

    Args:
        num_nodes: Number of nodes.
        edges: Iterable of ``(u, v, capacity)`` triples. Self-loops are
            rejected; parallel edges are kept as distinct edges.

    Raises:
        GraphError: On out-of-range endpoints, self-loops, or
            non-positive capacities.
    """

    def __init__(
        self, num_nodes: int, edges: Iterable[tuple[int, int, float]] = ()
    ) -> None:
        if num_nodes <= 0:
            raise GraphError(f"graph must have at least one node, got {num_nodes}")
        self._n = int(num_nodes)
        self._edge_u: list[int] = []
        self._edge_v: list[int] = []
        self._capacity: list[float] = []
        self._adj: list[list[tuple[int, int]]] = [[] for _ in range(self._n)]
        for u, v, cap in edges:
            self.add_edge(u, v, cap)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add an edge ``u -> v`` and return its edge id."""
        u = int(u)
        v = int(v)
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise GraphError(
                f"edge ({u}, {v}) has an endpoint outside 0..{self._n - 1}"
            )
        if u == v:
            raise GraphError(f"self-loop at node {u} is not allowed")
        cap = float(capacity)
        if not cap > 0 or not np.isfinite(cap):
            raise GraphError(f"edge ({u}, {v}) has non-positive capacity {capacity}")
        eid = len(self._edge_u)
        self._edge_u.append(u)
        self._edge_v.append(v)
        self._capacity.append(cap)
        self._adj[u].append((v, eid))
        self._adj[v].append((u, eid))
        return eid

    @classmethod
    def from_edge_arrays(
        cls,
        num_nodes: int,
        edge_u: Sequence[int],
        edge_v: Sequence[int],
        capacity: Sequence[float],
    ) -> "Graph":
        """Build a graph from parallel edge arrays."""
        if not (len(edge_u) == len(edge_v) == len(capacity)):
            raise GraphError("edge arrays must have equal length")
        return cls(num_nodes, zip(edge_u, edge_v, capacity))

    def copy(self) -> "Graph":
        """Return a deep copy (edge ids are preserved)."""
        return Graph.from_edge_arrays(
            self._n, self._edge_u, self._edge_v, self._capacity
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges ``m`` (parallel edges counted separately)."""
        return len(self._edge_u)

    def nodes(self) -> range:
        """Iterate over node ids."""
        return range(self._n)

    def edge(self, eid: int) -> Edge:
        """Return the :class:`Edge` with the given id."""
        if not (0 <= eid < self.num_edges):
            raise GraphError(f"edge id {eid} out of range")
        return Edge(eid, self._edge_u[eid], self._edge_v[eid], self._capacity[eid])

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges in id order."""
        for eid in range(self.num_edges):
            yield self.edge(eid)

    def endpoints(self, eid: int) -> tuple[int, int]:
        """Return ``(u, v)`` for edge ``eid`` under the fixed orientation."""
        return self._edge_u[eid], self._edge_v[eid]

    def capacity(self, eid: int) -> float:
        """Return the capacity of edge ``eid``."""
        return self._capacity[eid]

    def set_capacity(self, eid: int, capacity: float) -> None:
        """Overwrite the capacity of edge ``eid``."""
        cap = float(capacity)
        if not cap > 0 or not np.isfinite(cap):
            raise GraphError(f"capacity must be positive, got {capacity}")
        self._capacity[eid] = cap

    def neighbors(self, node: int) -> list[tuple[int, int]]:
        """Return the adjacency list of ``node`` as ``(neighbor, edge_id)``
        pairs, in edge-insertion order. Parallel edges appear once per
        edge."""
        return self._adj[node]

    def degree(self, node: int) -> int:
        """Return the degree of ``node`` (parallel edges all counted)."""
        return len(self._adj[node])

    def capacities(self) -> np.ndarray:
        """Return the capacity vector as a float array of length m."""
        return np.asarray(self._capacity, dtype=float)

    def edge_index_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(tails, heads)`` integer arrays of length m."""
        return (
            np.asarray(self._edge_u, dtype=np.int64),
            np.asarray(self._edge_v, dtype=np.int64),
        )

    def total_capacity(self) -> float:
        """Return the sum of all edge capacities."""
        return float(sum(self._capacity))

    # ------------------------------------------------------------------
    # Flow-operator views (the paper's B and C matrices, matrix-free)
    # ------------------------------------------------------------------
    def excess(self, flow: np.ndarray) -> np.ndarray:
        """Apply the node-edge incidence operator: return ``B f``.

        ``(B f)_v`` is the net flow *into* node ``v``: an edge
        ``u -> v`` carrying positive flow contributes ``+f_e`` at ``v``
        and ``-f_e`` at ``u`` (paper Section 2).
        """
        flow = np.asarray(flow, dtype=float)
        if flow.shape != (self.num_edges,):
            raise GraphError(
                f"flow vector has shape {flow.shape}, expected ({self.num_edges},)"
            )
        excess = np.zeros(self._n)
        tails, heads = self.edge_index_arrays()
        np.add.at(excess, heads, flow)
        np.subtract.at(excess, tails, flow)
        return excess

    def congestion(self, flow: np.ndarray) -> np.ndarray:
        """Return per-edge congestion ``|C^{-1} f| = |f_e| / cap(e)``."""
        flow = np.asarray(flow, dtype=float)
        return np.abs(flow) / self.capacities()

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def connected_components(self) -> list[list[int]]:
        """Return connected components as lists of nodes."""
        seen = [False] * self._n
        components: list[list[int]] = []
        for start in range(self._n):
            if seen[start]:
                continue
            component = [start]
            seen[start] = True
            queue = deque([start])
            while queue:
                node = queue.popleft()
                for neighbor, _ in self._adj[node]:
                    if not seen[neighbor]:
                        seen[neighbor] = True
                        component.append(neighbor)
                        queue.append(neighbor)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """Return True iff the graph is connected."""
        return len(self.connected_components()) == 1

    def require_connected(self) -> None:
        """Raise :class:`DisconnectedGraphError` unless connected."""
        if not self.is_connected():
            raise DisconnectedGraphError(
                "operation requires a connected graph but the graph has "
                f"{len(self.connected_components())} components"
            )

    def bfs_distances(self, source: int) -> list[int]:
        """Return hop distances from ``source`` (-1 for unreachable)."""
        dist = [-1] * self._n
        dist[source] = 0
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor, _ in self._adj[node]:
                if dist[neighbor] < 0:
                    dist[neighbor] = dist[node] + 1
                    queue.append(neighbor)
        return dist

    def diameter(self) -> int:
        """Return the exact hop diameter (BFS from every node).

        Quadratic; intended for the test/benchmark graph sizes used in
        this library.
        """
        self.require_connected()
        best = 0
        for source in range(self._n):
            best = max(best, max(self.bfs_distances(source)))
        return best

    def eccentricity(self, source: int) -> int:
        """Return the maximum hop distance from ``source``."""
        dist = self.bfs_distances(source)
        if min(dist) < 0:
            raise DisconnectedGraphError("eccentricity undefined: graph disconnected")
        return max(dist)

    # ------------------------------------------------------------------
    # Contraction (used by AKPW and the j-tree hierarchy)
    # ------------------------------------------------------------------
    def contract(
        self, labels: Sequence[int], keep_parallel: bool = True
    ) -> tuple["Graph", list[int]]:
        """Contract nodes by label, returning the quotient multigraph.

        Args:
            labels: ``labels[v]`` is the cluster label of node ``v``.
                Labels may be arbitrary integers; they are compacted to
                ``0 .. k-1`` in label-of-first-occurrence order.
            keep_parallel: If True, every original inter-cluster edge
                becomes its own edge of the quotient (a multigraph). If
                False, parallel edges are merged and capacities summed.

        Returns:
            ``(quotient, edge_origin)`` where ``edge_origin[j]`` is the
            original edge id that quotient edge ``j`` came from (for the
            merged case, a representative original id).
        """
        if len(labels) != self._n:
            raise GraphError("labels must have one entry per node")
        compact: dict[int, int] = {}
        node_map = []
        for v in range(self._n):
            label = labels[v]
            if label not in compact:
                compact[label] = len(compact)
            node_map.append(compact[label])
        k = len(compact)
        quotient = Graph(k)
        edge_origin: list[int] = []
        if keep_parallel:
            for eid in range(self.num_edges):
                cu = node_map[self._edge_u[eid]]
                cv = node_map[self._edge_v[eid]]
                if cu != cv:
                    quotient.add_edge(cu, cv, self._capacity[eid])
                    edge_origin.append(eid)
        else:
            merged: dict[tuple[int, int], int] = {}
            for eid in range(self.num_edges):
                cu = node_map[self._edge_u[eid]]
                cv = node_map[self._edge_v[eid]]
                if cu == cv:
                    continue
                key = (min(cu, cv), max(cu, cv))
                if key in merged:
                    j = merged[key]
                    quotient.set_capacity(
                        j, quotient.capacity(j) + self._capacity[eid]
                    )
                else:
                    j = quotient.add_edge(key[0], key[1], self._capacity[eid])
                    merged[key] = j
                    edge_origin.append(eid)
        return quotient, edge_origin

    def node_map_after_contract(self, labels: Sequence[int]) -> list[int]:
        """Return the compacted node map used by :meth:`contract`."""
        compact: dict[int, int] = {}
        node_map = []
        for v in range(self._n):
            label = labels[v]
            if label not in compact:
                compact[label] = len(compact)
            node_map.append(compact[label])
        return node_map

    # ------------------------------------------------------------------
    # Subgraphs
    # ------------------------------------------------------------------
    def edge_subgraph(self, edge_ids: Iterable[int]) -> "Graph":
        """Return a graph on the same node set containing only the given
        edges (edge ids are *not* preserved)."""
        sub = Graph(self._n)
        for eid in edge_ids:
            u, v = self.endpoints(eid)
            sub.add_edge(u, v, self._capacity[eid])
        return sub

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(n={self._n}, m={self.num_edges})"
