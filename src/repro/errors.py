"""Exception hierarchy for the repro package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or invalid graph queries."""


class DisconnectedGraphError(GraphError):
    """Raised when an operation requires a connected graph but the input
    graph is disconnected."""


class InvalidDemandError(ReproError):
    """Raised when a demand vector is malformed (wrong length, does not
    sum to zero, or has demands on missing nodes)."""


class InvalidFlowError(ReproError):
    """Raised when a flow vector violates capacity or conservation
    constraints beyond the permitted tolerance."""


class CongestModelError(ReproError):
    """Raised for violations of the CONGEST model's rules, e.g. a node
    attempting to send a message exceeding the per-edge bit budget."""


class MessageTooLargeError(CongestModelError):
    """Raised when a single message exceeds the per-round per-edge
    bandwidth budget of the CONGEST model."""


class RoundLimitExceededError(CongestModelError):
    """Raised when a distributed algorithm fails to terminate within the
    round budget given to the simulator."""


class ConvergenceError(ReproError):
    """Raised when an iterative method (gradient descent, multiplicative
    weights) fails to reach its termination criterion within its
    iteration budget."""


class TreeError(ReproError):
    """Raised for malformed rooted trees (cycles, orphan nodes, invalid
    parent pointers)."""
