"""Exception hierarchy for the repro package.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or invalid graph queries."""


class DisconnectedGraphError(GraphError):
    """Raised when an operation requires a connected graph but the input
    graph is disconnected."""


class InvalidDemandError(ReproError):
    """Raised when a demand vector is malformed (wrong length, does not
    sum to zero, or has demands on missing nodes)."""


class InvalidFlowError(ReproError):
    """Raised when a flow vector violates capacity or conservation
    constraints beyond the permitted tolerance."""


class CongestModelError(ReproError):
    """Raised for violations of the CONGEST model's rules, e.g. a node
    attempting to send a message exceeding the per-edge bit budget."""


class MessageTooLargeError(CongestModelError):
    """Raised when a single message exceeds the per-round per-edge
    bandwidth budget of the CONGEST model."""


class RoundLimitExceededError(CongestModelError):
    """Raised when a distributed algorithm fails to terminate within the
    round budget given to the simulator."""


class ConvergenceError(ReproError):
    """Raised when an iterative method (gradient descent, multiplicative
    weights) fails to reach its termination criterion within its
    iteration budget."""


class TreeError(ReproError):
    """Raised for malformed rooted trees (cycles, orphan nodes, invalid
    parent pointers)."""


class ArenaError(ReproError):
    """Raised when the shared-memory arena cannot honour an export even
    after draining every evictable segment (e.g. ENOSPC on /dev/shm).

    The message names the requested size, the configured byte budget,
    and the live (non-evictable) working set so the failure is
    actionable without a debugger; the original ``OSError`` rides along
    as ``__cause__``."""


class PoolFailureError(ReproError):
    """Raised when a sharded map cannot be completed despite supervised
    recovery: the retry budget is exhausted, or the failure mode is not
    safely retryable (a timed-out thread shard may still be running and
    would race a re-execution on shared scratch).

    The underlying worker exception — or the timeout — is chained as
    ``__cause__``."""


class ServingError(ReproError):
    """Raised by :class:`repro.serve.FlowServer` when a request cannot
    be served: a poisoned demand column, or pool loss that persists
    through every circuit-breaker degradation step.

    Error isolation contract: in batched routing a ``ServingError``
    scopes to the one demand column that failed (its cause chained as
    ``__cause__``), never to the whole miss batch."""


class DeadlineExceededError(ServingError):
    """Raised when a :class:`repro.serve.FlowServer` request exceeds its
    configured per-request deadline.  Checked cooperatively at chunk
    boundaries, so an in-flight solve completes before the deadline is
    observed."""


class FaultSpecError(ReproError):
    """Raised for a malformed ``REPRO_FAULTS`` spec or an unknown fault
    site/kind handed to :class:`repro.faults.FaultSpec`."""


class ScenarioError(ReproError):
    """Raised for a malformed scenario specification handed to
    :mod:`repro.scenarios` — an unknown topology/demand/failure/backend
    name, an incompatible axis combination requested explicitly (e.g.
    an adversarial-cut demand on a topology with no planted cut), or a
    scenario whose parameters cannot produce a runnable instance."""


class InvariantViolation(ScenarioError):
    """Raised when a scenario run violates one of its correctness
    invariants: routed flow value outside the solver's certified bound
    versus exact Dinic, congestion outside the approximator guarantee,
    demand conservation failure, a planted bottleneck the approximator
    failed to detect, or cross-backend results that are not
    bit-identical.

    The message names the scenario, the invariant, and the measured
    versus permitted quantities — a violation is a *library bug* (or a
    deliberately broken component under mutation testing), never an
    expected data condition."""
