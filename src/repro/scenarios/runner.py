"""Scenario runner: execute a matrix, assert invariants, record perf.

``run_matrix`` groups scenarios by everything-but-backend so a group
shares one topology build, one failure application, one exact Dinic
solve, and one congestion approximator; then every backend in the
group routes the identical demand plane and the flows are compared
bit-for-bit. Invariants (:mod:`repro.scenarios.invariants`) are
asserted on the serial flows; perf is recorded per scenario (one
record per Topology × Demand × Failure × Backend point).

The approximator is built through an injectable ``build_approximator``
hook so the suite's mutation test can hand the runner a deliberately
broken R and prove the invariants catch it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.almost_route import RouteWorkspace
from repro.core.approximator import (
    TreeCongestionApproximator,
    build_congestion_approximator,
)
from repro.core.maxflow import ApproxFlow, max_flow, min_congestion_flow
from repro.errors import ScenarioError
from repro.flow.dinic import dinic_max_flow
from repro.graphs.graph import Graph
from repro.graphs.journal import rescale_flow
from repro.scenarios import demand as demand_models
from repro.scenarios import invariants
from repro.scenarios.demand import generate_demands
from repro.scenarios.failures import apply_failure
from repro.scenarios.spec import (
    FailureReport,
    Scenario,
    TopologyInstance,
    backend_config,
    resolve_demand,
    resolve_failure,
    resolve_topology,
    scenario_seed,
)
from repro.util.rng import as_generator
from repro.util.validation import check_demand_batch

__all__ = [
    "ApproximatorFactory",
    "MatrixResult",
    "ScenarioRecord",
    "default_approximator",
    "run_matrix",
]

#: Builds the congestion approximator for a (graph, seed) pair. The
#: runner's injection point for the mutation test.
ApproximatorFactory = Callable[[Graph, int], TreeCongestionApproximator]

#: Warm re-route stage: capacity multiplier and fraction of edges the
#: mid-run degradation touches before the warm-seeded re-route.
WARM_DEGRADE_FACTOR = 0.5
WARM_FRACTION = 0.05


def default_approximator(
    graph: Graph, seed: int
) -> TreeCongestionApproximator:
    """The production approximator under a scenario-derived seed."""
    return build_congestion_approximator(graph, rng=seed)


@dataclass(frozen=True)
class ScenarioRecord:
    """Outcome of one scenario (one backend point of a group).

    ``route_seconds`` is the wall time of routing the full demand plane
    on this backend; ``maxflow_value`` / ``exact_value`` /
    ``congestion`` / ``lower_bound`` are shared per group (they are
    computed once, serially). ``invariants_checked`` counts the
    invariant assertions that guarded this record.
    """

    scenario: Scenario
    num_nodes: int
    num_edges: int
    failed_edges: int
    version_delta: int
    exact_value: float
    maxflow_value: float
    certified_upper_bound: float
    alpha: float
    congestion: float
    lower_bound: float
    iterations: int
    route_seconds: float
    invariants_checked: int


@dataclass
class MatrixResult:
    """All records of a matrix run plus run-level accounting."""

    records: list[ScenarioRecord] = field(default_factory=list)
    groups: int = 0
    total_seconds: float = 0.0

    def by_name(self) -> dict[str, ScenarioRecord]:
        return {record.scenario.name: record for record in self.records}


def _group_scenarios(
    scenarios: Sequence[Scenario],
) -> list[list[Scenario]]:
    """Group by everything-but-backend, preserving matrix order, and
    reject duplicate backends within a group."""
    groups: dict[tuple[str, str, str, float, int, int], list[Scenario]] = {}
    for scenario in scenarios:
        groups.setdefault(scenario.group_key, []).append(scenario)
    for members in groups.values():
        backends = [member.backend for member in members]
        if len(set(backends)) != len(backends):
            raise ScenarioError(
                f"duplicate backend in scenario group "
                f"{members[0].group_key}: {backends}"
            )
    return list(groups.values())


def _route_plane(
    graph: Graph,
    plane: np.ndarray,
    epsilon: float,
    approximator: TreeCongestionApproximator,
    backend: str,
    workers: int,
    workspace: RouteWorkspace,
) -> tuple[list[ApproxFlow], float]:
    """Route every demand of the plane on one backend; returns the
    per-query results and the wall time of the sweep."""
    config = backend_config(backend, workers=workers)
    parallel = None if backend == "serial" else config
    results: list[ApproxFlow] = []
    start = time.perf_counter()
    for row in plane:
        results.append(
            min_congestion_flow(
                graph,
                row,
                epsilon=epsilon,
                approximator=approximator,
                workspace=workspace,
                parallel=parallel,
            )
        )
    return results, time.perf_counter() - start


def _warm_reroute_stage(
    head: Scenario,
    graph: Graph,
    demand: np.ndarray,
    approximator: TreeCongestionApproximator,
    workspace: RouteWorkspace,
    previous: ApproxFlow,
) -> int:
    """Route → degrade → re-route warm (the dynamic-graph stage).

    After the group's routing is done, degrade a deterministic ~5% of
    edges through ``set_capacity``, read the capacity delta back from
    the graph's journal, refresh the approximator in place (resampling
    journal-intersecting trees), and re-route the first demand twice:
    seeded with the previous flow rescaled to the new capacities, and
    cold. Asserts epoch accounting for the stage's own writes, exact
    conservation of the warm flow, and warm/cold agreement to the
    guarantee bound. Returns the number of invariant checks performed.

    Runs last in the group on purpose — it mutates the shared graph,
    so every backend comparison has already been recorded.
    """
    epoch = graph._version
    rng = as_generator(scenario_seed(head.seed, "warm-reroute", head.topology))
    count = max(1, int(graph.num_edges * WARM_FRACTION))
    edges = np.sort(rng.choice(graph.num_edges, size=count, replace=False))
    for eid in edges.tolist():
        graph.set_capacity(
            int(eid), graph.capacity(int(eid)) * WARM_DEGRADE_FACTOR
        )
    invariants.check_epoch_accounting(
        f"{head.name}#warm",
        FailureReport(
            name="warm-degrade",
            edge_ids=edges,
            version_delta=graph._version - epoch,
        ),
    )
    delta = graph.deltas_since(epoch)
    if delta is None:
        raise ScenarioError(
            f"scenario {head.name!r}: journal lost a capacity-only "
            f"delta of {count} edges (overflowed="
            f"{graph.journal_overflowed})"
        )
    approximator.refresh_capacities(
        delta.edge_ids,
        rng=as_generator(
            scenario_seed(head.seed, "warm-resample", head.topology)
        ),
    )
    warm = min_congestion_flow(
        graph,
        demand,
        epsilon=head.epsilon,
        approximator=approximator,
        workspace=workspace,
        initial_flow=rescale_flow(previous.flow, delta),
    )
    cold = min_congestion_flow(
        graph,
        demand,
        epsilon=head.epsilon,
        approximator=approximator,
        workspace=workspace,
    )
    label = f"{head.name}#warm"
    invariants.check_conservation(label, graph, warm)
    invariants.check_warm_agreement(
        label, warm, cold, approximator, head.epsilon
    )
    return 3


def _run_group(
    members: Sequence[Scenario],
    build_approximator: ApproximatorFactory,
    workers: int,
) -> list[ScenarioRecord]:
    head = members[0]
    topology_spec = resolve_topology(head.topology)
    demand_spec = resolve_demand(head.demand)
    failure_spec = resolve_failure(head.failure)
    if demand_spec.requires_planted:
        probe = topology_spec.build(head.seed)
        if probe.planted is None:
            raise ScenarioError(
                f"scenario {head.name!r}: demand model "
                f"{demand_spec.name!r} requires a planted-cut topology"
            )
        instance = probe
    else:
        instance = topology_spec.build(head.seed)

    # Failure plane: mutate through set_capacity and pin the epoch
    # accounting before anything downstream consumes the capacities.
    report = apply_failure(instance, failure_spec, head.seed)
    invariants.check_epoch_accounting(head.name, report)
    graph = instance.graph

    # Exact oracle and s-t invariants (serial, once per group).
    source, sink = instance.source_sink()
    exact = dinic_max_flow(graph, source, sink)
    approximator = build_approximator(
        graph, scenario_seed(head.seed, "approximator", head.topology)
    )
    workspace = RouteWorkspace(graph, approximator)
    approx_result = max_flow(
        graph,
        source,
        sink,
        epsilon=head.epsilon,
        approximator=approximator,
        workspace=workspace,
    )
    invariants.check_maxflow_vs_exact(head.name, approx_result, exact.value)

    # Demand plane, validated once and shared by every backend.
    plane = generate_demands(
        instance, demand_spec, head.num_queries, head.seed
    )
    plane = check_demand_batch(graph, plane)

    serial_results, serial_seconds = _route_plane(
        graph, plane, head.epsilon, approximator, "serial", workers, workspace
    )
    checked = 2  # epoch accounting + max-flow vs exact
    for query, result in enumerate(serial_results):
        label = f"{head.name}#q{query}"
        invariants.check_conservation(label, graph, result)
        invariants.check_congestion_soundness(label, result)
        invariants.check_congestion_guarantee(
            label, result, approximator, head.epsilon
        )
        checked += 3
        if demand_spec.requires_planted:
            invariants.check_planted_detection(
                label, result, approximator, demand_models.SATURATION
            )
            checked += 1

    backend_rows: list[tuple[Scenario, float, int]] = []
    for scenario in members:
        group_checked = checked
        if scenario.backend == "serial":
            seconds = serial_seconds
        else:
            backend_results, seconds = _route_plane(
                graph,
                plane,
                scenario.epsilon,
                approximator,
                scenario.backend,
                workers,
                workspace,
            )
            for query, result in enumerate(backend_results):
                invariants.check_backend_identity(
                    f"{scenario.name}#q{query}",
                    scenario.backend,
                    "serial",
                    serial_results[query].flow,
                    result.flow,
                )
                group_checked += 1
        backend_rows.append((scenario, seconds, group_checked))

    # The warm re-route stage mutates the graph, so it runs strictly
    # after every backend has routed the (pre-stage) plane.
    warm_checked = _warm_reroute_stage(
        head, graph, plane[0], approximator, workspace, serial_results[0]
    )

    records: list[ScenarioRecord] = []
    for scenario, seconds, group_checked in backend_rows:
        worst = max(result.congestion for result in serial_results)
        bound = max(result.lower_bound for result in serial_results)
        records.append(
            ScenarioRecord(
                scenario=scenario,
                num_nodes=graph.num_nodes,
                num_edges=graph.num_edges,
                failed_edges=int(report.edge_ids.shape[0]),
                version_delta=report.version_delta,
                exact_value=exact.value,
                maxflow_value=approx_result.value,
                certified_upper_bound=approx_result.certified_upper_bound,
                alpha=approximator.alpha,
                congestion=worst,
                lower_bound=bound,
                iterations=sum(r.iterations for r in serial_results),
                route_seconds=seconds,
                invariants_checked=group_checked + warm_checked,
            )
        )
    return records


def run_matrix(
    scenarios: Iterable[Scenario],
    build_approximator: ApproximatorFactory | None = None,
    workers: int = 2,
    progress: Callable[[str], None] | None = None,
) -> MatrixResult:
    """Run a scenario matrix, asserting every invariant.

    Args:
        scenarios: The matrix (e.g. from ``build_matrix`` or the
            corpus); scenarios sharing everything but the backend are
            executed as one group.
        build_approximator: Approximator factory override (the mutation
            test injects a sabotaged one; default is production).
        workers: Worker count for the thread/process backends.
        progress: Optional callback invoked with each group's name.

    Returns:
        A :class:`MatrixResult` with one record per scenario.

    Raises:
        InvariantViolation: The first invariant any scenario breaks.
        ScenarioError: Malformed matrix (unknown axis names, duplicate
            backends in a group, incompatible demand/topology pair).
    """
    factory = build_approximator or default_approximator
    result = MatrixResult()
    start = time.perf_counter()
    for members in _group_scenarios(list(scenarios)):
        if progress is not None:
            head = members[0]
            progress(
                f"{head.topology} x {head.demand} x {head.failure} "
                f"({len(members)} backends)"
            )
        result.records.extend(_run_group(members, factory, workers))
        result.groups += 1
    result.total_seconds = time.perf_counter() - start
    return result
