"""Per-scenario correctness invariants.

Every scenario run asserts these — perf numbers are recorded only for
runs that pass. Each check raises :class:`~repro.errors
.InvariantViolation` naming the scenario, the invariant, and the
measured versus permitted quantities, so a red CI line is directly
actionable.

The invariants and why they hold:

* **conservation** — ``min_congestion_flow`` ends with an exactly
  conserving spanning-tree fix-up, so its flow must route the demand
  to within float tolerance (delegates to ``check_flow_conservation``).
* **epoch accounting** — a failure model touches k edges exclusively
  through ``set_capacity``, which bumps ``_version`` once per write;
  the report's delta must equal k.
* **congestion soundness** — every row of R is a genuine cut of G, so
  ``‖Rb‖∞ ≤ opt(b) ≤ congestion`` unconditionally. A broken
  approximator that inflates its rows (the suite's mutation test
  multiplies ``row_inv_capacity`` by 100) reports a lower bound above
  the achieved congestion and trips this deterministically.
* **congestion guarantee** — the descent promises
  ``congestion ≤ (1+ε)·opt ≤ (1+ε)·α·‖Rb‖∞``; GUARANTEE_SLACK absorbs
  the residual-round fix-up's additive mass.
* **max-flow vs Dinic** — the routed s-t value can never exceed the
  exact optimum (feasibility), the certified upper bound derived from
  the cut rows must dominate the optimum (it is a true cut bound), and
  the achieved value must be within the solver's certified ratio of
  optimal.
* **planted detection** — the adversarial demand pushes
  ``SATURATION ×`` the planted cut's capacity across the bridge, so
  opt ≥ SATURATION and the approximator must report
  ``lower_bound ≥ SATURATION / α``.
* **backend identity** — sharded R products are bit-identical to
  serial by contract, so flows from different backends must match to
  the last bit (exact array equality, no tolerance).
* **warm agreement** — a warm-started re-route (seeded with the
  previous epoch's flow rescaled to the new capacities) answers the
  same optimization problem as a cold one, so both must satisfy the
  identical ``(1+ε)·α`` guarantee against the shared lower bound, and
  their lower bounds must match exactly (same R, same demand). The
  seed changes the descent trajectory, never the contract.
"""

from __future__ import annotations

import numpy as np

from repro.core.approximator import TreeCongestionApproximator
from repro.core.maxflow import ApproxFlow, ApproxMaxFlow
from repro.errors import InvalidFlowError, InvariantViolation
from repro.graphs.graph import Graph
from repro.scenarios.spec import FailureReport
from repro.util.validation import check_flow_conservation

__all__ = [
    "GUARANTEE_SLACK",
    "check_backend_identity",
    "check_congestion_guarantee",
    "check_congestion_soundness",
    "check_conservation",
    "check_epoch_accounting",
    "check_maxflow_vs_exact",
    "check_planted_detection",
    "check_warm_agreement",
]

#: Multiplicative slack on the (1+ε)·α guarantee. The bound is on the
#: optimum the descent converges toward; the residual fix-up routes the
#: leftover ℓ1 mass over a spanning tree, which can add a small
#: constant factor on adversarial instances.
GUARANTEE_SLACK = 2.0

#: Relative float tolerance for comparisons of computed quantities.
REL_TOL = 1e-6


def check_conservation(
    scenario: str, graph: Graph, result: ApproxFlow
) -> None:
    """The routed flow conserves its demand exactly (float tol)."""
    try:
        check_flow_conservation(graph, result.flow, result.demand)
    except InvalidFlowError as exc:
        raise InvariantViolation(
            f"[{scenario}] conservation: routed flow does not conserve "
            f"its demand: {exc}"
        ) from exc


def check_epoch_accounting(scenario: str, report: FailureReport) -> None:
    """``_version`` advanced exactly once per edge the failure wrote."""
    touched = int(report.edge_ids.shape[0])
    if report.version_delta != touched:
        raise InvariantViolation(
            f"[{scenario}] epoch accounting: failure {report.name!r} "
            f"touched {touched} edges but _version advanced by "
            f"{report.version_delta}"
        )


def check_congestion_soundness(scenario: str, result: ApproxFlow) -> None:
    """lower_bound ≤ congestion: R's rows are true cuts, so ‖Rb‖∞ can
    never exceed the congestion of any feasible routing."""
    permitted = result.congestion * (1.0 + REL_TOL) + REL_TOL
    if result.lower_bound > permitted:
        raise InvariantViolation(
            f"[{scenario}] congestion soundness: approximator lower "
            f"bound {result.lower_bound:.6g} exceeds achieved "
            f"congestion {result.congestion:.6g} — R's rows are not "
            f"genuine cuts"
        )


def check_congestion_guarantee(
    scenario: str,
    result: ApproxFlow,
    approximator: TreeCongestionApproximator,
    epsilon: float,
) -> None:
    """congestion ≤ (1+ε)·α·lower_bound·GUARANTEE_SLACK."""
    if result.lower_bound <= 0.0:
        if result.congestion > REL_TOL:
            raise InvariantViolation(
                f"[{scenario}] congestion guarantee: zero lower bound "
                f"but congestion {result.congestion:.6g}"
            )
        return
    permitted = (
        (1.0 + epsilon)
        * approximator.alpha
        * result.lower_bound
        * GUARANTEE_SLACK
    )
    if result.congestion > permitted:
        raise InvariantViolation(
            f"[{scenario}] congestion guarantee: congestion "
            f"{result.congestion:.6g} exceeds (1+{epsilon:g})*alpha"
            f"({approximator.alpha:.4g})*lower_bound"
            f"({result.lower_bound:.6g})*slack({GUARANTEE_SLACK:g}) = "
            f"{permitted:.6g}"
        )


def check_maxflow_vs_exact(
    scenario: str, result: ApproxMaxFlow, exact_value: float
) -> None:
    """Feasibility, certified-cut dominance, and ε-quality vs Dinic."""
    if result.value > exact_value * (1.0 + REL_TOL) + REL_TOL:
        raise InvariantViolation(
            f"[{scenario}] max-flow feasibility: routed value "
            f"{result.value:.6g} exceeds exact Dinic optimum "
            f"{exact_value:.6g}"
        )
    if exact_value > result.certified_upper_bound * (1.0 + REL_TOL):
        raise InvariantViolation(
            f"[{scenario}] max-flow certificate: exact optimum "
            f"{exact_value:.6g} exceeds certified upper bound "
            f"{result.certified_upper_bound:.6g} — the cut certificate "
            f"is not a true cut"
        )
    ratio = result.congestion_result.approximation_ratio_bound
    permitted = exact_value / (ratio * (1.0 + REL_TOL))
    if result.value < permitted:
        raise InvariantViolation(
            f"[{scenario}] max-flow quality: routed value "
            f"{result.value:.6g} below exact/{ratio:.4g} = "
            f"{permitted:.6g} promised by the certified ratio"
        )


def check_planted_detection(
    scenario: str,
    result: ApproxFlow,
    approximator: TreeCongestionApproximator,
    saturation: float,
) -> None:
    """On a demand pushing saturation× the planted cut's capacity, the
    approximator's cut rows must certify congestion ≥ saturation/α."""
    required = saturation / approximator.alpha / (1.0 + REL_TOL)
    if result.lower_bound < required:
        raise InvariantViolation(
            f"[{scenario}] planted detection: lower bound "
            f"{result.lower_bound:.6g} below saturation({saturation:g})"
            f"/alpha({approximator.alpha:.4g}) = {required:.6g} — the "
            f"approximator missed the planted bottleneck"
        )


def check_warm_agreement(
    scenario: str,
    warm: ApproxFlow,
    cold: ApproxFlow,
    approximator: TreeCongestionApproximator,
    epsilon: float,
) -> None:
    """Warm and cold re-routes agree to the guarantee bound.

    Both runs route the same demand on the same graph through the same
    R, so their lower bounds are the same deterministic quantity and
    each congestion must clear the same ``(1+ε)·α·lb·slack`` ceiling.
    A warm start that broke convergence (e.g. a mis-rescaled seed that
    stranded the descent) trips the guarantee check on the warm side.
    """
    if warm.lower_bound != cold.lower_bound:
        raise InvariantViolation(
            f"[{scenario}] warm agreement: warm lower bound "
            f"{warm.lower_bound:.6g} differs from cold "
            f"{cold.lower_bound:.6g} — same R and demand must give the "
            f"same deterministic estimate"
        )
    check_congestion_guarantee(f"{scenario}(warm)", warm, approximator, epsilon)
    check_congestion_guarantee(f"{scenario}(cold)", cold, approximator, epsilon)
    bound = max(warm.lower_bound, REL_TOL)
    gap = abs(warm.congestion - cold.congestion)
    permitted = (
        (1.0 + epsilon) * approximator.alpha * bound * GUARANTEE_SLACK
    )
    if gap > permitted:
        raise InvariantViolation(
            f"[{scenario}] warm agreement: warm congestion "
            f"{warm.congestion:.6g} and cold congestion "
            f"{cold.congestion:.6g} differ by {gap:.6g}, beyond the "
            f"guarantee bound {permitted:.6g}"
        )


def check_backend_identity(
    scenario: str,
    backend: str,
    reference_backend: str,
    reference: np.ndarray,
    actual: np.ndarray,
) -> None:
    """Flows from different backends must be bit-identical."""
    if reference.shape != actual.shape or not np.array_equal(
        reference, actual
    ):
        diff = (
            float(np.abs(reference - actual).max(initial=0.0))
            if reference.shape == actual.shape
            else float("nan")
        )
        raise InvariantViolation(
            f"[{scenario}] backend identity: {backend!r} flow differs "
            f"from {reference_backend!r} (max abs diff {diff:g}) — "
            f"sharded execution is not bit-identical"
        )
