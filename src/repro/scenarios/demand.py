"""Demand models: gravity matrices, hotspot churn, adversarial cuts.

Each model returns a ``(Q, n)`` plane of exactly zero-sum demand
vectors (validated through :func:`repro.util.validation
.check_demand_batch` by the runner) and is deterministic under the
scenario's derived seed. The adversarial model is the one that gives
the planted-bottleneck invariant its teeth: it pushes ``saturation``
times the planted cut's capacity across the bridge, so the
approximator's lower bound must report congestion ≈ ``saturation``
within its α factor or the invariant fires.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ScenarioError
from repro.scenarios.spec import (
    DemandSpec,
    TopologyInstance,
    register_demand,
    scenario_seed,
)
from repro.util.rng import as_generator

__all__ = [
    "adversarial_cut_demands",
    "generate_demands",
    "gravity_demands",
    "hotspot_demands",
]

#: How many times the planted cut's capacity the adversarial model
#: pushes across the bridge. Any routing of such a demand has
#: congestion ≥ SATURATION on some bridge edge.
SATURATION = 4.0


def _zero_sum(plane: np.ndarray) -> np.ndarray:
    """Project each row onto the zero-sum hyperplane exactly enough for
    ``check_demand``: subtract the mean, then fold the residual float
    error into the largest-magnitude entry."""
    plane = plane - plane.mean(axis=1, keepdims=True)
    residual = plane.sum(axis=1)
    anchor = np.abs(plane).argmax(axis=1)
    plane[np.arange(plane.shape[0]), anchor] -= residual
    return plane


def gravity_demands(
    instance: TopologyInstance, num_queries: int, seed: int
) -> np.ndarray:
    """Gravity traffic matrices: node masses ~ degree, pairwise flows
    ∝ mass(u)·mass(v), aggregated to a net per-node demand.

    Rather than materializing the n×n pair matrix, each query samples a
    mass vector (degree jittered by a lognormal factor) and takes the
    net demand of the gravity exchange against the mass mean — the
    closed form of summing mass(u)·mass(v)·(sign) over all pairs.
    """
    graph = instance.graph
    rng = as_generator(scenario_seed(seed, "demand", "gravity"))
    degrees = np.array(
        [graph.degree(v) for v in graph.nodes()], dtype=float
    )
    plane = np.empty((num_queries, graph.num_nodes))
    for q in range(num_queries):
        mass = degrees * rng.lognormal(mean=0.0, sigma=0.6, size=degrees.shape)
        # Net gravity demand: node u sends mass_u·mass_v to every v with
        # smaller mass rank, receives from larger — equivalent to
        # mass·(mass - mean(mass)) up to scale, which is what a gravity
        # matrix nets out to when attraction is symmetric.
        plane[q] = mass * (mass - mass.mean())
    scale = np.abs(plane).max(axis=1, keepdims=True)
    scale[scale == 0.0] = 1.0
    return _zero_sum(plane / scale)


def hotspot_demands(
    instance: TopologyInstance, num_queries: int, seed: int
) -> np.ndarray:
    """Hotspot churn: each query concentrates demand on a fresh random
    hotspot (a node and its neighborhood) sinking uniformly everywhere
    else — the hotspot *moves* between queries, modeling churn."""
    graph = instance.graph
    n = graph.num_nodes
    rng = as_generator(scenario_seed(seed, "demand", "hotspot"))
    plane = np.zeros((num_queries, n))
    for q in range(num_queries):
        hub = int(rng.integers(n))
        members = [hub] + [v for v, _ in graph.neighbors(hub)]
        weights = rng.uniform(0.5, 1.0, size=len(members))
        total = float(weights.sum())
        plane[q, :] = -total / n
        plane[q, members] += weights
    return _zero_sum(plane)


def adversarial_cut_demands(
    instance: TopologyInstance, num_queries: int, seed: int
) -> np.ndarray:
    """Adversarial demands straddling the planted cut.

    Sources spread over the left side, sinks over the right, total
    volume ``SATURATION ×`` the *live* planted-cut capacity — so every
    feasible routing congests some bridge edge to at least SATURATION,
    and the approximator's cut rows must detect it.
    """
    planted = instance.planted
    if planted is None:
        raise ScenarioError(
            f"adversarial_cut demand requires a planted-bottleneck "
            f"topology; {instance.name!r} has no planted cut"
        )
    graph = instance.graph
    n = graph.num_nodes
    rng = as_generator(scenario_seed(seed, "demand", "adversarial_cut"))
    left = np.flatnonzero(planted.left)
    right = np.flatnonzero(~planted.left)
    volume = SATURATION * planted.live_cut_capacity()
    plane = np.zeros((num_queries, n))
    for q in range(num_queries):
        src_w = rng.uniform(0.5, 1.5, size=left.shape[0])
        dst_w = rng.uniform(0.5, 1.5, size=right.shape[0])
        plane[q, left] = volume * src_w / src_w.sum()
        plane[q, right] = -volume * dst_w / dst_w.sum()
    return _zero_sum(plane)


register_demand(
    DemandSpec(
        "gravity",
        gravity_demands,
        description="degree-mass gravity traffic matrix, lognormal jitter",
    )
)
register_demand(
    DemandSpec(
        "hotspot",
        hotspot_demands,
        description="churning hotspot: neighborhood source, uniform sink",
    )
)
register_demand(
    DemandSpec(
        "adversarial_cut",
        adversarial_cut_demands,
        requires_planted=True,
        description=(
            f"straddles the planted cut at {SATURATION:g}x its capacity"
        ),
    )
)


def generate_demands(
    instance: TopologyInstance, model: DemandSpec, num_queries: int, seed: int
) -> np.ndarray:
    """Generate and return the model's demand plane for an instance."""
    return np.asarray(
        model.generate(instance, num_queries, seed), dtype=float
    )
