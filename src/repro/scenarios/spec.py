"""Declarative scenario grammar: Topology × Demand × Failure × Backend.

A *scenario* is a point in the four-axis product the ROADMAP's
"as many scenarios as you can imagine" item asks for:

* **Topology** — a named, seeded graph family
  (:data:`TOPOLOGIES`): the classic grid/torus workloads plus the
  PR 9 families (power-law configuration model, road-network-like
  grid, planted bottleneck with a known min-cut);
* **DemandModel** — a named generator of demand vectors
  (:data:`DEMANDS`): gravity traffic matrices, hotspot churn, and
  adversarial demands straddling a planted cut;
* **FailureModel** — a named capacity mutation
  (:data:`FAILURES`): edge deletion (capacity floored) and capacity
  degradation, applied through the write-through
  ``Graph.set_capacity`` / ``_version`` epoch machinery;
* **Backend** — a :mod:`repro.parallel` execution backend
  (``serial`` / ``thread`` / ``process``); the runner asserts results
  are bit-identical across every backend in a scenario group.

Axes are registered by name so the corpus (:mod:`repro.scenarios
.corpus`), the CLI (``tools/run_scenarios.py``), tests, and the
generated ``EXPERIMENTS.md`` all speak the same vocabulary; an unknown
name raises :class:`~repro.errors.ScenarioError` instead of silently
running nothing.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.errors import ScenarioError
from repro.graphs.generators import (
    PlantedBottleneckGraph,
    grid,
    planted_bottleneck,
    power_law,
    road_network,
    torus,
)
from repro.graphs.graph import Graph
from repro.parallel.config import ParallelConfig

__all__ = [
    "BACKENDS",
    "DEMANDS",
    "FAILURES",
    "TOPOLOGIES",
    "DemandSpec",
    "FailureReport",
    "FailureSpec",
    "Scenario",
    "TopologyInstance",
    "TopologySpec",
    "backend_config",
    "build_matrix",
    "resolve_demand",
    "resolve_failure",
    "resolve_topology",
    "scenario_seed",
]

#: The execution backends a scenario may name. ``workers=2`` with
#: ``min_size=0`` forces sharding regardless of instance size, so the
#: cross-backend identity invariant exercises the real sharded paths
#: even on the quick corpus' small graphs.
BACKENDS: tuple[str, ...] = ("serial", "thread", "process")


def backend_config(backend: str, workers: int = 2) -> ParallelConfig:
    """The forced-sharding :class:`ParallelConfig` for a backend name."""
    if backend not in BACKENDS:
        raise ScenarioError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "serial":
        return ParallelConfig(workers=1, backend="serial")
    return ParallelConfig(workers=workers, backend=backend, min_size=0)


@dataclass(frozen=True, eq=False)
class TopologyInstance:
    """A built topology: the graph plus optional planted-cut metadata."""

    name: str
    graph: Graph
    planted: PlantedBottleneckGraph | None = None

    def source_sink(self) -> tuple[int, int]:
        """The scenario's canonical s-t pair: across the planted cut
        when one exists, corner to corner otherwise."""
        if self.planted is not None:
            left = int(np.flatnonzero(self.planted.left)[0])
            right = int(np.flatnonzero(~self.planted.left)[-1])
            return left, right
        return 0, self.graph.num_nodes - 1


@dataclass(frozen=True)
class TopologySpec:
    """A named, seeded topology family. ``planted`` marks families
    whose instances carry planted-cut metadata (the compatibility
    axis for ``requires_planted`` demand models)."""

    name: str
    build: Callable[[int], TopologyInstance] = field(compare=False)
    description: str = ""
    planted: bool = False


@dataclass(frozen=True)
class DemandSpec:
    """A named demand model.

    ``generate(instance, num_queries, seed)`` returns a ``(Q, n)``
    plane of zero-sum demand vectors; models with
    ``requires_planted=True`` are only compatible with topologies that
    carry planted-cut metadata (the matrix builder skips incompatible
    pairs; an explicit incompatible request raises).
    """

    name: str
    generate: Callable[[TopologyInstance, int, int], np.ndarray] = field(
        compare=False
    )
    requires_planted: bool = False
    description: str = ""


@dataclass(frozen=True, eq=False)
class FailureReport:
    """What a failure model did to the graph.

    Attributes:
        name: The failure model's registry name.
        edge_ids: The edges whose capacities were overwritten.
        version_delta: How many epochs ``Graph._version`` advanced —
            must equal ``len(edge_ids)`` (one write-through per edge);
            the runner asserts this, pinning the epoch machinery.
    """

    name: str
    edge_ids: np.ndarray
    version_delta: int


@dataclass(frozen=True)
class FailureSpec:
    """A named failure model applied through ``set_capacity``."""

    name: str
    apply: Callable[[TopologyInstance, int], FailureReport] = field(
        compare=False
    )
    description: str = ""


@dataclass(frozen=True)
class Scenario:
    """One point of the Topology × Demand × Failure × Backend product.

    Attributes:
        topology / demand / failure / backend: Registry names for the
            four axes.
        epsilon: Accuracy parameter of the congestion minimization.
        num_queries: How many demand vectors the demand model emits.
        seed: Base seed; every randomized stage derives its own stream
            from this plus the axis names, so two scenarios sharing a
            topology build bit-identical graphs.
    """

    topology: str
    demand: str
    failure: str
    backend: str
    epsilon: float = 0.5
    num_queries: int = 2
    seed: int = 9090

    @property
    def group_key(self) -> tuple[str, str, str, float, int, int]:
        """Everything but the backend: scenarios sharing a group key
        must produce bit-identical flows (the identity invariant)."""
        return (
            self.topology,
            self.demand,
            self.failure,
            self.epsilon,
            self.num_queries,
            self.seed,
        )

    @property
    def name(self) -> str:
        return (
            f"{self.topology}__{self.demand}__{self.failure}__{self.backend}"
        )


def scenario_seed(base: int, *names: str) -> int:
    """A deterministic per-stage seed: the base seed mixed with the
    stage/axis names (CRC-folded so adding axes never perturbs the
    streams of unrelated stages)."""
    digest = zlib.crc32("/".join(names).encode("utf-8"))
    return (int(base) * 1_000_003 + digest) % (2**31 - 1)


# ----------------------------------------------------------------------
# Registries. Populated here (topologies) and by repro.scenarios.demand
# / repro.scenarios.failures at import time (the package __init__
# imports all three, so the registries are complete after
# ``import repro.scenarios``).
# ----------------------------------------------------------------------
TOPOLOGIES: dict[str, TopologySpec] = {}
DEMANDS: dict[str, DemandSpec] = {}
FAILURES: dict[str, FailureSpec] = {}


def _register_topology(spec: TopologySpec) -> TopologySpec:
    if spec.name in TOPOLOGIES:
        raise ScenarioError(f"duplicate topology name {spec.name!r}")
    TOPOLOGIES[spec.name] = spec
    return spec


def register_demand(spec: DemandSpec) -> DemandSpec:
    if spec.name in DEMANDS:
        raise ScenarioError(f"duplicate demand name {spec.name!r}")
    DEMANDS[spec.name] = spec
    return spec


def register_failure(spec: FailureSpec) -> FailureSpec:
    if spec.name in FAILURES:
        raise ScenarioError(f"duplicate failure name {spec.name!r}")
    FAILURES[spec.name] = spec
    return spec


def resolve_topology(name: str) -> TopologySpec:
    try:
        return TOPOLOGIES[name]
    except KeyError:
        raise ScenarioError(
            f"unknown topology {name!r}; expected one of "
            f"{sorted(TOPOLOGIES)}"
        ) from None


def resolve_demand(name: str) -> DemandSpec:
    try:
        return DEMANDS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown demand model {name!r}; expected one of "
            f"{sorted(DEMANDS)}"
        ) from None


def resolve_failure(name: str) -> FailureSpec:
    try:
        return FAILURES[name]
    except KeyError:
        raise ScenarioError(
            f"unknown failure model {name!r}; expected one of "
            f"{sorted(FAILURES)}"
        ) from None


# ----------------------------------------------------------------------
# Topology families
# ----------------------------------------------------------------------
def _torus_instance(name: str, rows: int, cols: int) -> TopologySpec:
    def build(seed: int) -> TopologyInstance:
        return TopologyInstance(
            name, torus(rows, cols, rng=scenario_seed(seed, "topology", name))
        )

    return _register_topology(
        TopologySpec(name, build, f"{rows}x{cols} torus (regular, D-bound)")
    )


def _grid_instance(name: str, rows: int, cols: int) -> TopologySpec:
    def build(seed: int) -> TopologyInstance:
        return TopologyInstance(
            name, grid(rows, cols, rng=scenario_seed(seed, "topology", name))
        )

    return _register_topology(
        TopologySpec(name, build, f"{rows}x{cols} grid (high diameter)")
    )


def _power_law_instance(name: str, num_nodes: int) -> TopologySpec:
    def build(seed: int) -> TopologyInstance:
        return TopologyInstance(
            name,
            power_law(
                num_nodes,
                exponent=2.5,
                rng=scenario_seed(seed, "topology", name),
                min_degree=2,
            ),
        )

    return _register_topology(
        TopologySpec(
            name, build, f"n={num_nodes} power-law configuration model (hubs)"
        )
    )


def _road_instance(name: str, rows: int, cols: int) -> TopologySpec:
    def build(seed: int) -> TopologyInstance:
        return TopologyInstance(
            name,
            road_network(
                rows, cols, rng=scenario_seed(seed, "topology", name)
            ),
        )

    return _register_topology(
        TopologySpec(
            name,
            build,
            f"{rows}x{cols} grid with deletions + long-range shortcuts",
        )
    )


def _planted_instance(
    name: str, side_nodes: int, bridge_edges: int, bridge_capacity: float
) -> TopologySpec:
    def build(seed: int) -> TopologyInstance:
        planted = planted_bottleneck(
            side_nodes,
            bridge_edges=bridge_edges,
            bridge_capacity=bridge_capacity,
            rng=scenario_seed(seed, "topology", name),
        )
        return TopologyInstance(name, planted.graph, planted)

    return _register_topology(
        TopologySpec(
            name,
            build,
            f"2x{side_nodes} planted bottleneck "
            f"(min-cut {bridge_edges * bridge_capacity:g} by construction)",
            planted=True,
        )
    )


_torus_instance("torus_9x9", 9, 9)
_grid_instance("grid_12x12", 12, 12)
_power_law_instance("power_law_96", 96)
_power_law_instance("power_law_160", 160)
_road_instance("road_12x12", 12, 12)
_planted_instance("planted_60", 60, bridge_edges=3, bridge_capacity=2.0)


# ----------------------------------------------------------------------
# Matrix construction
# ----------------------------------------------------------------------
def build_matrix(
    topologies: Iterable[str],
    demands: Iterable[str],
    failures: Iterable[str],
    backends: Iterable[str],
    epsilon: float = 0.5,
    num_queries: int = 2,
    seed: int = 9090,
) -> list[Scenario]:
    """The compatible cross-product of the four axes.

    Demand models with ``requires_planted=True`` are paired only with
    topologies that carry planted-cut metadata — the skip is the
    *matrix builder's* compatibility rule; handing an incompatible
    scenario directly to the runner raises ``ScenarioError``.
    """
    backend_list = list(backends)
    for backend in backend_list:
        if backend not in BACKENDS:
            raise ScenarioError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
    failure_list = list(failures)
    for failure in failure_list:
        resolve_failure(failure)
    out: list[Scenario] = []
    for topology in list(topologies):
        for demand in list(demands):
            if resolve_demand(demand).requires_planted and (
                not resolve_topology(topology).planted
            ):
                continue
            for failure in failure_list:
                for backend in backend_list:
                    out.append(
                        Scenario(
                            topology=topology,
                            demand=demand,
                            failure=failure,
                            backend=backend,
                            epsilon=epsilon,
                            num_queries=num_queries,
                            seed=seed,
                        )
                    )
    return out
