"""Failure models: edge deletion and capacity degradation.

Failures mutate the already-built topology exclusively through
``Graph.set_capacity`` — the write-through path that bumps the graph's
``_version`` epoch and retags cached capacity views — so every scenario
with a non-trivial failure model doubles as a regression test of the
dynamic-graph machinery. The runner asserts that ``_version`` advanced
exactly once per touched edge (``FailureReport.version_delta``).

``Graph.set_capacity`` rejects non-positive capacities (the solver's
1/c weights would blow up), so "deleting" an edge means flooring its
capacity at :data:`DELETED_CAPACITY` — small enough that no sane
routing uses the edge, while keeping the CSR structure and
connectivity facts intact.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import WIDE_DTYPE
from repro.scenarios.spec import (
    FailureReport,
    FailureSpec,
    TopologyInstance,
    register_failure,
    scenario_seed,
)
from repro.util.rng import as_generator

__all__ = [
    "DELETED_CAPACITY",
    "apply_failure",
    "degrade_failure",
    "delete_failure",
    "no_failure",
    "restore_failure",
]

#: Capacity assigned to a "deleted" edge. Strictly positive (a
#: structural requirement of the solver) but ~1e6x below the smallest
#: generated capacity, so deleted edges carry negligible flow.
DELETED_CAPACITY = 1e-6

#: Fraction of edges a failure model touches.
FAILURE_FRACTION = 0.1

#: Multiplier applied by the degradation model.
DEGRADE_FACTOR = 0.25

#: Multiplier applied by the restoration model (capacity *increase* —
#: the recovery half of a degrade/restore cycle).
RESTORE_FACTOR = 4.0


def _sample_edges(
    instance: TopologyInstance, seed: int, kind: str
) -> np.ndarray:
    """A deterministic sample of ~FAILURE_FRACTION of the edges,
    avoiding bridge edges on planted topologies so deletions never
    collapse the planted cut to (near) zero capacity."""
    graph = instance.graph
    rng = as_generator(scenario_seed(seed, "failure", kind))
    count = max(1, int(graph.num_edges * FAILURE_FRACTION))
    candidates = np.arange(graph.num_edges, dtype=WIDE_DTYPE)
    if instance.planted is not None:
        mask = np.ones(graph.num_edges, dtype=bool)
        mask[instance.planted.bridge_edges] = False
        candidates = candidates[mask]
    chosen = rng.choice(candidates, size=min(count, candidates.shape[0]), replace=False)
    return np.sort(chosen).astype(WIDE_DTYPE)


def no_failure(instance: TopologyInstance, seed: int) -> FailureReport:
    """The identity failure model — the healthy baseline every other
    model is compared against."""
    return FailureReport(
        name="none",
        edge_ids=np.empty(0, dtype=WIDE_DTYPE),
        version_delta=0,
    )


def delete_failure(instance: TopologyInstance, seed: int) -> FailureReport:
    """Delete ~10% of edges by flooring their capacity at
    DELETED_CAPACITY (connectivity-preserving by construction)."""
    graph = instance.graph
    edges = _sample_edges(instance, seed, "delete")
    before = graph._version
    for eid in edges.tolist():
        graph.set_capacity(int(eid), DELETED_CAPACITY)
    return FailureReport(
        name="delete",
        edge_ids=edges,
        version_delta=graph._version - before,
    )


def degrade_failure(instance: TopologyInstance, seed: int) -> FailureReport:
    """Degrade ~10% of edges to DEGRADE_FACTOR of their capacity."""
    graph = instance.graph
    edges = _sample_edges(instance, seed, "degrade")
    caps = graph.capacities()[edges] * DEGRADE_FACTOR
    before = graph._version
    for eid, cap in zip(edges.tolist(), caps.tolist()):
        graph.set_capacity(int(eid), float(cap))
    return FailureReport(
        name="degrade",
        edge_ids=edges,
        version_delta=graph._version - before,
    )


def restore_failure(instance: TopologyInstance, seed: int) -> FailureReport:
    """Restore ~10% of edges to RESTORE_FACTOR of their capacity — the
    capacity-*increase* direction. Exercises the same set_capacity /
    journal path as degradation but shifts optimal routings toward the
    restored edges, so warm re-routes seeded from the pre-restore flow
    must still converge to the guarantee (a seed the optimum moved away
    from)."""
    graph = instance.graph
    edges = _sample_edges(instance, seed, "restore")
    caps = graph.capacities()[edges] * RESTORE_FACTOR
    before = graph._version
    for eid, cap in zip(edges.tolist(), caps.tolist()):
        graph.set_capacity(int(eid), float(cap))
    return FailureReport(
        name="restore",
        edge_ids=edges,
        version_delta=graph._version - before,
    )


register_failure(
    FailureSpec("none", no_failure, description="healthy baseline")
)
register_failure(
    FailureSpec(
        "delete",
        delete_failure,
        description=(
            f"~{FAILURE_FRACTION:.0%} of edges floored to "
            f"{DELETED_CAPACITY:g} capacity"
        ),
    )
)
register_failure(
    FailureSpec(
        "degrade",
        degrade_failure,
        description=(
            f"~{FAILURE_FRACTION:.0%} of edges cut to "
            f"{DEGRADE_FACTOR:g}x capacity"
        ),
    )
)
register_failure(
    FailureSpec(
        "restore",
        restore_failure,
        description=(
            f"~{FAILURE_FRACTION:.0%} of edges raised to "
            f"{RESTORE_FACTOR:g}x capacity"
        ),
    )
)


def apply_failure(
    instance: TopologyInstance, model: FailureSpec, seed: int
) -> FailureReport:
    """Apply the model in place and return its report."""
    return model.apply(instance, seed)
