"""Declarative scenario corpus: Topology × Demand × Failure × Backend.

``import repro.scenarios`` is enough to populate every axis registry
(the demand and failure modules register their models at import time);
the public surface re-exports the grammar (:mod:`~repro.scenarios
.spec`), the corpora (:mod:`~repro.scenarios.corpus`), the runner
(:mod:`~repro.scenarios.runner`) and the report/bench writers
(:mod:`~repro.scenarios.report`). See ROADMAP.md's "Scenario corpus"
section for the grammar and the invariant catalogue.
"""

from repro.scenarios import demand as _demand  # registers demand models
from repro.scenarios import failures as _failures  # registers failures
from repro.scenarios.corpus import (
    BENCH_SUBSET,
    CORPUS_SEED,
    full_matrix,
    quick_matrix,
)
from repro.scenarios.runner import (
    ApproximatorFactory,
    MatrixResult,
    ScenarioRecord,
    default_approximator,
    run_matrix,
)
from repro.scenarios.spec import (
    BACKENDS,
    DEMANDS,
    FAILURES,
    TOPOLOGIES,
    DemandSpec,
    FailureReport,
    FailureSpec,
    Scenario,
    TopologyInstance,
    TopologySpec,
    backend_config,
    build_matrix,
    resolve_demand,
    resolve_failure,
    resolve_topology,
    scenario_seed,
)

__all__ = [
    "BACKENDS",
    "BENCH_SUBSET",
    "CORPUS_SEED",
    "DEMANDS",
    "FAILURES",
    "TOPOLOGIES",
    "ApproximatorFactory",
    "DemandSpec",
    "FailureReport",
    "FailureSpec",
    "MatrixResult",
    "Scenario",
    "ScenarioRecord",
    "TopologyInstance",
    "TopologySpec",
    "backend_config",
    "build_matrix",
    "default_approximator",
    "full_matrix",
    "quick_matrix",
    "resolve_demand",
    "resolve_failure",
    "resolve_topology",
    "run_matrix",
    "scenario_seed",
]
