"""The named scenario corpora: quick (CI) and full (nightly/local).

The quick corpus is the matrix ``tools/run_scenarios.py --quick``
executes and the CI ``scenarios`` job gates on. Gradient-iteration
counts — and therefore runtimes — are deterministic under the corpus
seed, so the quick matrix is *tuned on measured iteration budgets*:
the planted-bottleneck topology converges in a few thousand iterations
and carries the process backend (whose per-product dispatch overhead
makes 100k-iteration instances unaffordable), while the heavier
topologies (road network, power law, torus) run serial + thread, whose
per-iteration costs are comparable. The full corpus widens every axis
and runs all three backends everywhere.

``BENCH_SUBSET`` names the serial scenarios whose routing time feeds
``BENCH_scenarios.json`` — shared here so ``tools/bench_regression.py``
re-measures exactly the rows the runner recorded.
"""

from __future__ import annotations

from repro.scenarios.spec import BACKENDS, Scenario, build_matrix

__all__ = [
    "BENCH_SUBSET",
    "CORPUS_SEED",
    "QUICK_EPSILON",
    "full_matrix",
    "quick_matrix",
]

#: Shared base seed of every corpus scenario.
CORPUS_SEED = 9090

#: ε for corpus runs. Iteration counts are dominated by the fixed
#: 0.5-accuracy residual rounds, so a looser first-round ε costs
#: little; 0.5 keeps the max-flow quality invariant meaningful.
QUICK_EPSILON = 0.5

#: Serial scenario names whose route time becomes a benchmark metric.
#: Every name must appear in the quick matrix.
BENCH_SUBSET = (
    "torus_9x9__gravity__none__serial",
    "power_law_96__hotspot__degrade__serial",
    "planted_60__adversarial_cut__none__serial",
)


def quick_matrix() -> list[Scenario]:
    """The CI matrix: every axis value covered, ~4 minutes serial.

    Planted-bottleneck groups run all three backends (serial, thread,
    process); the heavier topologies run serial + thread.
    """
    matrix = build_matrix(
        topologies=("torus_9x9", "power_law_96", "road_12x12"),
        demands=("gravity", "hotspot"),
        failures=("none", "degrade"),
        backends=("serial", "thread"),
        epsilon=QUICK_EPSILON,
        num_queries=2,
        seed=CORPUS_SEED,
    )
    matrix += build_matrix(
        topologies=("planted_60",),
        demands=("gravity", "hotspot", "adversarial_cut"),
        failures=("none", "degrade", "restore"),
        backends=BACKENDS,
        epsilon=QUICK_EPSILON,
        num_queries=2,
        seed=CORPUS_SEED,
    )
    return matrix


def full_matrix() -> list[Scenario]:
    """The widened nightly/local matrix: adds the grid and large
    power-law topologies, the delete and restore failure models, a
    third query, and all three backends on every group."""
    return build_matrix(
        topologies=(
            "torus_9x9",
            "grid_12x12",
            "power_law_96",
            "power_law_160",
            "road_12x12",
            "planted_60",
        ),
        demands=("gravity", "hotspot", "adversarial_cut"),
        failures=("none", "degrade", "delete", "restore"),
        backends=BACKENDS,
        epsilon=QUICK_EPSILON,
        num_queries=3,
        seed=CORPUS_SEED,
    )
