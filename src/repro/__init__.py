"""repro — reproduction of "Near-Optimal Distributed Maximum Flow"
(Ghaffari, Karrenbauer, Kuhn, Lenzen, Patt-Shamir; PODC 2015).

Public API tour
---------------

Graphs and workloads::

    from repro import Graph
    from repro.graphs import generators

Approximate max flow (the paper's Theorem 1.1 pipeline)::

    from repro import max_flow, build_congestion_approximator
    result = max_flow(graph, s, t, epsilon=0.25)

Exact oracles and baselines::

    from repro import dinic_max_flow
    from repro.congest import distributed_push_relabel

Substrates (each independently usable)::

    from repro.lsst import akpw_spanning_tree        # Theorem 3.1
    from repro.sparsify import sparsify               # Lemma 6.1
    from repro.jtree import sample_virtual_tree       # Theorem 8.10
    from repro.congest import CongestNetwork          # the model itself

Serving (build the approximator once, route many demands — batched
multi-demand routing with a warm workspace pool and a version-keyed
result cache, bit-identical per query to the one-shot calls)::

    from repro import FlowServer
    server = FlowServer(graph, epsilon=0.25)
    results = server.route_batch(demands)     # list of AlmostRouteResult

Sharded execution (multi-worker kernels, bit-identical to serial)::

    from repro.parallel import ParallelConfig
    result = max_flow(graph, s, t, parallel=ParallelConfig(4, "thread"))

or set ``REPRO_WORKERS=4`` (and optionally ``REPRO_BACKEND``) in the
environment to shard every beyond-threshold kernel process-wide.

See README.md for a guided tour and DESIGN.md for the paper-to-module
mapping.
"""

from repro.graphs import Graph, RootedTree
from repro.flow import dinic_max_flow
from repro.core import (
    ApproxFlow,
    ApproxMaxFlow,
    TreeCongestionApproximator,
    build_congestion_approximator,
    estimate_rounds,
    max_flow,
    min_congestion_flow,
)
from repro.congest import CongestNetwork, CostModel, distributed_push_relabel
from repro.jtree import HierarchyParams, sample_virtual_tree
from repro.lsst import akpw_spanning_tree
from repro.parallel import ParallelConfig, ShardPlan
from repro.serve import FlowServer
from repro.sparsify import sparsify
from repro.errors import ReproError

__all__ = [
    "Graph",
    "RootedTree",
    "dinic_max_flow",
    "ApproxFlow",
    "ApproxMaxFlow",
    "TreeCongestionApproximator",
    "build_congestion_approximator",
    "estimate_rounds",
    "max_flow",
    "min_congestion_flow",
    "CongestNetwork",
    "CostModel",
    "distributed_push_relabel",
    "HierarchyParams",
    "sample_virtual_tree",
    "akpw_spanning_tree",
    "ParallelConfig",
    "ShardPlan",
    "FlowServer",
    "sparsify",
    "ReproError",
]

__version__ = "1.0.0"
