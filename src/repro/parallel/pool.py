"""Worker pools executing shard tasks: serial, thread, process.

The pool contract is deliberately minimal — :meth:`WorkerPool.map`
takes a **top-level function** and a list of argument tuples and
returns the results *in task order*. Task order is the whole story:
sharded kernels concatenate shard outputs positionally to reproduce
the serial element order, so a pool may schedule tasks however it
likes but must never reorder results.

Backends:

* :class:`SerialPool` — runs shards in-process, one after the other.
  Zero scheduling overhead and deterministic interleaving; used for
  tests and as the cache-blocked fallback on single-core hosts.
* :class:`ThreadPool` — a persistent ``ThreadPoolExecutor``. The hot
  kernels are NumPy whole-array calls that release the GIL, so shards
  genuinely overlap on multi-core hosts, and arrays are shared by
  reference (no copies).
* :class:`ProcessPool` — a persistent fork-context
  ``multiprocessing.Pool``. NumPy array arguments are exported once
  per ``map`` call into POSIX shared memory
  (:class:`multiprocessing.shared_memory.SharedMemory`) and workers
  receive zero-copy **read-only views**; only scalar arguments and the
  (typically small) result arrays cross the pickle boundary. Export
  granularity is per ``map`` call: kernels that loop over many small
  ``map`` rounds (level-synchronous BFS) re-export their invariant
  arrays each round, so the process backend suits few-round /
  large-shard work — a weakref-keyed cross-call export cache is the
  ROADMAP follow-on.

Pools are cached per ``(backend, workers)`` by :func:`get_pool` and
shut down at interpreter exit (or explicitly via
:func:`shutdown_pools`, which the test-suite does between backends).
"""

from __future__ import annotations

import atexit
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.parallel.config import ParallelConfig

__all__ = [
    "WorkerPool",
    "SerialPool",
    "ThreadPool",
    "ProcessPool",
    "get_pool",
    "shutdown_pools",
]


class WorkerPool:
    """Interface: ordered shard execution."""

    #: Whether workers see the caller's memory (serial / thread pools).
    #: In-process callers may then hand workers output views and cached
    #: scratch buffers; process-pool callers must not.
    shares_memory: bool = True

    def map(
        self, fn: Callable[..., Any], tasks: Sequence[tuple]
    ) -> list[Any]:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - interface default
        pass


class SerialPool(WorkerPool):
    """Run every shard in the calling thread, in task order."""

    def map(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        return [fn(*args) for args in tasks]


class ThreadPool(WorkerPool):
    """Persistent thread pool; arrays are shared by reference."""

    def __init__(self, workers: int) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )

    def map(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        futures = [self._executor.submit(fn, *args) for args in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# Process pool with shared-memory NumPy views
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _SharedArrayRef:
    """Picklable descriptor of an array living in shared memory."""

    name: str
    shape: tuple[int, ...]
    dtype: str


def _attach_shared(ref: _SharedArrayRef):
    """Attach a read-only view to a shared-memory array (worker side).

    The parent owns the segment lifecycle (create → map → unlink), and
    fork-context workers share the parent's resource-tracker process —
    so the attach must NOT register with the tracker: its register
    message races the parent's unlink-time unregister on the shared
    pipe and leaves phantom names the tracker warns about at exit.
    Python 3.13 has ``track=False`` for exactly this; on 3.11 the
    standard workaround is masking the register call for the attach
    (process-local to the worker, one attach at a time).
    """
    from multiprocessing import resource_tracker, shared_memory

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=ref.name)
    finally:
        resource_tracker.register = original_register
    view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)
    view.setflags(write=False)
    return shm, view


def _materialize(result: Any) -> Any:
    """Deep-copy array results so nothing returned views shared memory
    (the segment is closed immediately after the task body runs)."""
    if isinstance(result, np.ndarray):
        return np.array(result, copy=True)
    if isinstance(result, tuple):
        return tuple(_materialize(item) for item in result)
    if isinstance(result, list):
        return [_materialize(item) for item in result]
    return result


def _process_invoke(payload: tuple) -> Any:
    """Worker entry point: resolve shared refs, run, materialize."""
    fn, args = payload
    segments = []
    resolved = []
    try:
        for arg in args:
            if isinstance(arg, _SharedArrayRef):
                shm, view = _attach_shared(arg)
                segments.append(shm)
                resolved.append(view)
            else:
                resolved.append(arg)
        return _materialize(fn(*resolved))
    finally:
        for shm in segments:
            shm.close()


class ProcessPool(WorkerPool):
    """Persistent fork-context process pool with shared-memory inputs."""

    shares_memory = False

    def __init__(self, workers: int) -> None:
        import multiprocessing

        self._workers = workers
        self._context = multiprocessing.get_context("fork")
        self._pool = self._context.Pool(processes=workers)

    def _export(self, array: np.ndarray):
        from multiprocessing import shared_memory

        data = np.ascontiguousarray(array)
        shm = shared_memory.SharedMemory(create=True, size=data.nbytes)
        staged = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
        staged[...] = data
        ref = _SharedArrayRef(
            name=shm.name, shape=data.shape, dtype=data.dtype.str
        )
        return ref, shm

    def map(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        exported: dict[int, tuple[_SharedArrayRef, Any]] = {}
        keepalive: list[np.ndarray] = []  # pin ids for the dedup dict
        payloads = []
        try:
            for args in tasks:
                prepared = []
                for arg in args:
                    if isinstance(arg, np.ndarray) and arg.nbytes > 0:
                        key = id(arg)
                        if key not in exported:
                            exported[key] = self._export(arg)
                            keepalive.append(arg)
                        prepared.append(exported[key][0])
                    else:
                        prepared.append(arg)
                payloads.append((fn, prepared))
            return self._pool.map(_process_invoke, payloads)
        finally:
            for _, shm in exported.values():
                shm.close()
                shm.unlink()
            del keepalive

    def close(self) -> None:
        self._pool.terminate()
        self._pool.join()


_POOLS: dict[tuple[str, int], WorkerPool] = {}
_SERIAL = SerialPool()


def get_pool(config: ParallelConfig) -> WorkerPool:
    """The cached pool for a config (created lazily, reused forever)."""
    if config.backend == "serial" or config.workers <= 1:
        return _SERIAL
    key = (config.backend, config.workers)
    pool = _POOLS.get(key)
    if pool is None:
        if config.backend == "thread":
            pool = ThreadPool(config.workers)
        elif config.backend == "process":
            pool = ProcessPool(config.workers)
        else:  # pragma: no cover - config validates backends
            raise GraphError(f"unknown parallel backend {config.backend!r}")
        _POOLS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Close and drop every cached pool (tests call this between
    backends; also registered at interpreter exit)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.close()


atexit.register(shutdown_pools)
