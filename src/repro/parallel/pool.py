"""Worker pools executing shard tasks: serial, thread, process.

The pool contract is deliberately minimal — :meth:`WorkerPool.map`
takes a **top-level function** and a list of argument tuples and
returns the results *in task order*. Task order is the whole story:
sharded kernels concatenate shard outputs positionally to reproduce
the serial element order, so a pool may schedule tasks however it
likes but must never reorder results.

Backends:

* :class:`SerialPool` — runs shards in-process, one after the other.
  Zero scheduling overhead and deterministic interleaving; used for
  tests and as the cache-blocked fallback on single-core hosts.
* :class:`ThreadPool` — a persistent ``ThreadPoolExecutor``. The hot
  kernels are NumPy whole-array calls that release the GIL, so shards
  genuinely overlap on multi-core hosts, and arrays are shared by
  reference (no copies).
* :class:`ProcessPool` — a persistent fork-context
  ``multiprocessing.Pool``. NumPy array arguments are exported into
  POSIX shared memory (:class:`multiprocessing.shared_memory.
  SharedMemory`) and workers receive zero-copy **read-only views**;
  only scalar arguments and the (typically small) result arrays cross
  the pickle boundary. Export granularity is two-tier: **read-only**
  arrays go through the pool's persistent
  :class:`~repro.parallel.arena.SharedArena` — exported once per array
  lifetime and reused across ``map`` calls (level-synchronous BFS pays
  one CSR export per *run*, not per level) — while writeable arrays
  (``dist`` state, frontier slices, demand vectors) are re-exported
  per call because the caller may mutate them in between. Requires the
  ``fork`` start method; platforms without it degrade to the thread
  pool with a one-time warning (see :func:`get_pool`).

Supervised recovery
-------------------

``map`` is supervised by a :class:`RecoveryPolicy` (per-map timeout,
bounded retry-with-backoff): failed shards are re-executed in waves,
and because the ordered-fold contract makes every shard a pure
function of its arguments, a retried shard is **bit-identical** — the
caller cannot tell a recovered map from a clean one.  Backend
asymmetry, deliberately:

* **Process pool** — the full recovery story.  A worker that raises
  retries its shard; a worker that dies or hangs is detected by the
  per-map timeout, the pool is respawned, and only the missing shards
  re-execute.  Shared-segment attach failures (``FileNotFoundError``
  after an external unlink) retry with the stale arena entry discarded
  and the array re-exported per-call (a counted degradation, see
  :class:`PoolStats`); arena exports that fail even after draining
  (:class:`~repro.errors.ArenaError`) degrade to per-call transient
  segments instead of failing the map.
* **Thread pool** — raised shards retry, but a *timeout* surfaces as
  :class:`~repro.errors.PoolFailureError` without retry: a timed-out
  thread cannot be preempted and may still be writing to caller-owned
  output views, so re-executing its shard would race it.  Callers that
  hand threads shared scratch (``shares_memory``) must treat those
  buffers as poisoned after a failure — :class:`repro.serve.FlowServer`
  drops (never re-pools) workspaces from failed solves.
* **Serial pool** — unsupervised by construction; it is the reference
  path the other backends are pinned against, and the final circuit-
  breaker fallback that must not itself have failure modes.

Shard exceptions that are :class:`~repro.errors.ReproError` subclasses
propagate immediately without retry — they are deterministic library
errors (invalid input, model violations), not faults, and retrying
them would only delay the same answer.  Exhausting the retry budget
raises :class:`~repro.errors.PoolFailureError` with the last shard
failure as ``__cause__``.  Fault-injection sites (``pool.dispatch``
parent-side per wave; ``pool.worker`` / ``arena.attach`` decided
parent-side and shipped to workers as picklable directives — fork
inherits plan state, so consulting the plan in-worker would
double-count visits) let ``tests/test_faults.py`` pin all of the
above deterministically.

Pools are cached per ``(backend, workers)`` by :func:`get_pool` and
shut down at interpreter exit (or explicitly via
:func:`shutdown_pools`, which the test-suite does between backends).
Shutdown robustness: every shared-memory segment's unlink is owned by
a ``weakref.finalize`` handler (at-most-once across manual release,
array GC, and interpreter exit), so abnormal teardown orders can
neither leak segments nor trip ``resource_tracker`` KeyError warnings.
"""

from __future__ import annotations

import atexit
import os
import time
import warnings
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from multiprocessing import TimeoutError as WorkerTimeoutError
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import ArenaError, GraphError, PoolFailureError, ReproError
from repro.faults import (
    fault_point,
    faults_active,
    maybe_fire,
    register_fault_site,
)
from repro.parallel.arena import (
    SharedArena,
    SharedArrayRef,
    export_segment,
    release_segment,
)
from repro.parallel.config import ParallelConfig

__all__ = [
    "PoolStats",
    "ProcessPool",
    "RecoveryPolicy",
    "SerialPool",
    "ThreadPool",
    "WorkerPool",
    "get_pool",
    "recovery_policy",
    "reset_fork_warning",
    "set_recovery_policy",
    "shutdown_pools",
    "use_recovery",
]

#: Applied whenever a fault plan is armed and the policy sets no
#: timeout: injected hangs and worker deaths must never turn a chaos
#: sweep into a wall-clock hang, so supervision gets a generous bound.
_FAULT_FALLBACK_TIMEOUT = 30.0


@dataclass(frozen=True)
class RecoveryPolicy:
    """How a supervised ``map`` responds to shard failure.

    Attributes:
        timeout: Per-map wall-clock bound in seconds (shared deadline
            across the wave's shards). ``None`` — the default — means
            unbounded, except that an armed fault plan substitutes
            :data:`_FAULT_FALLBACK_TIMEOUT` so injected hangs cannot
            hang the suite.
        retries: How many retry waves a map may use after the first
            attempt before raising
            :class:`~repro.errors.PoolFailureError`.
        backoff: Base sleep (seconds) before retry wave *k*, scaled
            linearly (``backoff * k``) — enough to let a respawned
            pool settle without turning recovery into a stall.
    """

    timeout: float | None = None
    retries: int = 2
    backoff: float = 0.01

    def __post_init__(self) -> None:
        if self.timeout is not None and not self.timeout > 0:
            raise GraphError(
                f"recovery timeout must be > 0 seconds, got {self.timeout}"
            )
        if self.retries < 0:
            raise GraphError(
                f"recovery retries must be >= 0, got {self.retries}"
            )
        if self.backoff < 0:
            raise GraphError(
                f"recovery backoff must be >= 0, got {self.backoff}"
            )

    @classmethod
    def from_env(
        cls, environ: Mapping[str, str] | None = None
    ) -> "RecoveryPolicy":
        """Build the policy named by ``REPRO_MAP_TIMEOUT`` /
        ``REPRO_MAP_RETRIES``.

        Same strict-validation contract as ``REPRO_WORKERS``: garbage
        raises :class:`~repro.errors.GraphError` naming the offending
        variable instead of silently running unsupervised."""
        env = os.environ if environ is None else environ
        raw_timeout = (env.get("REPRO_MAP_TIMEOUT") or "").strip()
        timeout: float | None = None
        if raw_timeout:
            try:
                timeout = float(raw_timeout)
            except ValueError as exc:
                raise GraphError(
                    "REPRO_MAP_TIMEOUT must be a positive number of "
                    f"seconds, got {raw_timeout!r}"
                ) from exc
            if not timeout > 0:
                raise GraphError(
                    "REPRO_MAP_TIMEOUT must be > 0 seconds, got "
                    f"{raw_timeout!r} (unset it for unbounded maps)"
                )
        raw_retries = (env.get("REPRO_MAP_RETRIES") or "").strip()
        retries = 2
        if raw_retries:
            try:
                retries = int(raw_retries)
            except ValueError as exc:
                raise GraphError(
                    "REPRO_MAP_RETRIES must be a non-negative integer, "
                    f"got {raw_retries!r}"
                ) from exc
            if retries < 0:
                raise GraphError(
                    "REPRO_MAP_RETRIES must be >= 0, got "
                    f"{raw_retries!r}"
                )
        return cls(timeout=timeout, retries=retries)


_policy: RecoveryPolicy | None = None


def recovery_policy() -> RecoveryPolicy:
    """The process-wide policy (environment-derived, read lazily once)."""
    global _policy
    if _policy is None:
        _policy = RecoveryPolicy.from_env()
    return _policy


def set_recovery_policy(
    policy: RecoveryPolicy | None,
) -> RecoveryPolicy | None:
    """Replace the process-wide policy; returns the previous value.

    ``None`` resets to "re-read the environment on next use"."""
    global _policy
    previous = _policy
    _policy = policy
    return previous


@contextmanager
def use_recovery(policy: RecoveryPolicy) -> Iterator[RecoveryPolicy]:
    """Temporarily install ``policy`` as the process-wide policy."""
    previous = set_recovery_policy(policy)
    try:
        yield policy
    finally:
        set_recovery_policy(previous)


def _effective_timeout(policy: RecoveryPolicy) -> float | None:
    """The wave deadline: the policy's, or the fault-mode fallback."""
    if policy.timeout is not None:
        return policy.timeout
    return _FAULT_FALLBACK_TIMEOUT if faults_active() else None


@dataclass
class PoolStats:
    """Counted degradations and recoveries for one pool.

    Recovery is invisible in results by design, so these counters are
    the observable: tests assert a fault both fired *and* was absorbed
    here, and :meth:`repro.serve.FlowServer.health` surfaces them.

    Attributes:
        retries: Retry waves executed across all maps.
        timeouts: Shards whose result did not arrive by the wave
            deadline (hung or dead worker).
        respawns: Times the process pool was torn down and rebuilt
            after suspected worker loss.
        worker_faults: Shards that raised a non-``ReproError``
            exception (injected or real) and were retried.
        dispatch_faults: Parent-side dispatch failures absorbed before
            shard submission.
        attach_failures: Shared-segment attaches that failed
            (``FileNotFoundError``) and were recovered by re-export.
        degraded_exports: Read-only arrays that fell back to per-call
            transient segments because the persistent arena could not
            host them (budget exhaustion or a prior attach failure).
        failures: Maps that exhausted supervision and raised
            :class:`~repro.errors.PoolFailureError`.
    """

    retries: int = 0
    timeouts: int = 0
    respawns: int = 0
    worker_faults: int = 0
    dispatch_faults: int = 0
    attach_failures: int = 0
    degraded_exports: int = 0
    failures: int = 0

    def snapshot(self) -> "PoolStats":
        """An immutable-in-practice copy (callers must not mutate)."""
        return replace(self)


class WorkerPool:
    """Interface: ordered shard execution."""

    #: Whether workers see the caller's memory (serial / thread pools).
    #: In-process callers may then hand workers output views and cached
    #: scratch buffers; process-pool callers must not.
    shares_memory: bool = True

    def __init__(self) -> None:
        self.stats = PoolStats()

    def map(
        self, fn: Callable[..., Any], tasks: Sequence[tuple]
    ) -> list[Any]:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - interface default
        pass


class SerialPool(WorkerPool):
    """Run every shard in the calling thread, in task order.

    Deliberately unsupervised: this is the reference path the other
    backends are golden-tested against, and the terminal fallback of
    the serving circuit-breaker — it must not have failure modes of
    its own, so no fault site fires here and exceptions propagate raw.
    """

    def map(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        return [fn(*args) for args in tasks]


@fault_point("pool.dispatch", kinds=("raise", "hang"))
def _dispatch_point() -> None:
    """Injection site: consulted once per map wave, parent-side,
    before any shard is submitted."""
    return None


def _worker_directive(
    *, allow_exit: bool, attach: bool = False
) -> tuple[str, float] | None:
    """Decide a worker-side fault for one shard, parent-side.

    Returns a picklable ``(kind, seconds)`` directive or ``None``.
    The decision is made here — in the coordinator — because fork
    inherits the plan's counters, so consulting it in-worker would
    double-count visits. ``attach`` additionally consults the
    ``arena.attach`` site (process backend only: thread workers never
    attach segments); thread workers share the interpreter, so for
    them ``exit`` degrades to ``raise`` (``allow_exit=False``)."""
    action = maybe_fire("pool.worker")
    if action is None and attach:
        action = maybe_fire("arena.attach")
    if action is None:
        return None
    kind = action.kind
    if kind == "exit" and not allow_exit:
        kind = "raise"
    return (kind, action.seconds)


def _thread_invoke(
    fn: Callable[..., Any],
    args: tuple[Any, ...],
    directive: tuple[str, float] | None,
) -> Any:
    """Thread-worker entry point: execute any fault directive, run."""
    if directive is not None:
        from repro.faults import execute_directive

        execute_directive(directive, allow_exit=False)
    return fn(*args)


class ThreadPool(WorkerPool):
    """Persistent thread pool; arrays are shared by reference."""

    def __init__(self, workers: int) -> None:
        super().__init__()
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )

    def map(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        policy = recovery_policy()
        timeout = _effective_timeout(policy)
        results: list[Any] = [None] * len(tasks)
        pending = list(range(len(tasks)))
        wave = 0
        last_exc: BaseException | None = None
        while pending:
            if wave > policy.retries:
                self.stats.failures += 1
                raise PoolFailureError(
                    f"thread map failed: {len(pending)} of {len(tasks)} "
                    f"shards still failing after {policy.retries} "
                    "retry waves"
                ) from last_exc
            if wave:
                self.stats.retries += 1
                time.sleep(policy.backoff * wave)
            try:
                _dispatch_point()
            except Exception as exc:
                self.stats.dispatch_faults += 1
                last_exc = exc
                wave += 1
                continue
            futures: dict[int, Future[Any]] = {
                i: self._executor.submit(
                    _thread_invoke,
                    fn,
                    tuple(tasks[i]),
                    _worker_directive(allow_exit=False),
                )
                for i in pending
            }
            deadline = (
                None if timeout is None else time.monotonic() + timeout
            )
            failed: list[int] = []
            for i, future in futures.items():
                remaining = (
                    None
                    if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                try:
                    results[i] = future.result(remaining)
                except FuturesTimeout as exc:
                    # A timed-out thread cannot be preempted: it may
                    # still be writing to caller-owned output views,
                    # so re-executing its shard would race it. Surface
                    # a typed failure instead of retrying; the caller
                    # must treat shared buffers as poisoned.
                    self.stats.timeouts += 1
                    self.stats.failures += 1
                    for pending_future in futures.values():
                        pending_future.cancel()
                    raise PoolFailureError(
                        f"thread map exceeded its {timeout}s deadline; "
                        "thread shards cannot be safely re-executed "
                        "(the timed-out worker may still hold shared "
                        "buffers), failing the map"
                    ) from exc
                except ReproError:
                    # Deterministic library error, not a fault — the
                    # retry would produce the same answer.
                    raise
                except Exception as exc:
                    self.stats.worker_faults += 1
                    last_exc = exc
                    failed.append(i)
            pending = failed
            wave += 1
        return results

    def close(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# Process pool with shared-memory NumPy views
# ----------------------------------------------------------------------
def _attach_shared(ref: SharedArrayRef) -> tuple[Any, np.ndarray]:
    """Attach a read-only view to a shared-memory array (worker side).

    The parent owns the segment lifecycle (create → map → unlink), and
    fork-context workers share the parent's resource-tracker process —
    so the attach must NOT register with the tracker: its register
    message races the parent's unlink-time unregister on the shared
    pipe and leaves phantom names the tracker warns about at exit.
    Python 3.13 has ``track=False`` for exactly this; on 3.11 the
    standard workaround is masking the register call for the attach
    (process-local to the worker, one attach at a time).
    """
    from multiprocessing import resource_tracker, shared_memory

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=ref.name)
    finally:
        resource_tracker.register = original_register
    view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)
    view.setflags(write=False)
    return shm, view


def _materialize(result: Any) -> Any:
    """Deep-copy array results so nothing returned views shared memory
    (the segment is closed immediately after the task body runs)."""
    if isinstance(result, np.ndarray):
        return np.array(result, copy=True)
    if isinstance(result, tuple):
        return tuple(_materialize(item) for item in result)
    if isinstance(result, list):
        return [_materialize(item) for item in result]
    return result


def _process_invoke(payload: tuple) -> Any:
    """Worker entry point: execute any fault directive shipped from
    the coordinator, resolve shared refs, run, materialize."""
    fn, args, directive = payload
    if directive is not None:
        from repro.faults import execute_directive

        execute_directive(directive, allow_exit=True)
    segments = []
    resolved = []
    try:
        for arg in args:
            if isinstance(arg, SharedArrayRef):
                shm, view = _attach_shared(arg)
                segments.append(shm)
                resolved.append(view)
            else:
                resolved.append(arg)
        return _materialize(fn(*resolved))
    finally:
        for shm in segments:
            shm.close()


class ProcessPool(WorkerPool):
    """Persistent fork-context process pool with shared-memory inputs."""

    shares_memory = False

    def __init__(self, workers: int) -> None:
        import multiprocessing
        import threading

        super().__init__()
        self._workers = workers
        self._context = multiprocessing.get_context("fork")
        self._pool = self._context.Pool(processes=workers)
        self._arena = SharedArena()
        # Whole map calls are serialized per pool: an arena eviction
        # (version bump, budget) happens only inside an export, i.e.
        # inside this lock, so it can never unlink a segment that a
        # concurrent in-flight map of this pool is still about to
        # attach. Shard parallelism is unaffected — the lock gates
        # callers, not workers.
        self._map_lock = threading.Lock()

    def _respawn(self) -> None:
        """Tear down and rebuild the worker pool after suspected
        worker loss (a timed-out shard means a worker hung or died;
        ``terminate`` clears both)."""
        self.stats.respawns += 1
        self._pool.terminate()
        self._pool.join()
        self._pool = self._context.Pool(processes=self._workers)

    def _prepare_args(
        self,
        args: tuple[Any, ...],
        transient: dict[int, tuple[SharedArrayRef, Any]],
        keepalive: list[np.ndarray],
        force_transient: bool,
    ) -> list[Any]:
        """Swap ndarray arguments for shared-memory refs.

        Read-only arrays go through the persistent arena unless
        ``force_transient`` (a prior attach of this task's segments
        failed — a fresh per-call segment sidesteps whatever went
        stale) or the arena itself cannot host them
        (:class:`~repro.errors.ArenaError` after drain exhaustion);
        both fallbacks are counted as ``degraded_exports``."""
        prepared: list[Any] = []
        for arg in args:
            if isinstance(arg, np.ndarray) and arg.nbytes > 0:
                keepalive.append(arg)
                if not arg.flags.writeable and not force_transient:
                    # Invariant input: the persistent arena exports it
                    # at most once per lifetime (or per version tag)
                    # and reuses the segment across map calls.
                    try:
                        prepared.append(self._arena.export(arg))
                        continue
                    except ArenaError:
                        self.stats.degraded_exports += 1
                elif not arg.flags.writeable:
                    self.stats.degraded_exports += 1
                key = id(arg)
                if key not in transient:
                    try:
                        transient[key] = export_segment(arg)
                    except OSError:
                        # Transient exports can hit the same /dev/shm
                        # exhaustion the arena recovers from: drain the
                        # arena's evictable segments and retry once
                        # before surfacing a typed failure.
                        self._arena.drain_evictable()
                        try:
                            transient[key] = export_segment(arg)
                        except OSError as exc:
                            raise ArenaError(
                                "transient shared-memory export failed "
                                "even after draining the arena's "
                                f"evictable segments: requested "
                                f"{int(arg.nbytes)} bytes"
                            ) from exc
                prepared.append(transient[key][0])
            else:
                prepared.append(arg)
        return prepared

    def _discard_cached_exports(self, args: tuple[Any, ...]) -> None:
        """Drop arena entries for a task's read-only arrays after an
        attach failure — the cached segment name may point at an
        externally unlinked segment, and re-export creates a fresh one."""
        for arg in args:
            if (
                isinstance(arg, np.ndarray)
                and arg.nbytes > 0
                and not arg.flags.writeable
            ):
                self._arena.discard(arg)

    def map(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        policy = recovery_policy()
        timeout = _effective_timeout(policy)
        results: list[Any] = [None] * len(tasks)
        pending = list(range(len(tasks)))
        force_transient: set[int] = set()
        wave = 0
        last_exc: BaseException | None = None
        with self._map_lock:
            while pending:
                if wave > policy.retries:
                    self.stats.failures += 1
                    raise PoolFailureError(
                        f"process map failed: {len(pending)} of "
                        f"{len(tasks)} shards still failing after "
                        f"{policy.retries} retry waves"
                    ) from last_exc
                if wave:
                    self.stats.retries += 1
                    time.sleep(policy.backoff * wave)
                try:
                    _dispatch_point()
                except Exception as exc:
                    self.stats.dispatch_faults += 1
                    last_exc = exc
                    wave += 1
                    continue
                transient: dict[int, tuple[SharedArrayRef, Any]] = {}
                keepalive: list[np.ndarray] = []  # pin ids for dedup dicts
                self._arena.begin_map()
                failed: list[int] = []
                lost_worker = False
                try:
                    handles = []
                    for i in pending:
                        prepared = self._prepare_args(
                            tuple(tasks[i]),
                            transient,
                            keepalive,
                            i in force_transient,
                        )
                        payload = (
                            fn,
                            prepared,
                            _worker_directive(allow_exit=True, attach=True),
                        )
                        handles.append(
                            (i, self._pool.apply_async(_process_invoke, (payload,)))
                        )
                    deadline = (
                        None
                        if timeout is None
                        else time.monotonic() + timeout
                    )
                    for i, handle in handles:
                        remaining = (
                            None
                            if deadline is None
                            else max(0.0, deadline - time.monotonic())
                        )
                        try:
                            results[i] = handle.get(remaining)
                        except WorkerTimeoutError as exc:
                            # The shard's result never arrived — the
                            # worker hung or died. Unlike threads, a
                            # respawn preempts it, so the shard is
                            # safely re-executable.
                            self.stats.timeouts += 1
                            lost_worker = True
                            last_exc = exc
                            failed.append(i)
                        except FileNotFoundError as exc:
                            # Segment attach failed (externally
                            # unlinked): discard the stale arena entry
                            # and retry this shard on fresh per-call
                            # segments.
                            self.stats.attach_failures += 1
                            self._discard_cached_exports(tuple(tasks[i]))
                            force_transient.add(i)
                            last_exc = exc
                            failed.append(i)
                        except ReproError:
                            # Deterministic library error, not a fault.
                            raise
                        except Exception as exc:
                            self.stats.worker_faults += 1
                            last_exc = exc
                            failed.append(i)
                finally:
                    for _, shm in transient.values():
                        release_segment(shm)
                    del keepalive
                if lost_worker:
                    self._respawn()
                pending = failed
                wave += 1
        return results

    def close(self) -> None:
        with self._map_lock:
            self._arena.release()
            self._pool.terminate()
            self._pool.join()


register_fault_site("pool.worker", f"{__name__}._worker_directive")
register_fault_site("arena.attach", f"{__name__}._worker_directive")


# ----------------------------------------------------------------------
# Pool selection
# ----------------------------------------------------------------------
_POOLS: dict[tuple[str, int], WorkerPool] = {}
_SERIAL = SerialPool()
_FORK_WARNING = [False]


def _fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method (tests
    monkeypatch this probe to simulate fork-less platforms)."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def reset_fork_warning() -> None:
    """Re-arm the one-time fork-degradation warning.

    The warn-once latch is a module global, so without this hook the
    warning is observable at most once per interpreter — repeated test
    runs in one process, and the serving circuit-breaker's
    process→thread degradation path, could never assert it fired."""
    _FORK_WARNING[0] = False


def _effective_backend(backend: str) -> str:
    """Degrade ``process`` to ``thread`` where ``fork`` is unavailable,
    warning once per session (never crash — the determinism contract
    makes the backends interchangeable for results)."""
    if backend == "process" and not _fork_available():
        if not _FORK_WARNING[0]:
            _FORK_WARNING[0] = True
            warnings.warn(
                "the 'process' parallel backend requires the fork start "
                "method, which this platform does not provide; degrading "
                "to the 'thread' backend (results are identical by the "
                "determinism contract)",
                RuntimeWarning,
                stacklevel=3,
            )
        return "thread"
    return backend


def get_pool(config: ParallelConfig) -> WorkerPool:
    """The cached pool for a config (created lazily, reused forever)."""
    if config.backend == "serial" or config.workers <= 1:
        return _SERIAL
    backend = _effective_backend(config.backend)
    key = (backend, config.workers)
    pool = _POOLS.get(key)
    if pool is None:
        if backend == "thread":
            pool = ThreadPool(config.workers)
        elif backend == "process":
            pool = ProcessPool(config.workers)
        else:  # pragma: no cover - config validates backends
            raise GraphError(f"unknown parallel backend {config.backend!r}")
        _POOLS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Close and drop every cached pool (tests call this between
    backends; also registered at interpreter exit)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.close()


atexit.register(shutdown_pools)
