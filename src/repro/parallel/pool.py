"""Worker pools executing shard tasks: serial, thread, process.

The pool contract is deliberately minimal — :meth:`WorkerPool.map`
takes a **top-level function** and a list of argument tuples and
returns the results *in task order*. Task order is the whole story:
sharded kernels concatenate shard outputs positionally to reproduce
the serial element order, so a pool may schedule tasks however it
likes but must never reorder results.

Backends:

* :class:`SerialPool` — runs shards in-process, one after the other.
  Zero scheduling overhead and deterministic interleaving; used for
  tests and as the cache-blocked fallback on single-core hosts.
* :class:`ThreadPool` — a persistent ``ThreadPoolExecutor``. The hot
  kernels are NumPy whole-array calls that release the GIL, so shards
  genuinely overlap on multi-core hosts, and arrays are shared by
  reference (no copies).
* :class:`ProcessPool` — a persistent fork-context
  ``multiprocessing.Pool``. NumPy array arguments are exported into
  POSIX shared memory (:class:`multiprocessing.shared_memory.
  SharedMemory`) and workers receive zero-copy **read-only views**;
  only scalar arguments and the (typically small) result arrays cross
  the pickle boundary. Export granularity is two-tier: **read-only**
  arrays go through the pool's persistent
  :class:`~repro.parallel.arena.SharedArena` — exported once per array
  lifetime and reused across ``map`` calls (level-synchronous BFS pays
  one CSR export per *run*, not per level) — while writeable arrays
  (``dist`` state, frontier slices, demand vectors) are re-exported
  per call because the caller may mutate them in between. Requires the
  ``fork`` start method; platforms without it degrade to the thread
  pool with a one-time warning (see :func:`get_pool`).

Pools are cached per ``(backend, workers)`` by :func:`get_pool` and
shut down at interpreter exit (or explicitly via
:func:`shutdown_pools`, which the test-suite does between backends).
Shutdown robustness: every shared-memory segment's unlink is owned by
a ``weakref.finalize`` handler (at-most-once across manual release,
array GC, and interpreter exit), so abnormal teardown orders can
neither leak segments nor trip ``resource_tracker`` KeyError warnings.
"""

from __future__ import annotations

import atexit
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import GraphError
from repro.parallel.arena import (
    SharedArena,
    SharedArrayRef,
    export_segment,
    release_segment,
)
from repro.parallel.config import ParallelConfig

__all__ = [
    "WorkerPool",
    "SerialPool",
    "ThreadPool",
    "ProcessPool",
    "get_pool",
    "shutdown_pools",
]


class WorkerPool:
    """Interface: ordered shard execution."""

    #: Whether workers see the caller's memory (serial / thread pools).
    #: In-process callers may then hand workers output views and cached
    #: scratch buffers; process-pool callers must not.
    shares_memory: bool = True

    def map(
        self, fn: Callable[..., Any], tasks: Sequence[tuple]
    ) -> list[Any]:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - interface default
        pass


class SerialPool(WorkerPool):
    """Run every shard in the calling thread, in task order."""

    def map(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        return [fn(*args) for args in tasks]


class ThreadPool(WorkerPool):
    """Persistent thread pool; arrays are shared by reference."""

    def __init__(self, workers: int) -> None:
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )

    def map(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        futures = [self._executor.submit(fn, *args) for args in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# Process pool with shared-memory NumPy views
# ----------------------------------------------------------------------
def _attach_shared(ref: SharedArrayRef) -> tuple[Any, np.ndarray]:
    """Attach a read-only view to a shared-memory array (worker side).

    The parent owns the segment lifecycle (create → map → unlink), and
    fork-context workers share the parent's resource-tracker process —
    so the attach must NOT register with the tracker: its register
    message races the parent's unlink-time unregister on the shared
    pipe and leaves phantom names the tracker warns about at exit.
    Python 3.13 has ``track=False`` for exactly this; on 3.11 the
    standard workaround is masking the register call for the attach
    (process-local to the worker, one attach at a time).
    """
    from multiprocessing import resource_tracker, shared_memory

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        shm = shared_memory.SharedMemory(name=ref.name)
    finally:
        resource_tracker.register = original_register
    view = np.ndarray(ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf)
    view.setflags(write=False)
    return shm, view


def _materialize(result: Any) -> Any:
    """Deep-copy array results so nothing returned views shared memory
    (the segment is closed immediately after the task body runs)."""
    if isinstance(result, np.ndarray):
        return np.array(result, copy=True)
    if isinstance(result, tuple):
        return tuple(_materialize(item) for item in result)
    if isinstance(result, list):
        return [_materialize(item) for item in result]
    return result


def _process_invoke(payload: tuple) -> Any:
    """Worker entry point: resolve shared refs, run, materialize."""
    fn, args = payload
    segments = []
    resolved = []
    try:
        for arg in args:
            if isinstance(arg, SharedArrayRef):
                shm, view = _attach_shared(arg)
                segments.append(shm)
                resolved.append(view)
            else:
                resolved.append(arg)
        return _materialize(fn(*resolved))
    finally:
        for shm in segments:
            shm.close()


class ProcessPool(WorkerPool):
    """Persistent fork-context process pool with shared-memory inputs."""

    shares_memory = False

    def __init__(self, workers: int) -> None:
        import multiprocessing
        import threading

        self._workers = workers
        self._context = multiprocessing.get_context("fork")
        self._pool = self._context.Pool(processes=workers)
        self._arena = SharedArena()
        # Whole map calls are serialized per pool: an arena eviction
        # (version bump, budget) happens only inside an export, i.e.
        # inside this lock, so it can never unlink a segment that a
        # concurrent in-flight map of this pool is still about to
        # attach. Shard parallelism is unaffected — the lock gates
        # callers, not workers.
        self._map_lock = threading.Lock()

    def map(self, fn: Callable[..., Any], tasks: Sequence[tuple]) -> list[Any]:
        transient: dict[int, tuple[SharedArrayRef, Any]] = {}
        keepalive: list[np.ndarray] = []  # pin ids for the dedup dicts
        payloads = []
        with self._map_lock:
            self._arena.begin_map()
            try:
                for args in tasks:
                    prepared = []
                    for arg in args:
                        if isinstance(arg, np.ndarray) and arg.nbytes > 0:
                            keepalive.append(arg)
                            if not arg.flags.writeable:
                                # Invariant input: the persistent arena
                                # exports it at most once per lifetime
                                # (or per version tag) and reuses the
                                # segment across map calls.
                                prepared.append(self._arena.export(arg))
                            else:
                                key = id(arg)
                                if key not in transient:
                                    transient[key] = export_segment(arg)
                                prepared.append(transient[key][0])
                        else:
                            prepared.append(arg)
                    payloads.append((fn, prepared))
                return self._pool.map(_process_invoke, payloads)
            finally:
                for _, shm in transient.values():
                    release_segment(shm)
                del keepalive

    def close(self) -> None:
        with self._map_lock:
            self._arena.release()
            self._pool.terminate()
            self._pool.join()


# ----------------------------------------------------------------------
# Pool selection
# ----------------------------------------------------------------------
_POOLS: dict[tuple[str, int], WorkerPool] = {}
_SERIAL = SerialPool()
_FORK_WARNING = [False]


def _fork_available() -> bool:
    """Whether this platform supports the ``fork`` start method (tests
    monkeypatch this probe to simulate fork-less platforms)."""
    import multiprocessing

    return "fork" in multiprocessing.get_all_start_methods()


def _effective_backend(backend: str) -> str:
    """Degrade ``process`` to ``thread`` where ``fork`` is unavailable,
    warning once per session (never crash — the determinism contract
    makes the backends interchangeable for results)."""
    if backend == "process" and not _fork_available():
        if not _FORK_WARNING[0]:
            _FORK_WARNING[0] = True
            warnings.warn(
                "the 'process' parallel backend requires the fork start "
                "method, which this platform does not provide; degrading "
                "to the 'thread' backend (results are identical by the "
                "determinism contract)",
                RuntimeWarning,
                stacklevel=3,
            )
        return "thread"
    return backend


def get_pool(config: ParallelConfig) -> WorkerPool:
    """The cached pool for a config (created lazily, reused forever)."""
    if config.backend == "serial" or config.workers <= 1:
        return _SERIAL
    backend = _effective_backend(config.backend)
    key = (backend, config.workers)
    pool = _POOLS.get(key)
    if pool is None:
        if backend == "thread":
            pool = ThreadPool(config.workers)
        elif backend == "process":
            pool = ProcessPool(config.workers)
        else:  # pragma: no cover - config validates backends
            raise GraphError(f"unknown parallel backend {config.backend!r}")
        _POOLS[key] = pool
    return pool


def shutdown_pools() -> None:
    """Close and drop every cached pool (tests call this between
    backends; also registered at interpreter exit)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.close()


atexit.register(shutdown_pools)
