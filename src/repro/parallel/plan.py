"""Shard plans: balanced contiguous partitions of array index ranges.

Every sharded kernel in the library splits *contiguous* index ranges —
CSR ``indptr`` node ranges, BFS frontier slices, stacked-operator tree
rows — never arbitrary subsets. Contiguity is what keeps the sharded
paths bit-identical to the serial ones: concatenating shard outputs in
shard order reproduces the exact element order the serial whole-array
pass produces, so every downstream fold (``np.unique`` tie-breaks,
``bincount`` accumulation order, floating-point summation order) is
unchanged.

A :class:`ShardPlan` is just the boundary array of such a partition,
balanced either by item count (:meth:`ShardPlan.even`) or by a
per-item weight such as CSR degrees (:meth:`ShardPlan.balanced`), so
no worker is handed a degenerate share of the work.

Level-synchronous kernels (frontier BFS) additionally keep a
:class:`BfsShardState` across levels: re-planning from scratch every
level pays a cumsum + searchsorted per frontier even when the degree
mass barely moved, so the state reuses the previous boundaries —
rescaled to the new frontier — until the measured per-shard imbalance
drifts past a threshold. Shard boundaries are pure scheduling (outputs
concatenate in frontier order regardless of where the cuts fall), so
reuse can never change a result bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes import WIDE_DTYPE

__all__ = ["BfsShardState", "ShardPlan"]


@dataclass(frozen=True)
class ShardPlan:
    """A contiguous partition ``0 = b_0 <= b_1 <= ... <= b_S = total``.

    Attributes:
        bounds: ``(S + 1,)`` int64 strictly increasing boundaries
            (empty shards are dropped at construction, so every
            ``[bounds[i], bounds[i+1])`` range is non-empty — except
            for the degenerate all-empty plan over zero items).
    """

    bounds: np.ndarray

    @property
    def num_shards(self) -> int:
        return len(self.bounds) - 1

    @property
    def total(self) -> int:
        return int(self.bounds[-1])

    def ranges(self) -> list[tuple[int, int]]:
        """The shard ranges as ``(lo, hi)`` pairs, in index order."""
        b = self.bounds
        return [(int(b[i]), int(b[i + 1])) for i in range(len(b) - 1)]

    @staticmethod
    def _from_raw_bounds(raw: np.ndarray, total: int) -> "ShardPlan":
        bounds = np.unique(
            np.concatenate(([0], np.asarray(raw, dtype=WIDE_DTYPE), [total]))
        )
        return ShardPlan(bounds=bounds)

    @classmethod
    def even(cls, total: int, num_shards: int) -> "ShardPlan":
        """Split ``total`` items into at most ``num_shards`` near-equal
        contiguous ranges."""
        total = int(total)
        if total <= 0:
            return cls(bounds=np.zeros(1, dtype=WIDE_DTYPE))
        num_shards = max(1, min(int(num_shards), total))
        raw = (np.arange(1, num_shards, dtype=WIDE_DTYPE) * total) // num_shards
        return cls._from_raw_bounds(raw, total)

    @classmethod
    def balanced(cls, weights: np.ndarray, num_shards: int) -> "ShardPlan":
        """Split ``len(weights)`` items into contiguous ranges of
        near-equal total weight (weights must be non-negative).

        Boundary selection is the standard prefix-sum split: shard
        ``i`` ends at the first index whose cumulative weight reaches
        ``i/S`` of the total. Zero-weight tails collapse into their
        neighbor (the boundary dedup drops empty shards).
        """
        weights = np.asarray(weights)
        total = len(weights)
        if total <= 0:
            return cls(bounds=np.zeros(1, dtype=WIDE_DTYPE))
        num_shards = max(1, min(int(num_shards), total))
        if num_shards == 1:
            return cls(bounds=np.array([0, total], dtype=WIDE_DTYPE))
        cumulative = np.cumsum(weights, dtype=np.float64)
        mass = float(cumulative[-1])
        if mass <= 0:
            return cls.even(total, num_shards)
        targets = mass * np.arange(1, num_shards, dtype=np.float64) / num_shards
        raw = np.searchsorted(cumulative, targets, side="left") + 1
        return cls._from_raw_bounds(raw, total)

    @classmethod
    def for_nodes(cls, indptr: np.ndarray, num_shards: int) -> "ShardPlan":
        """Partition the node range of a CSR by incidence count, so each
        shard owns ``~2m/S`` incidences rather than ``~n/S`` nodes."""
        return cls.balanced(np.diff(indptr), num_shards)

    @classmethod
    def for_frontier(
        cls, indptr: np.ndarray, frontier: np.ndarray, num_shards: int
    ) -> "ShardPlan":
        """Partition a BFS frontier by the degree mass of its nodes."""
        return cls.balanced(
            indptr[frontier + 1] - indptr[frontier], num_shards
        )


class BfsShardState:
    """Persistent per-level frontier shard state for one BFS run.

    :meth:`plan` serves the shard plan for each successive frontier.
    After a full degree-balanced plan, the boundary positions are kept
    as *fractions* of the frontier length; the next level reuses them
    (rescaled) as long as the resulting per-shard degree masses stay
    within ``rebalance_ratio`` of their mean — one ``reduceat`` instead
    of the cumsum + searchsorted + dedup of a fresh
    :meth:`ShardPlan.balanced`. When frontier mass shifts past the
    threshold (or the rescaled boundaries collapse shards), the full
    plan runs again and the fractions reset.

    Plan choice never affects results — shard outputs concatenate back
    in frontier order whatever the boundaries — so the reuse heuristic
    is exclusively a scheduling decision (the cross-shard harness
    sweeps BFS bit-identity over sharded configs regardless).

    Attributes:
        rebalances: Full degree-balanced plans computed (diagnostics).
        reuses: Levels served by rescaled previous boundaries.
    """

    __slots__ = (
        "num_shards",
        "rebalance_ratio",
        "_fractions",
        "rebalances",
        "reuses",
    )

    def __init__(self, num_shards: int, rebalance_ratio: float = 1.5) -> None:
        self.num_shards = max(1, int(num_shards))
        self.rebalance_ratio = float(rebalance_ratio)
        self._fractions: np.ndarray | None = None
        self.rebalances = 0
        self.reuses = 0

    def plan(self, indptr: np.ndarray, frontier: np.ndarray) -> ShardPlan:
        """The shard plan for this level's frontier."""
        total = len(frontier)
        if total <= 0:
            return ShardPlan(bounds=np.zeros(1, dtype=WIDE_DTYPE))
        if self._fractions is not None and total >= self.num_shards:
            raw = (self._fractions * total).astype(WIDE_DTYPE)
            bounds = np.unique(np.concatenate(([0], raw, [total])))
            if len(bounds) - 1 == self.num_shards:
                degrees = indptr[frontier + 1] - indptr[frontier]
                masses = np.add.reduceat(
                    np.asarray(degrees, dtype=np.float64), bounds[:-1]
                )
                mean = float(masses.sum()) / len(masses)
                if mean <= 0 or float(masses.max()) <= (
                    self.rebalance_ratio * mean
                ):
                    self.reuses += 1
                    return ShardPlan(bounds=bounds)
        plan = ShardPlan.for_frontier(indptr, frontier, self.num_shards)
        if plan.num_shards == self.num_shards and plan.total > 0:
            self._fractions = (
                plan.bounds[1:-1].astype(np.float64) / plan.total
            )
        else:
            # Clamped / degenerate plan: don't lock future levels into
            # fewer shards than requested.
            self._fractions = None
        self.rebalances += 1
        return plan
