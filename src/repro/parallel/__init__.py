"""Worker-sharded execution backend for the array-native substrate.

The paper's algorithm is distributed by construction: congestion-
approximator products decompose into independent per-tree work and the
BFS/contraction primitives into independent per-node-range work. This
package is the centralized mirror of that decomposition — it partitions
the *data* of the already-whole-array kernels across workers:

* :class:`ShardPlan` — balanced contiguous partitions of CSR ``indptr``
  node ranges, BFS frontiers, and stacked-operator tree rows;
* :class:`ParallelConfig` — shard count / pool backend / adaptive
  threshold, defaulting process-wide from ``REPRO_WORKERS`` (and
  ``REPRO_BACKEND``); ``REPRO_WORKERS=2 pytest`` runs the entire suite
  sharded;
* pools (:mod:`repro.parallel.pool`) — serial, thread, and fork+
  shared-memory process execution behind one ordered-``map`` contract.

The sharded kernels themselves live next to their serial twins
(:mod:`repro.graphs.kernels`, :mod:`repro.graphs.csr`,
:mod:`repro.core.stacked`) and are **bit-identical** to them by
construction: shards are contiguous index ranges whose outputs
concatenate back into the exact serial element order, so every
downstream fold (tie-breaking, ``bincount`` accumulation, floating-
point summation) is unchanged. ``tests/parallel_harness.py`` sweeps a
seed × generator × shard-count matrix asserting exact equality.
"""

from repro.parallel.arena import (
    ARENA_BYTE_BUDGET,
    SharedArena,
    array_version,
    tag_array_version,
)
from repro.parallel.config import (
    ParallelConfig,
    default_config,
    resolve_config,
    set_default_config,
    use_config,
)
from repro.parallel.plan import BfsShardState, ShardPlan
from repro.parallel.pool import (
    PoolStats,
    ProcessPool,
    RecoveryPolicy,
    SerialPool,
    ThreadPool,
    WorkerPool,
    get_pool,
    recovery_policy,
    reset_fork_warning,
    set_recovery_policy,
    shutdown_pools,
    use_recovery,
)

__all__ = [
    "ARENA_BYTE_BUDGET",
    "BfsShardState",
    "ParallelConfig",
    "PoolStats",
    "RecoveryPolicy",
    "SharedArena",
    "ShardPlan",
    "WorkerPool",
    "SerialPool",
    "ThreadPool",
    "ProcessPool",
    "array_version",
    "default_config",
    "recovery_policy",
    "reset_fork_warning",
    "resolve_config",
    "set_default_config",
    "set_recovery_policy",
    "tag_array_version",
    "use_config",
    "use_recovery",
    "get_pool",
    "shutdown_pools",
]
