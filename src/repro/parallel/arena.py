"""Persistent cross-call shared-memory arena for the process pool.

PR 4's process backend exported every NumPy argument into POSIX shared
memory *per* ``map`` call — correct, but in level-synchronous BFS that
means one export round per level for arrays that never change (the CSR
``indptr`` / ``neighbor`` / ``edge_id`` triple). This module is the
ROADMAP follow-on: a **weakref-keyed export cache** that exports an
ndarray once per lifetime and reuses the segment across ``map`` calls.

Cache contract
==============

* **Keying.** Entries are keyed by ``(id(array), version)``. ``id``
  alone is unsafe — CPython reuses addresses — so every entry holds a
  weak reference to the exporting array and a ``weakref.finalize``
  that evicts the entry (and unlinks the segment) the moment the array
  is garbage collected; an entry whose weakref no longer resolves to
  the requesting array is never served.
* **Eligibility.** Only **read-only** arrays (``writeable`` flag off)
  are cached by the pool; writeable arrays (BFS ``dist``, frontier
  slices, per-call demand vectors) are re-exported per ``map`` call
  because the caller may mutate them between calls.
* **Versioning.** Read-only-ness is necessary but not sufficient: a
  read-only *view* can still see writes through its base buffer
  (``Graph.set_capacity`` writes through the cached ``capacities()``
  view). Owners of such views tag them with
  :func:`tag_array_version` and bump the tag on every write-through /
  structural mutation — :class:`~repro.graphs.graph.Graph` tags its
  cached views with its cache-invalidation counter — and the arena
  re-exports on any version mismatch. Untagged arrays carry version 0,
  i.e. "immutable by contract" (the CSR arrays).
* **Lifecycle.** ``export`` creates the segment and registers a
  ``weakref.finalize`` unlink handler; the finalizer is the *single*
  owner of the unlink (``weakref.finalize`` guarantees at-most-once
  across manual eviction, array GC, and interpreter exit, where
  surviving finalizers run as atexit hooks) — so teardown can never
  double-unlink and the ``resource_tracker`` never sees a phantom
  unregister. All unlink paths swallow ``FileNotFoundError`` (segment
  already gone) and late-shutdown errors.
* **Residency bound.** Live segments are capped at ``max_bytes``
  (default :data:`ARENA_BYTE_BUDGET`): crossing the budget evicts the
  least-recently-used entries first — always safe, the next use just
  re-exports — but never an entry touched by the map call currently
  being prepared (the per-map tick), so the cap is soft against a
  single call's working set and ``/dev/shm`` residency cannot grow
  with the number of live graphs.
* **Thread safety.** Arena state is guarded by an ``RLock`` (GC
  finalizers fire on arbitrary threads), and the owning process pool
  serializes whole ``map`` calls, so a version-mismatch eviction from
  one call can never unlink a segment another in-flight ``map`` of the
  same pool still references. *Within* one call, a version bump racing
  the payload preparation (a mutator thread writing between two tasks'
  exports of the same array) is served snapshot-consistently: the
  already-referenced segment is reused for the rest of the call — its
  bytes are a legal outcome of the race — and the stale entry is
  evicted on the next call.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ArenaError
from repro.faults import fault_point

__all__ = [
    "ARENA_BYTE_BUDGET",
    "SharedArena",
    "SharedArrayRef",
    "array_version",
    "tag_array_version",
]

#: Default cap on an arena's live shared-memory residency. Soft: a
#: single map call's working set may exceed it (same-tick entries are
#: never evicted), but across calls LRU eviction keeps ``/dev/shm``
#: usage bounded regardless of how many graphs stay alive.
ARENA_BYTE_BUDGET = 1 << 30


@dataclass(frozen=True)
class SharedArrayRef:
    """Picklable descriptor of an array living in shared memory."""

    name: str
    shape: tuple[int, ...]
    dtype: str


# ----------------------------------------------------------------------
# Array version tags (the write-through-view escape hatch)
# ----------------------------------------------------------------------
#: id(array) -> (weakref, version). The weakref detects id reuse and
#: drives cleanup; entries die with their arrays.
_versions: dict[int, tuple[weakref.ref, int]] = {}


def tag_array_version(array: np.ndarray, version: int) -> None:
    """Tag ``array`` with a data version for the arena's cache key.

    Owners of read-only views whose *underlying buffer* can still be
    written (e.g. ``Graph.capacities()`` under ``set_capacity``) call
    this with a counter they bump on every mutation; the arena then
    re-exports the view whenever the tag moved.
    """
    key = id(array)
    ref = weakref.ref(array, lambda _r, _k=key: _versions.pop(_k, None))
    _versions[key] = (ref, int(version))


def array_version(array: np.ndarray) -> int:
    """The current version tag of ``array`` (0 when never tagged)."""
    entry = _versions.get(id(array))
    if entry is None:
        return 0
    ref, version = entry
    if ref() is not array:  # id reused before the old ref's callback ran
        _versions.pop(id(array), None)
        return 0
    return version


# ----------------------------------------------------------------------
# Segment plumbing
# ----------------------------------------------------------------------
@fault_point("arena.export", kinds=("enospc",))
def export_segment(array: np.ndarray) -> tuple[SharedArrayRef, Any]:
    """Copy ``array`` into a fresh shared-memory segment.

    Returns ``(ref, shm)``; the caller owns the segment's lifecycle.
    """
    from multiprocessing import shared_memory

    data = np.ascontiguousarray(array)
    shm = shared_memory.SharedMemory(create=True, size=data.nbytes)
    staged = np.ndarray(data.shape, dtype=data.dtype, buffer=shm.buf)
    staged[...] = data
    ref = SharedArrayRef(name=shm.name, shape=data.shape, dtype=data.dtype.str)
    return ref, shm


def release_segment(shm: Any) -> None:
    """Close and unlink a segment, tolerating every teardown race.

    ``FileNotFoundError`` (already unlinked) and late-interpreter-
    shutdown failures (the ``resource_tracker`` machinery may be gone)
    must never propagate out of a finalizer or an atexit hook.
    """
    try:
        shm.close()
    except Exception:  # repolint: disable=except-discipline -- finalizer/atexit teardown must never raise; nothing to recover
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass
    except Exception:  # repolint: disable=except-discipline -- late-shutdown resource_tracker may be gone; nothing to recover
        pass


@dataclass
class _ArenaEntry:
    ref: SharedArrayRef
    shm: Any
    version: int
    array_ref: weakref.ref
    finalizer: weakref.finalize
    nbytes: int
    last_used: int


class SharedArena:
    """Weakref-keyed cross-call export cache for one process pool.

    ``export`` returns a :class:`SharedArrayRef` for the array, serving
    the cached segment when the same (still-alive, same-version) array
    was exported before. Counters:

    Attributes:
        export_count: Segments actually created (cache misses).
        reuse_count: Cache hits (an already-exported array served
            again, across or within ``map`` calls).
        total_bytes: Live shared-memory residency.
        max_bytes: Soft residency cap (LRU eviction past it; ``None``
            disables the budget).
    """

    #: Lock contract, machine-checked by repolint's lock-discipline
    #: rule: every lexical write to these attributes outside __init__
    #: must sit inside ``with self._lock`` (GC finalizers can fire on
    #: any thread, and eviction re-enters from callback context).
    _GUARDED_BY = (
        "_entries",
        "_tick",
        "total_bytes",
        "export_count",
        "reuse_count",
        "max_bytes",
    )

    def __init__(self, max_bytes: int | None = ARENA_BYTE_BUDGET) -> None:
        self._entries: dict[int, _ArenaEntry] = {}
        # RLock: eviction runs an entry's finalize callback, which
        # re-enters the lock; GC may also fire callbacks on any thread.
        self._lock = threading.RLock()
        self._tick = 0
        self.max_bytes = max_bytes
        self.total_bytes = 0
        self.export_count = 0
        self.reuse_count = 0

    def __len__(self) -> int:
        return len(self._entries)

    def segment_names(self) -> list[str]:
        """The live segment names (test/diagnostic hook)."""
        with self._lock:
            return [entry.ref.name for entry in list(self._entries.values())]

    def begin_map(self) -> None:
        """Mark the start of a ``map`` call: entries exported from here
        on share the new tick and are exempt from budget eviction for
        the duration of the call."""
        with self._lock:
            self._tick += 1

    def export(self, array: np.ndarray) -> SharedArrayRef:
        """The shared-memory ref for ``array``, exporting at most once
        per ``(array lifetime, version)``."""
        with self._lock:
            key = id(array)
            version = array_version(array)
            entry = self._entries.get(key)
            if entry is not None:
                if entry.array_ref() is array and (
                    entry.version == version
                    or entry.last_used == self._tick
                ):
                    # Same version — or a version bump racing the map
                    # call currently being prepared: the entry is
                    # already referenced by this call's payload, so
                    # unlinking it would crash the workers' attach.
                    # Serve the existing segment (the whole call sees
                    # one consistent snapshot; either race order is
                    # legal) and leave the stored version stale so the
                    # *next* call evicts and re-exports.
                    self.reuse_count += 1
                    entry.last_used = self._tick
                    return entry.ref
                self._evict(key)
            try:
                ref, shm = export_segment(array)
            except OSError:
                # Shared memory exhausted (/dev/shm is commonly capped
                # at 64 MB in containers): drop every segment not in
                # the current call's working set and retry once.
                self.drain_evictable()
                try:
                    ref, shm = export_segment(array)
                except OSError as exc:
                    live = sum(
                        entry.nbytes for entry in self._entries.values()
                    )
                    raise ArenaError(
                        "shared-memory export failed even after draining "
                        f"every evictable segment: requested "
                        f"{int(array.nbytes)} bytes, byte budget "
                        f"{self.max_bytes}, live working set {live} bytes "
                        f"across {len(self._entries)} pinned segments "
                        "(the current map call's own exports cannot be "
                        "evicted)"
                    ) from exc
            finalizer = weakref.finalize(array, self._on_collect, key, shm)
            self._entries[key] = _ArenaEntry(
                ref=ref,
                shm=shm,
                version=version,
                array_ref=weakref.ref(array),
                finalizer=finalizer,
                nbytes=int(array.nbytes),
                last_used=self._tick,
            )
            self.export_count += 1
            self.total_bytes += int(array.nbytes)
            self._enforce_budget()
            return ref

    def _enforce_budget(self) -> None:
        """Evict LRU entries past ``max_bytes`` — never ones touched by
        the map call currently being prepared (``last_used == tick``),
        whose refs may already sit in the outgoing payload."""
        if self.max_bytes is None:
            return
        while self.total_bytes > self.max_bytes:
            # Snapshot first: allocations inside the comprehension can
            # trigger GC, whose finalize callbacks delete entries on
            # this very thread (the RLock re-enters).
            candidates = [
                (entry.last_used, key)
                for key, entry in list(self._entries.items())
                if entry.last_used < self._tick
            ]
            if not candidates:
                break  # soft cap: one call's working set may exceed it
            self._evict(min(candidates)[1])

    def drain_evictable(self) -> None:
        """Evict everything outside the current call's working set
        (the ENOSPC recovery path; also used by the pool's transient-
        export fallback)."""
        with self._lock:
            for key, entry in list(self._entries.items()):
                if entry.last_used < self._tick:
                    self._evict(key)

    def _on_collect(self, key: int, shm: Any) -> None:
        """Finalizer body: drop the entry (if it is still ours) and
        unlink the segment."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.shm is shm:
                del self._entries[key]
                self.total_bytes -= entry.nbytes
        release_segment(shm)

    def _evict(self, key: int) -> None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                # Calling a finalize object runs it at most once (it
                # re-enters via _on_collect for the bookkeeping), so
                # the GC/atexit path can never double-unlink after
                # this.
                entry.finalizer()

    def discard(self, array: np.ndarray) -> bool:
        """Drop the cached entry for ``array``, if any (attach-failure
        recovery: the segment name may point at an externally unlinked
        segment, so the next export must create a fresh one).

        Returns whether an entry was evicted."""
        with self._lock:
            entry = self._entries.get(id(array))
            if entry is None or entry.array_ref() is not array:
                return False
            self._evict(id(array))
            return True

    def release(self) -> None:
        """Unlink every cached segment (pool shutdown / tests)."""
        with self._lock:
            for key in list(self._entries):
                self._evict(key)
